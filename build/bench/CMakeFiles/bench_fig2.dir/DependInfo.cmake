
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2.cpp" "bench/CMakeFiles/bench_fig2.dir/bench_fig2.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2.dir/bench_fig2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/flexmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/flexmr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/flexmr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/flexmap/CMakeFiles/flexmr_flexmap.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/flexmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/flexmr_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/yarn/CMakeFiles/flexmr_yarn.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/flexmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flexmr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
