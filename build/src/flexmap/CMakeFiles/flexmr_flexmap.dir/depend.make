# Empty dependencies file for flexmr_flexmap.
# This may be replaced when dependencies are built.
