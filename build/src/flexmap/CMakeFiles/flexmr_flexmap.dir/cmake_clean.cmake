file(REMOVE_RECURSE
  "CMakeFiles/flexmr_flexmap.dir/flexmap_scheduler.cpp.o"
  "CMakeFiles/flexmr_flexmap.dir/flexmap_scheduler.cpp.o.d"
  "CMakeFiles/flexmr_flexmap.dir/sizing.cpp.o"
  "CMakeFiles/flexmr_flexmap.dir/sizing.cpp.o.d"
  "CMakeFiles/flexmr_flexmap.dir/speed_monitor.cpp.o"
  "CMakeFiles/flexmr_flexmap.dir/speed_monitor.cpp.o.d"
  "libflexmr_flexmap.a"
  "libflexmr_flexmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_flexmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
