file(REMOVE_RECURSE
  "libflexmr_flexmap.a"
)
