file(REMOVE_RECURSE
  "CMakeFiles/flexmr_yarn.dir/resource_manager.cpp.o"
  "CMakeFiles/flexmr_yarn.dir/resource_manager.cpp.o.d"
  "libflexmr_yarn.a"
  "libflexmr_yarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_yarn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
