file(REMOVE_RECURSE
  "libflexmr_yarn.a"
)
