
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/yarn/resource_manager.cpp" "src/yarn/CMakeFiles/flexmr_yarn.dir/resource_manager.cpp.o" "gcc" "src/yarn/CMakeFiles/flexmr_yarn.dir/resource_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/flexmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flexmr_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
