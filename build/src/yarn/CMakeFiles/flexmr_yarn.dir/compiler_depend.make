# Empty compiler generated dependencies file for flexmr_yarn.
# This may be replaced when dependencies are built.
