file(REMOVE_RECURSE
  "CMakeFiles/flexmr_sched.dir/skewtune.cpp.o"
  "CMakeFiles/flexmr_sched.dir/skewtune.cpp.o.d"
  "CMakeFiles/flexmr_sched.dir/stock.cpp.o"
  "CMakeFiles/flexmr_sched.dir/stock.cpp.o.d"
  "libflexmr_sched.a"
  "libflexmr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
