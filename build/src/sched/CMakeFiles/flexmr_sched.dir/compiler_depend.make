# Empty compiler generated dependencies file for flexmr_sched.
# This may be replaced when dependencies are built.
