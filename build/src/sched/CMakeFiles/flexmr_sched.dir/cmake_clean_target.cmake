file(REMOVE_RECURSE
  "libflexmr_sched.a"
)
