file(REMOVE_RECURSE
  "libflexmr_rt.a"
)
