file(REMOVE_RECURSE
  "CMakeFiles/flexmr_rt.dir/dataset.cpp.o"
  "CMakeFiles/flexmr_rt.dir/dataset.cpp.o.d"
  "CMakeFiles/flexmr_rt.dir/engine.cpp.o"
  "CMakeFiles/flexmr_rt.dir/engine.cpp.o.d"
  "libflexmr_rt.a"
  "libflexmr_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
