# Empty compiler generated dependencies file for flexmr_rt.
# This may be replaced when dependencies are built.
