file(REMOVE_RECURSE
  "libflexmr_hdfs.a"
)
