# Empty dependencies file for flexmr_hdfs.
# This may be replaced when dependencies are built.
