file(REMOVE_RECURSE
  "CMakeFiles/flexmr_hdfs.dir/block_index.cpp.o"
  "CMakeFiles/flexmr_hdfs.dir/block_index.cpp.o.d"
  "CMakeFiles/flexmr_hdfs.dir/namenode.cpp.o"
  "CMakeFiles/flexmr_hdfs.dir/namenode.cpp.o.d"
  "libflexmr_hdfs.a"
  "libflexmr_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
