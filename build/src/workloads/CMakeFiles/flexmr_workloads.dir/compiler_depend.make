# Empty compiler generated dependencies file for flexmr_workloads.
# This may be replaced when dependencies are built.
