file(REMOVE_RECURSE
  "CMakeFiles/flexmr_workloads.dir/experiment.cpp.o"
  "CMakeFiles/flexmr_workloads.dir/experiment.cpp.o.d"
  "CMakeFiles/flexmr_workloads.dir/puma.cpp.o"
  "CMakeFiles/flexmr_workloads.dir/puma.cpp.o.d"
  "libflexmr_workloads.a"
  "libflexmr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
