file(REMOVE_RECURSE
  "libflexmr_workloads.a"
)
