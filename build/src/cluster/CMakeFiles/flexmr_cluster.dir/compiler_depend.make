# Empty compiler generated dependencies file for flexmr_cluster.
# This may be replaced when dependencies are built.
