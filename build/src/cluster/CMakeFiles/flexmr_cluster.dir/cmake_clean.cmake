file(REMOVE_RECURSE
  "CMakeFiles/flexmr_cluster.dir/cluster.cpp.o"
  "CMakeFiles/flexmr_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/flexmr_cluster.dir/interference.cpp.o"
  "CMakeFiles/flexmr_cluster.dir/interference.cpp.o.d"
  "CMakeFiles/flexmr_cluster.dir/presets.cpp.o"
  "CMakeFiles/flexmr_cluster.dir/presets.cpp.o.d"
  "libflexmr_cluster.a"
  "libflexmr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
