file(REMOVE_RECURSE
  "libflexmr_cluster.a"
)
