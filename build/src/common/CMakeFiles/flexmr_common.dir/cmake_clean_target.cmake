file(REMOVE_RECURSE
  "libflexmr_common.a"
)
