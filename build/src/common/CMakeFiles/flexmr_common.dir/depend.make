# Empty dependencies file for flexmr_common.
# This may be replaced when dependencies are built.
