file(REMOVE_RECURSE
  "CMakeFiles/flexmr_common.dir/config.cpp.o"
  "CMakeFiles/flexmr_common.dir/config.cpp.o.d"
  "CMakeFiles/flexmr_common.dir/logging.cpp.o"
  "CMakeFiles/flexmr_common.dir/logging.cpp.o.d"
  "CMakeFiles/flexmr_common.dir/stats.cpp.o"
  "CMakeFiles/flexmr_common.dir/stats.cpp.o.d"
  "CMakeFiles/flexmr_common.dir/table.cpp.o"
  "CMakeFiles/flexmr_common.dir/table.cpp.o.d"
  "CMakeFiles/flexmr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/flexmr_common.dir/thread_pool.cpp.o.d"
  "libflexmr_common.a"
  "libflexmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
