file(REMOVE_RECURSE
  "libflexmr_simcore.a"
)
