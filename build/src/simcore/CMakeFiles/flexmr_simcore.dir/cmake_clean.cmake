file(REMOVE_RECURSE
  "CMakeFiles/flexmr_simcore.dir/simulator.cpp.o"
  "CMakeFiles/flexmr_simcore.dir/simulator.cpp.o.d"
  "libflexmr_simcore.a"
  "libflexmr_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
