# Empty dependencies file for flexmr_simcore.
# This may be replaced when dependencies are built.
