# Empty dependencies file for flexmr_mr.
# This may be replaced when dependencies are built.
