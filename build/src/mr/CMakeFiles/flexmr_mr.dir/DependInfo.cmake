
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/analysis.cpp" "src/mr/CMakeFiles/flexmr_mr.dir/analysis.cpp.o" "gcc" "src/mr/CMakeFiles/flexmr_mr.dir/analysis.cpp.o.d"
  "/root/repo/src/mr/driver.cpp" "src/mr/CMakeFiles/flexmr_mr.dir/driver.cpp.o" "gcc" "src/mr/CMakeFiles/flexmr_mr.dir/driver.cpp.o.d"
  "/root/repo/src/mr/metrics.cpp" "src/mr/CMakeFiles/flexmr_mr.dir/metrics.cpp.o" "gcc" "src/mr/CMakeFiles/flexmr_mr.dir/metrics.cpp.o.d"
  "/root/repo/src/mr/multi_job.cpp" "src/mr/CMakeFiles/flexmr_mr.dir/multi_job.cpp.o" "gcc" "src/mr/CMakeFiles/flexmr_mr.dir/multi_job.cpp.o.d"
  "/root/repo/src/mr/trace.cpp" "src/mr/CMakeFiles/flexmr_mr.dir/trace.cpp.o" "gcc" "src/mr/CMakeFiles/flexmr_mr.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flexmr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/flexmr_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/flexmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/yarn/CMakeFiles/flexmr_yarn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
