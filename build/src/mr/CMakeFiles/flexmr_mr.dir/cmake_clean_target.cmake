file(REMOVE_RECURSE
  "libflexmr_mr.a"
)
