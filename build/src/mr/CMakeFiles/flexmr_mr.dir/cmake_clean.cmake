file(REMOVE_RECURSE
  "CMakeFiles/flexmr_mr.dir/analysis.cpp.o"
  "CMakeFiles/flexmr_mr.dir/analysis.cpp.o.d"
  "CMakeFiles/flexmr_mr.dir/driver.cpp.o"
  "CMakeFiles/flexmr_mr.dir/driver.cpp.o.d"
  "CMakeFiles/flexmr_mr.dir/metrics.cpp.o"
  "CMakeFiles/flexmr_mr.dir/metrics.cpp.o.d"
  "CMakeFiles/flexmr_mr.dir/multi_job.cpp.o"
  "CMakeFiles/flexmr_mr.dir/multi_job.cpp.o.d"
  "CMakeFiles/flexmr_mr.dir/trace.cpp.o"
  "CMakeFiles/flexmr_mr.dir/trace.cpp.o.d"
  "libflexmr_mr.a"
  "libflexmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
