# Empty compiler generated dependencies file for flexmr_tests.
# This may be replaced when dependencies are built.
