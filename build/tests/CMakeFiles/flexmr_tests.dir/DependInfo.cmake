
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_common_misc.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_common_misc.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_common_misc.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_cross_validation.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_cross_validation.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_cross_validation.cpp.o.d"
  "/root/repo/tests/test_driver_integration.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_driver_integration.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_driver_integration.cpp.o.d"
  "/root/repo/tests/test_driver_params.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_driver_params.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_driver_params.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_failures.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_failures.cpp.o.d"
  "/root/repo/tests/test_hdfs.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_hdfs.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_hdfs.cpp.o.d"
  "/root/repo/tests/test_ltb.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_ltb.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_ltb.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_multi_job.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_multi_job.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_multi_job.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rate_integrator.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_rate_integrator.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_rate_integrator.cpp.o.d"
  "/root/repo/tests/test_resource_manager.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_resource_manager.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_resource_manager.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rt.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_rt.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_rt.cpp.o.d"
  "/root/repo/tests/test_schedulers.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_schedulers.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_schedulers.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_sizing.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_sizing.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_sizing.cpp.o.d"
  "/root/repo/tests/test_speed_monitor.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_speed_monitor.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_speed_monitor.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/flexmr_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/flexmr_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/flexmr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/flexmr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/flexmr_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/flexmap/CMakeFiles/flexmr_flexmap.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/flexmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/flexmr_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/yarn/CMakeFiles/flexmr_yarn.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/flexmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/flexmr_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/flexmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
