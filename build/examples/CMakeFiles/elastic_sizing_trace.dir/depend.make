# Empty dependencies file for elastic_sizing_trace.
# This may be replaced when dependencies are built.
