file(REMOVE_RECURSE
  "CMakeFiles/elastic_sizing_trace.dir/elastic_sizing_trace.cpp.o"
  "CMakeFiles/elastic_sizing_trace.dir/elastic_sizing_trace.cpp.o.d"
  "elastic_sizing_trace"
  "elastic_sizing_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_sizing_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
