file(REMOVE_RECURSE
  "CMakeFiles/rt_wordcount.dir/rt_wordcount.cpp.o"
  "CMakeFiles/rt_wordcount.dir/rt_wordcount.cpp.o.d"
  "rt_wordcount"
  "rt_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
