# Empty dependencies file for rt_wordcount.
# This may be replaced when dependencies are built.
