// Trace export and visualization for JobResults: a CSV task-timeline
// writer for offline analysis, and an ASCII Gantt renderer that makes load
// imbalance visible at a glance (one row per slot-lane per node, map tasks
// as '=', reduce tasks as '#', killed work as 'x').
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "mr/metrics.hpp"

namespace flexmr::mr {

/// CSV with one row per task: id, kind, status, node, speculative,
/// dispatch, compute_start, end, input_mib, num_bus, productivity.
std::string trace_csv(const JobResult& result);

/// ASCII Gantt chart of the job, `width` characters across the JCT span.
/// Tasks are packed into per-node lanes (one per slot).
std::string gantt(const JobResult& result, const cluster::Cluster& cluster,
                  std::size_t width = 100);

/// Replay converter: rebuilds a flexmr.trace.v1 document from a finished
/// JobResult — one X span per task record (greedily packed onto per-node
/// lanes, like gantt), job/map-phase spans on the job track, and the fault
/// timeline as instants. Coarser than a live trace (no per-phase children,
/// no metrics rows) but available for any run after the fact.
std::string job_result_trace_json(const JobResult& result);

}  // namespace flexmr::mr
