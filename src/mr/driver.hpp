// JobDriver: executes one MapReduce job on a simulated cluster under a
// pluggable Scheduler. It plays the roles the paper assigns to the YARN
// AppMaster and MRAppMaster JobImpl: requesting containers, dispatching
// tasks, tracking progress, running the heartbeat loop, and enforcing the
// exactly-once block-unit invariant.
//
// Mechanism/policy split: ALL state machines live here; Scheduler only
// decides what to launch where (see mr/scheduler.hpp).
//
// Task timeline (maps):
//   dispatch ──(container_alloc + jvm_startup [+ extra])──▶ compute start
//   compute ──(rate-integrated at node speed / cost)──▶ completion
// Interference changes re-rate the integrator and re-schedule the
// cancellable completion event.
//
// Reduce phase: starts when the last BU is credited. Reducer r gets weight
// w_r of every map output; its fetch moves the non-node-local share over
// the NIC (discounted by shuffle_overlap for the early-shuffle Hadoop
// performs), then reduce compute is rate-integrated like a map.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "hdfs/block_index.hpp"
#include "hdfs/replica_manager.hpp"
#include "mr/job.hpp"
#include "mr/metrics.hpp"
#include "mr/params.hpp"
#include "mr/scheduler.hpp"
#include "obs/session.hpp"
#include "recover/journal.hpp"
#include "simcore/rate_integrator.hpp"
#include "simcore/simulator.hpp"
#include "yarn/resource_manager.hpp"

namespace flexmr::mr {

/// Per-job namespace inside a *shared* TraceSession: several drivers can
/// record into one Perfetto document when each gets a distinct control pid
/// and a distinct task-token range, while the node / NameNode / fault
/// tracks stay shared (process naming is idempotent per pid). The
/// defaults reproduce the single-job layout byte for byte.
struct TraceNamespace {
  /// Pid of this job's control track (phases, job-level counters).
  std::uint32_t job_pid = obs::kJobPid;
  /// Added to every task token so concurrent jobs' task ids (both starting
  /// from 0) cannot collide inside the tracer's open-task map.
  std::uint64_t token_base = 0;
  /// Process name for the control track; empty = "job <name> [<sched>]".
  std::string label;
  /// Gauges read live driver state and are not deduped by name; a shared
  /// session registers service-level gauges once at the coordinator
  /// instead of one copy per job.
  bool register_gauges = true;
};

/// Everything a crashed AM attempt hands its successor: the durable
/// cluster-level state that outlives one AM (fault plan, armed injector,
/// NameNode live view) plus the journal replay the successor resumes
/// from. The unique_ptr moves keep the injector and replica manager at
/// stable addresses — their pending simulator events capture raw
/// pointers — and the new driver re-points their handlers at itself in
/// start().
struct AmRecoveryBaton {
  faults::FaultPlan plan;
  std::unique_ptr<faults::FaultInjector> injector;
  std::unique_ptr<hdfs::ReplicaManager> replica_mgr;
  recover::JobJournal* journal = nullptr;
  std::uint32_t next_attempt = 2;
  recover::RecoveredState recovered;
};

class JobDriver final : public DriverContext {
 public:
  /// Single-job form: the driver owns a ResourceManager over the whole
  /// cluster, arms the interference models, and drives the simulator
  /// itself (via run()).
  JobDriver(Simulator& sim, cluster::Cluster& cluster,
            const hdfs::FileLayout& layout, JobSpec job, SimParams params,
            Scheduler& scheduler);

  /// Shared-cluster form (used by MultiJobCoordinator): container offers
  /// arrive through `shared_rm`, whose offer handler and the cluster's
  /// interference arming belong to the coordinator. Use start()/done(),
  /// not run().
  JobDriver(Simulator& sim, cluster::Cluster& cluster,
            const hdfs::FileLayout& layout, JobSpec job, SimParams params,
            Scheduler& scheduler, yarn::ResourceManager& shared_rm);

  /// Unregisters this driver's machine speed listeners: the cluster may
  /// outlive the driver (sequential jobs, a coordinator dropping a
  /// finished job), and a stale [this] callback is a use-after-free.
  ~JobDriver();

  /// Runs the job to completion and returns its metrics. One-shot.
  /// Only valid in the single-job form.
  JobResult run();

  /// Registers the job (heartbeats, failures, initial offers) without
  /// stepping the simulator. The owner steps until done().
  void start();
  bool done() const { return done_; }
  const JobResult& result() const { return result_; }

  /// Offers one free container on `node`; returns true if consumed.
  /// (The RM calls this through the installed handler in single-job mode;
  /// a coordinator calls it directly in shared mode.)
  bool offer(NodeId node) { return handle_offer(node); }

  /// Containers currently held by this job (running maps + reduces).
  std::uint32_t slots_in_use() const {
    return static_cast<std::uint32_t>(running_map_count_ +
                                      running_reduce_count_);
  }

  /// Legacy failure injection: node `node` dies at absolute sim time
  /// `time`, with *oracle* (instant) detection — equivalent to a
  /// FaultPlan crash with silent=false and no rejoin. Must be called
  /// before run(); throws ConfigError on an out-of-range node or a
  /// negative time. Semantics on detection: the node's containers are
  /// killed, its slots withdrawn, and the *input* of every map whose
  /// output lived on the node is re-executed elsewhere (the standard
  /// MapReduce recovery path). If the shuffle has already started and
  /// some reducer still needs the lost outputs, the map phase re-opens
  /// for those inputs and pre-compute reducers stall until the outputs
  /// are regenerated.
  void schedule_node_failure(NodeId node, SimTime time);

  /// Cluster-level failure notification from a shared-RM coordinator: the
  /// coordinator has already marked the node dead on the RM (exactly once,
  /// cluster-wide) and schedules the single post-failure re-offer itself.
  /// This driver records the crash/detection events, kills its containers
  /// on the node, reclaims their work, and never touches the node again.
  /// Idempotent per node; also used to inform a job that starts *after*
  /// the node died. Requires start().
  void notify_node_failure(NodeId node);

  /// Container preemption (an over-share job releasing a slot to the
  /// cluster scheduler): kills this job's youngest running non-speculative
  /// map attempt, crediting its consumed BU prefix as PartialCompleted
  /// (FlexMap's elastic tasks make the checkpoint free) and returning the
  /// rest to the pool. Reducers are never preempted — their fetched data
  /// would be lost. Returns false when no preemptible map is running.
  bool preempt_one_map();

  /// Installs the run's declarative fault plan (crashes with optional
  /// rejoin, silent death with heartbeat-expiry detection, degradation
  /// windows, per-attempt transient/launch failures, retry/blacklist
  /// knobs). Must be called before run(); single-job mode only. The plan
  /// is validated (ConfigError) at start(). Legacy schedule_node_failure
  /// entries are merged in as non-silent crashes.
  void install_faults(faults::FaultPlan plan);

  // ---- AM crash + journaled recovery (recover::RecoveryRunner) ----------

  /// Arms journaled recovery: the driver appends to `journal` at every
  /// commit point (map/reduce commits, output losses, attempt-failure
  /// charges) and snapshots it on the heartbeat cadence. Required
  /// (ConfigError at start()) when the installed plan has AM faults — the
  /// recovery runner owns the journal and the restart loop. Must be set
  /// before start(). Null journal + no AM faults keeps every commit site
  /// on a pointer-test fast path (byte-identical runs).
  void set_journal(recover::JobJournal* journal);

  /// 1-based AM attempt number this driver represents.
  std::uint32_t am_attempt() const { return am_attempt_; }

  /// Kills this AM attempt: every in-flight container is torn down (its
  /// consumed input is wasted simulated time, matching MRAppMaster
  /// semantics — YARN kills the whole application's containers), held
  /// slots return to the RM, the trace closes, and the driver goes
  /// permanently done() WITHOUT a finish_time. Records kAmCrash and the
  /// attempt's teardown accounting. No-op once done().
  void crash_am();

  /// Hands the crashed attempt's durable state (plan, armed injector,
  /// NameNode view, journal replay) to the successor. Only valid after
  /// crash_am().
  AmRecoveryBaton release_recovery();

  /// Makes this not-yet-started driver AM attempt N+1: adopts the dead
  /// attempt's baton, and start() replays the journal — re-pending only
  /// uncommitted work — instead of starting from scratch. Shared-RM form
  /// only (the successor allocates from the surviving RM).
  void adopt_recovery(AmRecoveryBaton baton);

  /// The RM this driver allocates from; the recovery runner re-points a
  /// surviving single-job RM's offer handler at each new attempt.
  yarn::ResourceManager& resource_manager() { return rm_; }

  /// Opt-in tracing: spans/instants for every task lifecycle plus a
  /// metrics time series sampled from the run loop. Must be installed
  /// before start(); the session must outlive the driver's run (its
  /// gauges read driver state at sample time). Null (the default) keeps
  /// every instrumentation site on a pointer-test fast path.
  void set_trace(obs::TraceSession* trace);

  /// Shared-session form: same as set_trace(trace) but records under the
  /// given per-job namespace so several jobs merge into one document.
  void set_trace(obs::TraceSession* trace, TraceNamespace ns);

  // --- DriverContext ---
  SimTime now() const override { return sim_->now(); }
  const JobSpec& job() const override { return job_; }
  const SimParams& params() const override { return params_; }
  const hdfs::FileLayout& layout() const override { return *layout_; }
  hdfs::BlockLocationIndex& index() override { return index_; }
  std::uint32_t num_nodes() const override { return cluster_->num_nodes(); }
  const cluster::MachineSpec& machine_spec(NodeId node) const override {
    return cluster_->machine(node).spec();
  }
  std::uint32_t free_slots(NodeId node) const override {
    return rm_.free_slots(node);
  }
  std::uint32_t total_free_slots() const override { return rm_.total_free(); }
  std::uint32_t total_slots() const override { return rm_.total_slots(); }
  std::vector<RunningMapInfo> running_maps() const override;
  LaneSet* lane_set() const override { return sim_->lane_set(); }
  std::optional<MiBps> observed_ips(NodeId node) const override;
  double map_phase_progress() const override;
  std::size_t total_bus() const override { return layout_->bus.size(); }
  std::size_t processed_bus() const override { return processed_bus_; }
  std::size_t unassigned_bus() const override {
    return index_.unprocessed();
  }
  std::uint32_t total_reducers() const override {
    return static_cast<std::uint32_t>(reduce_tasks_.size());
  }
  MiB next_reducer_input() const override {
    if (!reduce_requeue_.empty()) {
      return reduce_tasks_[reduce_requeue_.front()]->input;
    }
    if (next_reducer_ < reduce_tasks_.size()) {
      return reduce_tasks_[next_reducer_]->input;
    }
    return 0;
  }
  MiB mean_reducer_input() const override {
    return reduce_tasks_.empty()
               ? 0.0
               : total_intermediate_ /
                     static_cast<double>(reduce_tasks_.size());
  }
  bool node_alive(NodeId node) const override {
    return !rm_.is_dead(node);
  }
  bool node_blacklisted(NodeId node) const override {
    return !blacklisted_.empty() && blacklisted_[node] != 0 &&
           !blacklist_saturated();
  }
  bool block_readable(std::uint32_t block) const override {
    // Readable = enough live holders to serve (or decode) the data: one
    // whole replica, or any k of the k+m parts under rs(k,m).
    return !replica_mgr_ ||
           replica_mgr_->live_holder_count(block) >= layout_->min_live();
  }
  obs::EventTracer* tracer() const override { return tracer_; }
  recover::JobJournal* journal() const override { return journal_; }
  std::vector<BlockUnitId> kill_and_reclaim(TaskId task) override;

 private:
  enum class TaskPhase { kStarting, kFetching, kComputing, kDone };

  /// Attempt-level fate drawn at dispatch from the fault injector: the
  /// container launch fails during startup, or the attempt dies a
  /// fraction of the way through its compute.
  enum class PlannedFault { kNone, kLaunchFail, kAttemptFail };

  struct MapTask {
    TaskId id = 0;
    NodeId node = 0;
    std::vector<BlockUnitId> bus;
    MiB size = 0;
    double avg_cost = 1.0;       ///< Size-weighted mean BU cost.
    double local_fraction = 1.0; ///< Bytes with a replica on `node`.
    bool speculative = false;
    TaskId twin = kInvalidTask;  ///< Original/copy counterpart, if any.
    bool credited = false;       ///< Completed (or partial) and counted.
    bool output_lost = false;    ///< Host failed; input was re-queued.
    /// Exactly one task of an original/copy pair owns the BU list (both
    /// hold duplicates): the owner returns it to the index if the work
    /// dies. Ownership transfers to a surviving twin when the owner is
    /// killed — without the transfer, a second failure hitting the twin
    /// would silently drop the BUs (exactly-once violation).
    bool owns_bus = true;
    /// Per-attempt execution-time multiplier (GC pauses, I/O variance —
    /// lognormal with unit mean). Twins draw independently.
    double exec_noise = 1.0;
    SimTime dispatch_time = 0;
    SimTime compute_start = 0;
    TaskPhase phase = TaskPhase::kStarting;
    PlannedFault planned_fault = PlannedFault::kNone;
    double fail_frac = 0;        ///< Compute fraction at which it dies.
    std::optional<RateIntegrator> integrator;
    EventId pending_event = kInvalidEvent;
  };

  struct ReduceTask {
    TaskId id = 0;
    NodeId node = kInvalidNode;  ///< Assigned at dispatch (late binding).
    double share = 0;            ///< Fraction of intermediate data.
    MiB input = 0;
    MiB remote = 0;
    double exec_noise = 1.0;
    SimTime dispatch_time = 0;
    SimTime compute_start = 0;
    TaskPhase phase = TaskPhase::kStarting;
    PlannedFault planned_fault = PlannedFault::kNone;
    double fail_frac = 0;
    std::optional<RateIntegrator> integrator;
    EventId pending_event = kInvalidEvent;
    /// Map-output hosts whose fetch failed this attempt, FIFO. The reducer
    /// retries the front source with exponential backoff and reports each
    /// failure to the AM (Hadoop's fetch-failure notification).
    std::vector<NodeId> failed_fetch_sources;
    std::uint32_t fetch_attempt = 0;  ///< Retries against the front source.
  };

  bool handle_offer(NodeId node);
  void dispatch_map(NodeId node, MapLaunch launch);
  void map_compute_start(TaskId id);
  void map_complete(TaskId id);
  void kill_map(TaskId id, TaskStatus final_status);
  void record_map(const MapTask& task, TaskStatus status, MiB consumed,
                  std::uint32_t credited_bus);
  void finish_map_phase();

  /// Plans the reduce phase. `forced_total` > 0 pins the reducer count to
  /// a journaled plan (auto-sizing reads *live* slots, which may differ
  /// after an AM restart); 0 = plan fresh (and journal the result).
  void enqueue_reducers(std::uint32_t forced_total = 0);
  bool dispatch_reduce(NodeId node);
  void reduce_fetch_start(std::size_t idx);
  void reduce_fetch_done(std::size_t idx);
  void handle_fetch_failure(std::size_t idx);
  void retry_fetch(std::size_t idx);
  void report_fetch_failure(NodeId host);
  void reduce_compute_start(std::size_t idx);
  void reduce_complete(std::size_t idx);

  void heartbeat();
  void on_speed_change(NodeId node);

  // Fault machinery. fail_node is the *detection* path (oracle crash,
  // heartbeat expiry, or re-registration resync); on_node_silent is the
  // ground-truth crash of a node the AM has not noticed yet. A coordinator
  // delivering a cluster-level crash suppresses the per-driver re-offer
  // (it schedules one itself, instead of one per job).
  void fail_node(NodeId node, bool schedule_reoffer = true);
  /// Creates the live NameNode view on demand: coordinator-delivered
  /// failures arrive without a per-driver fault plan, but node loss still
  /// needs replica liveness for locality and data-loss checks.
  void ensure_replica_manager();
  void on_node_silent(NodeId node);
  void on_node_rejoin(NodeId node);
  void map_attempt_fail(TaskId id);
  void reduce_attempt_fail(std::size_t idx);
  void note_node_attempt_failure(NodeId node);
  bool blacklist_saturated() const;
  void abort_job(const std::string& reason);
  void record_fault(faults::FaultEventType type, NodeId node,
                    TaskId task = kInvalidTask, std::uint32_t attempts = 0,
                    std::uint32_t block = faults::kInvalidBlock);

  // Data-plane fault machinery (HDFS replica loss + shuffle recovery).
  /// Discards `task`'s credited output: its BUs return to the index (and
  /// `reclaimed`), processed counters roll back, its record is relabeled
  /// kLostOutput.
  void lose_map_output(MapTask& task, std::vector<BlockUnitId>& reclaimed);
  /// Re-opens the map phase after output loss: stalls every reducer that
  /// has not started computing and requeues it for redispatch.
  void reopen_map_phase_for_lost_outputs();
  /// Aborts with DataLossError semantics if any `suspect` block has zero
  /// live replicas, unread BUs, and no dead holder with a rejoin pending.
  void check_data_loss(const std::vector<std::uint32_t>& suspect_blocks);
  /// NameNode re-replication pipeline callback: a copy of `block` (or a
  /// reconstructed rs(k,m) part) landed on `target`.
  void on_block_re_replicated(std::uint32_t block, NodeId target);
  /// Ground-truth single-disk failure on a live node: the disk's
  /// replicas/parts are destroyed (kPartLost / kReplicaLost per block),
  /// the live view and index shrink, and repair work is queued.
  void on_disk_fault(NodeId node, std::uint32_t disk);

  /// Replays the adopted RecoveredState into driver state: node liveness
  /// reconciliation, committed maps re-credited (synthetic Done tasks in
  /// original commit order for FP-identical bookkeeping), the reduce plan
  /// and committed reducers restored, uncommitted reducers re-pended.
  void restore_from_journal();

  double map_rate(const MapTask& task) const;
  double reduce_rate(const ReduceTask& task) const;
  void reschedule_map_completion(MapTask& task);
  void finish_job();

  /// Shared core of kill_and_reclaim / preempt_one_map: stop `id`, credit
  /// its consumed prefix, put the rest back. `reason` labels the trace.
  std::vector<BlockUnitId> reclaim_map(TaskId id, const char* reason);

  // Tracing helpers (all no-ops when trace_ is null).
  void trace_setup();
  void trace_begin_phase(const char* name);
  void trace_end_phase();
  void trace_map_begin(const MapTask& task);
  void trace_task_closed(TaskId id, const char* status, const char* reason,
                         MiB consumed);
  void trace_finish();
  /// Task id → tracer token under this job's namespace.
  std::uint64_t ttok(TaskId id) const { return trace_ns_.token_base + id; }

  Simulator* sim_;
  cluster::Cluster* cluster_;
  const hdfs::FileLayout* layout_;
  JobSpec job_;
  SimParams params_;
  Scheduler* scheduler_;

  hdfs::BlockLocationIndex index_;
  std::unique_ptr<yarn::ResourceManager> owned_rm_;  ///< Single-job mode.
  yarn::ResourceManager& rm_;
  Rng rng_;

  std::vector<std::unique_ptr<MapTask>> map_tasks_;   // id == index
  /// Ids of map tasks not yet Done, ascending (dispatch appends; finished
  /// ids are skipped by readers and swept out during the heartbeat walk).
  /// Keeps the heartbeat sampling scan, speed re-rating and running_maps()
  /// proportional to in-flight work instead of every task ever launched.
  std::vector<TaskId> live_map_ids_;
  /// Heartbeat per-node sample accumulators (members so a heartbeat wave
  /// allocates nothing).
  std::vector<double> hb_ips_sum_;
  std::vector<std::uint32_t> hb_ips_cnt_;
  std::vector<std::unique_ptr<ReduceTask>> reduce_tasks_;
  std::size_t next_reducer_ = 0;  ///< Global FIFO dispatch cursor.
  MiB total_intermediate_ = 0;
  std::vector<MiB> intermediate_on_node_;
  std::vector<std::optional<MiBps>> round_ips_;
  /// IPS samples from maps that completed since the last heartbeat round
  /// (Eq. 3 evaluated at task end — the reliable reading for tasks shorter
  /// than a heartbeat period).
  std::vector<std::vector<double>> pending_ips_samples_;

  std::size_t processed_bus_ = 0;
  std::size_t reducers_done_ = 0;
  std::size_t running_reduce_count_ = 0;
  bool reduce_reoffer_pending_ = false;
  bool reduce_ready_ = false;
  /// Consecutive reduce re-offer rounds where every slot declined; after
  /// a few, placement bias is bypassed so a buggy/stale policy can never
  /// wedge the reduce phase (e.g. quotas computed before a node failure).
  std::uint32_t reduce_declined_rounds_ = 0;
  std::size_t reducers_started_ = 0;
  std::size_t reducers_started_snapshot_ = 0;
  bool reduce_force_dispatch_ = false;
  std::vector<std::size_t> reduce_requeue_;  ///< Reducers lost to failures.
  std::vector<std::pair<NodeId, SimTime>> planned_failures_;
  /// Fault plan installed before start(); merged with planned_failures_
  /// and validated at start(). Empty plan == no fault machinery at all.
  faults::FaultPlan plan_;
  std::unique_ptr<faults::FaultInjector> injector_;
  /// Live NameNode view (created iff the fault plan is non-empty): per-
  /// block replica liveness plus the bandwidth-modeled re-replication
  /// pipeline. Without faults the static layout is the truth and the
  /// driver skips all replica bookkeeping.
  std::unique_ptr<hdfs::ReplicaManager> replica_mgr_;
  /// BU read state (1 == credited to a completed/partial map). Data loss
  /// is only fatal for blocks with unread BUs.
  std::vector<char> bu_done_;
  /// Fetch-failure reports per map task id (Hadoop's per-mapper counter);
  /// hitting FaultPlan::max_fetch_failures_per_map re-executes the map.
  std::vector<std::uint32_t> map_fetch_reports_;
  /// Nodes that are dead (ground truth) but not yet declared lost by the
  /// AM: their tasks are frozen, their heartbeats stopped.
  std::set<NodeId> silent_nodes_;
  /// Transient-failure counts per map BU / per reduce task; hitting
  /// FaultPlan::max_attempts aborts the job.
  std::vector<std::uint32_t> bu_attempt_failures_;
  std::vector<std::uint32_t> reduce_attempt_failures_;
  /// Failed attempts per node, and the AM blacklist they feed.
  std::vector<std::uint32_t> node_failed_attempts_;
  std::vector<char> blacklisted_;
  /// Per-node speed-listener handles registered in start(), removed in the
  /// destructor (node == index).
  std::vector<cluster::Machine::SpeedListenerId> speed_listener_ids_;
  std::set<NodeId> failed_nodes_;  ///< Failures this driver has handled.
  std::size_t running_map_count_ = 0;
  bool map_phase_done_ = false;
  bool done_ = false;
  bool started_ = false;

  /// AM-recovery state: the journal this attempt appends to (null = no
  /// recovery armed), this driver's 1-based attempt number, the replayed
  /// state a restarted attempt resumes from, and whether crash_am() ran.
  recover::JobJournal* journal_ = nullptr;
  std::uint32_t am_attempt_ = 1;
  std::optional<recover::RecoveredState> recovered_;
  bool am_crashed_ = false;

  /// Opt-in observability (null unless set_trace was called). tracer_
  /// caches &trace_->tracer() so hot paths test one pointer; the counter
  /// pointers are registered in trace_setup() and stay valid for the
  /// session's lifetime.
  obs::TraceSession* trace_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  TraceNamespace trace_ns_;
  bool trace_phase_open_ = false;
  obs::MetricsRegistry::Counter* ctr_maps_dispatched_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_maps_completed_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_maps_killed_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_speculative_kills_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_reduces_dispatched_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_reduces_completed_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_fetch_failures_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_fault_events_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_heartbeats_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_am_restarts_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_redone_units_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_degraded_reads_ = nullptr;
  obs::MetricsRegistry::Counter* ctr_parts_reconstructed_ = nullptr;

  JobResult result_;
};

}  // namespace flexmr::mr
