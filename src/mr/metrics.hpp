// Experiment metrics, defined exactly as in the paper (§II-C):
//
//   Productivity = effective runtime / total runtime            (Eq. 1)
//   Efficiency   = serial runtime /
//                  (map-phase runtime × #available containers)  (Eq. 2)
//
// where effective runtime excludes container allocation and JVM startup,
// serial runtime is approximated by the sum of all (successful) map task
// runtimes, and the map-phase runtime spans first container start to last
// map container stop.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "faults/fault_plan.hpp"
#include "hdfs/block.hpp"

namespace flexmr::mr {

enum class TaskKind { kMap, kReduce };

/// Stable wire names ("map"/"reduce"), shared by the CSV and JSON exports.
const char* to_string(TaskKind kind);

enum class TaskStatus {
  kCompleted,         ///< Ran to the end of its input split.
  kPartialCompleted,  ///< Stopped early but its consumed prefix is kept
                      ///< (SkewTune straggler mitigation).
  kKilled,            ///< Work discarded (losing speculative copy, or
                      ///< running on a node when it failed).
  kLostOutput,        ///< Completed, but its host node failed before the
                      ///< output was consumed; the input re-executes.
  kFailed,            ///< Attempt died (launch failure, JVM crash); the
                      ///< work retries up to FaultPlan::max_attempts.
};

/// Stable wire names ("completed"/"partial"/"killed"/"lost-output"/
/// "failed").
const char* to_string(TaskStatus status);

struct TaskRecord {
  TaskId id = 0;
  NodeId node = 0;
  TaskKind kind = TaskKind::kMap;
  TaskStatus status = TaskStatus::kCompleted;
  bool speculative = false;

  SimTime dispatch_time = 0;   ///< Container granted; overheads begin.
  SimTime compute_start = 0;   ///< First input byte read (post-JVM).
  SimTime end_time = 0;

  MiB input_mib = 0;           ///< Input consumed (maps) / fetched (reduces).
  std::uint32_t num_bus = 0;   ///< BUs credited to this task.
  /// Fraction of the map input with a replica on the host node (1 for
  /// reduces; locality is a map-side notion here).
  double local_fraction = 1.0;
  /// Map-phase progress (0..1) at the moment this task ended.
  double phase_progress_at_end = 0;

  SimDuration total_runtime() const { return end_time - dispatch_time; }
  SimDuration effective_runtime() const {
    return compute_start > 0 && end_time > compute_start
               ? end_time - compute_start
               : 0.0;
  }
  /// Eq. 1.
  double productivity() const {
    const double total = total_runtime();
    return total > 0 ? effective_runtime() / total : 0.0;
  }
  bool credited() const {
    return (status == TaskStatus::kCompleted ||
            status == TaskStatus::kPartialCompleted) &&
           num_bus > 0;
  }
};

/// One AM attempt's fate in a journaled-recovery run: when it died, when
/// its successor registered, and the work the crash threw away versus the
/// committed work the journal let the successor replay for free.
struct AmAttemptRecord {
  std::uint32_t attempt = 1;        ///< 1-based AM attempt number.
  SimTime crash_time = 0;           ///< When this attempt died.
  SimTime restart_time = 0;         ///< When the successor registered.
  MiB wasted_mib = 0;               ///< In-flight input torn down with it.
  std::uint64_t wasted_units = 0;   ///< In-flight BUs returned to the pool.
  std::uint64_t replayed_units = 0; ///< Committed BUs replayed, not redone.
};

struct JobResult {
  std::string benchmark;
  std::string scheduler;
  std::uint32_t total_slots = 0;
  /// The run's RNG seed, echoed for reproducibility of fault sweeps.
  std::uint64_t seed = 0;

  /// Set when the job could not finish (max_attempts exceeded, whole
  /// cluster permanently lost). An aborted result still carries every
  /// task record and fault event up to the abort.
  bool aborted = false;
  std::string abort_reason;

  /// The fault plan in force (empty plan when no faults were injected).
  faults::FaultPlan fault_plan;
  /// Chronological fault timeline: crashes, detections, rejoins, attempt
  /// failures, blacklistings, abort.
  std::vector<faults::FaultEvent> fault_events;

  /// Block ids whose last replica died before the block was fully read
  /// (under rs(k,m): blocks left with fewer than k live parts). Set only
  /// on a data-loss abort.
  std::vector<std::uint32_t> lost_blocks;

  /// The storage policy the input file was laid out with (default
  /// replication unless the run opted into rs(k,m)).
  hdfs::StoragePolicy storage;
  /// Map dispatches that read an rs(k,m) block with dead parts and paid
  /// the decode cost.
  std::uint64_t degraded_reads = 0;
  /// Lost parts the repair pipeline reconstructed.
  std::uint64_t parts_reconstructed = 0;
  /// Input bytes that went through degraded-read decoding.
  MiB decode_mib = 0;
  /// Bytes the repair pipeline read (k× amplified under rs(k,m)).
  MiB repair_read_mib = 0;

  /// AM restarts this job survived (0 in a crash-free run), the
  /// per-attempt crash/replay timeline, and the total in-flight work the
  /// crashes threw away (re-run by successor attempts).
  std::uint32_t am_restarts = 0;
  std::vector<AmAttemptRecord> am_attempts;
  MiB redone_work_mib = 0;
  std::uint64_t redone_work_units = 0;

  SimTime submit_time = 0;
  SimTime map_phase_start = 0;  ///< First map container dispatch.
  SimTime map_phase_end = 0;    ///< Last map container stop.
  SimTime finish_time = 0;

  /// Simulator counters at job completion (whole-simulator totals: in
  /// shared-cluster mode they span every co-running job).
  std::uint64_t sim_events_fired = 0;
  std::uint64_t sim_events_cancelled = 0;
  std::uint64_t sim_queue_peak = 0;

  std::vector<TaskRecord> tasks;

  SimDuration jct() const { return finish_time - submit_time; }
  SimDuration map_phase_runtime() const {
    return map_phase_end - map_phase_start;
  }

  /// Sum of successful map tasks' total runtimes (the paper's serial-
  /// runtime approximation).
  SimDuration map_serial_runtime() const;

  /// Eq. 2. Uses total_slots as "# of available containers".
  double efficiency() const;

  /// Mean productivity over completed map tasks.
  double mean_map_productivity() const;

  /// Total runtimes of completed map tasks (Fig. 1 / Fig. 3a material).
  SampleSet map_runtimes() const;

  /// Slot-seconds consumed by killed tasks (speculation waste).
  SimDuration wasted_slot_time() const;

  std::size_t count(TaskKind kind, TaskStatus status) const;
  std::size_t map_tasks_launched() const;
};

/// Thrown by JobDriver::run when the job aborts instead of completing
/// (a unit of work exceeded max_attempts, or every node died with no
/// rejoin pending). Carries the partial JobResult so callers can still
/// inspect the task records and fault timeline of the doomed run.
class JobAbortedError : public std::runtime_error {
 public:
  JobAbortedError(const std::string& reason, JobResult result)
      : std::runtime_error("job aborted: " + reason),
        result_(std::move(result)) {}

  const JobResult& result() const { return result_; }

 private:
  JobResult result_;
};

/// Thrown when the last replica of an unread block dies with no rejoin
/// pending: HDFS has physically lost input data and no amount of retrying
/// recovers it. The lost block ids ride along (also mirrored in
/// result().lost_blocks).
class DataLossError : public JobAbortedError {
 public:
  DataLossError(const std::string& reason, JobResult result)
      : JobAbortedError(reason, std::move(result)) {}

  const std::vector<std::uint32_t>& lost_blocks() const {
    return result().lost_blocks;
  }
};

}  // namespace flexmr::mr
