// MultiJobCoordinator: several MapReduce jobs sharing one cluster.
//
// The coordinator owns the shared ResourceManager's offer handler and
// arbitrates every freed container between the submitted jobs:
//   * kFifo — the earliest-submitted unfinished job gets first refusal;
//     work-conserving (a job with nothing to launch passes the offer on),
//   * kFair — jobs are offered in ascending order of containers currently
//     held, converging to equal shares while all are busy,
//   * kWeightedFair — ascending order of containers-held / weight, so a
//     weight-2 job converges to twice the slots of a weight-1 job.
//
// Each job keeps its own scheduler (so a FlexMap job and a stock job can
// share a cluster), its own heartbeat loop, and all single-job
// invariants; only slot arbitration is centralized — which is exactly how
// YARN splits responsibilities between the RM scheduler and per-job AMs.
//
// The coordinator is *incremental*: jobs may be submitted while earlier
// ones are already running (start() registers the cluster once; run_all()
// remains as the one-shot batch wrapper). Cluster-level faults are also
// centralized: a node death is applied to the shared RM exactly once and
// every affected job is *notified*, instead of each job independently
// re-injecting the same crash (which marked the node dead N times and
// scheduled N duplicate re-offers).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/driver.hpp"
#include "recover/journal.hpp"

namespace flexmr::mr {

enum class SharePolicy {
  kFifo,
  kFair,
  kWeightedFair,
};

/// Stable wire names ("fifo", "fair", "weighted-fair").
const char* to_string(SharePolicy policy);

/// Container preemption of over-share jobs (YARN capacity-scheduler style,
/// routed through the RM's preemption hook). Every `period_s` the
/// coordinator computes each active job's weighted fair share; when a job
/// below its share still has work pending, containers are reclaimed from
/// jobs holding more than `over_share_factor` times their share, youngest
/// map attempt first (FlexMap's elastic tasks credit the consumed prefix,
/// so preemption wastes almost no work).
struct PreemptionConfig {
  bool enabled = false;
  SimDuration period_s = 30.0;
  double over_share_factor = 1.25;
  /// Kill budget per pass: bounds thrash when shares oscillate.
  std::uint32_t max_kills_per_round = 2;
};

class MultiJobCoordinator {
 public:
  MultiJobCoordinator(Simulator& sim, cluster::Cluster& cluster,
                      SharePolicy policy);

  /// Submits a job entering the cluster at `submit_time` with the given
  /// fair-share weight. `layout` and `scheduler` must outlive the run.
  /// Callable before start() or — submit-while-running — at any point
  /// after; a submit_time in the past starts the job immediately.
  /// Returns the job's index.
  std::size_t submit(const hdfs::FileLayout& layout, JobSpec spec,
                     SimParams params, Scheduler& scheduler,
                     SimTime submit_time, double weight = 1.0);

  /// Failure injection: node `node` dies at `time` — cluster-wide, applied
  /// to the shared RM exactly once, with every affected job notified (and
  /// jobs admitted later informed at their start). Call before start().
  void schedule_node_failure(NodeId node, SimTime time);

  /// AM-crash recovery knobs shared by every journaled job.
  struct AmRecoveryConfig {
    /// A crash on this attempt aborts the job (YARN's
    /// yarn.resourcemanager.am.max-attempts).
    std::uint32_t max_attempts = 2;
    /// Downtime between an AM death and its successor's registration.
    SimDuration restart_delay_s = 10.0;
  };
  /// Install before start().
  void set_am_recovery(AmRecoveryConfig config);

  /// Kills job `job`'s AM at absolute time `time`; inert if the job is not
  /// running then (not yet admitted, finished, or already down). The first
  /// call for a job installs its recovery journal, so it must precede that
  /// job's start — after the coordinator itself has started, call it right
  /// after submit(), before the start event fires.
  void schedule_am_crash(std::size_t job, SimTime time);

  /// True while `job` sits between an AM crash and its successor's start:
  /// its driver reads done(), but the job is NOT finished.
  bool am_recovering(std::size_t job) const { return jobs_[job].recovering; }
  /// True when `job` died for good — its AM crashed with no attempts left.
  bool am_aborted(std::size_t job) const { return jobs_[job].am_aborted; }
  /// Finished for admission purposes: started, drained, and not in
  /// AM-restart limbo.
  bool job_finished(std::size_t job) const {
    const Entry& e = jobs_[job];
    return e.started && e.driver->done() && !e.recovering;
  }

  /// The job's result with the cross-attempt AM timeline folded in
  /// (identical to driver(job).result() for never-crashed jobs): crashed
  /// attempts' task records and fault events stitched in chronologically,
  /// submit time restored to attempt 1's, abort reason set when the
  /// attempt budget was exhausted.
  JobResult result(std::size_t job) const;

  /// Merged observability: every job records into `trace` under its own
  /// pid/token namespace while node, NameNode and fault tracks are shared,
  /// producing ONE Perfetto document for the whole workload. Install
  /// before start().
  void set_trace(obs::TraceSession* trace);

  void set_preemption(PreemptionConfig config);

  /// Registers the cluster (interference, offer handler, failure events)
  /// and starts every job at its submit time. The owner steps the
  /// simulator; poll all_done() / driver(j).done() for completion.
  void start();
  bool started() const { return started_; }

  /// True once every submitted job has started and finished.
  bool all_done() const;

  std::size_t num_jobs() const { return jobs_.size(); }
  JobDriver& driver(std::size_t job) { return *jobs_[job].driver; }
  const JobDriver& driver(std::size_t job) const {
    return *jobs_[job].driver;
  }
  double weight(std::size_t job) const { return jobs_[job].weight; }

  /// Batch wrapper: start(), step to completion, results in submission
  /// order. One-shot; requires at least one pre-submitted job.
  std::vector<JobResult> run_all();

  yarn::ResourceManager& resource_manager() { return rm_; }

  /// Containers reclaimed by preemption so far.
  std::uint64_t preemption_kills() const { return preemption_kills_; }

 private:
  bool handle_offer(NodeId node);
  void start_job(std::size_t j);
  void on_node_failure(NodeId node);
  /// Kills job j's live AM; schedules the restart or marks it aborted.
  void on_am_crash(std::size_t j);
  /// Builds job j's successor attempt from the crashed one's baton.
  void restart_am(std::size_t j);
  void preemption_pass();
  std::uint32_t handle_preemption(std::uint32_t want);
  void trace_setup();
  /// Containers held per unit weight — the fair-share sort key.
  double weighted_usage(std::size_t j) const;

  Simulator* sim_;
  cluster::Cluster* cluster_;
  SharePolicy policy_;
  yarn::ResourceManager rm_;
  Rng rng_;

  struct Entry {
    std::unique_ptr<JobDriver> driver;
    SimTime submit_time = 0;
    double weight = 1.0;
    bool started = false;
    // Construction inputs, kept so a successor AM attempt can be built
    // (`layout` and `scheduler` must outlive the run — same contract as
    // submit()).
    const hdfs::FileLayout* layout = nullptr;
    SimParams params;
    Scheduler* scheduler = nullptr;
    // AM-crash recovery (populated only for journaled jobs).
    std::unique_ptr<recover::JobJournal> journal;
    bool recovering = false;  ///< Crashed; successor not yet started.
    bool am_aborted = false;  ///< Crashed with no attempts left.
    std::vector<AmAttemptRecord> attempt_records;
    /// Crashed attempts stay alive: their pending events are done()-gated
    /// and their task records feed result(job).
    std::vector<std::unique_ptr<JobDriver>> retired;
  };
  std::vector<Entry> jobs_;
  std::vector<std::pair<NodeId, SimTime>> failures_;
  /// (job, time) AM kills scheduled before start().
  std::vector<std::pair<std::size_t, SimTime>> am_crashes_;
  AmRecoveryConfig am_recovery_;
  /// Cluster-level ground truth: nodes already dead (applied once each).
  std::set<NodeId> dead_nodes_;
  obs::TraceSession* trace_ = nullptr;
  PreemptionConfig preemption_;
  obs::MetricsRegistry::Counter* ctr_preemptions_ = nullptr;
  std::uint64_t preemption_kills_ = 0;
  bool started_ = false;
  bool ran_ = false;
};

}  // namespace flexmr::mr
