// MultiJobCoordinator: several MapReduce jobs sharing one cluster.
//
// The coordinator owns the shared ResourceManager's offer handler and
// arbitrates every freed container between the submitted jobs:
//   * kFifo — the earliest-submitted unfinished job gets first refusal;
//     work-conserving (a job with nothing to launch passes the offer on),
//   * kFair — jobs are offered in ascending order of containers currently
//     held, converging to equal shares while all are busy.
//
// Each job keeps its own scheduler (so a FlexMap job and a stock job can
// share a cluster), its own heartbeat loop, and all single-job
// invariants; only slot arbitration is centralized — which is exactly how
// YARN splits responsibilities between the RM scheduler and per-job AMs.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "mr/driver.hpp"

namespace flexmr::mr {

enum class SharePolicy {
  kFifo,
  kFair,
};

class MultiJobCoordinator {
 public:
  MultiJobCoordinator(Simulator& sim, cluster::Cluster& cluster,
                      SharePolicy policy);

  /// Submits a job entering the cluster at `submit_time`. `layout` and
  /// `scheduler` must outlive run_all(). Returns the job's index.
  std::size_t submit(const hdfs::FileLayout& layout, JobSpec spec,
                     SimParams params, Scheduler& scheduler,
                     SimTime submit_time);

  /// Failure injection: node `node` dies at `time` — for *every* job
  /// (a NodeManager loss is cluster-wide). Call before run_all().
  void schedule_node_failure(NodeId node, SimTime time);

  /// Runs every submitted job to completion; results in submission order.
  std::vector<JobResult> run_all();

  yarn::ResourceManager& resource_manager() { return rm_; }

 private:
  bool handle_offer(NodeId node);

  Simulator* sim_;
  cluster::Cluster* cluster_;
  SharePolicy policy_;
  yarn::ResourceManager rm_;
  Rng rng_;

  struct Entry {
    std::unique_ptr<JobDriver> driver;
    SimTime submit_time = 0;
    bool started = false;
  };
  std::vector<Entry> jobs_;
  bool ran_ = false;
};

}  // namespace flexmr::mr
