// Post-hoc analysis of a JobResult: per-node utilization, straggler/tail
// decomposition, and wave statistics — the diagnosis toolkit behind the
// examples and EXPERIMENTS.md commentary.
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "mr/metrics.hpp"

namespace flexmr::mr {

struct NodeUtilization {
  NodeId node = 0;
  /// Slot-seconds busy with map / reduce / killed work during the job.
  SimDuration map_busy = 0;
  SimDuration reduce_busy = 0;
  SimDuration wasted = 0;  ///< Killed-task slot-seconds.
  MiB map_input = 0;       ///< Credited map input processed on this node.
  std::uint32_t slots = 0;

  /// Busy fraction of this node's slot capacity over [start, end).
  double utilization(SimDuration span) const {
    const double capacity = span * slots;
    return capacity > 0 ? (map_busy + reduce_busy + wasted) / capacity : 0;
  }
};

struct TailAnalysis {
  /// When each slot-count quantile of map work finished, as a fraction of
  /// the map phase: e.g. p50_at = 0.4 means half the map tasks were done
  /// at 40% of the phase.
  double p50_at = 0;
  double p90_at = 0;
  /// The last map task: node, size, and its runtime share of the phase.
  NodeId tail_node = 0;
  MiB tail_input = 0;
  double tail_share = 0;
};

struct WaveStats {
  /// Map tasks per slot, i.e. the number of waves the job effectively ran.
  double mean_waves = 0;
  /// Mean concurrently-running maps / total slots over the map phase.
  double mean_map_concurrency = 0;
};

/// Per-node busy/processed accounting over the whole job.
std::vector<NodeUtilization> node_utilization(
    const JobResult& result, const cluster::Cluster& cluster);

/// Same accounting from task records alone (node count inferred, `slots`
/// left 0 so utilization() is unavailable) — for exports that only have a
/// JobResult in hand.
std::vector<NodeUtilization> node_utilization(const JobResult& result);

/// Map-phase tail decomposition.
TailAnalysis analyze_tail(const JobResult& result);

/// Wave/occupancy statistics for the map phase.
WaveStats analyze_waves(const JobResult& result);

}  // namespace flexmr::mr
