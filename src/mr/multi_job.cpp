#include "mr/multi_job.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flexmr::mr {

namespace {
/// Trace-token spacing between a job's AM attempts: each attempt numbers
/// its tasks from 0 again (reduce tokens at ~1'000'000), so successors
/// record under disjoint sub-ranges of the job's kServiceTokenStride-wide
/// token window (room for 10 attempts per job before windows would touch).
constexpr std::uint64_t kAmAttemptTokenStride = 10'000'000ULL;
}  // namespace

const char* to_string(SharePolicy policy) {
  switch (policy) {
    case SharePolicy::kFifo:
      return "fifo";
    case SharePolicy::kFair:
      return "fair";
    case SharePolicy::kWeightedFair:
      return "weighted-fair";
  }
  return "unknown";
}

MultiJobCoordinator::MultiJobCoordinator(Simulator& sim,
                                         cluster::Cluster& cluster,
                                         SharePolicy policy)
    : sim_(&sim),
      cluster_(&cluster),
      policy_(policy),
      rm_(cluster),
      rng_(0x5eedc0ffee123ULL) {}

std::size_t MultiJobCoordinator::submit(const hdfs::FileLayout& layout,
                                        JobSpec spec, SimParams params,
                                        Scheduler& scheduler,
                                        SimTime submit_time, double weight) {
  if (!(weight > 0.0)) {
    throw ConfigError("job weight must be positive");
  }
  Entry entry;
  entry.driver = std::make_unique<JobDriver>(
      *sim_, *cluster_, layout, std::move(spec), params, scheduler, rm_);
  entry.submit_time = submit_time;
  entry.weight = weight;
  entry.layout = &layout;
  entry.params = params;
  entry.scheduler = &scheduler;
  jobs_.push_back(std::move(entry));
  const std::size_t j = jobs_.size() - 1;
  if (started_) {
    // Submit-while-running: the cluster is live, so register the job's
    // start directly (a submit time already in the past starts it now).
    sim_->schedule_at(std::max(submit_time, sim_->now()),
                      [this, j]() { start_job(j); });
  }
  return j;
}

void MultiJobCoordinator::schedule_node_failure(NodeId node, SimTime time) {
  FLEXMR_ASSERT_MSG(!started_, "schedule failures before start");
  if (node >= cluster_->num_nodes()) {
    throw ConfigError("failure injected on unknown node " +
                      std::to_string(node));
  }
  if (time < 0) {
    throw ConfigError("failure time must be non-negative");
  }
  failures_.emplace_back(node, time);
}

void MultiJobCoordinator::set_am_recovery(AmRecoveryConfig config) {
  FLEXMR_ASSERT_MSG(!started_, "set_am_recovery before start");
  if (config.max_attempts == 0) {
    throw ConfigError("AM max_attempts must be > 0");
  }
  if (!(config.restart_delay_s >= 0)) {
    throw ConfigError("AM restart delay must be non-negative");
  }
  am_recovery_ = config;
}

void MultiJobCoordinator::schedule_am_crash(std::size_t job, SimTime time) {
  if (job >= jobs_.size()) {
    throw ConfigError("AM crash scheduled for unknown job " +
                      std::to_string(job));
  }
  if (time < 0) {
    throw ConfigError("AM crash time must be non-negative");
  }
  Entry& entry = jobs_[job];
  if (!entry.journal) {
    // The journal must be writing from the job's first commit on, so the
    // first kill for a job has to beat the job's own start.
    FLEXMR_ASSERT_MSG(!entry.started,
                      "first schedule_am_crash must precede the job's start");
    entry.journal = std::make_unique<recover::JobJournal>();
    entry.driver->set_journal(entry.journal.get());
  }
  if (started_) {
    sim_->schedule_at(std::max(time, sim_->now()),
                      [this, job]() { on_am_crash(job); });
  } else {
    am_crashes_.emplace_back(job, time);
  }
}

void MultiJobCoordinator::set_trace(obs::TraceSession* trace) {
  FLEXMR_ASSERT_MSG(!started_, "set_trace before start");
  trace_ = trace;
}

void MultiJobCoordinator::set_preemption(PreemptionConfig config) {
  FLEXMR_ASSERT_MSG(!started_, "set_preemption before start");
  if (config.enabled) {
    if (!(config.period_s > 0)) {
      throw ConfigError("preemption period must be positive");
    }
    if (config.over_share_factor < 1.0) {
      throw ConfigError("over_share_factor must be >= 1");
    }
  }
  preemption_ = config;
}

void MultiJobCoordinator::start() {
  FLEXMR_ASSERT_MSG(!started_, "start is one-shot");
  started_ = true;

  cluster_->start(*sim_, rng_);
  rm_.set_offer_handler([this](NodeId node) { return handle_offer(node); });
  rm_.set_preemption_handler(
      [this](std::uint32_t want) { return handle_preemption(want); });
  trace_setup();

  for (const auto& [node, time] : failures_) {
    sim_->schedule_at(time, [this, node]() { on_node_failure(node); });
  }
  for (const auto& [job, time] : am_crashes_) {
    sim_->schedule_at(time, [this, job]() { on_am_crash(job); });
  }
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    sim_->schedule_at(jobs_[j].submit_time, [this, j]() { start_job(j); });
  }
  if (preemption_.enabled) {
    sim_->schedule_after(preemption_.period_s,
                         [this]() { preemption_pass(); });
  }
}

void MultiJobCoordinator::start_job(std::size_t j) {
  Entry& entry = jobs_[j];
  FLEXMR_ASSERT(!entry.started);
  entry.started = true;
  if (trace_ != nullptr) {
    TraceNamespace ns;
    ns.job_pid = obs::service_job_pid(j);
    ns.token_base = static_cast<std::uint64_t>(j) * obs::kServiceTokenStride;
    ns.label = "job " + std::to_string(j) + ": " + entry.driver->job().name;
    ns.register_gauges = false;  // Service-level gauges live on the
                                 // coordinator (see trace_setup).
    entry.driver->set_trace(trace_, std::move(ns));
  }
  entry.driver->start();
  // A job admitted after a crash still has the dead node in its static
  // layout; inform it before any offer can try to place work there.
  for (const NodeId node : dead_nodes_) {
    entry.driver->notify_node_failure(node);
  }
}

bool MultiJobCoordinator::handle_offer(NodeId node) {
  // Candidate jobs: started, unfinished — ordered by policy.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].started && !jobs_[j].driver->done()) order.push_back(j);
  }
  if (policy_ == SharePolicy::kFair) {
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return jobs_[a].driver->slots_in_use() <
                              jobs_[b].driver->slots_in_use();
                     });
  } else if (policy_ == SharePolicy::kWeightedFair) {
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return weighted_usage(a) < weighted_usage(b);
                     });
  }
  for (const std::size_t j : order) {
    if (jobs_[j].driver->offer(node)) return true;
  }
  return false;
}

double MultiJobCoordinator::weighted_usage(std::size_t j) const {
  return static_cast<double>(jobs_[j].driver->slots_in_use()) /
         jobs_[j].weight;
}

void MultiJobCoordinator::on_node_failure(NodeId node) {
  // Cluster-level, exactly once: repeated injections (or overlapping
  // schedules) of the same node are collapsed here, not forwarded N times.
  if (dead_nodes_.count(node) > 0) return;
  dead_nodes_.insert(node);
  if (!rm_.is_dead(node)) rm_.mark_dead(node);
  for (auto& entry : jobs_) {
    if (entry.started && !entry.driver->done()) {
      entry.driver->notify_node_failure(node);
    }
  }
  // One deferred re-offer for the whole cluster (drivers suppress theirs):
  // survivors pick up the reclaimed work in policy order.
  sim_->schedule_after(0.0, [this]() { rm_.offer_all(); });
}

void MultiJobCoordinator::on_am_crash(std::size_t j) {
  Entry& entry = jobs_[j];
  // Inert when the job is not live: not yet admitted, finished, already
  // down awaiting restart, or aborted — a crash cannot hit an AM that is
  // not running.
  if (!entry.started || entry.recovering || entry.driver->done()) return;
  entry.driver->crash_am();
  entry.attempt_records.push_back(entry.driver->result().am_attempts.back());
  if (entry.driver->am_attempt() >= am_recovery_.max_attempts) {
    // Stays done() with recovering false, so job_finished() reports it and
    // result(j) carries the abort reason.
    entry.am_aborted = true;
    return;
  }
  entry.recovering = true;
  sim_->schedule_after(am_recovery_.restart_delay_s,
                       [this, j]() { restart_am(j); });
}

void MultiJobCoordinator::restart_am(std::size_t j) {
  Entry& entry = jobs_[j];
  AmRecoveryBaton baton = entry.driver->release_recovery();
  entry.attempt_records.back().restart_time = sim_->now();
  entry.attempt_records.back().replayed_units =
      static_cast<std::uint64_t>(baton.recovered.replayed_units());

  JobSpec spec = entry.driver->job();  // Copy before retiring the owner.
  auto next = std::make_unique<JobDriver>(*sim_, *cluster_, *entry.layout,
                                          std::move(spec), entry.params,
                                          *entry.scheduler, rm_);
  const std::uint32_t attempt_no = baton.next_attempt;
  next->adopt_recovery(std::move(baton));
  if (trace_ != nullptr) {
    TraceNamespace ns;
    ns.job_pid = obs::service_job_pid(j);
    ns.token_base =
        static_cast<std::uint64_t>(j) * obs::kServiceTokenStride +
        kAmAttemptTokenStride * (attempt_no - 1);
    ns.label = "job " + std::to_string(j) + ": " + next->job().name;
    ns.register_gauges = false;
    next->set_trace(trace_, std::move(ns));
  }
  entry.retired.push_back(std::move(entry.driver));
  entry.driver = std::move(next);
  entry.recovering = false;
  // The successor re-registers through the shared offer path (handle_offer
  // reads entry.driver, so it picks the new attempt up immediately).
  // dead_nodes_ need no re-notification: restore_from_journal reconciles
  // every RM-dead node during start(), and with no injector they stay dead.
  entry.driver->start();
}

JobResult MultiJobCoordinator::result(std::size_t job) const {
  const Entry& entry = jobs_[job];
  JobResult merged = entry.driver->result();
  if (entry.retired.empty() && !entry.am_aborted) return merged;

  if (entry.am_aborted) {
    // crash_am leaves no abort record; the coordinator declared the job
    // dead when the attempt budget ran out.
    merged.aborted = true;
    merged.abort_reason =
        "AM crashed on attempt " +
        std::to_string(entry.driver->am_attempt()) + " of " +
        std::to_string(am_recovery_.max_attempts) +
        " (am_max_attempts exhausted)";
  }
  if (!entry.retired.empty()) {
    // Attempts are disjoint in time and internally chronological, so
    // concatenation preserves order.
    std::vector<TaskRecord> tasks;
    std::vector<faults::FaultEvent> events;
    for (const auto& old : entry.retired) {
      const JobResult& r = old->result();
      tasks.insert(tasks.end(), r.tasks.begin(), r.tasks.end());
      events.insert(events.end(), r.fault_events.begin(),
                    r.fault_events.end());
    }
    tasks.insert(tasks.end(), merged.tasks.begin(), merged.tasks.end());
    events.insert(events.end(), merged.fault_events.begin(),
                  merged.fault_events.end());
    merged.tasks = std::move(tasks);
    merged.fault_events = std::move(events);
    // The job began when attempt 1 did; AM downtime counts against JCT.
    const JobResult& first = entry.retired.front()->result();
    merged.submit_time = first.submit_time;
    merged.map_phase_start = first.map_phase_start;
    for (const auto& old : entry.retired) {
      merged.map_phase_end =
          std::max(merged.map_phase_end, old->result().map_phase_end);
    }
  }
  merged.am_attempts = entry.attempt_records;
  merged.redone_work_mib = 0;
  merged.redone_work_units = 0;
  for (const AmAttemptRecord& rec : entry.attempt_records) {
    merged.redone_work_mib += rec.wasted_mib;
    merged.redone_work_units += rec.wasted_units;
  }
  return merged;
}

void MultiJobCoordinator::preemption_pass() {
  // Weighted fair share of each active job; a job under its share with
  // work still pending files a demand, and the RM claws containers back
  // from whoever is furthest over share.
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].started && !jobs_[j].driver->done()) active.push_back(j);
  }
  if (active.size() >= 2) {
    double sum_w = 0.0;
    for (const std::size_t j : active) sum_w += jobs_[j].weight;
    const double total = static_cast<double>(rm_.total_slots());
    std::uint32_t deficit = 0;
    for (const std::size_t j : active) {
      const JobDriver& d = *jobs_[j].driver;
      const bool demand =
          d.unassigned_bus() > 0 || d.next_reducer_input() > 0;
      if (!demand) continue;
      const double share = total * jobs_[j].weight / sum_w;
      const double gap = std::floor(share) -
                         static_cast<double>(d.slots_in_use());
      if (gap > 0) deficit += static_cast<std::uint32_t>(gap);
    }
    if (deficit > 0) {
      rm_.preempt(std::min(deficit, preemption_.max_kills_per_round));
    }
  }
  sim_->schedule_after(preemption_.period_s, [this]() { preemption_pass(); });
}

std::uint32_t MultiJobCoordinator::handle_preemption(std::uint32_t want) {
  std::vector<std::size_t> active;
  double sum_w = 0.0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].started && !jobs_[j].driver->done()) {
      active.push_back(j);
      sum_w += jobs_[j].weight;
    }
  }
  if (active.size() < 2 || sum_w <= 0.0) return 0;
  // Most-over-share victims first.
  std::stable_sort(active.begin(), active.end(),
                   [this](std::size_t a, std::size_t b) {
                     return weighted_usage(a) > weighted_usage(b);
                   });
  const double total = static_cast<double>(rm_.total_slots());
  std::uint32_t reclaimed = 0;
  for (const std::size_t j : active) {
    if (reclaimed >= want) break;
    JobDriver& d = *jobs_[j].driver;
    const double share = total * jobs_[j].weight / sum_w;
    const double limit = share * preemption_.over_share_factor;
    while (reclaimed < want &&
           static_cast<double>(d.slots_in_use()) > limit) {
      if (!d.preempt_one_map()) break;  // Only reducers left: exempt.
      ++reclaimed;
      ++preemption_kills_;
      if (ctr_preemptions_ != nullptr) ctr_preemptions_->inc();
    }
  }
  return reclaimed;
}

void MultiJobCoordinator::trace_setup() {
  if (trace_ == nullptr) return;
  obs::EventTracer& tracer = trace_->tracer();
  tracer.set_clock([this]() { return sim_->now(); });
  if (!failures_.empty()) {
    // Drivers only name the fault track when they own an injector; the
    // coordinator's centralized crashes still record there.
    tracer.set_process_name(obs::kFaultsPid, "fault injector");
    tracer.set_thread_name(obs::kFaultsPid, 0, "ground truth");
  }

  // The metrics column layout freezes at the first sampled row, but jobs
  // register their instruments only when they start — possibly long after
  // sampling began. Pre-registering every driver instrument here (they
  // dedupe by name) pins the layout before the first row.
  auto& metrics = trace_->metrics();
  metrics.counter("maps_dispatched");
  metrics.counter("maps_completed");
  metrics.counter("maps_killed");
  metrics.counter("speculative_kills");
  metrics.counter("reduces_dispatched");
  metrics.counter("reduces_completed");
  metrics.counter("fetch_failures");
  metrics.counter("fault_events");
  metrics.counter("heartbeats");
  metrics.counter("am_restarts");
  metrics.counter("redone_work_units");
  ctr_preemptions_ = &metrics.counter("preemptions");
  metrics.histogram("map.total_runtime_s");
  metrics.histogram("map.effective_runtime_s");
  metrics.histogram("map.input_mib");
  metrics.histogram("reduce.total_runtime_s");
  metrics.histogram("reduce.input_mib");

  // Service-level gauges, registered once (drivers skip theirs in shared
  // sessions — gauges do not dedupe). The coordinator must outlive every
  // sample taken from the session.
  metrics.register_gauge("cluster_utilization", [this]() {
    const double total = static_cast<double>(rm_.total_slots());
    return total > 0 ? (total - static_cast<double>(rm_.total_free())) / total
                     : 0.0;
  });
  metrics.register_gauge("rm_free_containers", [this]() {
    return static_cast<double>(rm_.total_free());
  });
  metrics.register_gauge("active_jobs", [this]() {
    std::size_t active = 0;
    for (const auto& entry : jobs_) {
      if (entry.started && !entry.driver->done()) ++active;
    }
    return static_cast<double>(active);
  });
}

bool MultiJobCoordinator::all_done() const {
  // A recovering job's driver reads done() (the crashed attempt drained)
  // but its successor has not run yet — the workload is not finished.
  return std::all_of(jobs_.begin(), jobs_.end(), [](const Entry& e) {
    return e.started && e.driver->done() && !e.recovering;
  });
}

std::vector<JobResult> MultiJobCoordinator::run_all() {
  FLEXMR_ASSERT_MSG(!ran_ && !started_, "run_all is one-shot");
  FLEXMR_ASSERT_MSG(!jobs_.empty(), "no jobs submitted");
  ran_ = true;

  start();
  while (!all_done()) {
    if (!sim_->step()) {
      throw InvariantError("simulation ran dry with unfinished jobs");
    }
    if (trace_ != nullptr) trace_->metrics().maybe_sample(sim_->now());
  }
  if (trace_ != nullptr) trace_->metrics().sample_now(sim_->now());

  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    results.push_back(result(j));
  }
  return results;
}

}  // namespace flexmr::mr
