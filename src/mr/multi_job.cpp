#include "mr/multi_job.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexmr::mr {

MultiJobCoordinator::MultiJobCoordinator(Simulator& sim,
                                         cluster::Cluster& cluster,
                                         SharePolicy policy)
    : sim_(&sim),
      cluster_(&cluster),
      policy_(policy),
      rm_(cluster),
      rng_(0x5eedc0ffee123ULL) {}

std::size_t MultiJobCoordinator::submit(const hdfs::FileLayout& layout,
                                        JobSpec spec, SimParams params,
                                        Scheduler& scheduler,
                                        SimTime submit_time) {
  FLEXMR_ASSERT_MSG(!ran_, "submit before run_all");
  Entry entry;
  entry.driver = std::make_unique<JobDriver>(
      *sim_, *cluster_, layout, std::move(spec), params, scheduler, rm_);
  entry.submit_time = submit_time;
  jobs_.push_back(std::move(entry));
  return jobs_.size() - 1;
}

bool MultiJobCoordinator::handle_offer(NodeId node) {
  // Candidate jobs: started, unfinished — ordered by policy.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].started && !jobs_[j].driver->done()) order.push_back(j);
  }
  if (policy_ == SharePolicy::kFair) {
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return jobs_[a].driver->slots_in_use() <
                              jobs_[b].driver->slots_in_use();
                     });
  }
  for (const std::size_t j : order) {
    if (jobs_[j].driver->offer(node)) return true;
  }
  return false;
}

void MultiJobCoordinator::schedule_node_failure(NodeId node, SimTime time) {
  FLEXMR_ASSERT_MSG(!ran_, "schedule failures before run_all");
  for (auto& entry : jobs_) {
    entry.driver->schedule_node_failure(node, time);
  }
}

std::vector<JobResult> MultiJobCoordinator::run_all() {
  FLEXMR_ASSERT_MSG(!ran_, "run_all is one-shot");
  FLEXMR_ASSERT_MSG(!jobs_.empty(), "no jobs submitted");
  ran_ = true;

  cluster_->start(*sim_, rng_);
  rm_.set_offer_handler([this](NodeId node) { return handle_offer(node); });

  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    sim_->schedule_at(jobs_[j].submit_time, [this, j]() {
      jobs_[j].started = true;
      jobs_[j].driver->start();
    });
  }

  auto all_done = [this]() {
    return std::all_of(jobs_.begin(), jobs_.end(), [](const Entry& e) {
      return e.started && e.driver->done();
    });
  };
  while (!all_done()) {
    if (!sim_->step()) {
      throw InvariantError("simulation ran dry with unfinished jobs");
    }
  }

  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (const auto& entry : jobs_) {
    results.push_back(entry.driver->result());
  }
  return results;
}

}  // namespace flexmr::mr
