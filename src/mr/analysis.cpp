#include "mr/analysis.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexmr::mr {

namespace {

void accumulate_tasks(const JobResult& result,
                      std::vector<NodeUtilization>& stats) {
  for (const auto& task : result.tasks) {
    auto& node = stats[task.node];
    if (task.status == TaskStatus::kKilled) {
      node.wasted += task.total_runtime();
      continue;
    }
    if (task.kind == TaskKind::kMap) {
      node.map_busy += task.total_runtime();
      node.map_input += task.input_mib;
    } else {
      node.reduce_busy += task.total_runtime();
    }
  }
}

}  // namespace

std::vector<NodeUtilization> node_utilization(
    const JobResult& result, const cluster::Cluster& cluster) {
  std::vector<NodeUtilization> stats(cluster.num_nodes());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    stats[n].node = n;
    stats[n].slots = cluster.machine(n).slots();
  }
  accumulate_tasks(result, stats);
  return stats;
}

std::vector<NodeUtilization> node_utilization(const JobResult& result) {
  NodeId max_node = 0;
  for (const auto& task : result.tasks) {
    max_node = std::max(max_node, task.node);
  }
  std::vector<NodeUtilization> stats(result.tasks.empty() ? 0
                                                          : max_node + 1);
  for (NodeId n = 0; n < stats.size(); ++n) stats[n].node = n;
  accumulate_tasks(result, stats);
  return stats;
}

TailAnalysis analyze_tail(const JobResult& result) {
  TailAnalysis analysis;
  std::vector<const TaskRecord*> maps;
  for (const auto& task : result.tasks) {
    if (task.kind == TaskKind::kMap && task.credited()) {
      maps.push_back(&task);
    }
  }
  FLEXMR_ASSERT_MSG(!maps.empty(), "no credited map tasks to analyze");
  std::sort(maps.begin(), maps.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              return a->end_time < b->end_time;
            });
  const SimDuration phase = result.map_phase_runtime();
  const SimTime start = result.map_phase_start;
  auto at_fraction = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(maps.size() - 1));
    return phase > 0 ? (maps[idx]->end_time - start) / phase : 0.0;
  };
  analysis.p50_at = at_fraction(0.5);
  analysis.p90_at = at_fraction(0.9);
  const TaskRecord* last = maps.back();
  analysis.tail_node = last->node;
  analysis.tail_input = last->input_mib;
  analysis.tail_share =
      phase > 0 ? last->total_runtime() / phase : 0.0;
  return analysis;
}

WaveStats analyze_waves(const JobResult& result) {
  WaveStats stats;
  if (result.total_slots == 0) return stats;
  std::size_t maps = 0;
  double busy = 0;
  for (const auto& task : result.tasks) {
    if (task.kind != TaskKind::kMap) continue;
    if (task.credited()) ++maps;
    busy += task.total_runtime();  // killed copies occupied slots too
  }
  stats.mean_waves =
      static_cast<double>(maps) / static_cast<double>(result.total_slots);
  const SimDuration phase = result.map_phase_runtime();
  if (phase > 0) {
    stats.mean_map_concurrency =
        busy / (phase * static_cast<double>(result.total_slots));
  }
  return stats;
}

}  // namespace flexmr::mr
