// Job specification: the workload-facing description of one MapReduce job.
//
// Costs are expressed relative to the reference workload (wordcount = 1.0):
// a machine whose base_ips is 10 MiB/s processes cost-1.0 map input at
// 10 MiB/s and cost-2.0 input at 5 MiB/s. Data skew lives in the per-BU
// cost factors of the FileLayout, not here, so every scheduler sees the
// identical input.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace flexmr::mr {

struct JobSpec {
  std::string name = "job";
  MiB input_size = 1024.0;

  /// CPU cost per MiB of map input, relative to wordcount.
  double map_cost = 1.0;
  /// Intermediate bytes produced per map-input byte (0 = map-only).
  double shuffle_ratio = 0.2;
  /// CPU cost per MiB of reduce input, relative to wordcount's map cost.
  double reduce_cost = 0.5;

  /// Number of reduce tasks; 0 = one wave (cluster's total slots).
  std::uint32_t num_reducers = 0;
  /// Zipf exponent for reducer partition sizes; 0 = uniform partitions.
  double reduce_key_skew = 0.0;

  bool map_only() const { return shuffle_ratio <= 0.0; }
};

}  // namespace flexmr::mr
