#include "mr/metrics.hpp"

namespace flexmr::mr {

const char* to_string(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

const char* to_string(TaskStatus status) {
  switch (status) {
    case TaskStatus::kCompleted: return "completed";
    case TaskStatus::kPartialCompleted: return "partial";
    case TaskStatus::kKilled: return "killed";
    case TaskStatus::kLostOutput: return "lost-output";
    case TaskStatus::kFailed: return "failed";
  }
  return "?";
}

SimDuration JobResult::map_serial_runtime() const {
  SimDuration total = 0;
  for (const auto& task : tasks) {
    if (task.kind == TaskKind::kMap &&
        (task.status == TaskStatus::kCompleted ||
         task.status == TaskStatus::kPartialCompleted)) {
      total += task.total_runtime();
    }
  }
  return total;
}

double JobResult::efficiency() const {
  const SimDuration phase = map_phase_runtime();
  if (phase <= 0 || total_slots == 0) return 0.0;
  return map_serial_runtime() /
         (phase * static_cast<double>(total_slots));
}

double JobResult::mean_map_productivity() const {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& task : tasks) {
    if (task.kind == TaskKind::kMap &&
        task.status == TaskStatus::kCompleted) {
      sum += task.productivity();
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

SampleSet JobResult::map_runtimes() const {
  SampleSet set;
  for (const auto& task : tasks) {
    if (task.kind == TaskKind::kMap &&
        task.status == TaskStatus::kCompleted) {
      set.add(task.total_runtime());
    }
  }
  return set;
}

SimDuration JobResult::wasted_slot_time() const {
  SimDuration total = 0;
  for (const auto& task : tasks) {
    if (task.status == TaskStatus::kKilled ||
        task.status == TaskStatus::kLostOutput ||
        task.status == TaskStatus::kFailed) {
      total += task.total_runtime();
    }
  }
  return total;
}

std::size_t JobResult::count(TaskKind kind, TaskStatus status) const {
  std::size_t n = 0;
  for (const auto& task : tasks) {
    if (task.kind == kind && task.status == status) ++n;
  }
  return n;
}

std::size_t JobResult::map_tasks_launched() const {
  std::size_t n = 0;
  for (const auto& task : tasks) {
    if (task.kind == TaskKind::kMap) ++n;
  }
  return n;
}

}  // namespace flexmr::mr
