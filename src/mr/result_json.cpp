#include "mr/result_json.hpp"

#include "faults/fault_plan.hpp"
#include "mr/analysis.hpp"

namespace flexmr::mr {

void write_job_result(JsonWriter& writer, const JobResult& result,
                      const cluster::Cluster* cluster) {
  writer.begin_object();
  writer.field("schema", "flexmr.job_result.v1");
  writer.field("benchmark", result.benchmark);
  writer.field("scheduler", result.scheduler);
  writer.field("total_slots", result.total_slots);
  writer.field("seed", result.seed);
  writer.field("aborted", result.aborted);
  if (result.aborted) writer.field("abort_reason", result.abort_reason);
  if (!result.lost_blocks.empty()) {
    writer.key("lost_blocks").begin_array();
    for (const std::uint32_t block : result.lost_blocks) {
      writer.value(block);
    }
    writer.end_array();
  }

  writer.key("times").begin_object();
  writer.field("submit", result.submit_time);
  writer.field("map_phase_start", result.map_phase_start);
  writer.field("map_phase_end", result.map_phase_end);
  writer.field("finish", result.finish_time);
  writer.end_object();

  writer.key("metrics").begin_object();
  writer.field("jct", result.jct());
  writer.field("map_phase_runtime", result.map_phase_runtime());
  writer.field("map_serial_runtime", result.map_serial_runtime());
  writer.field("efficiency", result.efficiency());
  writer.field("mean_map_productivity", result.mean_map_productivity());
  writer.field("wasted_slot_time", result.wasted_slot_time());
  writer.field("map_tasks_launched",
               static_cast<std::uint64_t>(result.map_tasks_launched()));
  writer.field("reduce_tasks",
               static_cast<std::uint64_t>(
                   result.count(TaskKind::kReduce, TaskStatus::kCompleted)));
  writer.end_object();

  writer.key("sim").begin_object();
  writer.field("events_fired", result.sim_events_fired);
  writer.field("events_cancelled", result.sim_events_cancelled);
  writer.field("queue_peak", result.sim_queue_peak);
  writer.end_object();

  // Present only for AM-killable runs, so crash-free documents (and their
  // pinned golden hashes) stay byte-identical to builds without the
  // recovery subsystem.
  if (result.fault_plan.has_am_faults() || result.am_restarts > 0 ||
      !result.am_attempts.empty()) {
    writer.key("recovery").begin_object();
    writer.field("am_restarts",
                 static_cast<std::uint64_t>(result.am_restarts));
    writer.field("redone_work_mib", result.redone_work_mib);
    writer.field("redone_work_units", result.redone_work_units);
    writer.key("am_attempts").begin_array();
    for (const AmAttemptRecord& rec : result.am_attempts) {
      writer.begin_object();
      writer.field("attempt", static_cast<std::uint64_t>(rec.attempt));
      writer.field("crash_time", rec.crash_time);
      writer.field("restart_time", rec.restart_time);
      writer.field("wasted_mib", rec.wasted_mib);
      writer.field("wasted_units", rec.wasted_units);
      writer.field("replayed_units", rec.replayed_units);
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
  }

  // Present only for rs(k,m) runs: replication-policy documents (and the
  // pinned golden hashes) stay byte-identical to pre-erasure builds.
  if (result.storage.erasure()) {
    writer.key("storage").begin_object();
    writer.field("policy", "rs");
    writer.field("k", result.storage.rs_k);
    writer.field("m", result.storage.rs_m);
    writer.field("decode_mibps", result.storage.decode_mibps);
    writer.field("repair_bandwidth_mibps",
                 result.storage.repair_bandwidth_mibps);
    writer.field("storage_overhead",
                 result.storage.overhead(0 /* unused under rs */));
    writer.field("degraded_reads", result.degraded_reads);
    writer.field("parts_reconstructed", result.parts_reconstructed);
    writer.field("decode_mib", result.decode_mib);
    writer.field("repair_read_mib", result.repair_read_mib);
    writer.end_object();
  }

  const auto nodes = cluster ? node_utilization(result, *cluster)
                             : node_utilization(result);
  const SimDuration span = result.jct();
  writer.key("nodes").begin_array();
  for (const auto& node : nodes) {
    writer.begin_object();
    writer.field("node", node.node);
    writer.field("map_busy_slot_s", node.map_busy);
    writer.field("reduce_busy_slot_s", node.reduce_busy);
    writer.field("wasted_slot_s", node.wasted);
    writer.field("map_input_mib", node.map_input);
    if (cluster) {
      writer.field("slots", node.slots);
      writer.field("utilization", node.utilization(span));
    }
    writer.end_object();
  }
  writer.end_array();

  writer.key("fault_plan");
  faults::write_fault_plan(writer, result.fault_plan);
  writer.key("fault_events").begin_array();
  for (const auto& event : result.fault_events) {
    faults::write_fault_event(writer, event);
  }
  writer.end_array();

  writer.key("tasks").begin_array();
  for (const auto& task : result.tasks) {
    writer.begin_object();
    writer.field("id", static_cast<std::uint64_t>(task.id));
    writer.field("kind", to_string(task.kind));
    writer.field("status", to_string(task.status));
    writer.field("node", task.node);
    writer.field("speculative", task.speculative);
    writer.field("dispatch", task.dispatch_time);
    writer.field("compute_start", task.compute_start);
    writer.field("end", task.end_time);
    writer.field("input_mib", task.input_mib);
    writer.field("num_bus", task.num_bus);
    writer.field("local_fraction", task.local_fraction);
    writer.field("productivity", task.productivity());
    writer.end_object();
  }
  writer.end_array();

  writer.end_object();
}

std::string job_result_json(const JobResult& result) {
  JsonWriter writer;
  write_job_result(writer, result);
  return writer.str();
}

std::string job_result_json(const JobResult& result,
                            const cluster::Cluster& cluster) {
  JsonWriter writer;
  write_job_result(writer, result, &cluster);
  return writer.str();
}

}  // namespace flexmr::mr
