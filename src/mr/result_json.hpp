// Machine-readable JobResult export (schema "flexmr.job_result.v1"):
// job metadata, phase timestamps, the paper's derived metrics (JCT,
// efficiency Eq. 2, productivity Eq. 1, wasted slot time), per-node
// slot-second accounting, simulator counters, and the full task timeline.
//
// The CSV/Gantt exports in mr/trace.hpp stay as the human-facing view;
// this is the artifact layer every bench and regression check reads.
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "common/json.hpp"
#include "mr/metrics.hpp"

namespace flexmr::mr {

/// Streams one JobResult as a JSON object into `writer` (so callers can
/// embed it in a larger document). With a cluster, per-node entries also
/// carry slot counts and utilization; without one, slot-second sums only.
void write_job_result(JsonWriter& writer, const JobResult& result,
                      const cluster::Cluster* cluster = nullptr);

/// Standalone document forms.
std::string job_result_json(const JobResult& result);
std::string job_result_json(const JobResult& result,
                            const cluster::Cluster& cluster);

}  // namespace flexmr::mr
