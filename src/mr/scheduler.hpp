// Scheduler interface: the policy seam where stock Hadoop, LATE, SkewTune
// and FlexMap plug in.
//
// The JobDriver (playing YARN AppMaster + MRAppMaster JobImpl) owns all
// mechanism — task state machines, progress integration, BU accounting,
// metrics. A Scheduler only makes decisions:
//   * on_slot_free: a container is available on `node`; return what map
//     task (if any) to dispatch there,
//   * on_heartbeat / on_map_complete: observe progress,
//   * place_reducer: choose the node for each reduce task.
//
// Schedulers observe the cluster ONLY through this context (observed IPS,
// static specs, running-task progress) — never through ground-truth
// machine multipliers — mirroring what a real AM can know.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "hdfs/block_index.hpp"
#include "mr/job.hpp"
#include "mr/metrics.hpp"
#include "mr/params.hpp"
#include "recover/journal.hpp"

namespace flexmr::obs {
class EventTracer;
}

namespace flexmr {
class LaneSet;
}

namespace flexmr::mr {

/// Snapshot of one running (or starting) map task, as visible to an AM.
struct RunningMapInfo {
  TaskId id = kInvalidTask;
  NodeId node = kInvalidNode;
  MiB size_mib = 0;
  MiB bytes_read = 0;          ///< HDFS_BYTES_READ so far.
  double progress = 0;         ///< bytes_read / size_mib.
  SimTime dispatch_time = 0;
  bool computing = false;      ///< Past container/JVM startup.
  bool speculative = false;
  bool has_twin = false;       ///< A speculative copy of this task exists.
};

/// A map dispatch decision. Exactly one of the two forms:
///  * data task: `bus` non-empty (taken from the context's index),
///  * speculative copy: `speculative_of` set, `bus` empty.
struct MapLaunch {
  std::vector<BlockUnitId> bus;
  TaskId speculative_of = kInvalidTask;
  /// Extra pre-compute latency (SkewTune charges repartitioning here).
  SimDuration extra_startup_s = 0;

  bool is_speculative() const { return speculative_of != kInvalidTask; }
};

/// The driver-side services a scheduler may use. Implemented by JobDriver.
class DriverContext {
 public:
  virtual ~DriverContext() = default;

  virtual SimTime now() const = 0;
  virtual const JobSpec& job() const = 0;
  virtual const SimParams& params() const = 0;
  virtual const hdfs::FileLayout& layout() const = 0;

  /// Unprocessed-BU bookkeeping; taking BUs here commits them to the task
  /// the scheduler is about to return.
  virtual hdfs::BlockLocationIndex& index() = 0;

  virtual std::uint32_t num_nodes() const = 0;
  /// Static machine description (slot count, model). Observable: an AM
  /// knows the hardware inventory but not current contention.
  virtual const cluster::MachineSpec& machine_spec(NodeId node) const = 0;
  virtual std::uint32_t free_slots(NodeId node) const = 0;
  virtual std::uint32_t total_free_slots() const = 0;
  virtual std::uint32_t total_slots() const = 0;

  virtual std::vector<RunningMapInfo> running_maps() const = 0;

  /// Worker threads of the sharded engine, or null on the classic engine
  /// (and when the sharded engine runs threadless). Decision kernels may
  /// fan *pure per-element computation* out over it — results must be
  /// combined in element order and must not depend on cross-element FP
  /// accumulation (see DESIGN.md §13.4); shared driver state stays
  /// control-lane-only (LaneSet::on_worker() guards the mutating paths).
  virtual LaneSet* lane_set() const { return nullptr; }

  /// Observed input-processing speed of `node` (Eq. 3): the average IPS
  /// reported by the node's containers in the most recent heartbeat round,
  /// falling back to the last known value when the node is idle. nullopt
  /// until the node has reported at least once.
  virtual std::optional<MiBps> observed_ips(NodeId node) const = 0;

  /// Fraction of the job's BUs already processed.
  virtual double map_phase_progress() const = 0;
  virtual std::size_t total_bus() const = 0;
  virtual std::size_t processed_bus() const = 0;
  /// BUs neither processed nor bound to a running task (== index()'s
  /// unprocessed count, readable from const observers).
  virtual std::size_t unassigned_bus() const = 0;

  /// Reduce-task count of this job; 0 until the reduce phase is planned
  /// (at map-phase end).
  virtual std::uint32_t total_reducers() const = 0;

  /// Input size of the reduce task the next accepted offer would receive
  /// (0 when none is pending), and the mean reducer input. Key-skewed
  /// jobs have a heavy head; placement policies use the ratio to keep
  /// outsized reducers off slow nodes.
  virtual MiB next_reducer_input() const = 0;
  virtual MiB mean_reducer_input() const = 0;

  /// False once `node` has failed (failure injection); a dead node is
  /// never offered and holds no unprocessed replicas worth chasing.
  /// A rejoined node is alive again.
  virtual bool node_alive(NodeId node) const = 0;

  /// True while the AM has blacklisted `node` (too many failed attempts
  /// there). Blacklisted nodes are not offered; schedulers can use this
  /// to avoid planning work for them. Default false: the base simulator
  /// has no blacklist.
  virtual bool node_blacklisted(NodeId node) const {
    (void)node;
    return false;
  }

  /// True while `block` has at least one live replica. A block whose every
  /// holder is down cannot be read — schedulers must not bind its BUs (the
  /// driver is either aborting with DataLossError or waiting for a planned
  /// rejoin). Default true: without fault injection all replicas live.
  virtual bool block_readable(std::uint32_t block) const {
    (void)block;
    return true;
  }

  /// The run's tracing sink, or nullptr when tracing is disabled (the
  /// default). Schedulers may emit spans/instants describing their
  /// decisions (sizing inputs, speculation verdicts, mitigation plans);
  /// they must only *write* to it — a tracer is never an input to policy.
  virtual obs::EventTracer* tracer() const { return nullptr; }

  /// The job's AM-recovery journal, or nullptr (the default) when AM
  /// crash recovery is not armed. Schedulers append opaque SchedulerNotes
  /// at their own commit points (FlexMap journals sizing-unit changes);
  /// after an AM restart the notes come back through on_recovery.
  virtual recover::JobJournal* journal() const { return nullptr; }

  /// Stops a running map task (SkewTune mitigation). Its consumed BU
  /// prefix is credited as PartialCompleted; the unread suffix is returned
  /// AND put back into the index for re-taking. The task's slot is freed
  /// (re-offered on the next offer cycle, not synchronously).
  virtual std::vector<BlockUnitId> kill_and_reclaim(TaskId task) = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once before the first offer.
  virtual void on_job_start(DriverContext& ctx) { (void)ctx; }

  /// Called INSTEAD of on_job_start on a restarted AM attempt. The driver
  /// has already replayed `recovered` into its own state (committed
  /// maps/reduces, attempt budgets, blacklist); the scheduler rebuilds its
  /// policy state to match — the default rebuilds from scratch via
  /// on_job_start, which is correct for policies whose bookkeeping is
  /// derivable from the context (pending work, progress). Schedulers with
  /// journaled notes override this to additionally replay them.
  virtual void on_recovery(DriverContext& ctx,
                           const recover::RecoveredState& recovered) {
    (void)recovered;
    on_job_start(ctx);
  }

  /// A free container on `node`: return a dispatch or nullopt to decline.
  virtual std::optional<MapLaunch> on_slot_free(DriverContext& ctx,
                                                NodeId node) = 0;

  /// The driver assigned `task` to the launch just returned from
  /// on_slot_free (lets a scheduler key per-task state by TaskId).
  virtual void on_map_dispatch(DriverContext& ctx, TaskId task, NodeId node) {
    (void)ctx;
    (void)task;
    (void)node;
  }

  /// A map task finished (status Completed or PartialCompleted).
  virtual void on_map_complete(DriverContext& ctx, const TaskRecord& rec) {
    (void)ctx;
    (void)rec;
  }

  /// Heartbeat round for `node` just updated observed_ips(node).
  virtual void on_heartbeat(DriverContext& ctx, NodeId node) {
    (void)ctx;
    (void)node;
  }

  /// `node` failed. Its running tasks were killed, and `reclaimed` BUs —
  /// from those tasks plus any completed maps whose (unconsumed) output
  /// lived there — have been returned to the context's index. A scheduler
  /// that keeps its own pending-work bookkeeping must fold them back in.
  virtual void on_node_failed(DriverContext& ctx, NodeId node,
                              const std::vector<BlockUnitId>& reclaimed) {
    (void)ctx;
    (void)node;
    (void)reclaimed;
  }

  /// A single map attempt on `node` died (container-launch failure or
  /// transient JVM crash); the node itself is still alive. `reclaimed`
  /// BUs were returned to the index and will be retried (up to
  /// max_attempts). Like on_node_failed, bookkeeping schedulers must
  /// fold them back into their pending-work structures.
  virtual void on_attempt_failed(DriverContext& ctx, NodeId node,
                                 const std::vector<BlockUnitId>& reclaimed) {
    (void)ctx;
    (void)node;
    (void)reclaimed;
  }

  /// A previously-failed `node` re-registered with the RM: its slots are
  /// restored and it is about to be offered again. Any speed estimate or
  /// per-node pacing state from before the crash belongs to the old
  /// incarnation and should be discarded.
  virtual void on_node_recovered(DriverContext& ctx, NodeId node) {
    (void)ctx;
    (void)node;
  }

  /// The NameNode's re-replication pipeline landed a copy of `block` on
  /// `node`: the block's unprocessed BUs just joined that node's local
  /// pool (already reflected in the context's index). Schedulers that
  /// precompute node→block locality must fold the new replica in.
  virtual void on_block_rehosted(DriverContext& ctx, std::uint32_t block,
                                 NodeId node) {
    (void)ctx;
    (void)block;
    (void)node;
  }

  /// During the reduce phase a container freed on `node` is offered for
  /// the next pending reduce task; return false to leave the slot idle
  /// (it will be re-offered on later cluster events / heartbeats).
  /// Stock Hadoop accepts everywhere — reducers flow to whichever
  /// container frees first. FlexMap overrides this with the paper's
  /// c_i^2 acceptance sampling (§III-F).
  virtual bool accept_reducer(DriverContext& ctx, NodeId node) {
    (void)ctx;
    (void)node;
    return true;
  }
};

}  // namespace flexmr::mr
