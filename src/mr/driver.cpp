#include "mr/driver.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr::mr {

namespace {
constexpr TaskId kReduceIdBase = 1'000'000;
/// Below this many live tasks the snapshot fan-out costs more than the
/// scan; matches the lane drain threshold (ShardState::kParallelDrainMin).
constexpr std::size_t kParallelSnapshotMin = 2048;
}

JobDriver::JobDriver(Simulator& sim, cluster::Cluster& cluster,
                     const hdfs::FileLayout& layout, JobSpec job,
                     SimParams params, Scheduler& scheduler)
    : sim_(&sim),
      cluster_(&cluster),
      layout_(&layout),
      job_(std::move(job)),
      params_(params),
      scheduler_(&scheduler),
      index_(layout, cluster.num_nodes()),
      owned_rm_(std::make_unique<yarn::ResourceManager>(cluster)),
      rm_(*owned_rm_),
      rng_(params.seed ^ 0xf1e2d3c4b5a69788ULL),
      intermediate_on_node_(cluster.num_nodes(), 0.0),
      round_ips_(cluster.num_nodes()),
      pending_ips_samples_(cluster.num_nodes()) {
  FLEXMR_ASSERT_MSG(!layout.bus.empty(), "job has no input");
}

JobDriver::JobDriver(Simulator& sim, cluster::Cluster& cluster,
                     const hdfs::FileLayout& layout, JobSpec job,
                     SimParams params, Scheduler& scheduler,
                     yarn::ResourceManager& shared_rm)
    : sim_(&sim),
      cluster_(&cluster),
      layout_(&layout),
      job_(std::move(job)),
      params_(params),
      scheduler_(&scheduler),
      index_(layout, cluster.num_nodes()),
      rm_(shared_rm),
      rng_(params.seed ^ 0xf1e2d3c4b5a69788ULL),
      intermediate_on_node_(cluster.num_nodes(), 0.0),
      round_ips_(cluster.num_nodes()),
      pending_ips_samples_(cluster.num_nodes()) {
  FLEXMR_ASSERT_MSG(!layout.bus.empty(), "job has no input");
}

JobDriver::~JobDriver() {
  for (NodeId node = 0; node < speed_listener_ids_.size(); ++node) {
    cluster_->machine(node).remove_speed_listener(speed_listener_ids_[node]);
  }
}

void JobDriver::start() {
  FLEXMR_ASSERT_MSG(!started_, "JobDriver is one-shot");
  started_ = true;

  // Fold legacy one-shot failures into the plan (oracle-detected crashes)
  // and validate the whole thing against this cluster before any state
  // changes.
  for (const auto& [node, time] : planned_failures_) {
    plan_.crashes.push_back(
        faults::NodeCrash{node, time, std::nullopt, /*silent=*/false});
  }
  planned_failures_.clear();
  plan_.validate(cluster_->num_nodes());
  if (plan_.has_am_faults() && journal_ == nullptr) {
    throw ConfigError(
        "FaultPlan arms AM crashes but no recovery journal is installed; "
        "route the run through the recovery runner");
  }

  result_.benchmark = job_.name;
  result_.scheduler = scheduler_->name();
  result_.total_slots = rm_.total_slots();
  result_.seed = params_.seed;
  result_.fault_plan = plan_;
  result_.storage = layout_->storage;
  result_.submit_time = sim_->now();
  result_.map_phase_start = sim_->now();
  result_.am_restarts = am_attempt_ - 1;

  bu_attempt_failures_.assign(layout_->bus.size(), 0);
  node_failed_attempts_.assign(cluster_->num_nodes(), 0);
  blacklisted_.assign(cluster_->num_nodes(), 0);
  bu_done_.assign(layout_->bus.size(), 0);

  if (recovered_) {
    // Attempt-failure budgets and the blacklist they feed survive the AM:
    // a restarted AM must not grant a flaky BU or node a fresh retry
    // allowance (that would unbound the job's failure tolerance).
    for (const auto& [bu, n] : recovered_->bu_attempt_failures) {
      bu_attempt_failures_[bu] = n;
    }
    // (Per-reducer budgets are folded in by restore_from_journal once the
    // reduce plan exists and the vector is sized.)
    for (const auto& [node, n] : recovered_->node_failed_attempts) {
      node_failed_attempts_[node] = n;
      if (n >= plan_.blacklist_threshold) blacklisted_[node] = 1;
    }
  }

  if (!plan_.empty()) {
    // The live NameNode view only matters when nodes can die; without
    // faults the static layout is already the truth. A recovered attempt
    // adopts its predecessor's (the replica map must not forget deaths);
    // only the handlers are re-pointed at this driver.
    if (!replica_mgr_) {
      replica_mgr_ = std::make_unique<hdfs::ReplicaManager>(
          *layout_, cluster_->num_nodes());
      if (plan_.re_replication) {
        // Under rs(k,m) the pipeline reconstructs parts instead of copying
        // replicas; its budget comes from the storage policy so repair
        // traffic is priced against PR 4's re-replication knob.
        replica_mgr_->enable_re_replication(
            *sim_, layout_->storage.erasure()
                       ? layout_->storage.repair_bandwidth_mibps
                       : plan_.re_replication_bandwidth_mibps);
      }
    }
    replica_mgr_->set_copy_complete_handler(
        [this](std::uint32_t block, NodeId target) {
          on_block_re_replicated(block, target);
        });
    if (!injector_) {
      injector_ = std::make_unique<faults::FaultInjector>(plan_, params_.seed);
    }
    injector_->set_crash_handler([this](NodeId node, bool silent) {
      if (done_) return;
      record_fault(faults::FaultEventType::kCrash, node);
      if (silent) {
        on_node_silent(node);
      } else {
        fail_node(node);
      }
    });
    injector_->set_rejoin_handler(
        [this](NodeId node) { on_node_rejoin(node); });
    injector_->set_disk_fault_handler(
        [this](NodeId node, std::uint32_t disk) {
          on_disk_fault(node, disk);
        });
    if (!recovered_) {
      // A restarted AM does NOT reseed liveness: heartbeats missed during
      // AM downtime count toward silent-crash expiry, exactly as a real
      // RM's NM-liveness view keeps running while the AM is down.
      for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
        rm_.record_heartbeat(node, sim_->now());
      }
    }
  } else if (replica_mgr_) {
    // An adopted NameNode view with an empty local plan: multi-job drivers
    // learn of node deaths from the coordinator (which creates the replica
    // map lazily), so a successor attempt can inherit one without owning an
    // injector. Only the handler is re-pointed — building an injector from
    // the empty plan would make restore_from_journal treat every RM-dead
    // node as rejoined.
    replica_mgr_->set_copy_complete_handler(
        [this](std::uint32_t block, NodeId target) {
          on_block_re_replicated(block, target);
        });
  }

  if (owned_rm_) {
    // Single-job mode: this driver owns interference and the offer loop.
    cluster_->start(*sim_, rng_);
    rm_.set_offer_handler(
        [this](NodeId node) { return handle_offer(node); });
  }
  speed_listener_ids_.reserve(cluster_->num_nodes());
  for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
    speed_listener_ids_.push_back(cluster_->machine(node).add_speed_listener(
        [this](NodeId n, MiBps) { on_speed_change(n); }));
  }

  if (recovered_) restore_from_journal();

  trace_setup();

  if (recovered_) {
    record_fault(faults::FaultEventType::kAmRestart, kInvalidNode,
                 kInvalidTask, am_attempt_);
    scheduler_->on_recovery(*this, *recovered_);
  } else {
    scheduler_->on_job_start(*this);
  }

  // The injector is armed exactly once per job: a recovered attempt
  // inherits its predecessor's armed injector (pending crash/rejoin
  // events and exhausted probability draws included).
  if (injector_ && am_attempt_ == 1) injector_->arm(*sim_, *cluster_);

  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
  sim_->schedule_after(params_.heartbeat_period_s, [this]() { heartbeat(); });
}

JobResult JobDriver::run() {
  FLEXMR_ASSERT_MSG(owned_rm_ != nullptr,
                    "run() is for single-job mode; with a shared RM use "
                    "start() and step the simulator yourself");
  start();
  while (!done_) {
    if (!sim_->step()) {
      throw InvariantError("simulation ran dry before job completion");
    }
    // Pull-based sampling: the registry emits rows for cadence ticks the
    // simulator just crossed. Never schedules events, so the event-queue
    // counters in the golden hashes stay identical with tracing on/off.
    if (trace_ != nullptr) trace_->metrics().maybe_sample(sim_->now());
  }
  if (result_.aborted) {
    if (!result_.lost_blocks.empty()) {
      throw DataLossError(result_.abort_reason, result_);
    }
    throw JobAbortedError(result_.abort_reason, result_);
  }
  return result_;
}

// ---------------------------------------------------------------------------
// Map phase
// ---------------------------------------------------------------------------

bool JobDriver::handle_offer(NodeId node) {
  if (done_) return false;
  if (node_blacklisted(node)) return false;
  if (!map_phase_done_) {
    auto launch = scheduler_->on_slot_free(*this, node);
    if (launch) {
      dispatch_map(node, std::move(*launch));
      return true;
    }
    return false;
  }
  return dispatch_reduce(node);
}

void JobDriver::dispatch_map(NodeId node, MapLaunch launch) {
  auto task = std::make_unique<MapTask>();
  task->id = static_cast<TaskId>(map_tasks_.size());
  task->node = node;
  task->dispatch_time = sim_->now();

  if (launch.is_speculative()) {
    FLEXMR_ASSERT_MSG(launch.bus.empty(),
                      "speculative launch must not carry its own BUs");
    FLEXMR_ASSERT(launch.speculative_of < map_tasks_.size());
    MapTask& original = *map_tasks_[launch.speculative_of];
    FLEXMR_ASSERT_MSG(original.phase != TaskPhase::kDone,
                      "cannot speculate a finished task");
    FLEXMR_ASSERT_MSG(original.twin == kInvalidTask,
                      "task already has a speculative copy");
    FLEXMR_ASSERT_MSG(!original.speculative,
                      "cannot speculate a speculative copy");
    task->bus = original.bus;
    task->speculative = true;
    task->owns_bus = false;  // the original owns the list until it dies
    task->twin = original.id;
    original.twin = task->id;
  } else {
    FLEXMR_ASSERT_MSG(!launch.bus.empty(), "map launch with no input");
    task->bus = std::move(launch.bus);
    for (const BlockUnitId bu : task->bus) {
      FLEXMR_ASSERT_MSG(index_.taken(bu),
                        "launched BU was not taken from the index");
    }
  }

  const bool erasure = layout_->storage.erasure();
  // A part holder serves only its own 1/k of the stripe from local disk;
  // the other k-1 parts come over the network regardless of placement.
  const double part_share = erasure ? 1.0 / layout_->storage.rs_k : 1.0;
  const bool disk_windows = !plan_.disk_degradations.empty();
  MiB local = 0;
  MiB degraded = 0;
  double work = 0;
  for (const BlockUnitId bu : task->bus) {
    const auto& unit = layout_->bus[bu];
    task->size += unit.size;
    work += unit.size * unit.cost;
    // Locality against the *live* replica set when the NameNode is live:
    // a re-replicated copy makes the BU local to its new host, a dead
    // holder no longer counts.
    bool holds = false;
    if (replica_mgr_) {
      holds = replica_mgr_->holds_live(unit.block, node);
    } else {
      const auto& replicas = layout_->replicas_of(bu);
      holds = std::find(replicas.begin(), replicas.end(), node) !=
              replicas.end();
    }
    if (holds) {
      if (part_share != 1.0 || disk_windows) {
        // A degraded disk serves its resident part/replica below media
        // speed; the shortfall reads remotely, so the BU simply loses that
        // much locality credit for the window's duration.
        local += unit.size * part_share *
                 plan_.disk_degradation_factor(
                     node,
                     hdfs::ReplicaManager::disk_of(unit.block, node,
                                                   plan_.disks_per_node),
                     sim_->now());
      } else {
        local += unit.size;
      }
    }
    // A stripe with dead parts still decodes from any k survivors, but the
    // reader pays the reconstruction cost below.
    if (erasure && replica_mgr_ &&
        replica_mgr_->live_holder_count(unit.block) <
            layout_->storage.total_parts()) {
      degraded += unit.size;
    }
  }
  task->avg_cost = work / task->size;
  task->local_fraction = local / task->size;
  if (params_.exec_noise_sigma > 0) {
    const double sigma = params_.exec_noise_sigma;
    task->exec_noise = std::exp(-sigma * sigma / 2.0 +
                                sigma * rng_.normal());
  }

  if (injector_) {
    if (injector_->draw_launch_failure(node)) {
      task->planned_fault = PlannedFault::kLaunchFail;
    } else if (injector_->draw_attempt_failure(node)) {
      task->planned_fault = PlannedFault::kAttemptFail;
      task->fail_frac = injector_->draw_failure_fraction();
    }
  }

  const TaskId id = task->id;
  SimDuration decode_s = 0;
  if (degraded > 0) {
    // Degraded read: fetch any k surviving parts and decode the missing
    // ones before compute starts — the cost lands in the task's startup
    // and is therefore visible in JCT.
    decode_s = degraded / layout_->storage.decode_mibps;
    ++result_.degraded_reads;
    result_.decode_mib += degraded;
    if (ctr_degraded_reads_) ctr_degraded_reads_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant({obs::node_pid(node), 0}, "degraded-read", "fault",
                       sim_->now(),
                       {{"task", id},
                        {"mib", degraded},
                        {"decode_s", decode_s}});
    }
  }
  const SimDuration startup = params_.container_alloc_s +
                              params_.jvm_startup_s +
                              launch.extra_startup_s + decode_s;
  if (injector_ && !injector_->responsive(node)) {
    // Dispatched onto a silently-dead node (the AM has not noticed yet):
    // the container never comes up. The task freezes in kStarting until
    // heartbeat expiry declares the node lost and reclaims its work.
  } else if (task->planned_fault == PlannedFault::kLaunchFail) {
    // Container/JVM timers are node-owned: on the sharded engine they live
    // on the node's lane (a placement hint only — fire order is global).
    task->pending_event = sim_->schedule_on_after(
        sim_->lane_for_node(node), params_.container_alloc_s,
        [this, id]() { map_attempt_fail(id); });
  } else {
    task->pending_event =
        sim_->schedule_on_after(sim_->lane_for_node(node), startup,
                                [this, id]() { map_compute_start(id); });
  }

  ++running_map_count_;
  map_tasks_.push_back(std::move(task));
  live_map_ids_.push_back(id);  // ids are dispatch-ordered, so this stays
                                // ascending without a sort
  if (tracer_ != nullptr) trace_map_begin(*map_tasks_[id]);
  scheduler_->on_map_dispatch(*this, id, node);
}

double JobDriver::map_rate(const MapTask& task) const {
  const double remote_factor =
      1.0 + params_.remote_read_penalty * (1.0 - task.local_fraction);
  return cluster_->machine(task.node).effective_ips() /
         (job_.map_cost * task.avg_cost * remote_factor * task.exec_noise);
}

void JobDriver::map_compute_start(TaskId id) {
  MapTask& task = *map_tasks_[id];
  task.phase = TaskPhase::kComputing;
  task.compute_start = sim_->now();
  task.integrator.emplace(task.size, map_rate(task), sim_->now());
  if (tracer_ != nullptr) {
    tracer_->task_child_end(ttok(id), task.compute_start);
    tracer_->task_child_begin(ttok(id), "compute", task.compute_start,
                              {{"rate_mibps", map_rate(task)}});
  }
  if (task.planned_fault == PlannedFault::kAttemptFail) {
    // The attempt dies fail_frac of the way to its projected completion
    // (wall-clock moment — later speed changes re-rate the integrator but
    // do not move the death).
    const auto eta = task.integrator->eta(sim_->now());
    FLEXMR_ASSERT(eta.has_value());
    const SimTime fail_at =
        sim_->now() + task.fail_frac * (*eta - sim_->now());
    task.pending_event =
        sim_->schedule_on(sim_->lane_for_node(task.node), fail_at,
                          [this, id]() { map_attempt_fail(id); });
    return;
  }
  reschedule_map_completion(task);
}

void JobDriver::reschedule_map_completion(MapTask& task) {
  if (task.pending_event != kInvalidEvent) {
    sim_->cancel(task.pending_event);
    task.pending_event = kInvalidEvent;
  }
  const auto eta = task.integrator->eta(sim_->now());
  FLEXMR_ASSERT_MSG(eta.has_value(), "map task stalled at zero rate");
  const TaskId id = task.id;
  task.pending_event =
      sim_->schedule_on(sim_->lane_for_node(task.node), *eta,
                        [this, id]() { map_complete(id); });
}

void JobDriver::record_map(const MapTask& task, TaskStatus status,
                           MiB consumed, std::uint32_t credited_bus) {
  TaskRecord rec;
  rec.id = task.id;
  rec.node = task.node;
  rec.kind = TaskKind::kMap;
  rec.status = status;
  rec.speculative = task.speculative;
  rec.dispatch_time = task.dispatch_time;
  rec.compute_start = task.compute_start;
  rec.end_time = sim_->now();
  rec.input_mib = consumed;
  rec.num_bus = credited_bus;
  rec.local_fraction = task.local_fraction;
  rec.phase_progress_at_end = map_phase_progress();
  result_.map_phase_end = std::max(result_.map_phase_end, rec.end_time);
  result_.tasks.push_back(rec);
}

void JobDriver::map_complete(TaskId id) {
  MapTask& task = *map_tasks_[id];
  FLEXMR_ASSERT(task.phase == TaskPhase::kComputing);
  task.phase = TaskPhase::kDone;
  task.pending_event = kInvalidEvent;
  --running_map_count_;

  // NOTE: rm_.release / kill_map below can cascade into dispatch_map, which
  // may reallocate map_tasks_ — copy what we need before any of them.
  const NodeId node = task.node;
  const TaskId twin_id = task.twin;

  // The winner credits the BUs; a twin (original or copy) is killed now.
  task.credited = true;
  processed_bus_ += task.bus.size();
  for (const BlockUnitId bu : task.bus) bu_done_[bu] = 1;
  intermediate_on_node_[node] += task.size * job_.shuffle_ratio;
  // Commit point: the credited BU set is durable from here — an AM crash
  // after this append replays the map instead of re-running it.
  if (journal_ != nullptr) {
    journal_->record_map_commit(id, node, task.bus, task.size);
  }
  record_map(task, TaskStatus::kCompleted, task.size,
             static_cast<std::uint32_t>(task.bus.size()));
  const TaskRecord completed_rec = result_.tasks.back();
  if (tracer_ != nullptr) {
    tracer_->task_end(ttok(id), sim_->now(),
                      {{"status", "completed"},
                       {"productivity", completed_rec.productivity()}});
    ctr_maps_completed_->inc();
    auto& metrics = trace_->metrics();
    metrics.histogram("map.total_runtime_s")
        .record(completed_rec.total_runtime());
    metrics.histogram("map.effective_runtime_s")
        .record(completed_rec.effective_runtime());
    metrics.histogram("map.input_mib").record(completed_rec.input_mib);
  }

  // IPS sample at completion, folded into the node's next heartbeat round
  // (tasks shorter than a heartbeat would otherwise never report). We use
  // the task's *effective* runtime — Eq. 3 divides by total attempt time,
  // but for the 8 MB tasks FlexMap starts with that denominator is
  // dominated by container/JVM startup and would measure overhead, not
  // machine speed; the AM can observe attempt-start timestamps, so the
  // effective-runtime variant is equally implementable.
  if (completed_rec.effective_runtime() > 0) {
    pending_ips_samples_[node].push_back(task.size /
                                         completed_rec.effective_runtime());
  }

  if (twin_id != kInvalidTask) {
    MapTask& twin = *map_tasks_[twin_id];
    map_tasks_[id]->twin = kInvalidTask;
    twin.twin = kInvalidTask;
    if (twin.phase != TaskPhase::kDone) kill_map(twin_id, TaskStatus::kKilled);
  }

  scheduler_->on_map_complete(*this, completed_rec);

  if (processed_bus_ == layout_->bus.size() && !map_phase_done_) {
    finish_map_phase();
  }
  rm_.release(node);
}

void JobDriver::kill_map(TaskId id, TaskStatus final_status) {
  MapTask& task = *map_tasks_[id];
  FLEXMR_ASSERT(task.phase != TaskPhase::kDone);
  if (task.pending_event != kInvalidEvent) {
    sim_->cancel(task.pending_event);
    task.pending_event = kInvalidEvent;
  }
  task.phase = TaskPhase::kDone;
  --running_map_count_;
  const NodeId node = task.node;
  const MiB consumed =
      task.integrator ? task.integrator->done(sim_->now()) : 0.0;
  record_map(task, final_status, consumed, 0);
  if (tracer_ != nullptr) {
    trace_task_closed(id, to_string(final_status), "twin finished first",
                      consumed);
    ctr_speculative_kills_->inc();
  }
  rm_.release(node);  // `task` may dangle past this point
}

std::vector<BlockUnitId> JobDriver::kill_and_reclaim(TaskId id) {
  return reclaim_map(id, "skewtune reclaim");
}

bool JobDriver::preempt_one_map() {
  if (done_ || running_map_count_ == 0) return false;
  // Victim: the youngest running map — least sunk work, and under
  // FlexMap's ramp the smallest task. Speculated pairs are skipped (their
  // BU-ownership transfer protocol assumes death, not reclaim) and so are
  // containers frozen on a silently-dead node (their slot is already
  // unusable; killing them would double-free it at detection).
  TaskId victim = kInvalidTask;
  for (const TaskId id : live_map_ids_) {
    const MapTask& task = *map_tasks_[id];
    if (task.phase == TaskPhase::kDone) continue;
    if (task.speculative || task.twin != kInvalidTask) continue;
    if (silent_nodes_.count(task.node) > 0) continue;
    if (victim == kInvalidTask ||
        task.dispatch_time >= map_tasks_[victim]->dispatch_time) {
      victim = id;
    }
  }
  if (victim == kInvalidTask) return false;
  const NodeId node = map_tasks_[victim]->node;
  const std::vector<BlockUnitId> remaining = reclaim_map(victim, "preempted");
  // The scheduler did not initiate this kill; tell it the node is fine but
  // the attempt is gone so bookkeeping policies refold the returned BUs.
  scheduler_->on_attempt_failed(*this, node, remaining);
  return true;
}

std::vector<BlockUnitId> JobDriver::reclaim_map(TaskId id,
                                                const char* reason) {
  FLEXMR_ASSERT(id < map_tasks_.size());
  MapTask& task = *map_tasks_[id];
  FLEXMR_ASSERT_MSG(task.phase != TaskPhase::kDone,
                    "kill_and_reclaim on a finished task");
  FLEXMR_ASSERT_MSG(task.twin == kInvalidTask && !task.speculative,
                    "kill_and_reclaim on a speculated task");

  if (task.pending_event != kInvalidEvent) {
    sim_->cancel(task.pending_event);
    task.pending_event = kInvalidEvent;
  }
  task.phase = TaskPhase::kDone;
  --running_map_count_;

  // Split the BU list at the consumed prefix: complete BUs stay credited
  // to this task; the partially-read BU (if any) and the unread suffix go
  // back to the pool.
  const MiB consumed =
      task.integrator ? task.integrator->done(sim_->now()) : 0.0;
  MiB acc = 0;
  std::size_t kept = 0;
  while (kept < task.bus.size()) {
    const MiB next = acc + layout_->bus[task.bus[kept]].size;
    if (next > consumed + 1e-9) break;
    acc = next;
    ++kept;
  }
  std::vector<BlockUnitId> remaining(task.bus.begin() +
                                         static_cast<std::ptrdiff_t>(kept),
                                     task.bus.end());
  task.bus.resize(kept);
  task.size = acc;
  task.credited = kept > 0;
  const NodeId node = task.node;

  processed_bus_ += kept;
  for (const BlockUnitId bu : task.bus) bu_done_[bu] = 1;
  intermediate_on_node_[node] += acc * job_.shuffle_ratio;
  // Partial-credit commit point: the kept prefix is durable (the journal
  // stores the exact BU set, so replay re-credits precisely these units).
  if (journal_ != nullptr && kept > 0) {
    journal_->record_map_commit(id, node, task.bus, acc);
  }
  record_map(task, kept > 0 ? TaskStatus::kPartialCompleted
                            : TaskStatus::kKilled,
             acc, static_cast<std::uint32_t>(kept));
  const TaskRecord partial_rec = result_.tasks.back();
  trace_task_closed(id, kept > 0 ? "partial" : "killed", reason, acc);
  if (kept > 0) scheduler_->on_map_complete(*this, partial_rec);

  index_.put_back(remaining);
  rm_.release(node);  // `task` may dangle past this point
  // If this ran inside an offer cascade the release above was swallowed by
  // the re-entrancy guard; mop up once the current event unwinds.
  sim_->schedule_after(0.0, [this]() { rm_.offer_all(); });

  if (processed_bus_ == layout_->bus.size() && !map_phase_done_) {
    finish_map_phase();
  }
  return remaining;
}

void JobDriver::finish_map_phase() {
  FLEXMR_ASSERT_MSG(running_map_count_ == 0,
                    "map phase ended with running maps");
  FLEXMR_ASSERT(index_.unprocessed() == 0);
  map_phase_done_ = true;
  trace_end_phase();
  if (job_.map_only()) {
    finish_job();
    return;
  }
  // Reducers already exist when the phase was *re-opened* by a map-output
  // loss during the shuffle; the survivors keep their progress and the
  // stalled ones sit in reduce_requeue_.
  if (reduce_tasks_.empty()) enqueue_reducers();
  trace_begin_phase("reduce phase");
  // Reduce dispatch waits for the deferred offer_all below: otherwise the
  // slot release of the *last finishing map* — almost always on the
  // slowest node — would synchronously grab the first (largest) reducer.
  sim_->schedule_after(0.0, [this]() {
    reduce_ready_ = true;
    rm_.offer_all();
  });
}

// ---------------------------------------------------------------------------
// Reduce phase
// ---------------------------------------------------------------------------

void JobDriver::enqueue_reducers(std::uint32_t forced_total) {
  total_intermediate_ = 0;
  for (const MiB m : intermediate_on_node_) total_intermediate_ += m;

  std::uint32_t total = forced_total > 0 ? forced_total : job_.num_reducers;
  if (total == 0) {
    // Auto-sizing: one reducer per reducer_input_target MiB, at most one
    // wave across the cluster.
    total = static_cast<std::uint32_t>(
        std::ceil(total_intermediate_ / params_.reducer_input_target));
    total = std::clamp<std::uint32_t>(total, 1, rm_.total_slots());
  }
  // Commit point: auto-sizing clamps against *live* slots, which may
  // differ when a restarted AM replans — so the count is pinned, never
  // recomputed (forced_total is the journaled value coming back).
  if (journal_ != nullptr && forced_total == 0) {
    journal_->record_reduce_plan(total);
  }

  // Partition weights: uniform, or Zipf(s) for key-skewed jobs. Reducers
  // are dispatched largest-first (Hadoop sorts pending reduces by size for
  // the skewed case via partition sampling; FIFO for uniform).
  std::vector<double> weights(total, 1.0);
  if (job_.reduce_key_skew > 0.0) {
    for (std::uint32_t r = 0; r < total; ++r) {
      weights[r] =
          1.0 / std::pow(static_cast<double>(r + 1), job_.reduce_key_skew);
    }
  }
  double weight_sum = 0;
  for (const double w : weights) weight_sum += w;

  for (std::uint32_t r = 0; r < total; ++r) {
    auto task = std::make_unique<ReduceTask>();
    task->id = kReduceIdBase + r;
    task->share = weights[r] / weight_sum;
    task->input = total_intermediate_ * task->share;
    reduce_tasks_.push_back(std::move(task));
  }
  reduce_attempt_failures_.assign(reduce_tasks_.size(), 0);
}

bool JobDriver::dispatch_reduce(NodeId node) {
  // Reduce tasks bind to containers dynamically: the next pending reducer
  // goes to whichever container frees first — unless the scheduler's
  // placement policy declines this node (FlexMap's c^2 bias). Reducers
  // re-queued by node failures go first.
  if (!reduce_ready_) return false;
  const bool from_requeue = !reduce_requeue_.empty();
  if (!from_requeue && next_reducer_ >= reduce_tasks_.size()) return false;
  if (!reduce_force_dispatch_ && !scheduler_->accept_reducer(*this, node)) {
    // The paper's placement loop redraws immediately until some node
    // accepts; approximate that with a short retry instead of waiting a
    // full heartbeat (one pending retry event at a time). If several
    // consecutive retry rounds place nothing — a stale placement policy,
    // e.g. quotas computed before a node failure — bypass the bias so the
    // phase can never wedge.
    if (!reduce_reoffer_pending_) {
      reduce_reoffer_pending_ = true;
      sim_->schedule_after(1.0, [this]() {
        reduce_reoffer_pending_ = false;
        if (done_) return;
        // A wedge means nothing is running AND nothing got placed: queued
        // reducers waiting for busy fast nodes are fine — that wait is the
        // placement bias working as intended.
        if (running_reduce_count_ == 0 && running_map_count_ == 0 &&
            reducers_started_ == reducers_started_snapshot_) {
          if (++reduce_declined_rounds_ >= 5) reduce_force_dispatch_ = true;
        } else {
          reduce_declined_rounds_ = 0;
        }
        reducers_started_snapshot_ = reducers_started_;
        rm_.offer_all();
      });
    }
    return false;
  }
  std::size_t idx;
  if (from_requeue) {
    idx = reduce_requeue_.front();
    reduce_requeue_.erase(reduce_requeue_.begin());
  } else {
    idx = next_reducer_++;
  }
  ++reducers_started_;

  ReduceTask& task = *reduce_tasks_[idx];
  task.node = node;
  task.remote =
      (total_intermediate_ - intermediate_on_node_[node]) * task.share;
  if (params_.exec_noise_sigma > 0) {
    const double sigma = params_.exec_noise_sigma;
    task.exec_noise = std::exp(-sigma * sigma / 2.0 + sigma * rng_.normal());
  }
  task.dispatch_time = sim_->now();
  task.planned_fault = PlannedFault::kNone;
  task.fail_frac = 0;
  if (injector_) {
    if (injector_->draw_launch_failure(node)) {
      task.planned_fault = PlannedFault::kLaunchFail;
    } else if (injector_->draw_attempt_failure(node)) {
      task.planned_fault = PlannedFault::kAttemptFail;
      task.fail_frac = injector_->draw_failure_fraction();
    }
  }
  ++running_reduce_count_;
  const SimDuration startup =
      params_.container_alloc_s + params_.jvm_startup_s;
  if (injector_ && !injector_->responsive(node)) {
    // Container on a silently-dead node: frozen until detection.
  } else if (task.planned_fault == PlannedFault::kLaunchFail) {
    task.pending_event = sim_->schedule_on_after(
        sim_->lane_for_node(node), params_.container_alloc_s,
        [this, idx]() { reduce_attempt_fail(idx); });
  } else {
    task.pending_event = sim_->schedule_on_after(
        sim_->lane_for_node(node), startup,
        [this, idx]() { reduce_fetch_start(idx); });
  }
  if (tracer_ != nullptr) {
    tracer_->task_begin(obs::node_pid(node), ttok(task.id),
                        "reduce " + std::to_string(idx), "reduce",
                        task.dispatch_time,
                        {{"input_mib", task.input},
                         {"remote_mib", task.remote},
                         {"share", task.share},
                         {"requeued", from_requeue}});
    tracer_->task_child_begin(ttok(task.id), "startup", task.dispatch_time);
    ctr_reduces_dispatched_->inc();
  }
  return true;
}

void JobDriver::reduce_fetch_start(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  task.phase = TaskPhase::kFetching;
  task.compute_start = sim_->now();
  task.failed_fetch_sources.clear();
  task.fetch_attempt = 0;
  if (injector_) {
    // One fetch stream per map-output host, drawn in ascending host order
    // (deterministic). A host that stopped responding fails its fetch
    // without an RNG draw; a responsive host fails with
    // fetch_failure_prob (connection reset, read timeout). The node-local
    // share needs no fetch.
    const double p = plan_.fetch_failure_prob;
    for (NodeId host = 0; host < cluster_->num_nodes(); ++host) {
      if (host == task.node) continue;
      if (intermediate_on_node_[host] <= 0.0) continue;
      if (!injector_->responsive(host)) {
        task.failed_fetch_sources.push_back(host);
      } else if (p > 0.0 && injector_->draw_fetch_failure()) {
        task.failed_fetch_sources.push_back(host);
      }
    }
  }
  const MiBps nic = cluster_->machine(task.node).spec().nic_bandwidth;
  const SimDuration fetch =
      task.remote / nic * (1.0 - params_.shuffle_overlap);
  if (tracer_ != nullptr) {
    tracer_->task_child_end(ttok(task.id), sim_->now());
    tracer_->task_child_begin(
        ttok(task.id), "shuffle-fetch", sim_->now(),
        {{"remote_mib", task.remote},
         {"failed_sources",
          static_cast<std::uint64_t>(task.failed_fetch_sources.size())}});
  }
  task.pending_event = sim_->schedule_on_after(
      sim_->lane_for_node(task.node), fetch,
      [this, idx]() { reduce_fetch_done(idx); });
}

void JobDriver::reduce_fetch_done(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  task.pending_event = kInvalidEvent;
  if (task.failed_fetch_sources.empty()) {
    reduce_compute_start(idx);
    return;
  }
  handle_fetch_failure(idx);
}

void JobDriver::handle_fetch_failure(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  const NodeId source = task.failed_fetch_sources.front();
  ++task.fetch_attempt;
  const SimDuration backoff =
      plan_.fetch_retry_backoff_s *
      static_cast<double>(1u << std::min(task.fetch_attempt - 1, 10u));
  if (tracer_ != nullptr) {
    // Emit before the report below: it may stall this reducer and close
    // its span, and the failure instant belongs inside it.
    tracer_->task_instant(ttok(task.id), "fetch-failure", sim_->now(),
                          {{"source", source},
                           {"attempt", task.fetch_attempt},
                           {"backoff_s", backoff}});
    ctr_fetch_failures_->inc();
  }
  record_fault(faults::FaultEventType::kFetchFailure, source, task.id,
               task.fetch_attempt);
  report_fetch_failure(source);
  // The report may have re-opened the map phase and stalled this reducer
  // (or aborted the job): the retry loop dies with it, and a later
  // redispatch restarts the whole fetch.
  if (done_ || task.phase != TaskPhase::kFetching) return;
  task.pending_event = sim_->schedule_on_after(
      sim_->lane_for_node(task.node), backoff,
      [this, idx]() { retry_fetch(idx); });
}

void JobDriver::retry_fetch(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  task.pending_event = kInvalidEvent;
  const NodeId source = task.failed_fetch_sources.front();
  const double p = plan_.fetch_failure_prob;
  const bool fails = !injector_->responsive(source) ||
                     (p > 0.0 && injector_->draw_fetch_failure());
  if (fails) {
    handle_fetch_failure(idx);
    return;
  }
  // The retransfer succeeded (its volume is part of the base fetch window;
  // only the backoff delay is modeled). Move on to the next failed source.
  task.failed_fetch_sources.erase(task.failed_fetch_sources.begin());
  task.fetch_attempt = 0;
  if (task.failed_fetch_sources.empty()) {
    reduce_compute_start(idx);
  } else {
    handle_fetch_failure(idx);
  }
}

void JobDriver::report_fetch_failure(NodeId host) {
  // Hadoop's AM counts fetch-failure notifications per mapper; at
  // max_fetch_failures_per_map it declares the output lost and re-executes
  // the map ("Too many fetch-failures"). Reports are charged to the oldest
  // credited map on the host — deterministic, and matches Hadoop re-running
  // mappers one at a time rather than everything on the node.
  MapTask* victim = nullptr;
  for (auto& owned : map_tasks_) {
    MapTask& task = *owned;
    if (task.node != host || !task.credited || task.output_lost) continue;
    victim = &task;
    break;
  }
  if (victim == nullptr) return;
  if (map_fetch_reports_.size() < map_tasks_.size()) {
    map_fetch_reports_.resize(map_tasks_.size(), 0);
  }
  const std::uint32_t reports = ++map_fetch_reports_[victim->id];
  if (journal_ != nullptr) journal_->record_fetch_report(victim->id);
  if (reports < plan_.max_fetch_failures_per_map) return;

  // Too many fetch-failures: the attempt is retroactively FAILED. The
  // re-execution counts toward the per-BU attempt limit and the host's
  // blacklist score, exactly like a transient attempt failure.
  record_fault(faults::FaultEventType::kMapOutputLost, host, victim->id,
               reports);
  map_fetch_reports_[victim->id] = 0;
  std::uint32_t worst_attempts = 0;
  BlockUnitId worst_bu = 0;
  for (const BlockUnitId bu : victim->bus) {
    const std::uint32_t attempts = ++bu_attempt_failures_[bu];
    if (journal_ != nullptr) journal_->record_bu_attempt_failure(bu);
    if (attempts > worst_attempts) {
      worst_attempts = attempts;
      worst_bu = bu;
    }
  }
  reopen_map_phase_for_lost_outputs();
  std::vector<BlockUnitId> reclaimed;
  lose_map_output(*victim, reclaimed);
  note_node_attempt_failure(host);
  if (worst_attempts >= plan_.max_attempts) {
    abort_job("map input unit " + std::to_string(worst_bu) + " failed " +
              std::to_string(worst_attempts) + " attempts");
  }
  if (!done_) {
    // The reclaimed BUs are unread again; if their blocks lost every
    // replica since the map ran, the input is gone.
    std::vector<std::uint32_t> suspects;
    for (const BlockUnitId bu : reclaimed) {
      suspects.push_back(layout_->bus[bu].block);
    }
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
    check_data_loss(suspects);
  }
  if (!done_) scheduler_->on_attempt_failed(*this, host, reclaimed);
  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
}

double JobDriver::reduce_rate(const ReduceTask& task) const {
  return cluster_->machine(task.node).effective_ips() /
         (job_.reduce_cost * task.exec_noise);
}

void JobDriver::reduce_compute_start(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  task.phase = TaskPhase::kComputing;
  if (tracer_ != nullptr) {
    tracer_->task_child_end(ttok(task.id), sim_->now());
    tracer_->task_child_begin(ttok(task.id), "compute", sim_->now());
  }
  if (task.input <= 0.0) {
    task.pending_event = kInvalidEvent;
    reduce_complete(idx);
    return;
  }
  task.integrator.emplace(task.input, reduce_rate(task), sim_->now());
  const auto eta = task.integrator->eta(sim_->now());
  FLEXMR_ASSERT(eta.has_value());
  if (task.planned_fault == PlannedFault::kAttemptFail) {
    const SimTime fail_at =
        sim_->now() + task.fail_frac * (*eta - sim_->now());
    task.pending_event = sim_->schedule_on(
        sim_->lane_for_node(task.node), fail_at,
        [this, idx]() { reduce_attempt_fail(idx); });
    return;
  }
  task.pending_event =
      sim_->schedule_on(sim_->lane_for_node(task.node), *eta,
                        [this, idx]() { reduce_complete(idx); });
}

void JobDriver::reduce_complete(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  task.phase = TaskPhase::kDone;
  task.pending_event = kInvalidEvent;
  --running_reduce_count_;

  TaskRecord rec;
  rec.id = task.id;
  rec.node = task.node;
  rec.kind = TaskKind::kReduce;
  rec.status = TaskStatus::kCompleted;
  rec.dispatch_time = task.dispatch_time;
  rec.compute_start = task.compute_start;
  rec.end_time = sim_->now();
  rec.input_mib = task.input;
  rec.phase_progress_at_end = 1.0;
  result_.tasks.push_back(rec);
  // Commit point: the reducer's output is durable (HDFS-committed).
  if (journal_ != nullptr) {
    journal_->record_reduce_commit(static_cast<std::uint32_t>(idx),
                                   task.node, task.input);
  }

  if (tracer_ != nullptr) {
    tracer_->task_end(ttok(rec.id), sim_->now(), {{"status", "completed"}});
    ctr_reduces_completed_->inc();
    auto& metrics = trace_->metrics();
    metrics.histogram("reduce.total_runtime_s").record(rec.total_runtime());
    metrics.histogram("reduce.input_mib").record(rec.input_mib);
  }

  ++reducers_done_;
  if (reducers_done_ == reduce_tasks_.size()) {
    finish_job();
    return;
  }
  rm_.release(task.node);
}

void JobDriver::finish_job() {
  trace_finish();
  done_ = true;
  result_.finish_time = sim_->now();
  if (result_.map_phase_end == 0) result_.map_phase_end = sim_->now();
  // Snapshot of the simulator's counters at completion. In shared-cluster
  // mode the simulator is shared, so these span every co-running job.
  const SimCounters counters = sim_->counters();
  result_.sim_events_fired = counters.fired;
  result_.sim_events_cancelled = counters.cancelled;
  result_.sim_queue_peak = counters.queue_peak;
}

// ---------------------------------------------------------------------------
// Heartbeats, speed changes, observability
// ---------------------------------------------------------------------------

void JobDriver::heartbeat() {
  if (done_) return;
  // The whole per-heartbeat control bundle: liveness scan, Eq. 3 sampling
  // walk, per-node scheduler callbacks and the rm/offer_all re-offer.
  FLEXMR_PROF_SCOPE("mr/heartbeat");

  // Liveness: NodeManager heartbeats arrive from every responsive node;
  // a node whose last heartbeat is older than the liveness timeout is
  // declared lost. This is the only detection path for *silent* crashes —
  // until it fires, the node's frozen tasks look like slow stragglers.
  if (injector_) {
    const SimTime now = sim_->now();
    for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
      if (failed_nodes_.count(node) > 0) continue;
      if (injector_->responsive(node)) {
        rm_.record_heartbeat(node, now);
      } else if (now - rm_.last_heartbeat(node) >=
                 plan_.node_liveness_timeout_s - 1e-9) {
        fail_node(node);
      }
    }
    if (done_) return;  // detection may have aborted the job
  }

  // Per node: average the Eq. 3 IPS samples of this round — completions
  // since the last round plus containers that have been running for at
  // least a full heartbeat period (younger containers are still dominated
  // by startup and report nothing useful yet). The previous estimate is
  // retained when a node produced no sample this round.
  hb_ips_sum_.assign(cluster_->num_nodes(), 0.0);
  hb_ips_cnt_.assign(cluster_->num_nodes(), 0);
  // This walk doubles as the live-id sweep: finished ids are dropped so
  // the list tracks in-flight tasks only. Ids stay ascending, so per-node
  // sample accumulation order (and thus FP rounding) is identical to the
  // historical all-tasks scan.
  std::size_t kept = 0;
  for (const TaskId id : live_map_ids_) {
    MapTask& task = *map_tasks_[id];
    if (task.phase == TaskPhase::kDone) continue;  // sweep
    live_map_ids_[kept++] = id;
    if (task.phase != TaskPhase::kComputing) continue;
    // A silently-dead node reports nothing; its frozen containers keep
    // their last known progress but produce no fresh samples.
    if (silent_nodes_.count(task.node) > 0) continue;
    const SimDuration computing = sim_->now() - task.compute_start;
    if (computing < params_.heartbeat_period_s) continue;
    const MiB read = task.integrator->done(sim_->now());
    if (read <= 0) continue;
    hb_ips_sum_[task.node] += read / computing;
    ++hb_ips_cnt_[task.node];
  }
  live_map_ids_.resize(kept);
  for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
    for (const double sample : pending_ips_samples_[node]) {
      hb_ips_sum_[node] += sample;
      ++hb_ips_cnt_[node];
    }
    pending_ips_samples_[node].clear();
    if (hb_ips_cnt_[node] > 0) {
      round_ips_[node] = hb_ips_sum_[node] / hb_ips_cnt_[node];
    }
    scheduler_->on_heartbeat(*this, node);
  }

  // Re-offer idle slots: speculation/mitigation opportunities appear as
  // progress evolves, not only when slots free up.
  rm_.offer_all();

  // Deadlock guard: unprocessed input, nothing running, and every slot
  // declined means the scheduler wedged itself. A cluster with zero live
  // slots is excluded — that is not a scheduler wedge but a fault state
  // (either a rejoin is pending or fail_node already aborted the job).
  // Likewise an unreadable block (no live replica, or fewer than k live
  // parts under rs(k,m)): its BUs are untakeable until a holder rejoins
  // or repair restores quorum — a storage stall, not a scheduler bug.
  if (!map_phase_done_ && running_map_count_ == 0 &&
      index_.unprocessed() > 0 && rm_.total_slots() > 0 &&
      rm_.total_free() == rm_.total_slots() &&
      (!replica_mgr_ || !replica_mgr_->has_unreadable_blocks())) {
    throw InvariantError("scheduler declined all slots with work pending");
  }

  if (tracer_ != nullptr) {
    ctr_heartbeats_->inc();
    tracer_->counter(trace_ns_.job_pid, "running_maps", sim_->now(),
                     static_cast<double>(running_map_count_));
    tracer_->counter(trace_ns_.job_pid, "running_reduces", sim_->now(),
                     static_cast<double>(running_reduce_count_));
    tracer_->counter(trace_ns_.job_pid, "free_containers", sim_->now(),
                     static_cast<double>(rm_.total_free()));
  }

  // Journal maintenance piggybacks on the heartbeat (the effective cadence
  // quantizes to heartbeat periods): fold the log tail into the snapshot
  // so replay cost stays bounded by job *width*, not length.
  if (journal_ != nullptr && plan_.am_snapshot_interval_s > 0.0 &&
      sim_->now() - journal_->last_snapshot_at() >=
          plan_.am_snapshot_interval_s - 1e-9) {
    journal_->snapshot(sim_->now());
  }

  sim_->schedule_after(params_.heartbeat_period_s, [this]() { heartbeat(); });
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

void JobDriver::schedule_node_failure(NodeId node, SimTime time) {
  FLEXMR_ASSERT_MSG(!started_, "schedule failures before run()");
  if (node >= cluster_->num_nodes()) {
    throw ConfigError("node failure names node " + std::to_string(node) +
                      " but the cluster has " +
                      std::to_string(cluster_->num_nodes()) + " nodes");
  }
  if (time < 0.0) {
    throw ConfigError("node failure of node " + std::to_string(node) +
                      " at negative time " + std::to_string(time));
  }
  planned_failures_.emplace_back(node, time);
}

void JobDriver::install_faults(faults::FaultPlan plan) {
  FLEXMR_ASSERT_MSG(!started_, "install faults before run()");
  FLEXMR_ASSERT_MSG(owned_rm_ != nullptr,
                    "install_faults is for single-job mode (a shared-RM "
                    "coordinator owns cluster-level fault state)");
  plan_ = std::move(plan);
}

// ---------------------------------------------------------------------------
// AM crash + journaled recovery
// ---------------------------------------------------------------------------

void JobDriver::set_journal(recover::JobJournal* journal) {
  FLEXMR_ASSERT_MSG(!started_, "install the journal before start()");
  journal_ = journal;
}

void JobDriver::crash_am() {
  if (done_) return;
  FLEXMR_ASSERT_MSG(journal_ != nullptr, "crash_am without a journal");
  am_crashed_ = true;
  record_fault(faults::FaultEventType::kAmCrash, kInvalidNode, kInvalidTask,
               am_attempt_);

  AmAttemptRecord attempt;
  attempt.attempt = am_attempt_;
  attempt.crash_time = sim_->now();

  // Going done() *before* releasing slots: every release below cascades
  // into the offer path, and a dead AM must decline all of them (the
  // successor re-registers after am_restart_delay_s).
  done_ = true;

  // Tear down every in-flight map container — MRAppMaster death kills the
  // whole application's containers, so their consumed input is wasted
  // simulated time the successor re-runs from the journal.
  for (const TaskId id : live_map_ids_) {
    MapTask& task = *map_tasks_[id];
    if (task.phase == TaskPhase::kDone) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    task.phase = TaskPhase::kDone;
    --running_map_count_;
    const MiB consumed =
        task.integrator ? task.integrator->done(sim_->now()) : 0.0;
    attempt.wasted_mib += consumed;
    // Exactly one of an original/copy pair owns the BU list; counting the
    // owner only keeps wasted_units a partition of the job's BUs.
    if (task.owns_bus) {
      attempt.wasted_units += static_cast<std::uint64_t>(task.bus.size());
    }
    record_map(task, TaskStatus::kKilled, consumed, 0);
    if (tracer_ != nullptr) {
      trace_task_closed(id, "killed", "am crashed", consumed);
      ctr_maps_killed_->inc();
    }
    const NodeId host = task.node;
    if (!rm_.is_dead(host)) rm_.release(host);
  }

  // And every dispatched uncommitted reducer (committed ones are durable
  // HDFS output and stay committed in the journal).
  for (auto& owned : reduce_tasks_) {
    ReduceTask& task = *owned;
    if (task.node == kInvalidNode || task.phase == TaskPhase::kDone) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    const MiB consumed =
        task.integrator ? task.integrator->done(sim_->now()) : 0.0;
    attempt.wasted_mib += consumed;
    TaskRecord rec;
    rec.id = task.id;
    rec.node = task.node;
    rec.kind = TaskKind::kReduce;
    rec.status = TaskStatus::kKilled;
    rec.dispatch_time = task.dispatch_time;
    rec.compute_start = task.compute_start;
    rec.end_time = sim_->now();
    rec.input_mib = consumed;
    rec.phase_progress_at_end = map_phase_progress();
    result_.tasks.push_back(rec);
    if (tracer_ != nullptr && tracer_->task_open(ttok(task.id))) {
      tracer_->task_end(ttok(task.id), sim_->now(),
                        {{"status", "killed"},
                         {"reason", "am crashed"},
                         {"consumed_mib", consumed}});
    }
    const NodeId host = task.node;
    task.phase = TaskPhase::kDone;
    --running_reduce_count_;
    if (!rm_.is_dead(host)) rm_.release(host);
  }

  result_.redone_work_mib += attempt.wasted_mib;
  result_.redone_work_units += attempt.wasted_units;
  if (ctr_redone_units_ != nullptr) {
    ctr_redone_units_->inc(attempt.wasted_units);
  }
  result_.am_attempts.push_back(attempt);
  // No finish_time: this attempt did not finish the job — it died.
  trace_finish();
}

AmRecoveryBaton JobDriver::release_recovery() {
  FLEXMR_ASSERT_MSG(am_crashed_, "release_recovery before crash_am()");
  AmRecoveryBaton baton;
  baton.plan = plan_;
  baton.injector = std::move(injector_);
  baton.replica_mgr = std::move(replica_mgr_);
  baton.journal = journal_;
  baton.next_attempt = am_attempt_ + 1;
  baton.recovered = journal_->replay();
  return baton;
}

void JobDriver::adopt_recovery(AmRecoveryBaton baton) {
  FLEXMR_ASSERT_MSG(!started_, "adopt_recovery before start()");
  FLEXMR_ASSERT_MSG(owned_rm_ == nullptr,
                    "a recovered attempt allocates from the surviving RM "
                    "(use the shared-RM constructor)");
  plan_ = std::move(baton.plan);
  injector_ = std::move(baton.injector);
  replica_mgr_ = std::move(baton.replica_mgr);
  journal_ = baton.journal;
  am_attempt_ = baton.next_attempt;
  recovered_.emplace(std::move(baton.recovered));
}

void JobDriver::restore_from_journal() {
  const recover::RecoveredState& rec = *recovered_;

  // Replicas grown beyond the static layout by earlier attempts' re-
  // replication join the fresh index first (before any dead node is
  // deactivated, so a later rejoin's recount sees them too, and before
  // any BU is taken).
  if (replica_mgr_) {
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(layout_->blocks.size()); ++b) {
      const hdfs::Block& block = layout_->blocks[b];
      for (const NodeId holder : replica_mgr_->remembered_holders(b)) {
        if (std::find(block.replicas.begin(), block.replicas.end(),
                      holder) == block.replicas.end()) {
          index_.add_replica(block, holder);
        }
      }
    }
  }

  // Node-liveness reconciliation at re-registration: the RM remembers the
  // deaths the previous attempt detected. A node that came back while no
  // AM was alive to process its rejoin is reconciled here; silent deaths
  // the old AM never detected are re-detected by heartbeat expiry (the
  // liveness clock ran through the AM downtime).
  for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
    if (!rm_.is_dead(node)) continue;
    if (injector_ && injector_->responsive(node)) {
      rm_.mark_alive(node);
      rm_.record_heartbeat(node, sim_->now());
      if (replica_mgr_) replica_mgr_->on_node_restored(node);
      record_fault(faults::FaultEventType::kRejoin, node);
    } else {
      failed_nodes_.insert(node);
      index_.deactivate_node(node);
    }
  }

  // Committed maps replay as synthetic Done tasks, in original commit
  // order so the per-node intermediate sums rebuild with FP rounding
  // identical to the run that produced them. Their BUs leave the pool
  // exactly as if the maps had just run — the exactly-once invariant
  // holds across the restart.
  map_fetch_reports_.assign(rec.committed_maps.size(), 0);
  for (const recover::CommittedMap& m : rec.committed_maps) {
    index_.take_units(m.bus);
    auto task = std::make_unique<MapTask>();
    task->id = static_cast<TaskId>(map_tasks_.size());
    task->node = m.node;
    task->bus = m.bus;
    task->size = m.size;
    task->credited = true;
    task->phase = TaskPhase::kDone;
    map_fetch_reports_[task->id] = m.fetch_reports;
    processed_bus_ += m.bus.size();
    for (const BlockUnitId bu : m.bus) bu_done_[bu] = 1;
    intermediate_on_node_[m.node] += m.size * job_.shuffle_ratio;
    map_tasks_.push_back(std::move(task));
  }

  // Re-key the journal to this attempt's task-id space: the synthetic
  // tasks above were renumbered 0..k-1 in commit order, and every future
  // append (output losses, fetch reports, fresh commits) uses this
  // attempt's ids — without the rebase, a third attempt's replay would
  // mis-join old and new id spaces.
  recover::RecoveredState rebased = rec;
  for (std::size_t i = 0; i < rebased.committed_maps.size(); ++i) {
    rebased.committed_maps[i].task = static_cast<TaskId>(i);
  }
  journal_->rebase(std::move(rebased));

  if (processed_bus_ == layout_->bus.size()) map_phase_done_ = true;

  // The reduce plan is pinned (auto-sizing reads live slots, which may
  // have changed); committed reducers stay done, the rest re-pend in
  // index order through the requeue lane.
  if (rec.reduce_planned) {
    enqueue_reducers(rec.num_reducers);
    for (const auto& [idx, n] : rec.reduce_attempt_failures) {
      reduce_attempt_failures_[idx] = n;
    }
    for (const auto& r : rec.committed_reduces) {
      ReduceTask& task = *reduce_tasks_[r.index];
      task.node = r.node;
      task.phase = TaskPhase::kDone;
      ++reducers_done_;
    }
    next_reducer_ = reduce_tasks_.size();
    for (std::size_t idx = 0; idx < reduce_tasks_.size(); ++idx) {
      if (reduce_tasks_[idx]->phase != TaskPhase::kDone) {
        reduce_requeue_.push_back(idx);
      }
    }
    // When the map phase is whole the shuffle can restart immediately; a
    // phase re-opened by output loss waits for finish_map_phase again.
    if (map_phase_done_) reduce_ready_ = true;
  }
}

void JobDriver::record_fault(faults::FaultEventType type, NodeId node,
                             TaskId task, std::uint32_t attempts,
                             std::uint32_t block) {
  result_.fault_events.push_back(
      faults::FaultEvent{sim_->now(), type, node, task, attempts, block});
  if (tracer_ != nullptr) {
    obs::TraceArgs args;
    if (node != kInvalidNode) args.emplace_back("node", node);
    if (task != kInvalidTask) args.emplace_back("task", task);
    if (attempts != 0) args.emplace_back("attempts", attempts);
    if (block != faults::kInvalidBlock) args.emplace_back("block", block);
    tracer_->instant({obs::kFaultsPid, 0}, faults::to_string(type), "fault",
                     sim_->now(), std::move(args));
    ctr_fault_events_->inc();
  }
}

void JobDriver::ensure_replica_manager() {
  if (replica_mgr_) return;
  // Created on demand by coordinator-delivered failures: reflects the full
  // static layout, then the on_node_lost calls that follow peel off dead
  // holders. No re-replication — that pipeline belongs to a per-driver
  // fault plan, which a shared-RM coordinator does not install.
  replica_mgr_ = std::make_unique<hdfs::ReplicaManager>(
      *layout_, cluster_->num_nodes());
}

void JobDriver::notify_node_failure(NodeId node) {
  FLEXMR_ASSERT_MSG(started_, "notify_node_failure before start()");
  // A coordinator marked the node dead on the shared RM exactly once and
  // schedules the single cluster-wide re-offer itself; this job records
  // the crash + its own detection and cleans up its containers. Idempotent
  // per node; also delivered at start() to jobs admitted after the death.
  if (done_ || failed_nodes_.count(node) > 0) return;
  ensure_replica_manager();
  record_fault(faults::FaultEventType::kCrash, node);
  fail_node(node, /*schedule_reoffer=*/false);
}

void JobDriver::fail_node(NodeId node, bool schedule_reoffer) {
  // Guard on *this driver's* bookkeeping, not the RM: with a shared RM
  // another job's driver may already have marked the node dead, but this
  // job's tasks there still need cleaning up.
  if (done_ || failed_nodes_.count(node) > 0) return;
  failed_nodes_.insert(node);
  silent_nodes_.erase(node);
  if (!rm_.is_dead(node)) rm_.mark_dead(node);
  record_fault(faults::FaultEventType::kDetected, node);
  // Pre-crash speed estimates describe a gone incarnation; a rejoined
  // node must be re-measured from scratch.
  round_ips_[node].reset();
  pending_ips_samples_[node].clear();

  // NameNode first: the node's replicas leave the live view (and the
  // index's local pools) before any BU is put back, so reclaimed work
  // can only be re-taken from surviving holders.
  hdfs::ReplicaManager::NodeLossReport replica_report;
  if (replica_mgr_) {
    replica_report = replica_mgr_->on_node_lost(node);
    index_.deactivate_node(node);
    for (const std::uint32_t block : replica_report.lost) {
      record_fault(layout_->storage.erasure()
                       ? faults::FaultEventType::kPartLost
                       : faults::FaultEventType::kReplicaLost,
                   node, kInvalidTask, 0, block);
    }
  }

  std::vector<BlockUnitId> reclaimed;

  // 1. Kill the node's running map containers. Work covered by a living
  //    speculative twin survives with the twin; everything else returns
  //    to the pool.
  for (auto& owned : map_tasks_) {
    MapTask& task = *owned;
    if (task.node != node || task.phase == TaskPhase::kDone) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    task.phase = TaskPhase::kDone;
    --running_map_count_;
    const MiB consumed =
        task.integrator ? task.integrator->done(sim_->now()) : 0.0;
    record_map(task, TaskStatus::kKilled, consumed, 0);
    if (tracer_ != nullptr) {
      trace_task_closed(task.id, "killed", "node lost", consumed);
      ctr_maps_killed_->inc();
    }
    if (task.twin != kInvalidTask) {
      MapTask& twin = *map_tasks_[task.twin];
      const bool twin_survives =
          !(twin.node == node && twin.phase != TaskPhase::kDone);
      twin.twin = kInvalidTask;
      task.twin = kInvalidTask;
      if (twin_survives) {
        // The twin covers this work now — and inherits the duty of
        // returning the BUs should it die too.
        if (task.owns_bus) {
          twin.owns_bus = true;
          task.owns_bus = false;
        }
        task.bus.clear();
      } else if (task.owns_bus) {
        // Both copies die on this node; the owner returns the BUs (the
        // other list is a duplicate and must not be put back too).
        index_.put_back(task.bus);
        reclaimed.insert(reclaimed.end(), task.bus.begin(), task.bus.end());
        task.bus.clear();
        task.size = 0;
      } else {
        task.bus.clear();
      }
    } else if (task.owns_bus) {
      index_.put_back(task.bus);
      reclaimed.insert(reclaimed.end(), task.bus.begin(), task.bus.end());
      task.bus.clear();
      task.size = 0;
    } else {
      task.bus.clear();  // non-owning copy: duplicate of the owner's list
    }
  }

  // 2. Lost map outputs: if the shuffle still needs them (reduce phase
  //    not yet planned), every credited map on the node re-executes.
  if (!job_.map_only() && !map_phase_done_) {
    for (auto& owned : map_tasks_) {
      MapTask& task = *owned;
      if (task.node != node || !task.credited || task.output_lost) continue;
      lose_map_output(task, reclaimed);
    }
    intermediate_on_node_[node] = 0.0;
  }

  // 3. Reduce phase: re-queue the node's running reducers, then handle
  //    map-output loss after the shuffle has started — reducers that have
  //    not finished fetching still need the dead node's intermediate
  //    data, so the map phase re-opens for exactly those inputs while
  //    reducers that already hold all their data keep computing.
  if (map_phase_done_) {
    for (std::size_t idx = 0; idx < reduce_tasks_.size(); ++idx) {
      ReduceTask& task = *reduce_tasks_[idx];
      if (task.node != node || task.phase == TaskPhase::kDone) continue;
      if (task.node == kInvalidNode) continue;  // not yet dispatched
      if (task.pending_event != kInvalidEvent) {
        sim_->cancel(task.pending_event);
        task.pending_event = kInvalidEvent;
      }
      if (tracer_ != nullptr && tracer_->task_open(ttok(task.id))) {
        tracer_->task_end(ttok(task.id), sim_->now(),
                          {{"status", "requeued"}, {"reason", "node lost"}});
      }
      task.node = kInvalidNode;
      task.phase = TaskPhase::kStarting;
      task.integrator.reset();
      --running_reduce_count_;
      reduce_requeue_.push_back(idx);
    }

    if (!job_.map_only() && intermediate_on_node_[node] > 0) {
      bool outputs_needed = false;
      for (const auto& owned : reduce_tasks_) {
        const TaskPhase phase = owned->phase;
        if (phase == TaskPhase::kStarting || phase == TaskPhase::kFetching) {
          outputs_needed = true;
          break;
        }
      }
      if (outputs_needed) {
        // Re-open the map phase for the dead node's credited maps (same
        // recovery as the pre-shuffle case), stalling every pre-compute
        // reducer: their fetches cannot finish without the lost outputs.
        reopen_map_phase_for_lost_outputs();
        for (auto& owned : map_tasks_) {
          MapTask& task = *owned;
          if (task.node != node || !task.credited || task.output_lost) {
            continue;
          }
          lose_map_output(task, reclaimed);
        }
        intermediate_on_node_[node] = 0.0;
      }
    }
  }

  scheduler_->on_node_failed(*this, node, reclaimed);
  if (!done_) {
    // Data-loss sweep: blocks that just dropped to zero live replicas,
    // plus blocks whose BUs became unread again through the reclaims
    // above (their replicas may have been lost in *earlier* failures).
    std::vector<std::uint32_t> suspects = replica_report.zero;
    for (const BlockUnitId bu : reclaimed) {
      suspects.push_back(layout_->bus[bu].block);
    }
    std::sort(suspects.begin(), suspects.end());
    suspects.erase(std::unique(suspects.begin(), suspects.end()),
                   suspects.end());
    check_data_loss(suspects);
  }
  if (!done_ && rm_.total_slots() == 0 &&
      (!injector_ || !injector_->rejoin_pending())) {
    abort_job("every node in the cluster failed");
    return;
  }
  if (schedule_reoffer) {
    sim_->schedule_after(0.0, [this]() {
      if (!done_) rm_.offer_all();
    });
  }
}

void JobDriver::lose_map_output(MapTask& task,
                                std::vector<BlockUnitId>& reclaimed) {
  if (tracer_ != nullptr) {
    tracer_->instant({obs::node_pid(task.node), 0}, "map-output-lost",
                     "fault", sim_->now(),
                     {{"task", task.id},
                      {"bus", static_cast<std::uint64_t>(task.bus.size())}});
  }
  task.output_lost = true;
  task.credited = false;
  // The commit is void: replay must not re-credit these BUs.
  if (journal_ != nullptr) journal_->record_map_output_lost(task.id);
  processed_bus_ -= task.bus.size();
  for (const BlockUnitId bu : task.bus) bu_done_[bu] = 0;
  index_.put_back(task.bus);
  reclaimed.insert(reclaimed.end(), task.bus.begin(), task.bus.end());
  intermediate_on_node_[task.node] =
      std::max(0.0, intermediate_on_node_[task.node] -
                        task.size * job_.shuffle_ratio);
  // Re-label the task's record: its work no longer counts.
  for (auto it = result_.tasks.rbegin(); it != result_.tasks.rend(); ++it) {
    if (it->id == task.id && it->kind == TaskKind::kMap) {
      it->status = TaskStatus::kLostOutput;
      it->num_bus = 0;
      break;
    }
  }
  task.bus.clear();
}

void JobDriver::reopen_map_phase_for_lost_outputs() {
  // Close the reduce pipeline first so slot releases flow back into map
  // dispatch, then stall every reducer that has not started computing —
  // its fetch cannot finish without the lost outputs. Stalled reducers
  // keep their queue position and redispatch once the map phase
  // re-finishes.
  map_phase_done_ = false;
  reduce_ready_ = false;
  trace_end_phase();
  trace_begin_phase("map phase (reopened)");
  for (std::size_t idx = 0; idx < reduce_tasks_.size(); ++idx) {
    ReduceTask& task = *reduce_tasks_[idx];
    if (task.node == kInvalidNode) continue;  // queued or re-queued
    if (task.phase != TaskPhase::kStarting &&
        task.phase != TaskPhase::kFetching) {
      continue;
    }
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    if (tracer_ != nullptr && tracer_->task_open(ttok(task.id))) {
      tracer_->task_end(
          ttok(task.id), sim_->now(),
          {{"status", "requeued"}, {"reason", "map output lost"}});
    }
    const NodeId host = task.node;
    task.node = kInvalidNode;
    task.phase = TaskPhase::kStarting;
    task.integrator.reset();
    --running_reduce_count_;
    reduce_requeue_.push_back(idx);
    rm_.release(host);
  }
}

void JobDriver::check_data_loss(
    const std::vector<std::uint32_t>& suspect_blocks) {
  if (!replica_mgr_ || done_) return;
  const std::uint32_t min_live = layout_->min_live();
  std::vector<std::uint32_t> lost;
  for (const std::uint32_t block : suspect_blocks) {
    if (replica_mgr_->live_holder_count(block) >= min_live) continue;
    bool unread = false;
    for (const BlockUnitId bu : layout_->blocks[block].bus) {
      if (!bu_done_[bu]) {
        unread = true;
        break;
      }
    }
    // Losing read quorum on a fully-read block is harmless: its map
    // outputs (or their re-executions) carry the data forward.
    if (!unread) continue;
    // A dead holder with a planned rejoin brings its replica/part back via
    // its block report; while rejoins can restore read quorum the block
    // waits instead of dooming the job. (Disk-destroyed parts were erased
    // from the remembered holders — a rejoin cannot bring those back.)
    std::size_t reachable = replica_mgr_->live_holder_count(block);
    for (const NodeId holder : replica_mgr_->remembered_holders(block)) {
      if (!replica_mgr_->node_alive(holder) && injector_ &&
          injector_->rejoin_pending(holder)) {
        ++reachable;
      }
    }
    if (reachable >= min_live) continue;
    record_fault(faults::FaultEventType::kDataLoss, kInvalidNode,
                 kInvalidTask, 0, block);
    lost.push_back(block);
  }
  if (lost.empty()) return;
  std::string ids;
  for (const std::uint32_t block : lost) {
    if (!ids.empty()) ids += ", ";
    ids += std::to_string(block);
  }
  result_.lost_blocks.insert(result_.lost_blocks.end(), lost.begin(),
                             lost.end());
  if (layout_->storage.erasure()) {
    abort_job("data loss: more than " +
              std::to_string(layout_->storage.rs_m) +
              " parts of unread block " + ids + " are gone");
  } else {
    abort_job("data loss: every replica of unread block " + ids +
              " is gone");
  }
}

void JobDriver::on_block_re_replicated(std::uint32_t block, NodeId target) {
  if (done_) return;
  const bool erasure = layout_->storage.erasure();
  record_fault(erasure ? faults::FaultEventType::kPartReconstructed
                       : faults::FaultEventType::kReReplicated,
               target, kInvalidTask, 0, block);
  if (erasure) {
    ++result_.parts_reconstructed;
    if (ctr_parts_reconstructed_) ctr_parts_reconstructed_->inc();
  }
  if (replica_mgr_) {
    result_.repair_read_mib = replica_mgr_->repair_read_mib();
  }
  index_.add_replica(layout_->blocks[block], target);
  scheduler_->on_block_rehosted(*this, block, target);
  // The new local pool may unblock a scheduler that declined its slots.
  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
}

void JobDriver::on_disk_fault(NodeId node, std::uint32_t disk) {
  if (done_) return;
  // Single-disk loss on a live node: the plan is non-empty (it carries the
  // disk fault), so start() already built the replica manager.
  FLEXMR_ASSERT(replica_mgr_ != nullptr);
  record_fault(faults::FaultEventType::kDiskFault, node);
  if (tracer_ != nullptr) {
    tracer_->instant({obs::node_pid(node), 0}, "disk fault", "fault",
                     sim_->now(), {{"disk", disk}});
  }
  const auto report =
      replica_mgr_->on_disk_lost(node, disk, plan_.disks_per_node);
  for (const std::uint32_t block : report.lost) {
    record_fault(layout_->storage.erasure()
                     ? faults::FaultEventType::kPartLost
                     : faults::FaultEventType::kReplicaLost,
                 node, kInvalidTask, 0, block);
    // The index mirrors the loss so local pools and locality credit stop
    // counting the destroyed copy (it survives node deactivate/restore:
    // a rejoin's block report cannot resurrect a dead disk).
    index_.drop_replica(layout_->blocks[block], node);
  }
  check_data_loss(report.zero);
  if (!done_) {
    // Locality changed under the schedulers' feet; re-offer so delay
    // cursors re-evaluate against the shrunken pools.
    sim_->schedule_after(0.0, [this]() {
      if (!done_) rm_.offer_all();
    });
  }
}

void JobDriver::on_node_silent(NodeId node) {
  if (done_ || failed_nodes_.count(node) > 0) return;
  silent_nodes_.insert(node);
  // The node's processes are gone but the AM does not know yet: freeze
  // every in-flight container there. Progress stops (rate 0) and pending
  // completion/startup events are cancelled — from the AM's perspective
  // the tasks have simply stopped reporting. Heartbeat expiry (or the
  // node's own re-registration) later turns this into a detected loss.
  for (const TaskId id : live_map_ids_) {
    MapTask& task = *map_tasks_[id];
    if (task.node != node || task.phase == TaskPhase::kDone) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    if (task.integrator) task.integrator->set_rate(sim_->now(), 0.0);
    if (tracer_ != nullptr && tracer_->task_open(ttok(id))) {
      tracer_->task_instant(ttok(id), "frozen (node silent)", sim_->now());
    }
  }
  for (auto& owned : reduce_tasks_) {
    ReduceTask& task = *owned;
    if (task.node != node || task.phase == TaskPhase::kDone) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
      task.pending_event = kInvalidEvent;
    }
    if (task.integrator) task.integrator->set_rate(sim_->now(), 0.0);
    if (tracer_ != nullptr && tracer_->task_open(ttok(task.id))) {
      tracer_->task_instant(ttok(task.id), "frozen (node silent)",
                            sim_->now());
    }
  }
}

void JobDriver::on_node_rejoin(NodeId node) {
  if (done_) return;
  // A crash the AM never detected (the node came back inside the liveness
  // window) is reconciled at re-registration: the RM learns the old
  // containers died, so the standard loss path runs first.
  if (silent_nodes_.count(node) > 0 && failed_nodes_.count(node) == 0) {
    fail_node(node);
  }
  if (done_ || failed_nodes_.count(node) == 0) return;
  failed_nodes_.erase(node);
  rm_.mark_alive(node);
  rm_.record_heartbeat(node, sim_->now());
  round_ips_[node].reset();
  pending_ips_samples_[node].clear();
  record_fault(faults::FaultEventType::kRejoin, node);
  if (replica_mgr_) {
    // Block report: a crash does not wipe the disk, so every replica the
    // node held returns to the live view and the index's local pools.
    replica_mgr_->on_node_restored(node);
    index_.restore_node(node);
  }
  scheduler_->on_node_recovered(*this, node);
  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
}

void JobDriver::map_attempt_fail(TaskId id) {
  MapTask& task = *map_tasks_[id];
  FLEXMR_ASSERT(task.phase != TaskPhase::kDone);
  task.pending_event = kInvalidEvent;  // the failure event itself fired
  task.phase = TaskPhase::kDone;
  --running_map_count_;

  const NodeId node = task.node;
  const bool launch_failure = task.planned_fault == PlannedFault::kLaunchFail;
  const MiB consumed =
      task.integrator ? task.integrator->done(sim_->now()) : 0.0;
  record_map(task, TaskStatus::kFailed, consumed, 0);
  trace_task_closed(id, "failed",
                    launch_failure ? "launch failure" : "attempt failure",
                    consumed);

  std::vector<BlockUnitId> reclaimed;
  std::uint32_t worst_attempts = 0;
  BlockUnitId worst_bu = 0;
  if (task.twin != kInvalidTask) {
    // The surviving twin covers this work; the failure costs nothing but
    // the dead attempt's slot time. BU ownership moves to the twin.
    MapTask& twin = *map_tasks_[task.twin];
    twin.twin = kInvalidTask;
    task.twin = kInvalidTask;
    if (task.owns_bus) {
      twin.owns_bus = true;
      task.owns_bus = false;
    }
    task.bus.clear();
  } else if (task.owns_bus) {
    for (const BlockUnitId bu : task.bus) {
      const std::uint32_t attempts = ++bu_attempt_failures_[bu];
      if (journal_ != nullptr) journal_->record_bu_attempt_failure(bu);
      if (attempts > worst_attempts) {
        worst_attempts = attempts;
        worst_bu = bu;
      }
    }
    index_.put_back(task.bus);
    reclaimed = std::move(task.bus);
    task.bus.clear();
    task.size = 0;
  } else {
    task.bus.clear();  // non-owning copy: duplicate of the owner's list
  }

  record_fault(launch_failure ? faults::FaultEventType::kLaunchFailure
                              : faults::FaultEventType::kAttemptFailure,
               node, id, worst_attempts);
  note_node_attempt_failure(node);
  if (worst_attempts >= plan_.max_attempts) {
    abort_job("map input unit " + std::to_string(worst_bu) + " failed " +
              std::to_string(worst_attempts) + " attempts");
  }
  if (!done_) scheduler_->on_attempt_failed(*this, node, reclaimed);
  rm_.release(node);
  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
}

void JobDriver::reduce_attempt_fail(std::size_t idx) {
  ReduceTask& task = *reduce_tasks_[idx];
  FLEXMR_ASSERT(task.phase != TaskPhase::kDone);
  task.pending_event = kInvalidEvent;

  const NodeId node = task.node;
  const bool launch_failure = task.planned_fault == PlannedFault::kLaunchFail;
  const MiB consumed =
      task.integrator ? task.integrator->done(sim_->now()) : 0.0;

  TaskRecord rec;
  rec.id = task.id;
  rec.node = node;
  rec.kind = TaskKind::kReduce;
  rec.status = TaskStatus::kFailed;
  rec.dispatch_time = task.dispatch_time;
  rec.compute_start = task.compute_start;
  rec.end_time = sim_->now();
  rec.input_mib = consumed;
  rec.phase_progress_at_end = 1.0;
  result_.tasks.push_back(rec);
  if (tracer_ != nullptr && tracer_->task_open(ttok(rec.id))) {
    tracer_->task_end(
        ttok(rec.id), sim_->now(),
        {{"status", "failed"},
         {"reason", launch_failure ? "launch failure" : "attempt failure"},
         {"consumed_mib", consumed}});
  }

  --running_reduce_count_;
  task.node = kInvalidNode;
  task.phase = TaskPhase::kStarting;
  task.integrator.reset();
  task.compute_start = 0;
  task.planned_fault = PlannedFault::kNone;
  task.fail_frac = 0;
  reduce_requeue_.push_back(idx);

  const std::uint32_t attempts = ++reduce_attempt_failures_[idx];
  if (journal_ != nullptr) {
    journal_->record_reduce_attempt_failure(static_cast<std::uint32_t>(idx));
  }
  record_fault(launch_failure ? faults::FaultEventType::kLaunchFailure
                              : faults::FaultEventType::kAttemptFailure,
               node, rec.id, attempts);
  note_node_attempt_failure(node);
  if (attempts >= plan_.max_attempts) {
    abort_job("reduce task " + std::to_string(rec.id) + " failed " +
              std::to_string(attempts) + " attempts");
  }
  rm_.release(node);
  sim_->schedule_after(0.0, [this]() {
    if (!done_) rm_.offer_all();
  });
}

void JobDriver::note_node_attempt_failure(NodeId node) {
  if (journal_ != nullptr) journal_->record_node_attempt_failure(node);
  ++node_failed_attempts_[node];
  if (blacklisted_[node] == 0 &&
      node_failed_attempts_[node] >= plan_.blacklist_threshold) {
    blacklisted_[node] = 1;
    record_fault(faults::FaultEventType::kBlacklist, node, kInvalidTask,
                 node_failed_attempts_[node]);
  }
}

bool JobDriver::blacklist_saturated() const {
  // Hadoop's ignore-threshold compares the blacklist against the live
  // cluster: once too many of the surviving nodes are blacklisted the AM
  // ignores the list entirely rather than starve itself.
  std::uint32_t blacklisted = 0;
  std::uint32_t alive = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(blacklisted_.size()); ++n) {
    if (failed_nodes_.count(n) > 0) continue;
    ++alive;
    if (blacklisted_[n] != 0) ++blacklisted;
  }
  return alive == 0 ||
         static_cast<double>(blacklisted) >
             plan_.blacklist_ignore_fraction * static_cast<double>(alive);
}

void JobDriver::abort_job(const std::string& reason) {
  if (done_) return;
  record_fault(faults::FaultEventType::kAbort, kInvalidNode);
  result_.aborted = true;
  result_.abort_reason = reason;
  finish_job();
}

void JobDriver::on_speed_change(NodeId node) {
  // The cluster keeps changing speeds after this job finished (shared
  // simulations); a finished job has nothing left to re-rate. Tasks on a
  // silently-dead node are frozen at rate 0 and must not be re-rated.
  if (done_ || silent_nodes_.count(node) > 0) return;
  for (const TaskId id : live_map_ids_) {
    MapTask& task = *map_tasks_[id];
    if (task.node != node || task.phase != TaskPhase::kComputing) continue;
    task.integrator->set_rate(sim_->now(), map_rate(task));
    // A doomed attempt dies at its pre-drawn wall-clock moment; only the
    // progress it wastes is re-rated, not the death itself.
    if (task.planned_fault == PlannedFault::kAttemptFail) continue;
    reschedule_map_completion(task);
  }
  for (std::size_t idx = 0; idx < reduce_tasks_.size(); ++idx) {
    ReduceTask& task = *reduce_tasks_[idx];
    if (task.node != node || task.phase != TaskPhase::kComputing) continue;
    task.integrator->set_rate(sim_->now(), reduce_rate(task));
    if (task.planned_fault == PlannedFault::kAttemptFail) continue;
    if (task.pending_event != kInvalidEvent) {
      sim_->cancel(task.pending_event);
    }
    const auto eta = task.integrator->eta(sim_->now());
    FLEXMR_ASSERT(eta.has_value());
    task.pending_event =
        sim_->schedule_on(sim_->lane_for_node(task.node), *eta,
                          [this, idx]() { reduce_complete(idx); });
  }
}

std::vector<RunningMapInfo> JobDriver::running_maps() const {
  FLEXMR_PROF_SCOPE("mr/running_maps");
  // The hottest driver scan (the schedulers call this every offer and
  // every straggler probe). Each element is pure per-task computation —
  // RateIntegrator::done(now) is const and touches only that task — so
  // the sharded engine may build the snapshot in chunks on the lane
  // workers. Chunks are concatenated in chunk order, which is element
  // order, so the result (and every FP byte in it) is identical to the
  // serial build; see DESIGN.md §13.4 for what makes a kernel chunkable.
  const auto snapshot = [&](const TaskId id,
                            std::vector<RunningMapInfo>& out) {
    const MapTask& task = *map_tasks_[id];
    if (task.phase == TaskPhase::kDone) return;
    RunningMapInfo info;
    info.id = task.id;
    info.node = task.node;
    info.size_mib = task.size;
    info.computing = task.phase == TaskPhase::kComputing;
    info.bytes_read =
        info.computing ? task.integrator->done(sim_->now()) : 0.0;
    info.progress = task.size > 0 ? info.bytes_read / task.size : 0.0;
    info.dispatch_time = task.dispatch_time;
    info.speculative = task.speculative;
    info.has_twin = task.twin != kInvalidTask;
    out.push_back(info);
  };
  LaneSet* lanes = sim_->lane_set();
  if (lanes != nullptr && lanes->workers() > 0 &&
      live_map_ids_.size() >= kParallelSnapshotMin) {
    const std::size_t max_chunks = lanes->workers() + 1;
    std::vector<std::vector<RunningMapInfo>> parts(max_chunks);
    lanes->run_chunked(
        live_map_ids_.size(), kParallelSnapshotMin,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          auto& part = parts[chunk];
          part.reserve(end - begin);
          for (std::size_t i = begin; i < end; ++i) {
            snapshot(live_map_ids_[i], part);
          }
        });
    std::vector<RunningMapInfo> out;
    out.reserve(live_map_ids_.size());
    for (auto& part : parts) {
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }
  std::vector<RunningMapInfo> out;
  out.reserve(live_map_ids_.size());
  for (const TaskId id : live_map_ids_) snapshot(id, out);
  return out;
}

std::optional<MiBps> JobDriver::observed_ips(NodeId node) const {
  FLEXMR_ASSERT(node < round_ips_.size());
  return round_ips_[node];
}

double JobDriver::map_phase_progress() const {
  return static_cast<double>(processed_bus_) /
         static_cast<double>(layout_->bus.size());
}

// ---------------------------------------------------------------------------
// Tracing (opt-in; every helper is a no-op when no session is installed)
// ---------------------------------------------------------------------------

void JobDriver::set_trace(obs::TraceSession* trace) {
  set_trace(trace, TraceNamespace{});
}

void JobDriver::set_trace(obs::TraceSession* trace, TraceNamespace ns) {
  FLEXMR_ASSERT_MSG(!started_, "install tracing before run()");
  trace_ = trace;
  trace_ns_ = std::move(ns);
}

void JobDriver::trace_setup() {
  if (trace_ == nullptr) return;
  tracer_ = &trace_->tracer();
  tracer_->set_clock([this]() { return sim_->now(); });
  tracer_->set_process_name(
      trace_ns_.job_pid,
      trace_ns_.label.empty()
          ? "job " + job_.name + " [" + scheduler_->name() + "]"
          : trace_ns_.label);
  tracer_->set_thread_name(trace_ns_.job_pid, 0, "phases");
  for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
    tracer_->set_process_name(
        obs::node_pid(node), "node " + std::to_string(node) + " (" +
                                 cluster_->machine(node).spec().model + ")");
    tracer_->set_thread_name(obs::node_pid(node), 0, "scheduler");
  }
  if (replica_mgr_) {
    tracer_->set_process_name(obs::kNameNodePid, "hdfs namenode");
    tracer_->set_thread_name(obs::kNameNodePid, 0, "re-replication");
    replica_mgr_->set_tracer(tracer_);
  }
  if (injector_) {
    tracer_->set_process_name(obs::kFaultsPid, "fault injector");
    tracer_->set_thread_name(obs::kFaultsPid, 0, "ground truth");
    injector_->set_tracer(tracer_);
  }

  // All instruments are registered up front: the registry's column layout
  // freezes at the first sampled row. Counters and histograms dedupe by
  // name, so drivers sharing one session aggregate into service-wide
  // instruments.
  auto& metrics = trace_->metrics();
  ctr_maps_dispatched_ = &metrics.counter("maps_dispatched");
  ctr_maps_completed_ = &metrics.counter("maps_completed");
  ctr_maps_killed_ = &metrics.counter("maps_killed");
  ctr_speculative_kills_ = &metrics.counter("speculative_kills");
  ctr_reduces_dispatched_ = &metrics.counter("reduces_dispatched");
  ctr_reduces_completed_ = &metrics.counter("reduces_completed");
  ctr_fetch_failures_ = &metrics.counter("fetch_failures");
  ctr_fault_events_ = &metrics.counter("fault_events");
  ctr_heartbeats_ = &metrics.counter("heartbeats");
  ctr_am_restarts_ = &metrics.counter("am_restarts");
  ctr_redone_units_ = &metrics.counter("redone_work_units");
  ctr_degraded_reads_ = &metrics.counter("degraded_reads");
  ctr_parts_reconstructed_ = &metrics.counter("parts_reconstructed");
  if (am_attempt_ > 1) ctr_am_restarts_->inc();
  metrics.histogram("map.total_runtime_s");
  metrics.histogram("map.effective_runtime_s");
  metrics.histogram("map.input_mib");
  metrics.histogram("reduce.total_runtime_s");
  metrics.histogram("reduce.input_mib");

  if (!trace_ns_.register_gauges) {
    trace_begin_phase(map_phase_done_ ? "reduce phase (recovered)"
                                      : "map phase");
    return;
  }
  metrics.register_gauge("cluster_utilization", [this]() {
    const double total = static_cast<double>(rm_.total_slots());
    return total > 0 ? (total - static_cast<double>(rm_.total_free())) / total
                     : 0.0;
  });
  metrics.register_gauge("rm_free_containers", [this]() {
    return static_cast<double>(rm_.total_free());
  });
  metrics.register_gauge("pending_map_bus", [this]() {
    return static_cast<double>(index_.unprocessed());
  });
  metrics.register_gauge("pending_reducers", [this]() {
    return static_cast<double>(reduce_tasks_.size() - next_reducer_ +
                               reduce_requeue_.size());
  });
  metrics.register_gauge("running_maps", [this]() {
    return static_cast<double>(running_map_count_);
  });
  metrics.register_gauge("running_reduces", [this]() {
    return static_cast<double>(running_reduce_count_);
  });
  metrics.register_gauge("in_flight_fetches", [this]() {
    std::size_t fetching = 0;
    for (const auto& owned : reduce_tasks_) {
      if (owned->phase == TaskPhase::kFetching) ++fetching;
    }
    return static_cast<double>(fetching);
  });
  metrics.register_gauge("under_replicated_blocks", [this]() {
    return replica_mgr_ ? static_cast<double>(
                              replica_mgr_->under_replicated_count())
                        : 0.0;
  });
  if (layout_->storage.erasure()) {
    // rs(k,m) alias of the same backlog: the repair queue holds blocks
    // below their k+m part target, sized for the erasure dashboards.
    metrics.register_gauge("repair_backlog", [this]() {
      return replica_mgr_ ? static_cast<double>(
                                replica_mgr_->under_replicated_count())
                          : 0.0;
    });
  }
  if (trace_->options().per_node_gauges) {
    for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
      metrics.register_gauge(
          "node" + std::to_string(node) + "_ips_mibps", [this, node]() {
            return round_ips_[node] ? *round_ips_[node] : 0.0;
          });
    }
  }

  trace_begin_phase(map_phase_done_ ? "reduce phase (recovered)"
                                    : "map phase");
}

void JobDriver::trace_begin_phase(const char* name) {
  if (tracer_ == nullptr) return;
  tracer_->begin({trace_ns_.job_pid, 0}, name, "phase", sim_->now());
  trace_phase_open_ = true;
}

void JobDriver::trace_end_phase() {
  if (tracer_ == nullptr || !trace_phase_open_) return;
  tracer_->end({trace_ns_.job_pid, 0}, sim_->now());
  trace_phase_open_ = false;
}

void JobDriver::trace_map_begin(const MapTask& task) {
  std::string name = "map " + std::to_string(task.id);
  if (task.speculative) {
    name += " (spec of " + std::to_string(task.twin) + ")";
  }
  tracer_->task_begin(
      obs::node_pid(task.node), ttok(task.id), std::move(name), "map",
      task.dispatch_time,
      {{"num_bus", static_cast<std::uint64_t>(task.bus.size())},
       {"size_mib", task.size},
       {"avg_cost", task.avg_cost},
       {"local_fraction", task.local_fraction},
       {"speculative", task.speculative}});
  tracer_->task_child_begin(ttok(task.id), "startup", task.dispatch_time);
  ctr_maps_dispatched_->inc();
}

void JobDriver::trace_task_closed(TaskId id, const char* status,
                                  const char* reason, MiB consumed) {
  if (tracer_ == nullptr || !tracer_->task_open(ttok(id))) return;
  tracer_->task_end(ttok(id), sim_->now(),
                    {{"status", status},
                     {"reason", reason},
                     {"consumed_mib", consumed}});
}

void JobDriver::trace_finish() {
  if (trace_ == nullptr) return;
  // Close anything still open in deterministic id order (the internal
  // open-task map is unordered); aborted jobs leave spans dangling.
  for (const auto& owned : map_tasks_) {
    if (tracer_->task_open(ttok(owned->id))) {
      tracer_->task_end(ttok(owned->id), sim_->now(),
                        {{"status", "unfinished"}});
    }
  }
  for (const auto& owned : reduce_tasks_) {
    if (tracer_->task_open(ttok(owned->id))) {
      tracer_->task_end(ttok(owned->id), sim_->now(),
                        {{"status", "unfinished"}});
    }
  }
  // Sharded engine: one counter row per event lane (ascending lane order,
  // control lane last) so a trace shows how the window drain spread over
  // the lanes. Classic engine emits nothing here.
  if (sim_->node_lanes() > 0) {
    const auto drained = sim_->lane_drained();
    for (std::size_t lane = 0; lane < drained.size(); ++lane) {
      const std::string name =
          lane == drained.size() - 1 ? "lane_drained/control"
                                     : "lane_drained/" + std::to_string(lane);
      tracer_->counter(trace_ns_.job_pid, name, sim_->now(),
                       static_cast<double>(drained[lane]));
    }
    // When a self-profiler is active, mirror its lane-imbalance summary
    // into the trace so profiles and traces stay cross-navigable: host-ns
    // busy time per lane plus the max/mean busy ratio. Same naming scheme
    // as lane_drained, control lane last.
    if (const obs::Profiler* prof = obs::Profiler::active()) {
      const auto& lanes = prof->lanes();
      std::uint64_t max_busy = 0;
      std::uint64_t sum_busy = 0;
      for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
        const std::string name =
            lane == lanes.size() - 1
                ? "lane_busy_host_ns/control"
                : "lane_busy_host_ns/" + std::to_string(lane);
        tracer_->counter(trace_ns_.job_pid, name, sim_->now(),
                         static_cast<double>(lanes[lane].busy_ns));
        max_busy = std::max(max_busy, lanes[lane].busy_ns);
        sum_busy += lanes[lane].busy_ns;
      }
      if (!lanes.empty() && sum_busy > 0) {
        const double mean = static_cast<double>(sum_busy) /
                            static_cast<double>(lanes.size());
        tracer_->counter(trace_ns_.job_pid, "lane_imbalance_max_over_mean",
                         sim_->now(), static_cast<double>(max_busy) / mean);
      }
    }
  }
  trace_end_phase();
  trace_->metrics().sample_now(sim_->now());
}

}  // namespace flexmr::mr
