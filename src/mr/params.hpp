// Framework execution parameters (the knobs of Hadoop/YARN itself, as
// opposed to the workload's JobSpec or the hardware's MachineSpec).
//
// Defaults are calibrated against the paper's measurements: with
// container_alloc + jvm_startup = 2.0 s and a 10 MiB/s reference node, an
// 8 MiB wordcount map has productivity 0.8 s / 2.8 s ≈ 0.29, matching the
// ~0.28 reported for the smallest size in Fig. 3c.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace flexmr::mr {

struct SimParams {
  /// YARN container allocation latency per task.
  SimDuration container_alloc_s = 0.5;
  /// JVM startup cost per task (the overhead motivating coarse tasks).
  SimDuration jvm_startup_s = 1.5;
  /// Worker → AM heartbeat period (paper: 5 s).
  SimDuration heartbeat_period_s = 5.0;
  /// Fraction of reduce fetch hidden under the map phase by early shuffle.
  double shuffle_overlap = 0.7;
  /// Relative slowdown of map input read for each non-local byte
  /// (10 GbE makes this small; §IV-F found remote BU access a non-issue).
  double remote_read_penalty = 0.05;
  /// Target reduce-task input when JobSpec::num_reducers is 0 (auto): the
  /// reducer count is intermediate_size / this, clamped to [1, slots] —
  /// the usual Hadoop sizing practice.
  MiB reducer_input_target = 64.0;
  /// Lognormal sigma of per-task-attempt execution noise (JVM GC, disk and
  /// OS jitter). ~0.2 gives the 15-25% runtime CV typical of equal-sized
  /// Hadoop map attempts on idle identical machines.
  double exec_noise_sigma = 0.2;
  /// RNG seed for this run (placement, interference, tie-breaking).
  std::uint64_t seed = 1;
};

}  // namespace flexmr::mr
