#include "mr/trace.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "obs/session.hpp"

namespace flexmr::mr {

namespace {

char glyph(const TaskRecord& task) {
  if (task.status == TaskStatus::kKilled ||
      task.status == TaskStatus::kLostOutput) {
    return 'x';
  }
  return task.kind == TaskKind::kMap ? '=' : '#';
}

}  // namespace

std::string trace_csv(const JobResult& result) {
  std::ostringstream os;
  os << "id,kind,status,node,speculative,dispatch,compute_start,end,"
        "input_mib,num_bus,productivity\n";
  for (const auto& task : result.tasks) {
    os << task.id << ',' << to_string(task.kind) << ','
       << to_string(task.status) << ',' << task.node << ','
       << (task.speculative ? 1 : 0) << ',' << task.dispatch_time << ','
       << task.compute_start << ',' << task.end_time << ','
       << task.input_mib << ',' << task.num_bus << ','
       << task.productivity() << '\n';
  }
  return os.str();
}

std::string gantt(const JobResult& result, const cluster::Cluster& cluster,
                  std::size_t width) {
  FLEXMR_ASSERT(width >= 10);
  const SimTime t0 = result.submit_time;
  const SimTime t1 = std::max(result.finish_time, t0 + 1e-9);
  const double scale = static_cast<double>(width) / (t1 - t0);

  // Assign each task to the first lane of its node that is free at its
  // dispatch time (tasks sorted by dispatch → greedy packing is valid).
  std::vector<const TaskRecord*> sorted;
  sorted.reserve(result.tasks.size());
  for (const auto& task : result.tasks) sorted.push_back(&task);
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              if (a->dispatch_time != b->dispatch_time) {
                return a->dispatch_time < b->dispatch_time;
              }
              return a->id < b->id;
            });

  struct Lane {
    NodeId node;
    std::uint32_t slot;
    SimTime busy_until = -1.0;
    std::string row;
  };
  std::vector<Lane> lanes;
  std::vector<std::size_t> first_lane(cluster.num_nodes());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    first_lane[n] = lanes.size();
    for (std::uint32_t s = 0; s < cluster.machine(n).slots(); ++s) {
      lanes.push_back(Lane{n, s, -1.0, std::string(width, '.')});
    }
  }

  for (const TaskRecord* task : sorted) {
    const std::size_t begin_lane = first_lane[task->node];
    const std::size_t end_lane = begin_lane + cluster.machine(task->node).slots();
    Lane* lane = nullptr;
    for (std::size_t l = begin_lane; l < end_lane; ++l) {
      if (lanes[l].busy_until <= task->dispatch_time + 1e-9) {
        lane = &lanes[l];
        break;
      }
    }
    if (lane == nullptr) lane = &lanes[begin_lane];  // defensive fallback
    lane->busy_until = task->end_time;
    auto col = [&](SimTime t) {
      const auto c = static_cast<std::size_t>((t - t0) * scale);
      return std::min(c, width - 1);
    };
    const std::size_t from = col(task->dispatch_time);
    const std::size_t to = std::max(from, col(task->end_time));
    for (std::size_t c = from; c <= to; ++c) lane->row[c] = glyph(*task);
  }

  std::ostringstream os;
  os << "t = " << t0 << " .. " << t1 << " s   ('=' map, '#' reduce, "
     << "'x' killed, '.' idle)\n";
  for (const auto& lane : lanes) {
    os << "node " << lane.node;
    if (lane.node < 10) os << ' ';
    os << " slot " << lane.slot << " |" << lane.row << "|\n";
  }
  return os.str();
}

std::string job_result_trace_json(const JobResult& result) {
  obs::TraceSession session;
  session.set_metadata("source", "job_result replay");
  session.set_metadata("benchmark", result.benchmark);
  session.set_metadata("scheduler", result.scheduler);
  session.set_metadata("seed", std::to_string(result.seed));
  obs::EventTracer& tracer = session.tracer();

  tracer.set_process_name(obs::kJobPid,
                          "job " + result.benchmark + " [" +
                              result.scheduler + "]");
  tracer.set_thread_name(obs::kJobPid, 0, "phases");
  tracer.complete({obs::kJobPid, 0}, "job", "phase", result.submit_time,
                  result.finish_time - result.submit_time,
                  {{"aborted", result.aborted}});
  if (result.map_phase_end > result.map_phase_start) {
    tracer.complete({obs::kJobPid, 0}, "map phase", "phase",
                    result.map_phase_start,
                    result.map_phase_end - result.map_phase_start, {});
  }

  // Greedy per-node lane packing, as in gantt: tasks sorted by dispatch
  // take the lowest lane free at their dispatch time. Unlike gantt the
  // lane count is not capped at the slot count (a JobResult alone does
  // not know the cluster), so overlap never collides.
  std::vector<const TaskRecord*> sorted;
  sorted.reserve(result.tasks.size());
  for (const auto& task : result.tasks) sorted.push_back(&task);
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              if (a->dispatch_time != b->dispatch_time) {
                return a->dispatch_time < b->dispatch_time;
              }
              return a->id < b->id;
            });
  std::unordered_map<NodeId, std::vector<SimTime>> lanes;
  for (const TaskRecord* task : sorted) {
    const std::uint32_t pid = obs::node_pid(task->node);
    auto [it, inserted] = lanes.try_emplace(task->node);
    if (inserted) {
      tracer.set_process_name(pid,
                              "node " + std::to_string(task->node));
    }
    auto& busy_until = it->second;
    std::size_t lane = 0;
    while (lane < busy_until.size() &&
           busy_until[lane] > task->dispatch_time + 1e-9) {
      ++lane;
    }
    if (lane == busy_until.size()) {
      busy_until.push_back(0.0);
      tracer.set_thread_name(pid, static_cast<std::uint32_t>(lane + 1),
                             "lane " + std::to_string(lane + 1));
    }
    busy_until[lane] = task->end_time;

    std::string name = std::string(to_string(task->kind)) + ' ' +
                       std::to_string(task->id);
    if (task->speculative) name += " (spec)";
    tracer.complete({pid, static_cast<std::uint32_t>(lane + 1)},
                    std::move(name), to_string(task->kind),
                    task->dispatch_time,
                    task->end_time - task->dispatch_time,
                    {{"status", to_string(task->status)},
                     {"input_mib", task->input_mib},
                     {"num_bus", task->num_bus},
                     {"compute_start", task->compute_start},
                     {"productivity", task->productivity()}});
  }

  if (!result.fault_events.empty()) {
    tracer.set_process_name(obs::kFaultsPid, "fault timeline");
    tracer.set_thread_name(obs::kFaultsPid, 0, "events");
    for (const auto& ev : result.fault_events) {
      obs::TraceArgs args;
      if (ev.node != kInvalidNode) args.emplace_back("node", ev.node);
      if (ev.task != kInvalidTask) args.emplace_back("task", ev.task);
      if (ev.attempts != 0) args.emplace_back("attempts", ev.attempts);
      if (ev.block != faults::kInvalidBlock) {
        args.emplace_back("block", ev.block);
      }
      tracer.instant({obs::kFaultsPid, 0}, faults::to_string(ev.type),
                     "fault", ev.time, std::move(args));
    }
  }

  return session.trace_json();
}

}  // namespace flexmr::mr
