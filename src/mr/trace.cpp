#include "mr/trace.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace flexmr::mr {

namespace {

char glyph(const TaskRecord& task) {
  if (task.status == TaskStatus::kKilled ||
      task.status == TaskStatus::kLostOutput) {
    return 'x';
  }
  return task.kind == TaskKind::kMap ? '=' : '#';
}

}  // namespace

std::string trace_csv(const JobResult& result) {
  std::ostringstream os;
  os << "id,kind,status,node,speculative,dispatch,compute_start,end,"
        "input_mib,num_bus,productivity\n";
  for (const auto& task : result.tasks) {
    os << task.id << ',' << to_string(task.kind) << ','
       << to_string(task.status) << ',' << task.node << ','
       << (task.speculative ? 1 : 0) << ',' << task.dispatch_time << ','
       << task.compute_start << ',' << task.end_time << ','
       << task.input_mib << ',' << task.num_bus << ','
       << task.productivity() << '\n';
  }
  return os.str();
}

std::string gantt(const JobResult& result, const cluster::Cluster& cluster,
                  std::size_t width) {
  FLEXMR_ASSERT(width >= 10);
  const SimTime t0 = result.submit_time;
  const SimTime t1 = std::max(result.finish_time, t0 + 1e-9);
  const double scale = static_cast<double>(width) / (t1 - t0);

  // Assign each task to the first lane of its node that is free at its
  // dispatch time (tasks sorted by dispatch → greedy packing is valid).
  std::vector<const TaskRecord*> sorted;
  sorted.reserve(result.tasks.size());
  for (const auto& task : result.tasks) sorted.push_back(&task);
  std::sort(sorted.begin(), sorted.end(),
            [](const TaskRecord* a, const TaskRecord* b) {
              if (a->dispatch_time != b->dispatch_time) {
                return a->dispatch_time < b->dispatch_time;
              }
              return a->id < b->id;
            });

  struct Lane {
    NodeId node;
    std::uint32_t slot;
    SimTime busy_until = -1.0;
    std::string row;
  };
  std::vector<Lane> lanes;
  std::vector<std::size_t> first_lane(cluster.num_nodes());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    first_lane[n] = lanes.size();
    for (std::uint32_t s = 0; s < cluster.machine(n).slots(); ++s) {
      lanes.push_back(Lane{n, s, -1.0, std::string(width, '.')});
    }
  }

  for (const TaskRecord* task : sorted) {
    const std::size_t begin_lane = first_lane[task->node];
    const std::size_t end_lane = begin_lane + cluster.machine(task->node).slots();
    Lane* lane = nullptr;
    for (std::size_t l = begin_lane; l < end_lane; ++l) {
      if (lanes[l].busy_until <= task->dispatch_time + 1e-9) {
        lane = &lanes[l];
        break;
      }
    }
    if (lane == nullptr) lane = &lanes[begin_lane];  // defensive fallback
    lane->busy_until = task->end_time;
    auto col = [&](SimTime t) {
      const auto c = static_cast<std::size_t>((t - t0) * scale);
      return std::min(c, width - 1);
    };
    const std::size_t from = col(task->dispatch_time);
    const std::size_t to = std::max(from, col(task->end_time));
    for (std::size_t c = from; c <= to; ++c) lane->row[c] = glyph(*task);
  }

  std::ostringstream os;
  os << "t = " << t0 << " .. " << t1 << " s   ('=' map, '#' reduce, "
     << "'x' killed, '.' idle)\n";
  for (const auto& lane : lanes) {
    os << "node " << lane.node;
    if (lane.node < 10) os << ' ';
    os << " slot " << lane.slot << " |" << lane.row << "|\n";
  }
  return os.str();
}

}  // namespace flexmr::mr
