#include "recover/journal.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/json.hpp"

namespace flexmr::recover {

void JobJournal::record_map_commit(TaskId task, NodeId node,
                                   const std::vector<BlockUnitId>& bus,
                                   MiB size) {
  Record r;
  r.op = Op::kMapCommit;
  r.map = CommittedMap{task, node, bus, size, 0};
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_map_output_lost(TaskId task) {
  Record r;
  r.op = Op::kMapOutputLost;
  r.task = task;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_reduce_plan(std::uint32_t num_reducers) {
  Record r;
  r.op = Op::kReducePlan;
  r.index = num_reducers;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_reduce_commit(std::uint32_t index, NodeId node,
                                      MiB input) {
  Record r;
  r.op = Op::kReduceCommit;
  r.index = index;
  r.node = node;
  r.input = input;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_bu_attempt_failure(BlockUnitId bu) {
  Record r;
  r.op = Op::kBuAttemptFailure;
  r.bu = bu;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_reduce_attempt_failure(std::uint32_t index) {
  Record r;
  r.op = Op::kReduceAttemptFailure;
  r.index = index;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_node_attempt_failure(NodeId node) {
  Record r;
  r.op = Op::kNodeAttemptFailure;
  r.node = node;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_fetch_report(TaskId task) {
  Record r;
  r.op = Op::kFetchReport;
  r.task = task;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::record_scheduler_note(const SchedulerNote& note) {
  Record r;
  r.op = Op::kSchedulerNote;
  r.note = note;
  log_.push_back(std::move(r));
  ++total_appends_;
}

void JobJournal::apply(RecoveredState& state, const Record& r) {
  switch (r.op) {
    case Op::kMapCommit:
      state.committed_maps.push_back(r.map);
      break;
    case Op::kMapOutputLost: {
      // A voided commit disappears entirely: its BUs are uncommitted, its
      // fetch-report count dies with it (the re-run gets a fresh task id).
      auto& maps = state.committed_maps;
      maps.erase(std::remove_if(maps.begin(), maps.end(),
                                [&](const CommittedMap& m) {
                                  return m.task == r.task;
                                }),
                 maps.end());
      break;
    }
    case Op::kReducePlan:
      state.reduce_planned = true;
      state.num_reducers = r.index;
      break;
    case Op::kReduceCommit:
      state.committed_reduces.push_back(
          RecoveredState::CommittedReduce{r.index, r.node, r.input});
      break;
    case Op::kBuAttemptFailure:
      ++state.bu_attempt_failures[r.bu];
      break;
    case Op::kReduceAttemptFailure:
      ++state.reduce_attempt_failures[r.index];
      break;
    case Op::kNodeAttemptFailure:
      ++state.node_failed_attempts[r.node];
      break;
    case Op::kFetchReport:
      for (CommittedMap& m : state.committed_maps) {
        if (m.task == r.task) {
          ++m.fetch_reports;
          break;
        }
      }
      break;
    case Op::kSchedulerNote:
      state.scheduler_notes.push_back(r.note);
      break;
  }
}

void JobJournal::snapshot(SimTime now) {
  for (const Record& r : log_) apply(snapshot_state_, r);
  log_.clear();
  ++snapshots_taken_;
  last_snapshot_at_ = now;
}

void JobJournal::rebase(RecoveredState state) {
  snapshot_state_ = std::move(state);
  log_.clear();
}

RecoveredState JobJournal::replay() const {
  RecoveredState state = snapshot_state_;
  for (const Record& r : log_) apply(state, r);
  return state;
}

std::string JobJournal::to_json() const {
  const RecoveredState state = replay();
  JsonWriter w;
  w.begin_object();
  w.field("schema", "flexmr.journal.v1");
  w.field("snapshots_taken", snapshots_taken_);
  w.field("last_snapshot_s", last_snapshot_at_);
  w.field("total_appends", total_appends_);
  w.field("pending_log_records", static_cast<std::uint64_t>(log_.size()));
  w.field("replayed_units",
          static_cast<std::uint64_t>(state.replayed_units()));
  w.field("replayed_mib", state.replayed_mib());
  w.key("committed_maps").begin_array();
  for (const CommittedMap& m : state.committed_maps) {
    w.begin_object();
    w.field("task", m.task);
    w.field("node", m.node);
    w.field("num_bus", static_cast<std::uint64_t>(m.bus.size()));
    w.field("size_mib", m.size);
    if (m.fetch_reports > 0) w.field("fetch_reports", m.fetch_reports);
    w.end_object();
  }
  w.end_array();
  if (state.reduce_planned) {
    w.field("num_reducers", state.num_reducers);
    w.key("committed_reduces").begin_array();
    for (const auto& r : state.committed_reduces) {
      w.begin_object();
      w.field("index", r.index);
      w.field("node", r.node);
      w.field("input_mib", r.input);
      w.end_object();
    }
    w.end_array();
  }
  w.key("attempt_failures").begin_object();
  w.field("bus", static_cast<std::uint64_t>(state.bu_attempt_failures.size()));
  w.field("reducers",
          static_cast<std::uint64_t>(state.reduce_attempt_failures.size()));
  w.field("nodes",
          static_cast<std::uint64_t>(state.node_failed_attempts.size()));
  w.end_object();
  w.field("scheduler_notes",
          static_cast<std::uint64_t>(state.scheduler_notes.size()));
  w.end_object();
  return w.str();
}

}  // namespace flexmr::recover
