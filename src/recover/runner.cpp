#include "recover/runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/session.hpp"

namespace flexmr::recover {

namespace {
/// Trace-token spacing between AM attempts: each attempt's task ids start
/// at 0 again (reduce tokens at 1'000'000), so successor attempts record
/// under disjoint token ranges inside the shared tracer.
constexpr std::uint64_t kAttemptTokenStride = 10'000'000ULL;
}  // namespace

RecoveryRunner::RecoveryRunner(Simulator& sim, cluster::Cluster& cluster,
                               const hdfs::FileLayout& layout,
                               mr::JobSpec job, mr::SimParams params,
                               mr::Scheduler& scheduler,
                               faults::FaultPlan plan,
                               obs::TraceSession* trace)
    : sim_(&sim),
      cluster_(&cluster),
      layout_(&layout),
      job_(std::move(job)),
      params_(params),
      scheduler_(&scheduler),
      plan_(std::move(plan)),
      trace_(trace),
      rng_(params.seed ^ 0x5ec0feed0a11fa17ULL) {
  FLEXMR_ASSERT_MSG(plan_.has_am_faults(),
                    "RecoveryRunner without AM faults; use JobDriver::run");
}

mr::JobResult RecoveryRunner::run() {
  FLEXMR_ASSERT_MSG(attempts_.empty(), "RecoveryRunner is one-shot");

  // Attempt 1 is a plain single-job driver: it owns the RM and arms the
  // cluster's interference models, exactly as a runner-less run would.
  auto first = std::make_unique<mr::JobDriver>(*sim_, *cluster_, *layout_,
                                               job_, params_, *scheduler_);
  first->install_faults(plan_);
  first->set_journal(&journal_);
  if (trace_ != nullptr) first->set_trace(trace_);
  current_ = first.get();
  attempts_.push_back(std::move(first));
  current_->start();

  // Fixed crash times kill whichever attempt is live then; a crash landing
  // in AM downtime (or after the job finished) finds no AM to kill.
  for (const SimTime at : plan_.am_crashes) {
    sim_->schedule_at(at, [this]() { on_am_crash(); });
  }
  arm_mttf();

  while (!aborted_ && !(current_->done() && !restart_pending_)) {
    if (!sim_->step()) {
      throw InvariantError("simulation ran dry before job completion");
    }
    // Same pull-based sampling as JobDriver::run — never schedules events,
    // so event-queue counters match a trace-free run.
    if (trace_ != nullptr) trace_->metrics().maybe_sample(sim_->now());
  }

  mr::JobResult merged = merge();
  if (merged.aborted) {
    // Copy the reason out first: argument evaluation order is unspecified,
    // so passing merged.abort_reason alongside std::move(merged) could bind
    // the reference to a moved-from (empty) string.
    const std::string reason = merged.abort_reason;
    if (!merged.lost_blocks.empty()) {
      throw mr::DataLossError(reason, std::move(merged));
    }
    throw mr::JobAbortedError(reason, std::move(merged));
  }
  return merged;
}

void RecoveryRunner::on_am_crash() {
  // Finished, aborted in-attempt, or already crashed (downtime): inert.
  if (current_->done()) return;
  current_->crash_am();
  attempt_records_.push_back(current_->result().am_attempts.back());

  if (current_->am_attempt() >= plan_.am_max_attempts) {
    aborted_ = true;
    abort_reason_ = "AM crashed on attempt " +
                    std::to_string(current_->am_attempt()) + " of " +
                    std::to_string(plan_.am_max_attempts) +
                    " (am_max_attempts exhausted)";
    abort_time_ = sim_->now();
    return;
  }
  restart_pending_ = true;
  sim_->schedule_after(plan_.am_restart_delay_s, [this]() { restart(); });
}

void RecoveryRunner::restart() {
  mr::AmRecoveryBaton baton = current_->release_recovery();
  attempt_records_.back().restart_time = sim_->now();
  attempt_records_.back().replayed_units =
      static_cast<std::uint64_t>(baton.recovered.replayed_units());

  // Every successor allocates from attempt 1's surviving RM (YARN outlives
  // the application attempt); the offer stream re-points at it.
  yarn::ResourceManager& rm = attempts_.front()->resource_manager();
  auto next = std::make_unique<mr::JobDriver>(
      *sim_, *cluster_, *layout_, job_, params_, *scheduler_, rm);
  const std::uint32_t attempt_no = baton.next_attempt;
  next->adopt_recovery(std::move(baton));
  if (trace_ != nullptr) {
    mr::TraceNamespace ns;
    ns.token_base = kAttemptTokenStride * (attempt_no - 1);
    ns.register_gauges = false;  // gauges are per-driver; one copy suffices
    next->set_trace(trace_, ns);
  }
  mr::JobDriver* raw = next.get();
  rm.set_offer_handler([raw](NodeId node) { return raw->offer(node); });
  attempts_.push_back(std::move(next));
  current_ = raw;
  restart_pending_ = false;
  current_->start();
  arm_mttf();
}

void RecoveryRunner::arm_mttf() {
  if (plan_.am_crash_mttf_s <= 0.0) return;
  const SimTime at = sim_->now() + rng_.exponential(plan_.am_crash_mttf_s);
  const std::uint32_t attempt = current_->am_attempt();
  sim_->schedule_at(at, [this, attempt]() {
    // The draw was this attempt's lifetime; if a fixed crash already took
    // it (a successor is live), the stale draw must not fire on the
    // successor — it draws its own at registration.
    if (current_->am_attempt() != attempt) return;
    on_am_crash();
  });
}

mr::JobResult RecoveryRunner::merge() const {
  mr::JobResult merged = current_->result();

  if (aborted_) {
    // crash_am leaves no finish_time and no abort record; the runner is
    // the authority that declared the job dead.
    merged.aborted = true;
    merged.abort_reason = abort_reason_;
    faults::FaultEvent ev;
    ev.time = abort_time_;
    ev.type = faults::FaultEventType::kAbort;
    ev.attempts = current_->am_attempt();
    merged.fault_events.push_back(ev);
    const SimCounters counters = sim_->counters();
    merged.sim_events_fired = counters.fired;
    merged.sim_events_cancelled = counters.cancelled;
    merged.sim_queue_peak = counters.queue_peak;
  }

  if (attempts_.size() > 1) {
    // Prior attempts' task records and fault timelines come first: each
    // attempt's are internally chronological and attempts are disjoint in
    // time, so concatenation preserves order.
    std::vector<mr::TaskRecord> tasks;
    std::vector<faults::FaultEvent> events;
    for (std::size_t i = 0; i + 1 < attempts_.size(); ++i) {
      const mr::JobResult& r = attempts_[i]->result();
      tasks.insert(tasks.end(), r.tasks.begin(), r.tasks.end());
      events.insert(events.end(), r.fault_events.begin(),
                    r.fault_events.end());
    }
    tasks.insert(tasks.end(), merged.tasks.begin(), merged.tasks.end());
    events.insert(events.end(), merged.fault_events.begin(),
                  merged.fault_events.end());
    merged.tasks = std::move(tasks);
    merged.fault_events = std::move(events);

    // The job began when attempt 1 did; AM downtime counts against JCT.
    const mr::JobResult& first = attempts_.front()->result();
    merged.submit_time = first.submit_time;
    merged.map_phase_start = first.map_phase_start;
    for (const auto& attempt : attempts_) {
      merged.map_phase_end =
          std::max(merged.map_phase_end, attempt->result().map_phase_end);
    }
  }

  merged.am_attempts = attempt_records_;
  merged.redone_work_mib = 0;
  merged.redone_work_units = 0;
  for (const mr::AmAttemptRecord& rec : attempt_records_) {
    merged.redone_work_mib += rec.wasted_mib;
    merged.redone_work_units += rec.wasted_units;
  }
  return merged;
}

}  // namespace flexmr::recover
