// JobJournal — the AM's append-only completed-work log, and the replay
// that rebuilds a fresh AppMaster from it.
//
// A real MRAppMaster survives its own death by journaling *committed*
// work to the job-history staging log and replaying it on restart
// (`yarn.app.mapreduce.am.job.recovery.enable`); everything in flight at
// the crash is lost and re-run. This file models exactly that contract,
// in the changelog+snapshot idiom of consensus meta-state stores: the
// driver appends a record at every commit point, a periodic snapshot
// folds the prefix into compact per-task state so the log does not grow
// with job length, and replay = snapshot ∘ tail.
//
// What is journaled (the commit points):
//   * a map commit: task id, node, the exact BU set credited (including
//     partial-credit prefixes from kills/preemptions) and its input size,
//   * a later loss of that map's output (fetch-failure re-execution or
//     host death) — which *removes* the commit again,
//   * the reduce plan (reducer count is auto-sized from *live* slots at
//     shuffle start, so it must be pinned, not recomputed),
//   * a reduce commit: reducer index, node, input size,
//   * attempt-failure charges (per-BU, per-reducer, per-node) so retry
//     budgets and blacklists survive the restart,
//   * fetch-failure reports charged against a committed map,
//   * opaque scheduler notes (e.g. FlexMap sizing-epoch records) replayed
//     through Scheduler::on_recovery.
//
// What is deliberately NOT journaled: in-flight task state (torn down on
// crash, matching MRAppMaster), speculation/mitigation queues (transient
// policy state a new AM rebuilds from observation), node speed estimates,
// and silent-node suspicions (the new AM re-detects via heartbeat expiry).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace flexmr::recover {

/// One committed map attempt as the journal remembers it.
struct CommittedMap {
  TaskId task = kInvalidTask;
  NodeId node = kInvalidNode;
  std::vector<BlockUnitId> bus;  ///< Exact credited BU set, input order.
  MiB size = 0;                  ///< Input actually consumed (partial ok).
  std::uint32_t fetch_reports = 0;  ///< Shuffle-failure reports so far.
};

/// Opaque per-scheduler replay record (FlexMap journals sizing-unit
/// changes as {node, unit, frozen}); the journal stores and returns them
/// without interpretation.
struct SchedulerNote {
  std::uint32_t kind = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Everything a fresh AM needs to resume: the fold of snapshot + log tail.
struct RecoveredState {
  /// Committed maps in original commit order (per-node intermediate sums
  /// must be rebuilt in this order for FP-identical bookkeeping).
  std::vector<CommittedMap> committed_maps;
  bool reduce_planned = false;
  std::uint32_t num_reducers = 0;
  /// (reducer index, node, input MiB) of committed reducers.
  struct CommittedReduce {
    std::uint32_t index = 0;
    NodeId node = kInvalidNode;
    MiB input = 0;
  };
  std::vector<CommittedReduce> committed_reduces;
  /// Retry-budget counters, reconstructed exactly.
  std::map<BlockUnitId, std::uint32_t> bu_attempt_failures;
  std::map<std::uint32_t, std::uint32_t> reduce_attempt_failures;
  std::map<NodeId, std::uint32_t> node_failed_attempts;
  std::vector<SchedulerNote> scheduler_notes;

  /// BUs whose map output survives the crash — the replayed (not redone)
  /// work a recovered run gets for free.
  std::size_t replayed_units() const {
    std::size_t n = 0;
    for (const CommittedMap& m : committed_maps) n += m.bus.size();
    return n;
  }
  MiB replayed_mib() const {
    MiB total = 0;
    for (const CommittedMap& m : committed_maps) total += m.size;
    return total;
  }
};

/// The append-only log + snapshot pair one job's AM attempts share.
/// Writes are O(1) appends; snapshot(now) folds the log into the compact
/// snapshot state (truncating the tail); replay() folds snapshot + tail
/// into a RecoveredState. All operations are deterministic and draw no
/// randomness, so an installed-but-unused journal cannot perturb a run.
class JobJournal {
 public:
  void record_map_commit(TaskId task, NodeId node,
                         const std::vector<BlockUnitId>& bus, MiB size);
  /// The commit of `task` is void (output lost to fetch failures or host
  /// death); its BUs become uncommitted again.
  void record_map_output_lost(TaskId task);
  void record_reduce_plan(std::uint32_t num_reducers);
  void record_reduce_commit(std::uint32_t index, NodeId node, MiB input);
  void record_bu_attempt_failure(BlockUnitId bu);
  void record_reduce_attempt_failure(std::uint32_t index);
  void record_node_attempt_failure(NodeId node);
  /// A shuffle-failure report charged against committed map `task`.
  void record_fetch_report(TaskId task);
  void record_scheduler_note(const SchedulerNote& note);

  /// Folds every record so far into the snapshot and truncates the log.
  void snapshot(SimTime now);

  /// Re-keys the journal to a restarted AM's task-id space: the replayed
  /// state (with committed maps renumbered by the caller to the new
  /// attempt's synthetic task ids) becomes the snapshot and the log is
  /// truncated. Monotone counters (snapshots_taken, total_appends)
  /// persist across the rebase.
  void rebase(RecoveredState state);

  /// Snapshot + tail → the state a fresh AM starts from.
  RecoveredState replay() const;

  std::size_t log_records() const { return log_.size(); }
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }
  SimTime last_snapshot_at() const { return last_snapshot_at_; }
  std::uint64_t total_appends() const { return total_appends_; }

  /// flexmr.journal.v1 — the artifact CI shape-checks: snapshot summary +
  /// pending tail, byte-deterministic.
  std::string to_json() const;

 private:
  enum class Op : std::uint8_t {
    kMapCommit,
    kMapOutputLost,
    kReducePlan,
    kReduceCommit,
    kBuAttemptFailure,
    kReduceAttemptFailure,
    kNodeAttemptFailure,
    kFetchReport,
    kSchedulerNote,
  };
  struct Record {
    Op op;
    CommittedMap map;       // kMapCommit
    TaskId task = kInvalidTask;
    std::uint32_t index = 0;
    NodeId node = kInvalidNode;
    MiB input = 0;
    BlockUnitId bu = 0;
    SchedulerNote note;     // kSchedulerNote
  };

  static void apply(RecoveredState& state, const Record& r);

  RecoveredState snapshot_state_;
  std::vector<Record> log_;
  std::uint64_t snapshots_taken_ = 0;
  std::uint64_t total_appends_ = 0;
  SimTime last_snapshot_at_ = 0;
};

}  // namespace flexmr::recover
