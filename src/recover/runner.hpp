// RecoveryRunner — the restart loop around killable AM attempts.
//
// A single-job run with AM faults armed cannot go through JobDriver::run():
// a crashed driver is permanently done() without a finish time, and someone
// outside the dying AM must play YARN's role — notice the application
// attempt failed, wait out the container re-allocation delay, and launch a
// replacement attempt that resumes from the job journal. This runner is
// that someone:
//
//   * attempt 1 is a normal single-job driver (owns the RM, arms cluster
//     interference) with the runner's journal installed,
//   * the runner schedules the plan's fixed `am_crashes` plus one
//     exponential(am_crash_mttf_s) lifetime draw per attempt from its own
//     RNG stream, and fires crash_am() on whichever attempt is live,
//   * after `am_restart_delay_s`, the crashed attempt's baton (fault plan,
//     armed injector, NameNode view, journal replay) moves into a fresh
//     shared-RM driver that re-registers with the surviving RM and replays
//     the journal — re-running only uncommitted work,
//   * a crash on attempt `am_max_attempts` aborts the job (JobAbortedError),
//   * the final JobResult is the last attempt's, with every prior attempt's
//     task records and fault events stitched in chronologically and the
//     per-attempt crash/replay timeline attached. JCT spans first submit to
//     final finish, so AM downtime counts against the job.
//
// Crashed drivers stay alive inside the runner until it is destroyed:
// their pending simulator events capture `this` and are done()-gated, and
// attempt 1 owns the ResourceManager every successor allocates from.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "mr/driver.hpp"
#include "recover/journal.hpp"

namespace flexmr::obs {
class TraceSession;
}

namespace flexmr::recover {

class RecoveryRunner {
 public:
  /// Mirrors the single-job wiring of workloads::run_job. `plan` must have
  /// AM faults (otherwise use JobDriver::run directly); it is validated by
  /// attempt 1's start().
  RecoveryRunner(Simulator& sim, cluster::Cluster& cluster,
                 const hdfs::FileLayout& layout, mr::JobSpec job,
                 mr::SimParams params, mr::Scheduler& scheduler,
                 faults::FaultPlan plan,
                 obs::TraceSession* trace = nullptr);

  /// Runs the job across AM attempts to completion and returns the merged
  /// result. One-shot. Throws JobAbortedError when the attempt budget is
  /// spent (or the job aborts for any in-attempt reason), DataLossError on
  /// unrecoverable input loss.
  mr::JobResult run();

  /// The job's journal (shared by every attempt) — the recovery artifact
  /// CI shape-checks via to_json().
  const JobJournal& journal() const { return journal_; }

  /// AM attempts constructed so far (1 in a crash-free run).
  std::uint32_t attempts_started() const {
    return static_cast<std::uint32_t>(attempts_.size());
  }

 private:
  /// Kills the live attempt; schedules the replacement or aborts the job.
  void on_am_crash();
  /// Builds attempt N+1 from the crashed attempt's baton and starts it.
  void restart();
  /// Draws the current attempt's exponential lifetime (if mttf is armed).
  void arm_mttf();
  /// The last attempt's result plus the stitched cross-attempt timeline.
  mr::JobResult merge() const;

  Simulator* sim_;
  cluster::Cluster* cluster_;
  const hdfs::FileLayout* layout_;
  mr::JobSpec job_;
  mr::SimParams params_;
  mr::Scheduler* scheduler_;
  faults::FaultPlan plan_;
  obs::TraceSession* trace_;
  /// AM-lifetime draws: a stream of its own so arming MTTF crashes never
  /// perturbs the driver/injector sequences (fixed-crash runs stay
  /// byte-identical when mttf stays 0).
  Rng rng_;

  JobJournal journal_;
  /// Every attempt ever started, in order; back() is live (or just
  /// crashed). Earlier entries stay alive — see the header comment.
  std::vector<std::unique_ptr<mr::JobDriver>> attempts_;
  mr::JobDriver* current_ = nullptr;
  bool restart_pending_ = false;
  bool aborted_ = false;
  std::string abort_reason_;
  SimTime abort_time_ = 0;
  /// Crash/replay records across attempts (restart_time and
  /// replayed_units are filled in at the successor's registration).
  std::vector<mr::AmAttemptRecord> attempt_records_;
};

}  // namespace flexmr::recover
