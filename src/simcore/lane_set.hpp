// LaneSet: the worker substrate of the sharded simulator (DESIGN.md §13).
//
// A LaneSet owns a fixed set of parked worker threads and provides one
// primitive — run(n, fn): execute fn(0..n-1) across the workers plus the
// calling thread, blocking until every index completes. The sharded
// engine uses it to drain per-lane event heaps concurrently inside a
// synchronization window, and the driver's read-only decision kernels
// (running_maps(), LATE candidate scans, SkewTune straggler argmax) use
// run_chunked() to fan a scan over contiguous chunks.
//
// Determinism contract: run() parallelizes *execution*, never *results*.
// Callers must write only to per-index (or per-chunk) state, combine in
// index order on the calling thread, and keep every floating-point
// computation per-element — under those rules the output is byte-identical
// to a serial loop regardless of worker count or interleaving (see
// DESIGN.md §13 "what may run off the control lane").
//
// Shared-state guard: on_worker() is true on a LaneSet worker thread;
// mutation sites that must stay on the control lane (ResourceManager
// offers, BlockLocationIndex take_units) assert !on_worker().
//
// With zero workers (the default on a single-core host) every run() is an
// inline loop on the caller — same results, no threads, no sync overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexmr {

class LaneSet {
 public:
  /// Spawns exactly `threads` workers. 0 workers = inline mode: run()
  /// degenerates to a serial loop on the calling thread.
  explicit LaneSet(std::size_t threads = 0);
  ~LaneSet();

  LaneSet(const LaneSet&) = delete;
  LaneSet& operator=(const LaneSet&) = delete;

  /// Workers available beyond the calling thread on this host: one per
  /// hardware thread minus the caller (0 on a single-core machine).
  static std::size_t default_threads();

  /// True when called from a LaneSet worker thread — the guard mutation
  /// sites use to assert they run on the control lane only.
  static bool on_worker();

  std::size_t workers() const { return workers_.size(); }

  /// Executes fn(i) for every i in [0, n), distributing indices across the
  /// workers and the calling thread; returns when all n completed. fn must
  /// not throw and must not touch shared mutable state (write per-index
  /// slots only). With no workers, or n <= 1, runs inline.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Splits [0, n) into contiguous chunks of at least `min_chunk` items
  /// (at most workers() + 1 chunks) and executes fn(chunk, begin, end) for
  /// each. Chunk boundaries may depend on worker count — callers must only
  /// use combining rules whose result is boundary-independent (per-element
  /// maps concatenated in chunk order, first-wins argmax folded in chunk
  /// order).
  void run_chunked(
      std::size_t n, std::size_t min_chunk,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claims and executes indices of the current job until exhausted.
  void work();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;   ///< Workers wait for a new epoch.
  std::condition_variable done_cv_;   ///< Caller waits for completion.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t next_ = 0;       ///< Next unclaimed index (under mutex_).
  std::size_t completed_ = 0;  ///< Indices finished (under mutex_).
  std::uint64_t epoch_ = 0;    ///< Bumped per run() to wake the workers.
  bool stopping_ = false;
};

}  // namespace flexmr
