#include "simcore/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr {

namespace {

/// Nanoseconds elapsed since `t0` on the profiler's clock (0 if negative).
std::uint64_t ns_since(obs::Profiler::Clock::time_point t0) {
  const auto d = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     obs::Profiler::Clock::now() - t0)
                     .count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sharded-engine state (DESIGN.md §13)
// ---------------------------------------------------------------------------
//
// Invariant tying the two engines together: `entries` below always equals
// what the classic engine's queue_.size() would be after the same schedule/
// fire/cancel history — entries are counted in at schedule and counted out
// exactly when the merged fire loop consumes them (fired or skipped as
// cancelled residue), which is the same (time, seq) position at which the
// classic engine pops them. queue_peak, the compaction trigger and the
// compaction count therefore match byte for byte.
struct Simulator::ShardState {
  std::uint32_t lanes = 0;     ///< Node lanes; heap index `lanes` = control.
  SimDuration lookahead = 0;   ///< Window length (heartbeat interval).
  std::unique_ptr<LaneSet> workers;

  /// One binary min-heap on (time, seq) per lane, control last.
  std::vector<std::vector<QueueEntry>> heaps;
  /// Per-lane drain buffers, reused across windows (sorted runs).
  std::vector<std::vector<QueueEntry>> drained;
  /// The current window's merged fire batch, ascending (time, seq);
  /// batch[0, batch_pos) is already consumed.
  std::vector<QueueEntry> batch;
  std::size_t batch_pos = 0;
  /// Min-heap of events scheduled *into* the open window (a handler
  /// scheduling work before window_end); merged with the batch at fire.
  std::vector<QueueEntry> overflow;
  SimTime window_end = 0;
  bool window_open = false;
  /// Total entries across heaps + unconsumed batch + overflow — the
  /// classic queue_.size() equivalent (see invariant above).
  std::size_t entries = 0;

  /// Only fan the drain out to the workers when there is enough queued
  /// work to amortize the wakeup; below this the inline drain wins.
  static constexpr std::size_t kParallelDrainMin = 2048;

  std::uint64_t windows = 0;
  std::uint64_t max_batch = 0;
  std::vector<std::uint64_t> lane_drained;
};

Simulator::Simulator() = default;
Simulator::~Simulator() = default;

void Simulator::configure_lanes(std::uint32_t node_lanes,
                                SimDuration lookahead, std::size_t threads) {
  FLEXMR_ASSERT_MSG(counters_.scheduled == 0,
                    "configure_lanes before scheduling any event");
  FLEXMR_ASSERT_MSG(node_lanes > 0, "at least one node lane");
  FLEXMR_ASSERT_MSG(lookahead > 0.0, "lookahead must be positive");
  shard_ = std::make_unique<ShardState>();
  shard_->lanes = node_lanes;
  shard_->lookahead = lookahead;
  if (threads == 0) threads = LaneSet::default_threads();
  shard_->workers = std::make_unique<LaneSet>(threads);
  shard_->heaps.resize(node_lanes + 1);
  shard_->drained.resize(node_lanes + 1);
  shard_->lane_drained.assign(node_lanes + 1, 0);
}

std::uint32_t Simulator::node_lanes() const {
  return shard_ ? shard_->lanes : 0;
}

std::uint32_t Simulator::lane_for_node(std::uint32_t node) const {
  return shard_ ? node % shard_->lanes : kControlLane;
}

LaneSet* Simulator::lane_set() const {
  return shard_ ? shard_->workers.get() : nullptr;
}

std::vector<std::uint64_t> Simulator::lane_drained() const {
  return shard_ ? shard_->lane_drained : std::vector<std::uint64_t>{};
}

EventId Simulator::schedule_on(std::uint32_t lane, SimTime t,
                               Handler handler) {
  FLEXMR_ASSERT_MSG(t >= now_, "cannot schedule event in the past");
  FLEXMR_ASSERT(static_cast<bool>(handler));

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].handler = std::move(handler);
  const EventId id =
      (static_cast<EventId>(slots_[slot].generation) << 32) | slot;

  const std::uint64_t seq = next_seq_++;
  const QueueEntry entry{t, seq, id};
  if (shard_ == nullptr) {
    queue_.push_back(entry);
    std::push_heap(queue_.begin(), queue_.end(), EntryAfter{});
  } else {
    ShardState& s = *shard_;
    if (s.window_open && t < s.window_end) {
      // Scheduled into the open window: must interleave with the already-
      // drained batch, so it goes to the overflow heap the fire loop
      // merges from.
      s.overflow.push_back(entry);
      std::push_heap(s.overflow.begin(), s.overflow.end(), EntryAfter{});
    } else {
      auto& heap =
          s.heaps[lane == kControlLane ? s.lanes : lane % s.lanes];
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), EntryAfter{});
    }
    ++s.entries;
  }
  ++live_count_;
  ++counters_.scheduled;
  counters_.queue_peak = std::max<std::uint64_t>(
      counters_.queue_peak, shard_ ? shard_->entries : queue_.size());
  return id;
}

void Simulator::release_slot(std::uint32_t slot) {
  // Generation stays non-zero across wraps so an id of 0 is never issued
  // (slot 0, generation 0 would collide with kInvalidEvent).
  if (++slots_[slot].generation == 0) slots_[slot].generation = 1;
  free_slots_.push_back(slot);
  --live_count_;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || slots_[slot].generation != generation_of(id)) {
    return false;  // already fired or cancelled
  }
  slots_[slot].handler.reset();
  release_slot(slot);
  ++counters_.cancelled;
  ++dead_in_queue_;  // the queue entry is skipped lazily — or compacted:
  const std::size_t size = shard_ ? shard_->entries : queue_.size();
  if (dead_in_queue_ > live_count_ && size >= kCompactMinEntries) {
    compact();
  }
  return true;
}

void Simulator::compact() {
  FLEXMR_PROF_SCOPE("sim/compact");
  const auto dead = [this](const QueueEntry& entry) {
    return !pending(entry.id);
  };
  if (shard_ == nullptr) {
    std::erase_if(queue_, dead);
    std::make_heap(queue_.begin(), queue_.end(), EntryAfter{});
  } else {
    ShardState& s = *shard_;
    std::size_t removed = 0;
    for (auto& heap : s.heaps) {
      const std::size_t before = heap.size();
      std::erase_if(heap, dead);
      removed += before - heap.size();
      std::make_heap(heap.begin(), heap.end(), EntryAfter{});
    }
    {
      const std::size_t before = s.overflow.size();
      std::erase_if(s.overflow, dead);
      removed += before - s.overflow.size();
      std::make_heap(s.overflow.begin(), s.overflow.end(), EntryAfter{});
    }
    {
      // Only the unconsumed tail is live storage; erasing preserves order.
      const std::size_t before = s.batch.size();
      s.batch.erase(
          std::remove_if(
              s.batch.begin() + static_cast<std::ptrdiff_t>(s.batch_pos),
              s.batch.end(), dead),
          s.batch.end());
      removed += before - s.batch.size();
    }
    s.entries -= removed;
  }
  dead_in_queue_ = 0;
  ++counters_.compactions;
  FLEXMR_LOG(Debug, "sim") << "compacted event queue at t=" << now_
                           << " (live=" << live_count_
                           << ", compactions=" << counters_.compactions
                           << ")";
}

bool Simulator::step() {
  if (shard_ != nullptr) return step_sharded();
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.front();
    std::pop_heap(queue_.begin(), queue_.end(), EntryAfter{});
    queue_.pop_back();
    const std::uint32_t slot = slot_of(entry.id);
    if (slots_[slot].generation != generation_of(entry.id)) {
      --dead_in_queue_;  // cancelled residue
      continue;
    }
    // Detach before invoking: the handler may schedule into (and reuse)
    // this very slot.
    Handler handler = std::move(slots_[slot].handler);
    slots_[slot].handler.reset();
    release_slot(slot);
    FLEXMR_ASSERT(entry.time >= now_);
    now_ = entry.time;
    ++counters_.fired;
    {
      FLEXMR_PROF_SCOPE("sim/dispatch");
      handler();
    }
    return true;
  }
  return false;
}

bool Simulator::open_window() {
  ShardState& s = *shard_;
  // Window start: the earliest entry across all lanes. A cancelled head
  // still counts — the classic engine would pop it at exactly that (time,
  // seq) position, so the batch must contain (and consume) it there too.
  bool any = false;
  SimTime t_min = 0;
  for (const auto& heap : s.heaps) {
    if (!heap.empty() && (!any || heap.front().time < t_min)) {
      t_min = heap.front().time;
      any = true;
    }
  }
  if (!any) return false;
  s.window_end = t_min + s.lookahead;
  const SimTime window_end = s.window_end;

  // Lane telemetry: the table is sized on the control thread before the
  // fan-out; each lane slot is then written by exactly one drainer, and the
  // LaneSet join publishes the writes back to this thread.
  obs::Profiler* const prof = obs::Profiler::active();
  if (prof != nullptr) prof->ensure_lanes(s.heaps.size());

  // Concurrent per-lane drain: pure POD heap work on lane-local storage —
  // no slot-table access, no shared mutation, so the lanes are trivially
  // race-free. Each run comes out sorted ascending (time, seq).
  const auto drain_lane = [&s, window_end, prof](std::size_t lane) {
    const auto t0 = prof != nullptr ? obs::Profiler::Clock::now()
                                    : obs::Profiler::Clock::time_point{};
    auto& heap = s.heaps[lane];
    auto& out = s.drained[lane];
    out.clear();
    while (!heap.empty() && heap.front().time < window_end) {
      out.push_back(heap.front());
      std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
      heap.pop_back();
    }
    s.lane_drained[lane] += out.size();
    if (prof != nullptr) {
      prof->record_lane_drain(lane, ns_since(t0), out.size());
    }
  };
  std::uint64_t drain_wall_ns = 0;
  {
    FLEXMR_PROF_SCOPE("sim/window_drain");
    const auto t0 = prof != nullptr ? obs::Profiler::Clock::now()
                                    : obs::Profiler::Clock::time_point{};
    if (s.workers->workers() > 0 &&
        s.entries >= ShardState::kParallelDrainMin) {
      s.workers->run(s.heaps.size(), drain_lane);
    } else {
      for (std::size_t lane = 0; lane < s.heaps.size(); ++lane) {
        drain_lane(lane);
      }
    }
    if (prof != nullptr) drain_wall_ns = ns_since(t0);
  }

  // Serial merge of the sorted runs into the fire batch. The merge key is
  // (time, seq) — the classic engine's exact total order. This is the
  // normative cross-lane merge order: lane identity never participates,
  // which is what keeps shared-state handlers (scheduler, RM, one RNG
  // stream) byte-identical to the single-heap engine.
  std::uint64_t merge_ns = 0;
  {
    FLEXMR_PROF_SCOPE("sim/window_merge");
    const auto t0 = prof != nullptr ? obs::Profiler::Clock::now()
                                    : obs::Profiler::Clock::time_point{};
    s.batch.clear();
    s.batch_pos = 0;
    std::size_t total = 0;
    for (const auto& run : s.drained) total += run.size();
    s.batch.reserve(total);
    std::vector<std::size_t> cursor(s.drained.size(), 0);
    for (std::size_t taken = 0; taken < total; ++taken) {
      std::size_t best_lane = s.drained.size();
      for (std::size_t lane = 0; lane < s.drained.size(); ++lane) {
        if (cursor[lane] >= s.drained[lane].size()) continue;
        if (best_lane == s.drained.size() ||
            s.drained[best_lane][cursor[best_lane]] >
                s.drained[lane][cursor[lane]]) {
          best_lane = lane;
        }
      }
      s.batch.push_back(s.drained[best_lane][cursor[best_lane]++]);
    }
    if (prof != nullptr) merge_ns = ns_since(t0);
  }
  if (prof != nullptr) prof->record_window(drain_wall_ns, merge_ns);
  s.window_open = true;
  ++s.windows;
  s.max_batch = std::max<std::uint64_t>(s.max_batch, s.batch.size());
  return true;
}

bool Simulator::step_sharded() {
  ShardState& s = *shard_;
  for (;;) {
    while (s.batch_pos < s.batch.size() || !s.overflow.empty()) {
      // Next event = min of the batch head and the overflow head (events
      // scheduled into the open window), still exact (time, seq) order.
      bool from_overflow;
      if (s.batch_pos >= s.batch.size()) {
        from_overflow = true;
      } else if (s.overflow.empty()) {
        from_overflow = false;
      } else {
        from_overflow = s.batch[s.batch_pos] > s.overflow.front();
      }
      QueueEntry entry;
      if (from_overflow) {
        entry = s.overflow.front();
        std::pop_heap(s.overflow.begin(), s.overflow.end(), EntryAfter{});
        s.overflow.pop_back();
      } else {
        entry = s.batch[s.batch_pos++];
      }
      --s.entries;
      const std::uint32_t slot = slot_of(entry.id);
      if (slots_[slot].generation != generation_of(entry.id)) {
        --dead_in_queue_;  // cancelled residue
        continue;
      }
      Handler handler = std::move(slots_[slot].handler);
      slots_[slot].handler.reset();
      release_slot(slot);
      FLEXMR_ASSERT(entry.time >= now_);
      now_ = entry.time;
      ++counters_.fired;
      {
        FLEXMR_PROF_SCOPE("sim/dispatch");
        handler();
      }
      return true;
    }
    // Window exhausted: close it and open the next one.
    s.window_open = false;
    s.batch.clear();
    s.batch_pos = 0;
    if (!open_window()) return false;
  }
}

void Simulator::run(std::uint64_t max_events) {
  // Exactly `max_events` events may fire; event max_events + 1 must not.
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (!step()) return;
  }
  if (live_events() > 0) {
    throw InvariantError("simulation exceeded max_events — likely a loop");
  }
}

void Simulator::run_until(SimTime t) {
  FLEXMR_ASSERT(t >= now_);
  if (shard_ == nullptr) {
    while (!queue_.empty()) {
      const QueueEntry entry = queue_.front();
      if (!pending(entry.id)) {
        std::pop_heap(queue_.begin(), queue_.end(), EntryAfter{});
        queue_.pop_back();
        --dead_in_queue_;
        continue;
      }
      if (entry.time > t) break;
      step();
    }
    now_ = t;
    return;
  }
  // Sharded mirror of the same front-of-queue contract: the "front" is the
  // global (time, seq) minimum across the batch, the overflow and every
  // lane head. Cancelled residue at the front is popped (even past t, as
  // the classic engine does); the first live entry past t stops the loop;
  // events at exactly t — including ones scheduled during this call —
  // fire in seq order, and the clock lands on exactly t.
  ShardState& s = *shard_;
  for (;;) {
    enum class Source { kNone, kBatch, kOverflow, kHeap };
    Source source = Source::kNone;
    std::size_t heap_index = 0;
    const QueueEntry* front = nullptr;
    const auto consider = [&](const QueueEntry& entry, Source from,
                              std::size_t index) {
      if (front == nullptr || *front > entry) {
        front = &entry;
        source = from;
        heap_index = index;
      }
    };
    if (s.batch_pos < s.batch.size()) {
      consider(s.batch[s.batch_pos], Source::kBatch, 0);
    }
    if (!s.overflow.empty()) {
      consider(s.overflow.front(), Source::kOverflow, 0);
    }
    for (std::size_t lane = 0; lane < s.heaps.size(); ++lane) {
      if (!s.heaps[lane].empty()) {
        consider(s.heaps[lane].front(), Source::kHeap, lane);
      }
    }
    if (front == nullptr) break;
    if (!pending(front->id)) {
      switch (source) {
        case Source::kBatch:
          ++s.batch_pos;
          break;
        case Source::kOverflow:
          std::pop_heap(s.overflow.begin(), s.overflow.end(), EntryAfter{});
          s.overflow.pop_back();
          break;
        case Source::kHeap: {
          auto& heap = s.heaps[heap_index];
          std::pop_heap(heap.begin(), heap.end(), EntryAfter{});
          heap.pop_back();
          break;
        }
        case Source::kNone:
          break;
      }
      --s.entries;
      --dead_in_queue_;
      continue;
    }
    if (front->time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace flexmr
