#include "simcore/simulator.hpp"

#include <utility>

namespace flexmr {

EventId Simulator::schedule_at(SimTime t, Handler handler) {
  FLEXMR_ASSERT_MSG(t >= now_, "cannot schedule event in the past");
  FLEXMR_ASSERT(handler != nullptr);
  const std::uint64_t seq = next_seq_++;
  const EventId id = seq;  // seq doubles as the id; both start at 1
  queue_.push(QueueEntry{t, seq, id});
  handlers_.emplace(id, std::move(handler));
  ++counters_.scheduled;
  counters_.queue_peak = std::max<std::uint64_t>(counters_.queue_peak,
                                                 queue_.size());
  return id;
}

bool Simulator::cancel(EventId id) {
  if (handlers_.erase(id) == 0) return false;  // entry is skipped lazily
  ++counters_.cancelled;
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    Handler handler = std::move(it->second);
    handlers_.erase(it);
    FLEXMR_ASSERT(entry.time >= now_);
    now_ = entry.time;
    ++counters_.fired;
    handler();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  // Exactly `max_events` events may fire; event max_events + 1 must not.
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (!step()) return;
  }
  if (live_events() > 0) {
    throw InvariantError("simulation exceeded max_events — likely a loop");
  }
}

void Simulator::run_until(SimTime t) {
  FLEXMR_ASSERT(t >= now_);
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (!handlers_.contains(entry.id)) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace flexmr
