#include "simcore/simulator.hpp"

#include <algorithm>
#include <utility>

namespace flexmr {

EventId Simulator::schedule_at(SimTime t, Handler handler) {
  FLEXMR_ASSERT_MSG(t >= now_, "cannot schedule event in the past");
  FLEXMR_ASSERT(static_cast<bool>(handler));

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].handler = std::move(handler);
  const EventId id =
      (static_cast<EventId>(slots_[slot].generation) << 32) | slot;

  const std::uint64_t seq = next_seq_++;
  queue_.push_back(QueueEntry{t, seq, id});
  std::push_heap(queue_.begin(), queue_.end(), EntryAfter{});
  ++live_count_;
  ++counters_.scheduled;
  counters_.queue_peak =
      std::max<std::uint64_t>(counters_.queue_peak, queue_.size());
  return id;
}

void Simulator::release_slot(std::uint32_t slot) {
  // Generation stays non-zero across wraps so an id of 0 is never issued
  // (slot 0, generation 0 would collide with kInvalidEvent).
  if (++slots_[slot].generation == 0) slots_[slot].generation = 1;
  free_slots_.push_back(slot);
  --live_count_;
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size() || slots_[slot].generation != generation_of(id)) {
    return false;  // already fired or cancelled
  }
  slots_[slot].handler.reset();
  release_slot(slot);
  ++counters_.cancelled;
  ++dead_in_queue_;  // the queue entry is skipped lazily — or compacted:
  if (dead_in_queue_ > live_count_ && queue_.size() >= kCompactMinEntries) {
    compact();
  }
  return true;
}

void Simulator::compact() {
  std::erase_if(queue_,
                [this](const QueueEntry& entry) { return !pending(entry.id); });
  std::make_heap(queue_.begin(), queue_.end(), EntryAfter{});
  dead_in_queue_ = 0;
  ++counters_.compactions;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.front();
    std::pop_heap(queue_.begin(), queue_.end(), EntryAfter{});
    queue_.pop_back();
    const std::uint32_t slot = slot_of(entry.id);
    if (slots_[slot].generation != generation_of(entry.id)) {
      --dead_in_queue_;  // cancelled residue
      continue;
    }
    // Detach before invoking: the handler may schedule into (and reuse)
    // this very slot.
    Handler handler = std::move(slots_[slot].handler);
    slots_[slot].handler.reset();
    release_slot(slot);
    FLEXMR_ASSERT(entry.time >= now_);
    now_ = entry.time;
    ++counters_.fired;
    handler();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  // Exactly `max_events` events may fire; event max_events + 1 must not.
  for (std::uint64_t fired = 0; fired < max_events; ++fired) {
    if (!step()) return;
  }
  if (live_events() > 0) {
    throw InvariantError("simulation exceeded max_events — likely a loop");
  }
}

void Simulator::run_until(SimTime t) {
  FLEXMR_ASSERT(t >= now_);
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.front();
    if (!pending(entry.id)) {
      std::pop_heap(queue_.begin(), queue_.end(), EntryAfter{});
      queue_.pop_back();
      --dead_in_queue_;
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  now_ = t;
}

}  // namespace flexmr
