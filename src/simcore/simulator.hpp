// Discrete-event simulation core.
//
// A Simulator owns a virtual clock and a priority queue of scheduled
// events. Event ordering is total and deterministic: ties on time break by
// schedule order (a monotone sequence number), so a run is bit-reproducible
// given the same inputs. Events are cancellable: cancel() detaches the
// handler and the queue entry is skipped lazily when popped — this is the
// mechanism task-completion re-estimation is built on (see RateIntegrator).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Lifetime counters of one Simulator, for observability exports: how much
/// work the event queue did and how deep it got. `queue_peak` counts raw
/// queue entries (lazily-cancelled ones included), which is what memory
/// pressure actually tracks.
struct SimCounters {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t queue_peak = 0;
};

class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `handler` to fire at absolute time `t` (>= now).
  EventId schedule_at(SimTime t, Handler handler);

  /// Schedules `handler` to fire `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimDuration delay, Handler handler) {
    return schedule_at(now_ + delay, std::move(handler));
  }

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled (safe to call redundantly).
  bool cancel(EventId id);

  bool pending(EventId id) const { return handlers_.contains(id); }

  /// Number of live (non-cancelled) scheduled events.
  std::size_t live_events() const { return handlers_.size(); }

  /// Lifetime schedule/fire/cancel counts and the queue high-water mark.
  SimCounters counters() const { return counters_; }

  /// Fires the next event; returns false when the queue is exhausted.
  bool step();

  /// Runs until no events remain. `max_events` guards against runaway
  /// simulations: at most `max_events` events fire, and if live events
  /// still remain once the budget is spent, InvariantError is thrown.
  void run(std::uint64_t max_events = 500'000'000ULL);

  /// Runs events with time <= t, then sets the clock to exactly t.
  void run_until(SimTime t);

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  SimCounters counters_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::unordered_map<EventId, Handler> handlers_;
};

}  // namespace flexmr
