// Discrete-event simulation core.
//
// A Simulator owns a virtual clock and a priority queue of scheduled
// events. Event ordering is total and deterministic: ties on time break by
// schedule order (a monotone sequence number), so a run is bit-reproducible
// given the same inputs. Events are cancellable: cancel() detaches the
// handler and the queue entry is skipped lazily when popped — this is the
// mechanism task-completion re-estimation is built on (see RateIntegrator).
//
// Hot-path layout (see DESIGN.md "Performance model"): handlers live in a
// slot table indexed by the low half of the EventId, with a generation
// counter in the high half guarding against stale ids — schedule/cancel/
// fire are O(lg n) heap work plus O(1) slot bookkeeping with no hashing
// and, for the small lambdas every caller uses, no allocation (EventHandler
// stores them inline). Lazily-cancelled queue entries are compacted away
// once they outnumber live events, so heavy re-estimation churn cannot grow
// the heap without bound.
//
// Sharded mode (DESIGN.md §13): configure_lanes() splits the one heap into
// per-node event lanes plus a control lane, executed over a conservative
// synchronization window whose lookahead is the heartbeat interval. Within
// a window the lanes are *drained* concurrently (POD heap work only); the
// drained runs are then merged and FIRED serially in exact (time, seq)
// order, so every observable byte — JobResult JSON, queue_peak, compaction
// count — is identical to the classic single-heap engine. The default
// (no lanes configured) keeps the classic engine untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Lifetime counters of one Simulator, for observability exports: how much
/// work the event queue did and how deep it got. `queue_peak` counts raw
/// queue entries (lazily-cancelled ones included), which is what memory
/// pressure actually tracks; `compactions` counts the sweeps that rebuilt
/// the heap to evict cancelled residue.
struct SimCounters {
  std::uint64_t scheduled = 0;
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t queue_peak = 0;
  std::uint64_t compactions = 0;
};

/// Move-only callable with inline storage sized for the simulator's actual
/// handlers (a `[this]` / `[this, id]` lambda); larger captures fall back
/// to the heap. Replaces std::function on the schedule path, where the
/// per-event allocation dominated cost at scale.
class EventHandler {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventHandler() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventHandler>>>
  EventHandler(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = inline_ops<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = heap_ops<Fn>();
    }
  }

  EventHandler(EventHandler&& other) noexcept { steal(other); }
  EventHandler& operator=(EventHandler&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  EventHandler(const EventHandler&) = delete;
  EventHandler& operator=(const EventHandler&) = delete;
  ~EventHandler() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    FLEXMR_ASSERT(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inline_ops() {
    static constexpr Ops ops{
        [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
        [](void* dst, void* src) {
          Fn* from = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};
    return &ops;
  }

  template <typename Fn>
  static const Ops* heap_ops() {
    static constexpr Ops ops{
        [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
        [](void* dst, void* src) {
          ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
        },
        [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};
    return &ops;
  }

  void steal(EventHandler& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class LaneSet;

class Simulator {
 public:
  using Handler = EventHandler;

  /// Lane affinity value meaning "the control lane" (AM/RM/NameNode/
  /// scheduler events). Also what lane_for_node returns on the classic
  /// engine, where affinity is meaningless.
  static constexpr std::uint32_t kControlLane = 0xffffffffu;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Switches this simulator to the sharded engine: `node_lanes` per-node
  /// event lanes plus one control lane, synchronized over windows of
  /// `lookahead` simulated seconds (the heartbeat interval is the natural
  /// choice — see DESIGN.md §13). `threads` sizes the LaneSet draining the
  /// lanes; 0 = auto (hardware threads minus one, i.e. inline on a
  /// single-core host). Must be called before any event is scheduled.
  void configure_lanes(std::uint32_t node_lanes, SimDuration lookahead,
                       std::size_t threads = 0);

  /// Node lanes configured; 0 = classic single-heap engine.
  std::uint32_t node_lanes() const;

  /// The lane owning `node`'s events (node % node_lanes), or kControlLane
  /// on the classic engine. Affinity is a *placement* hint: fire order is
  /// global (time, seq) regardless, so a mislabeled event is a load-balance
  /// miss, never a correctness bug.
  std::uint32_t lane_for_node(std::uint32_t node) const;

  /// The worker set draining the lanes, for read-only decision kernels to
  /// fan out over (null on the classic engine).
  LaneSet* lane_set() const;

  /// Events drained per lane so far (index node_lanes() = control lane).
  /// Empty on the classic engine. Exported as per-lane tracks in traces.
  std::vector<std::uint64_t> lane_drained() const;

  SimTime now() const { return now_; }

  /// Schedules `handler` to fire at absolute time `t` (>= now).
  EventId schedule_at(SimTime t, Handler handler) {
    return schedule_on(kControlLane, t, std::move(handler));
  }

  /// Schedules `handler` to fire `delay` seconds from now (delay >= 0).
  EventId schedule_after(SimDuration delay, Handler handler) {
    return schedule_on(kControlLane, now_ + delay, std::move(handler));
  }

  /// Lane-affine schedule: like schedule_at, but the event lives on
  /// `lane` (a value from lane_for_node, or kControlLane). On the classic
  /// engine the lane is ignored.
  EventId schedule_on(std::uint32_t lane, SimTime t, Handler handler);

  EventId schedule_on_after(std::uint32_t lane, SimDuration delay,
                            Handler handler) {
    return schedule_on(lane, now_ + delay, std::move(handler));
  }

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled (safe to call redundantly).
  bool cancel(EventId id);

  bool pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() &&
           slots_[slot].generation == generation_of(id);
  }

  /// Number of live (non-cancelled) scheduled events.
  std::size_t live_events() const { return live_count_; }

  /// Lifetime schedule/fire/cancel counts and the queue high-water mark.
  SimCounters counters() const { return counters_; }

  /// Fires the next event; returns false when the queue is exhausted.
  bool step();

  /// Runs until no events remain. `max_events` guards against runaway
  /// simulations: at most `max_events` events fire, and if live events
  /// still remain once the budget is spent, InvariantError is thrown.
  void run(std::uint64_t max_events = 500'000'000ULL);

  /// Runs events with time <= t, then sets the clock to exactly t.
  void run_until(SimTime t);

 private:
  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  /// Min-heap ordering for std::push_heap/pop_heap.
  struct EntryAfter {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a > b;
    }
  };

  /// One handler slot. `generation` (always non-zero) is bumped whenever
  /// the slot's event completes (fires or is cancelled), so ids held by
  /// callers go stale the moment the event is gone.
  struct Slot {
    std::uint32_t generation = 1;
    EventHandler handler;
  };

  /// Compaction is worth a full heap rebuild only once the queue is mostly
  /// dead weight; below this size the residue is too small to matter and
  /// small runs keep byte-identical queue_peak traces.
  static constexpr std::size_t kCompactMinEntries = 2048;

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Frees a slot (handler already disposed of by the caller).
  void release_slot(std::uint32_t slot);

  /// Rebuilds the heap(s) with only live entries.
  void compact();

  /// Sharded engine: computes the next window [t_min, t_min + lookahead),
  /// drains every lane concurrently and merges the runs into the fire
  /// batch. Returns false when every lane is empty.
  bool open_window();

  /// Sharded engine: fires the next batch/overflow event in (time, seq)
  /// order; opens windows as they exhaust.
  bool step_sharded();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  SimCounters counters_;
  std::vector<QueueEntry> queue_;  ///< Binary min-heap on (time, seq).
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  /// Cancelled entries still sitting in the queue/lanes awaiting a lazy
  /// skip (or a compaction sweep).
  std::size_t dead_in_queue_ = 0;
  /// Sharded-engine state; null = classic single-heap engine (every hot
  /// path branches on this one pointer).
  struct ShardState;
  std::unique_ptr<ShardState> shard_;
};

/// The sharded engine under its own name: a Simulator constructed directly
/// into lane mode. Drop-in wherever a Simulator& flows (JobDriver,
/// RecoveryRunner, MultiJobCoordinator) — sharding changes the internal
/// execution strategy, not the observable contract.
class ShardedSimulator : public Simulator {
 public:
  ShardedSimulator(std::uint32_t node_lanes, SimDuration lookahead,
                   std::size_t threads = 0) {
    configure_lanes(node_lanes, lookahead, threads);
  }
};

}  // namespace flexmr
