#include "simcore/lane_set.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexmr {

namespace {
thread_local bool t_on_worker = false;
}  // namespace

LaneSet::LaneSet(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

LaneSet::~LaneSet() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t LaneSet::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 0;
}

bool LaneSet::on_worker() { return t_on_worker; }

void LaneSet::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    FLEXMR_ASSERT_MSG(fn_ == nullptr, "LaneSet::run is not reentrant");
    fn_ = &fn;
    n_ = n;
    next_ = 0;
    completed_ = 0;
    ++epoch_;
  }
  wake_cv_.notify_all();
  work();  // the caller is a worker too
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this]() { return completed_ == n_; });
  fn_ = nullptr;  // the releasing store workers observe via mutex_
}

void LaneSet::work() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard lock(mutex_);
      if (fn_ == nullptr || next_ >= n_) return;
      index = next_++;
      fn = fn_;
    }
    (*fn)(index);
    {
      std::lock_guard lock(mutex_);
      ++completed_;
      if (completed_ == n_) done_cv_.notify_all();
    }
  }
}

void LaneSet::worker_loop() {
  t_on_worker = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_cv_.wait(lock, [&]() { return stopping_ || epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = epoch_;
    }
    work();
  }
}

void LaneSet::run_chunked(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(min_chunk, 1);
  const std::size_t max_chunks = workers_.size() + 1;
  const std::size_t chunks =
      std::clamp<std::size_t>((n + min_chunk - 1) / min_chunk, 1, max_chunks);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  run(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, n);
    if (begin < end) fn(chunk, begin, end);
  });
}

}  // namespace flexmr
