// Lazy progress tracking for work executing at a piecewise-constant rate.
//
// A running map task progresses at node_speed(t), which changes whenever
// interference on its host changes. Instead of ticking, we record
// (work_done, rate, last_update) and integrate on demand:
//   - advance(now) folds elapsed time into work_done,
//   - set_rate(now, r) advances then switches the rate,
//   - eta(now) yields the projected completion time under the current rate,
// so the owner can (re)schedule a cancellable completion event.
#pragma once

#include <optional>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr {

class RateIntegrator {
 public:
  /// `total` is the amount of work (arbitrary unit, e.g. MiB of input);
  /// `rate` is the initial processing rate (unit/s, >= 0).
  RateIntegrator(double total, double rate, SimTime start)
      : total_(total), rate_(rate), last_update_(start) {
    FLEXMR_ASSERT(total > 0.0);
    FLEXMR_ASSERT(rate >= 0.0);
  }

  double total() const { return total_; }
  double rate() const { return rate_; }

  /// Tolerance for clock queries that land marginally *before* the last
  /// update: run_until() snaps the simulator clock to its boundary, and a
  /// caller re-deriving a timestamp from that boundary can end up an ulp
  /// or two earlier after accumulated FP rounding. Deltas within the slack
  /// clamp to last_update_; anything larger is a genuinely out-of-order
  /// call and still asserts. (At a sim time of 1e5 s one double ulp is
  /// ~1.5e-11 s, so 1e-6 s covers rounding by orders of magnitude while
  /// catching real ordering bugs, which skip backwards by whole event
  /// gaps.)
  static constexpr double kClockSlackS = 1e-6;

  /// Folds elapsed time since the last update into completed work.
  void advance(SimTime now) {
    if (now < last_update_) {
      FLEXMR_ASSERT_MSG(last_update_ - now <= kClockSlackS,
                        "advance() called out of order");
      now = last_update_;
    }
    done_ += rate_ * (now - last_update_);
    if (done_ > total_) done_ = total_;
    last_update_ = now;
  }

  /// Advances to `now`, then switches to the new rate.
  void set_rate(SimTime now, double rate) {
    FLEXMR_ASSERT(rate >= 0.0);
    advance(now);
    rate_ = rate;
  }

  /// Grows the work target (multi-block execution appends block units to a
  /// running task's input split).
  void grow_total(SimTime now, double extra) {
    FLEXMR_ASSERT(extra >= 0.0);
    advance(now);
    total_ += extra;
  }

  double done(SimTime now) const {
    if (now < last_update_) {
      FLEXMR_ASSERT_MSG(last_update_ - now <= kClockSlackS,
                        "done() queried out of order");
      now = last_update_;
    }
    const double d = done_ + rate_ * (now - last_update_);
    return d > total_ ? total_ : d;
  }

  double remaining(SimTime now) const { return total_ - done(now); }

  /// Fraction complete in [0, 1].
  double progress(SimTime now) const { return done(now) / total_; }

  bool finished(SimTime now) const { return done(now) >= total_; }

  /// Projected completion time under the current rate; nullopt if stalled
  /// (rate == 0) and unfinished.
  std::optional<SimTime> eta(SimTime now) const {
    const double rem = remaining(now);
    if (rem <= 0.0) return now;
    if (rate_ <= 0.0) return std::nullopt;
    return now + rem / rate_;
  }

 private:
  double total_;
  double done_ = 0.0;
  double rate_;
  SimTime last_update_;
};

}  // namespace flexmr
