// Metrics primitives sampled on a sim-time cadence.
//
// A MetricsRegistry owns three kinds of instruments:
//
//   Counter       monotonically increasing u64, bumped from instrumented code
//   gauge         a read-only callback evaluated at sample time (queue
//                 depths, free containers, speed estimates — state that
//                 already lives in the subsystem being observed)
//   LogHistogram  log-bucketed value distribution (task runtimes, fetch
//                 sizes) with percentile estimation from bucket midpoints
//
// Sampling is *pull-based and event-queue-free*: the driver's run loop
// calls maybe_sample(now) after every simulator step, and the registry
// emits one time-series row per crossed cadence tick. Between simulator
// events no state changes, so a tick crossed by a quiet gap carries values
// identical to the state at the gap's start; a tick crossed by an event
// carries the state just after that event. This keeps the sampler from
// scheduling simulator events of its own — the golden determinism hashes
// cover the simulator's fired/cancelled/queue-peak counters, which must be
// byte-identical with tracing on and off.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace flexmr {
class JsonWriter;
}

namespace flexmr::obs {

/// Log-bucketed histogram: 4 buckets per octave spanning [1e-6, ~5e17),
/// so any bucket's geometric midpoint is within ~9% of every value it
/// absorbs. Values below the first boundary (including zero) land in
/// bucket 0. Exact count/sum/min/max ride along for the summary table.
class LogHistogram {
 public:
  static constexpr int kBucketsPerOctave = 4;
  static constexpr int kNumBuckets = 320;
  static constexpr double kFirstBound = 1e-6;

  void record(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Percentile estimate (q in [0, 1]) from the bucket geometry; exact at
  /// the min/max endpoints.
  double percentile(double q) const;

  static int bucket_index(double value);
  static double bucket_lower(int index);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> buckets_;
};

class MetricsRegistry {
 public:
  class Counter {
   public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  using GaugeFn = std::function<double()>;

  explicit MetricsRegistry(double cadence_s = 1.0);

  /// Instruments are created on first use and ordered by registration;
  /// the time-series columns follow that order (counters, then gauges).
  Counter& counter(const std::string& name);
  void register_gauge(const std::string& name, GaugeFn fn);
  LogHistogram& histogram(const std::string& name);

  bool has_counter(const std::string& name) const;
  std::uint64_t counter_value(const std::string& name) const;
  const LogHistogram* find_histogram(const std::string& name) const;

  double cadence() const { return cadence_s_; }

  /// Emits one row per cadence tick in (last_sampled, now]; the driver
  /// calls this after every simulator step. Never schedules anything.
  void maybe_sample(SimTime now);
  /// Forces a final row at `now` (job completion), ignoring the cadence.
  void sample_now(SimTime now);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const;

  /// Time-series CSV: header `ts_s,<col>,...`, one row per sample.
  std::string csv() const;

  /// Percentile summary of all histograms as an aligned text table.
  std::string histogram_summary() const;

  /// JSON object mirroring the CSV (column names + row arrays), embedded
  /// into flexmr.trace.v1 under "metrics".
  void write_json(JsonWriter& w) const;

 private:
  struct Row {
    SimTime ts;
    std::vector<double> values;
  };

  void capture_row(SimTime ts);

  double cadence_s_;
  SimTime next_sample_ = 0.0;

  std::vector<std::string> counter_names_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::size_t> counter_index_;

  std::vector<std::string> gauge_names_;
  std::vector<GaugeFn> gauges_;

  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<LogHistogram>> histograms_;
  std::map<std::string, std::size_t> histogram_index_;

  std::vector<Row> rows_;
};

}  // namespace flexmr::obs
