#include "obs/session.hpp"

#include "common/json.hpp"

namespace flexmr::obs {

TraceSession::TraceSession(TraceOptions options)
    : options_(options), metrics_(options.metrics_cadence_s) {}

void TraceSession::set_metadata(const std::string& key, std::string value) {
  metadata_[key] = std::move(value);
}

std::string TraceSession::trace_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  for (const auto& [key, value] : metadata_) w.field(key, value);
  w.end_object();
  w.key("metrics");
  metrics_.write_json(w);
  w.key("traceEvents");
  tracer_.write_trace_events(w);
  w.end_object();
  return w.str();
}

}  // namespace flexmr::obs
