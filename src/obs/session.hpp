// TraceSession bundles an EventTracer and a MetricsRegistry for one
// simulated run and owns the flexmr.trace.v1 document shell:
//
//   {
//     "schema": "flexmr.trace.v1",
//     "displayTimeUnit": "ms",
//     "otherData": { ...free-form run metadata... },
//     "metrics":   { cadence, columns, rows, histograms },
//     "traceEvents": [ ...Chrome trace_event stream... ]
//   }
//
// Perfetto ignores the extra top-level keys and loads traceEvents; the
// flexmr-trace CLI additionally writes the metrics block out as CSV.
// Tracing is opt-in: a null TraceSession* in RunConfig (the default) keeps
// every instrumentation site on a pointer-test fast path with zero
// allocations.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace flexmr::obs {

struct TraceOptions {
  /// Sim-time spacing of metrics time-series rows.
  double metrics_cadence_s = 1.0;
  /// Emit a per-node speed-estimate gauge column (wide on big clusters).
  bool per_node_gauges = true;
};

class TraceSession {
 public:
  explicit TraceSession(TraceOptions options = {});

  EventTracer& tracer() { return tracer_; }
  const EventTracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const TraceOptions& options() const { return options_; }

  /// Free-form run metadata surfaced under otherData (scheduler label,
  /// seed, cluster name, ...). Last write per key wins.
  void set_metadata(const std::string& key, std::string value);

  /// The complete flexmr.trace.v1 document.
  std::string trace_json() const;

  std::string metrics_csv() const { return metrics_.csv(); }
  std::string summary() const { return metrics_.histogram_summary(); }

  static constexpr const char* kSchema = "flexmr.trace.v1";

 private:
  TraceOptions options_;
  EventTracer tracer_;
  MetricsRegistry metrics_;
  std::map<std::string, std::string> metadata_;
};

}  // namespace flexmr::obs
