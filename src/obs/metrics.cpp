#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace flexmr::obs {

void LogHistogram::record(double value) {
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

int LogHistogram::bucket_index(double value) {
  if (!(value > kFirstBound)) return 0;
  const double octaves = std::log2(value / kFirstBound);
  const int idx = static_cast<int>(octaves * kBucketsPerOctave) + 1;
  return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
}

double LogHistogram::bucket_lower(int index) {
  if (index <= 0) return 0.0;
  return kFirstBound *
         std::exp2(static_cast<double>(index - 1) / kBucketsPerOctave);
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (static_cast<double>(cumulative) >= target) {
      // Geometric midpoint of the bucket, clamped to the observed range.
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      const double mid = lo <= 0.0 ? hi * 0.5 : std::sqrt(lo * hi);
      return std::min(std::max(mid, min()), max());
    }
  }
  return max();
}

MetricsRegistry::MetricsRegistry(double cadence_s) : cadence_s_(cadence_s) {
  FLEXMR_ASSERT_MSG(cadence_s_ > 0.0, "metrics cadence must be positive");
}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *counters_[it->second];
  FLEXMR_ASSERT_MSG(rows_.empty(),
                    "register instruments before sampling starts");
  counter_index_.emplace(name, counters_.size());
  counter_names_.push_back(name);
  counters_.push_back(std::make_unique<Counter>());
  return *counters_.back();
}

void MetricsRegistry::register_gauge(const std::string& name, GaugeFn fn) {
  FLEXMR_ASSERT(fn != nullptr);
  FLEXMR_ASSERT_MSG(rows_.empty(),
                    "register instruments before sampling starts");
  gauge_names_.push_back(name);
  gauges_.push_back(std::move(fn));
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *histograms_[it->second];
  histogram_index_.emplace(name, histograms_.size());
  histogram_names_.push_back(name);
  histograms_.push_back(std::make_unique<LogHistogram>());
  return *histograms_.back();
}

bool MetricsRegistry::has_counter(const std::string& name) const {
  return counter_index_.find(name) != counter_index_.end();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : counters_[it->second]->value();
}

const LogHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr
                                      : histograms_[it->second].get();
}

std::size_t MetricsRegistry::num_columns() const {
  return counters_.size() + gauges_.size();
}

void MetricsRegistry::capture_row(SimTime ts) {
  Row row;
  row.ts = ts;
  row.values.reserve(num_columns());
  for (const auto& c : counters_) {
    row.values.push_back(static_cast<double>(c->value()));
  }
  for (const auto& g : gauges_) row.values.push_back(g());
  rows_.push_back(std::move(row));
}

void MetricsRegistry::maybe_sample(SimTime now) {
  while (now >= next_sample_) {
    capture_row(next_sample_);
    next_sample_ += cadence_s_;
  }
}

void MetricsRegistry::sample_now(SimTime now) {
  maybe_sample(now);
  if (rows_.empty() || rows_.back().ts < now) capture_row(now);
}

std::string MetricsRegistry::csv() const {
  std::ostringstream os;
  os << "ts_s";
  auto emit_name = [&os](const std::string& name) {
    // Column names are instrument names we choose ourselves; keep CSV
    // simple by mapping the two structural characters to '_'.
    os << ',';
    for (char c : name) os << ((c == ',' || c == '\n') ? '_' : c);
  };
  for (const auto& n : counter_names_) emit_name(n);
  for (const auto& n : gauge_names_) emit_name(n);
  os << '\n';
  for (const Row& row : rows_) {
    os << JsonWriter::number(row.ts);
    for (double v : row.values) os << ',' << JsonWriter::number(v);
    os << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::histogram_summary() const {
  TextTable table({"histogram", "count", "mean", "p50", "p90", "p99",
                   "min", "max"});
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const LogHistogram& h = *histograms_[i];
    table.add_row({histogram_names_[i], std::to_string(h.count()),
                   TextTable::num(h.mean()), TextTable::num(h.percentile(0.5)),
                   TextTable::num(h.percentile(0.9)),
                   TextTable::num(h.percentile(0.99)), TextTable::num(h.min()),
                   TextTable::num(h.max())});
  }
  return table.str();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("cadence_s", cadence_s_);
  w.key("columns").begin_array();
  w.value("ts_s");
  for (const auto& n : counter_names_) w.value(n);
  for (const auto& n : gauge_names_) w.value(n);
  w.end_array();
  w.key("rows").begin_array();
  for (const Row& row : rows_) {
    w.begin_array();
    w.value(row.ts);
    for (double v : row.values) w.value(v);
    w.end_array();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const LogHistogram& h = *histograms_[i];
    w.begin_object();
    w.field("name", histogram_names_[i]);
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("mean", h.mean());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("p50", h.percentile(0.5));
    w.field("p90", h.percentile(0.9));
    w.field("p99", h.percentile(0.99));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace flexmr::obs
