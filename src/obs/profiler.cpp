#include "obs/profiler.hpp"

#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/json.hpp"

namespace flexmr::obs {

Profiler* Profiler::active_ = nullptr;

namespace {

std::uint64_t elapsed_ns(Profiler::Clock::time_point from,
                         Profiler::Clock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

Profiler::Profiler() : started_(Clock::now()) {
  scopes_.reserve(64);
  stack_.reserve(16);
}

void Profiler::activate(Profiler& p) {
  FLEXMR_ASSERT_MSG(active_ == nullptr, "a profiler is already active");
  p.owner_ = std::this_thread::get_id();
  active_ = &p;
}

void Profiler::deactivate() noexcept { active_ = nullptr; }

std::uint32_t Profiler::intern(std::uint32_t parent, const char* name) {
  const std::vector<std::uint32_t>& siblings =
      parent == kNoParent ? roots_ : scopes_[parent].children;
  for (std::uint32_t id : siblings) {
    // Same call site passes the identical literal, so the pointer compare
    // almost always decides; strcmp covers distinct literals with equal text.
    if (scopes_[id].name == name || std::strcmp(scopes_[id].name, name) == 0) {
      return id;
    }
  }
  const auto id = static_cast<std::uint32_t>(scopes_.size());
  scopes_.push_back(Scope{name, parent, 0, 0, 0, {}});
  if (parent == kNoParent) {
    roots_.push_back(id);
  } else {
    scopes_[parent].children.push_back(id);
  }
  return id;
}

void Profiler::enter(const char* name) {
  FLEXMR_ASSERT_MSG(on_owner_thread(), "profiler scopes are owner-thread only");
  const std::uint32_t parent = stack_.empty() ? kNoParent : stack_.back().scope;
  const std::uint32_t id = intern(parent, name);
  stack_.push_back(Frame{id, Clock::now(), 0});
}

void Profiler::exit() {
  FLEXMR_ASSERT_MSG(!stack_.empty(), "profiler exit without matching enter");
  const Frame frame = stack_.back();
  stack_.pop_back();
  const std::uint64_t elapsed = elapsed_ns(frame.start, Clock::now());
  Scope& s = scopes_[frame.scope];
  s.count += 1;
  s.inclusive_ns += elapsed;
  s.exclusive_ns += elapsed > frame.child_ns ? elapsed - frame.child_ns : 0;
  if (!stack_.empty()) stack_.back().child_ns += elapsed;
}

void Profiler::ensure_lanes(std::size_t lanes) {
  if (lanes_.size() < lanes) lanes_.resize(lanes);
}

void Profiler::record_lane_drain(std::size_t lane, std::uint64_t busy_ns,
                                 std::uint64_t drained) noexcept {
  if (lane >= lanes_.size()) return;  // ensure_lanes not called: drop.
  lanes_[lane].busy_ns += busy_ns;
  lanes_[lane].drained += drained;
}

void Profiler::record_window(std::uint64_t drain_wall_ns,
                             std::uint64_t merge_ns) noexcept {
  windows_ += 1;
  drain_wall_ns_ += drain_wall_ns;
  merge_ns_ += merge_ns;
}

const Profiler::Scope* Profiler::find(const char* name) const noexcept {
  for (const Scope& s : scopes_) {
    if (s.name == name || std::strcmp(s.name, name) == 0) return &s;
  }
  return nullptr;
}

std::uint64_t Profiler::total_exclusive_ns() const noexcept {
  std::uint64_t total = 0;
  for (const Scope& s : scopes_) total += s.exclusive_ns;
  return total;
}

std::string Profiler::json() const {
  FLEXMR_ASSERT_MSG(stack_.empty(), "profiler json() with scopes still open");
  JsonWriter w;
  w.begin_object();
  w.field("schema", kSchema);
  w.key("host").begin_object();
  w.field("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.end_object();
  w.field("wall_ns", elapsed_ns(started_, Clock::now()));
  w.field("total_exclusive_ns", total_exclusive_ns());

  w.key("scopes").begin_array();
  for (std::size_t i = 0; i < scopes_.size(); ++i) {
    const Scope& s = scopes_[i];
    w.begin_object();
    w.field("id", static_cast<std::uint64_t>(i));
    w.field("name", s.name);
    // Parents precede children in creation order, so `parent < id` always
    // holds; -1 marks roots (friendlier to consumers than 2^32-1).
    w.field("parent", s.parent == kNoParent
                          ? static_cast<std::int64_t>(-1)
                          : static_cast<std::int64_t>(s.parent));
    w.field("count", s.count);
    w.field("inclusive_ns", s.inclusive_ns);
    w.field("exclusive_ns", s.exclusive_ns);
    w.end_object();
  }
  w.end_array();

  w.key("lanes").begin_object();
  w.field("windows", windows_);
  w.field("drain_wall_ns", drain_wall_ns_);
  w.field("merge_ns", merge_ns_);
  w.key("per_lane").begin_array();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const LaneStats& l = lanes_[i];
    // Idle = the lane's share of drain wall time it did not spend draining.
    const std::uint64_t idle =
        drain_wall_ns_ > l.busy_ns ? drain_wall_ns_ - l.busy_ns : 0;
    w.begin_object();
    w.field("lane", static_cast<std::uint64_t>(i));
    w.field("busy_ns", l.busy_ns);
    w.field("idle_ns", idle);
    w.field("drained", l.drained);
    w.end_object();
  }
  w.end_array();
  std::uint64_t max_busy = 0;
  std::uint64_t sum_busy = 0;
  for (const LaneStats& l : lanes_) {
    max_busy = l.busy_ns > max_busy ? l.busy_ns : max_busy;
    sum_busy += l.busy_ns;
  }
  const double mean_busy =
      lanes_.empty() ? 0.0
                     : static_cast<double>(sum_busy) /
                           static_cast<double>(lanes_.size());
  w.key("imbalance").begin_object();
  w.field("max_busy_ns", max_busy);
  w.field("mean_busy_ns", mean_busy);
  w.field("max_over_mean",
          mean_busy > 0.0 ? static_cast<double>(max_busy) / mean_busy : 0.0);
  w.end_object();
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace flexmr::obs
