#include "obs/tracer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/json.hpp"

namespace flexmr::obs {

void EventTracer::set_clock(Clock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

SimTime EventTracer::clock_now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_ ? clock_() : 0.0;
}

void EventTracer::set_process_name(std::uint32_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

void EventTracer::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                  std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t key = (static_cast<std::uint64_t>(pid) << 32) | tid;
  thread_names_[key] = std::move(name);
}

void EventTracer::record(Event ev) {
  FLEXMR_ASSERT_MSG(ev.ts >= 0.0, "trace timestamps are sim-relative");
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void EventTracer::begin(Track t, std::string name, std::string cat,
                        SimTime ts, TraceArgs args) {
  record({Phase::kBegin, t.pid, t.tid, ts, 0.0, std::move(name),
          std::move(cat), std::move(args)});
}

void EventTracer::end(Track t, SimTime ts, TraceArgs args) {
  record({Phase::kEnd, t.pid, t.tid, ts, 0.0, {}, {}, std::move(args)});
}

void EventTracer::complete(Track t, std::string name, std::string cat,
                           SimTime ts, SimDuration dur, TraceArgs args) {
  FLEXMR_ASSERT(dur >= 0.0);
  record({Phase::kComplete, t.pid, t.tid, ts, dur, std::move(name),
          std::move(cat), std::move(args)});
}

void EventTracer::instant(Track t, std::string name, std::string cat,
                          SimTime ts, TraceArgs args) {
  record({Phase::kInstant, t.pid, t.tid, ts, 0.0, std::move(name),
          std::move(cat), std::move(args)});
}

void EventTracer::counter(std::uint32_t pid, std::string name, SimTime ts,
                          double value) {
  record({Phase::kCounter, pid, /*tid=*/0, ts, 0.0, std::move(name), {},
          {TraceArg("value", value)}});
}

std::uint32_t EventTracer::alloc_lane_locked(std::uint32_t pid) {
  std::vector<bool>& occupied = lanes_[pid];
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    if (!occupied[i]) {
      occupied[i] = true;
      return static_cast<std::uint32_t>(i) + 1;
    }
  }
  occupied.push_back(true);
  return static_cast<std::uint32_t>(occupied.size());
}

void EventTracer::task_begin(std::uint32_t pid, std::uint64_t token,
                             std::string name, std::string cat, SimTime ts,
                             TraceArgs args) {
  Track track{pid, 0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FLEXMR_ASSERT_MSG(open_tasks_.find(token) == open_tasks_.end(),
                      "task token already open");
    track.tid = alloc_lane_locked(pid);
    open_tasks_.emplace(token, TaskLane{track, 0});
  }
  begin(track, std::move(name), std::move(cat), ts, std::move(args));
}

void EventTracer::task_child_begin(std::uint64_t token, std::string name,
                                   SimTime ts, TraceArgs args) {
  Track track;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_tasks_.find(token);
    FLEXMR_ASSERT_MSG(it != open_tasks_.end(), "task token not open");
    track = it->second.track;
    ++it->second.open_children;
  }
  begin(track, std::move(name), "task.phase", ts, std::move(args));
}

void EventTracer::task_child_end(std::uint64_t token, SimTime ts,
                                 TraceArgs args) {
  Track track;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_tasks_.find(token);
    FLEXMR_ASSERT_MSG(it != open_tasks_.end(), "task token not open");
    FLEXMR_ASSERT_MSG(it->second.open_children > 0, "no open phase span");
    track = it->second.track;
    --it->second.open_children;
  }
  end(track, ts, std::move(args));
}

void EventTracer::task_instant(std::uint64_t token, std::string name,
                               SimTime ts, TraceArgs args) {
  Track track;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_tasks_.find(token);
    FLEXMR_ASSERT_MSG(it != open_tasks_.end(), "task token not open");
    track = it->second.track;
  }
  instant(track, std::move(name), "task.event", ts, std::move(args));
}

void EventTracer::task_end(std::uint64_t token, SimTime ts, TraceArgs args) {
  Track track;
  int open_children = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = open_tasks_.find(token);
    FLEXMR_ASSERT_MSG(it != open_tasks_.end(), "task token not open");
    track = it->second.track;
    open_children = it->second.open_children;
    open_tasks_.erase(it);
    std::vector<bool>& occupied = lanes_[track.pid];
    FLEXMR_ASSERT(track.tid >= 1 && track.tid <= occupied.size());
    occupied[track.tid - 1] = false;
  }
  // A task interrupted mid-phase (kill, node loss) leaves its phase span
  // open; close it at the same timestamp so per-tid nesting stays valid.
  for (int i = 0; i < open_children; ++i) end(track, ts);
  end(track, ts, std::move(args));
}

bool EventTracer::task_open(std::uint64_t token) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_tasks_.find(token) != open_tasks_.end();
}

std::size_t EventTracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void EventTracer::write_args(JsonWriter& w, const TraceArgs& args) {
  w.key("args").begin_object();
  for (const TraceArg& a : args) {
    w.key(a.key);
    switch (a.kind) {
      case TraceArg::Kind::kString:
        w.value(a.str);
        break;
      case TraceArg::Kind::kF64:
        w.value(a.f64);
        break;
      case TraceArg::Kind::kU64:
        w.value(a.u64);
        break;
      case TraceArg::Kind::kI64:
        w.value(a.i64);
        break;
      case TraceArg::Kind::kBool:
        w.value(a.b);
        break;
    }
  }
  w.end_object();
}

void EventTracer::write_event(JsonWriter& w, const Event& ev) {
  w.begin_object();
  const char ph[2] = {static_cast<char>(ev.phase), '\0'};
  w.field("ph", ph);
  if (!ev.name.empty()) w.field("name", ev.name);
  if (!ev.cat.empty()) w.field("cat", ev.cat);
  w.field("pid", ev.pid);
  w.field("tid", ev.tid);
  w.field("ts", ev.ts * 1e6);
  if (ev.phase == Phase::kComplete) w.field("dur", ev.dur * 1e6);
  if (ev.phase == Phase::kInstant) w.field("s", "t");
  if (!ev.args.empty()) write_args(w, ev.args);
  w.end_object();
}

void EventTracer::write_trace_events(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mutex_);

  w.begin_array();

  // Metadata first: process and thread names, in sorted id order so the
  // serialized document is deterministic regardless of naming order.
  std::vector<std::pair<std::uint32_t, std::string>> procs(
      process_names_.begin(), process_names_.end());
  std::sort(procs.begin(), procs.end());
  for (const auto& [pid, name] : procs) {
    w.begin_object();
    w.field("ph", "M").field("name", "process_name");
    w.field("pid", pid).field("tid", 0u).field("ts", 0.0);
    w.key("args").begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
  }
  std::vector<std::pair<std::uint64_t, std::string>> threads(
      thread_names_.begin(), thread_names_.end());
  std::sort(threads.begin(), threads.end());
  for (const auto& [key, name] : threads) {
    w.begin_object();
    w.field("ph", "M").field("name", "thread_name");
    w.field("pid", static_cast<std::uint32_t>(key >> 32));
    w.field("tid", static_cast<std::uint32_t>(key & 0xffffffffu));
    w.field("ts", 0.0);
    w.key("args").begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
  }

  for (const Event& ev : events_) write_event(w, ev);

  w.end_array();
}

ScopedSpan::ScopedSpan(EventTracer* tracer, Track track, std::string name,
                       std::string cat)
    : tracer_(tracer), track_(track) {
  if (tracer_ != nullptr) {
    tracer_->begin(track_, std::move(name), std::move(cat),
                   tracer_->clock_now());
  }
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : tracer_(other.tracer_), track_(other.track_),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = other.tracer_;
    track_ = other.track_;
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

ScopedSpan::~ScopedSpan() { close(); }

void ScopedSpan::close() {
  if (tracer_ != nullptr) {
    tracer_->end(track_, tracer_->clock_now(), std::move(args_));
    tracer_ = nullptr;
    args_.clear();
  }
}

}  // namespace flexmr::obs
