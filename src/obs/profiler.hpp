// Self-profiler: host wall-clock attribution for the simulator's own
// control work (DESIGN.md §15).
//
// The tracer (tracer.hpp) observes *simulated* time; this observes *host*
// time — where the process itself spends its cycles while simulating. It
// exists to diagnose the O(nodes) per-heartbeat control terms (RM offers,
// LATE speculation scans, SkewTune's straggler argmax) that dominate
// per-event cost on the 10k-node grid.
//
// Activation follows the same opt-in idiom as the tracer: a process-global
// pointer, null by default. Every instrumentation site compiles to a single
// pointer test when no profiler is active — zero overhead when off, and no
// effect on simulation state ever (the profiler only reads the host steady
// clock), so golden hashes are byte-identical with profiling on or off.
//
// Threading contract:
//  - The scope stack belongs to the thread that called `activate()` (the
//    control thread). `FLEXMR_PROF_SCOPE` on any other thread is a no-op,
//    which makes it safe to leave instrumentation in code that bench
//    harnesses run on worker pools.
//  - Lane telemetry (`record_lane_drain`) is written from LaneSet workers:
//    the control thread sizes the per-lane table before fan-out
//    (`ensure_lanes`), each lane index is drained by exactly one worker per
//    window, and LaneSet::run()'s join gives the happens-before edge back
//    to the control thread.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace flexmr::obs {

class Profiler {
 public:
  static constexpr const char* kSchema = "flexmr.profile.v1";
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  using Clock = std::chrono::steady_clock;

  /// One node of the scope tree. Identity is (parent, name): the same name
  /// under two different parents is two scopes, so nesting context is kept
  /// (e.g. `rm/offer_all` under `mr/heartbeat` vs under `sim/dispatch`).
  struct Scope {
    const char* name;      ///< String literal from the instrumentation site.
    std::uint32_t parent;  ///< Index into scopes(), kNoParent for roots.
    std::uint64_t count = 0;
    std::uint64_t inclusive_ns = 0;  ///< Wall time with children included.
    std::uint64_t exclusive_ns = 0;  ///< Self time: inclusive minus children.
    std::vector<std::uint32_t> children;
  };

  struct LaneStats {
    std::uint64_t busy_ns = 0;  ///< Host time this lane's drains took.
    std::uint64_t drained = 0;  ///< Events drained from this lane.
  };

  Profiler();

  /// The process-global profiler, or null (the default: everything off).
  static Profiler* active() noexcept { return active_; }

  /// Installs `p` as the global profiler and binds the scope stack to the
  /// calling thread. Asserts that no other profiler is active.
  static void activate(Profiler& p);

  /// Uninstalls the global profiler (no-op if none is active).
  static void deactivate() noexcept;

  bool on_owner_thread() const noexcept {
    return std::this_thread::get_id() == owner_;
  }

  /// Opens the scope `name` nested under the innermost open scope. Owner
  /// thread only — use FLEXMR_PROF_SCOPE, which checks.
  void enter(const char* name);

  /// Closes the innermost open scope, charging its elapsed wall time.
  void exit();

  // --- Lane telemetry (sharded engine) ----------------------------------

  /// Grows the per-lane table to `lanes` entries. Control thread only,
  /// before any drain fan-out that will record into those slots.
  void ensure_lanes(std::size_t lanes);

  /// Charges one lane drain. Safe from LaneSet workers: distinct lanes are
  /// distinct slots, and the caller synchronizes via the LaneSet join.
  void record_lane_drain(std::size_t lane, std::uint64_t busy_ns,
                         std::uint64_t drained) noexcept;

  /// Charges one conservative window: wall time of the whole drain phase
  /// (all lanes, including worker idle) and of the serial k-way merge.
  void record_window(std::uint64_t drain_wall_ns,
                     std::uint64_t merge_ns) noexcept;

  // --- Introspection ----------------------------------------------------

  const std::vector<Scope>& scopes() const noexcept { return scopes_; }
  const std::vector<LaneStats>& lanes() const noexcept { return lanes_; }
  std::uint64_t windows() const noexcept { return windows_; }
  std::uint64_t merge_ns() const noexcept { return merge_ns_; }
  std::uint64_t drain_wall_ns() const noexcept { return drain_wall_ns_; }

  /// First scope with this name anywhere in the tree, or null. Scope names
  /// in the shipped taxonomy are unique per call site, so this is enough
  /// for tests and summaries.
  const Scope* find(const char* name) const noexcept;

  /// Sum of exclusive_ns over all scopes (the self-time denominator).
  std::uint64_t total_exclusive_ns() const noexcept;

  /// The flexmr.profile.v1 document: host metadata, wall time since
  /// construction, the scope table (parents precede children), and the
  /// per-lane table with an imbalance summary.
  std::string json() const;

 private:
  std::uint32_t intern(std::uint32_t parent, const char* name);

  struct Frame {
    std::uint32_t scope;
    Clock::time_point start;
    std::uint64_t child_ns;  ///< Inclusive time of completed direct children.
  };

  static Profiler* active_;

  std::thread::id owner_{};
  Clock::time_point started_;
  std::vector<Frame> stack_;
  std::vector<Scope> scopes_;
  std::vector<std::uint32_t> roots_;
  std::vector<LaneStats> lanes_;
  std::uint64_t windows_ = 0;
  std::uint64_t merge_ns_ = 0;
  std::uint64_t drain_wall_ns_ = 0;
};

/// RAII scope: opens `name` on construction if a profiler is active on this
/// thread, closes it on destruction. When no profiler is active this is a
/// single pointer test.
class ProfScope {
 public:
  explicit ProfScope(const char* name) noexcept {
    Profiler* p = Profiler::active();
    if (p != nullptr && p->on_owner_thread()) {
      p->enter(name);
      prof_ = p;
    }
  }
  ~ProfScope() {
    if (prof_ != nullptr) prof_->exit();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* prof_ = nullptr;
};

#define FLEXMR_PROF_CONCAT2(a, b) a##b
#define FLEXMR_PROF_CONCAT(a, b) FLEXMR_PROF_CONCAT2(a, b)

/// Attributes the rest of the enclosing block to `name` (a string literal
/// that must outlive the profiler, which literals do).
#define FLEXMR_PROF_SCOPE(name) \
  ::flexmr::obs::ProfScope FLEXMR_PROF_CONCAT(flexmr_prof_scope_, \
                                              __LINE__)(name)

}  // namespace flexmr::obs
