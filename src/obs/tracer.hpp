// In-simulation event tracer producing Chrome trace_event JSON.
//
// The tracer records duration spans (B/E), complete spans (X), instant
// events (i), and counter series (C) against (pid, tid) tracks, then
// serializes them in a form Perfetto's TraceViewer JSON importer accepts.
// The pid/tid mapping is simulation-domain, not OS-domain:
//
//   pid 0                 job-level control (phases, heartbeat rounds)
//   pid 1 + node          one process per cluster node
//   pid 900000            NameNode (re-replication pipeline)
//   pid 900001            fault injector ground truth
//   pid 900002            the real multi-threaded rt/ engine
//
// Within a node's process, tid 0 is the scheduler-control lane (sizing
// decisions, speculation verdicts) and tids >= 1 are task lanes: the
// task_* API packs concurrently running tasks onto the lowest free lane so
// the rendered track count equals the node's true concurrency, and nested
// task phases (startup -> shuffle-fetch -> compute) stay strictly nested
// per tid — a property the CI shape validator checks.
//
// Timestamps are simulated seconds converted to microseconds at export
// (Chrome traces are microsecond-native). The tracer never touches the
// simulator: it has no event queue, draws no randomness, and is fed a
// clock callback purely so RAII spans can stamp themselves. Recording is
// mutex-guarded because the rt/ engine traces from worker threads; the
// deterministic simulator path is single-threaded and pays one uncontended
// lock per enabled record.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace flexmr {
class JsonWriter;
}

namespace flexmr::obs {

/// Well-known simulated "process" ids (see file comment).
inline constexpr std::uint32_t kJobPid = 0;
inline constexpr std::uint32_t kNodePidBase = 1;
inline constexpr std::uint32_t kNameNodePid = 900000;
inline constexpr std::uint32_t kFaultsPid = 900001;
inline constexpr std::uint32_t kRtEnginePid = 900002;
/// Per-job control pids in a merged multi-job document: job j records its
/// phases/counters under kServiceJobPidBase + j while the node, NameNode
/// and fault tracks stay shared. (Job 0 of a single-job session keeps
/// kJobPid so existing traces are unchanged.)
inline constexpr std::uint32_t kServiceJobPidBase = 1'000'000;
/// Task-token stride between jobs sharing one tracer: must clear the
/// per-job reduce-id base (1'000'000 + reducer index) with lots of room.
inline constexpr std::uint64_t kServiceTokenStride = 100'000'000;

constexpr std::uint32_t node_pid(NodeId node) { return kNodePidBase + node; }
constexpr std::uint32_t service_job_pid(std::size_t job) {
  return kServiceJobPidBase + static_cast<std::uint32_t>(job);
}

/// One key/value argument attached to a trace event. Values keep their
/// native JSON type so Perfetto renders numbers as numbers.
struct TraceArg {
  enum class Kind : std::uint8_t { kString, kF64, kU64, kI64, kBool };

  TraceArg(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), str(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), str(std::move(v)) {}
  TraceArg(std::string k, double v)
      : key(std::move(k)), kind(Kind::kF64), f64(v) {}
  TraceArg(std::string k, std::uint64_t v)
      : key(std::move(k)), kind(Kind::kU64), u64(v) {}
  TraceArg(std::string k, std::uint32_t v)
      : TraceArg(std::move(k), static_cast<std::uint64_t>(v)) {}
  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), kind(Kind::kI64), i64(v) {}
  TraceArg(std::string k, int v)
      : TraceArg(std::move(k), static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kBool), b(v) {}

  std::string key;
  Kind kind;
  std::string str;
  double f64 = 0.0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  bool b = false;
};

using TraceArgs = std::vector<TraceArg>;

/// A (pid, tid) coordinate in the trace.
struct Track {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

class EventTracer {
 public:
  /// Clock used by RAII spans and convenience overloads that omit an
  /// explicit timestamp. Installed by whoever owns the simulation clock.
  using Clock = std::function<SimTime()>;

  EventTracer() = default;
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void set_clock(Clock clock);
  SimTime clock_now() const;

  /// Perfetto metadata: track naming. Idempotent per (pid[, tid]).
  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid,
                       std::string name);

  // -- Raw span/event API (explicit timestamps, explicit tracks) ----------
  void begin(Track t, std::string name, std::string cat, SimTime ts,
             TraceArgs args = {});
  void end(Track t, SimTime ts, TraceArgs args = {});
  void complete(Track t, std::string name, std::string cat, SimTime ts,
                SimDuration dur, TraceArgs args = {});
  void instant(Track t, std::string name, std::string cat, SimTime ts,
               TraceArgs args = {});
  void counter(std::uint32_t pid, std::string name, SimTime ts,
               double value);

  // -- Task-lane API ------------------------------------------------------
  // Tasks are long-lived spans keyed by a caller-chosen token (the task
  // id). task_begin packs the task onto the lowest free tid >= 1 of `pid`;
  // child begin/end calls nest phase spans inside it on the same lane;
  // task_end closes any still-open children, emits the task's E event, and
  // frees the lane for reuse.
  void task_begin(std::uint32_t pid, std::uint64_t token, std::string name,
                  std::string cat, SimTime ts, TraceArgs args = {});
  void task_child_begin(std::uint64_t token, std::string name, SimTime ts,
                        TraceArgs args = {});
  void task_child_end(std::uint64_t token, SimTime ts, TraceArgs args = {});
  void task_instant(std::uint64_t token, std::string name, SimTime ts,
                    TraceArgs args = {});
  void task_end(std::uint64_t token, SimTime ts, TraceArgs args = {});
  bool task_open(std::uint64_t token) const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Writes the traceEvents JSON array (metadata events first, then the
  /// recorded stream in insertion order). Caller owns the document shell.
  void write_trace_events(JsonWriter& w) const;

 private:
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kComplete = 'X',
    kInstant = 'i',
    kCounter = 'C',
  };

  struct Event {
    Phase phase;
    std::uint32_t pid;
    std::uint32_t tid;
    SimTime ts;
    SimDuration dur;  // X only
    std::string name;
    std::string cat;
    TraceArgs args;
  };

  struct TaskLane {
    Track track;
    int open_children = 0;
  };

  void record(Event ev);
  std::uint32_t alloc_lane_locked(std::uint32_t pid);
  static void write_event(JsonWriter& w, const Event& ev);
  static void write_args(JsonWriter& w, const TraceArgs& args);

  mutable std::mutex mutex_;
  Clock clock_;
  std::vector<Event> events_;
  std::unordered_map<std::uint32_t, std::string> process_names_;
  std::unordered_map<std::uint64_t, std::string> thread_names_;
  // Per-pid lane occupancy for the task_* API; true = in use.
  std::unordered_map<std::uint32_t, std::vector<bool>> lanes_;
  std::unordered_map<std::uint64_t, TaskLane> open_tasks_;
};

/// RAII duration span on a fixed track. Inert when constructed from a null
/// tracer, so call sites stay branch-free:
///
///   obs::ScopedSpan span(ctx.tracer(), track, "sizing", "flexmap");
///   span.arg("relative_speed", rel);   // folded into the E event
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(EventTracer* tracer, Track track, std::string name,
             std::string cat);
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ~ScopedSpan();

  /// Attaches an argument, carried on the closing E event (Perfetto merges
  /// B and E args into one slice).
  template <typename V>
  void arg(std::string key, V value) {
    if (tracer_ != nullptr) args_.emplace_back(std::move(key), value);
  }

  void close();
  bool active() const { return tracer_ != nullptr; }

 private:
  EventTracer* tracer_ = nullptr;
  Track track_;
  TraceArgs args_;
};

}  // namespace flexmr::obs
