#include "faults/fault_plan.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace flexmr::faults {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ConfigError(what); }

void check_prob(double p, const char* name) {
  if (!(p >= 0.0 && p <= 1.0)) {
    std::ostringstream os;
    os << "FaultPlan: " << name << " must be in [0, 1], got " << p;
    fail(os.str());
  }
}

}  // namespace

double FaultPlan::attempt_failure_prob_for(NodeId node) const {
  for (const auto& [n, p] : node_attempt_failure_prob) {
    if (n == node) return p;
  }
  return attempt_failure_prob;
}

double FaultPlan::disk_degradation_factor(NodeId node, std::uint32_t disk,
                                          SimTime t) const {
  double factor = 1.0;
  for (const auto& window : disk_degradations) {
    if (window.node != node || window.disk != disk) continue;
    if (t < window.from || t >= window.until) continue;
    factor = std::min(factor, window.factor);
  }
  return factor;
}

bool FaultPlan::empty() const {
  if (!crashes.empty() || !degradations.empty()) return false;
  if (!disk_faults.empty() || !disk_degradations.empty()) return false;
  if (has_am_faults()) return false;
  if (attempt_failure_prob > 0.0 || container_launch_failure_prob > 0.0 ||
      fetch_failure_prob > 0.0) {
    return false;
  }
  return std::all_of(node_attempt_failure_prob.begin(),
                     node_attempt_failure_prob.end(),
                     [](const auto& e) { return e.second <= 0.0; });
}

void FaultPlan::validate(std::uint32_t num_nodes, SimTime horizon_s) const {
  check_prob(attempt_failure_prob, "attempt_failure_prob");
  check_prob(container_launch_failure_prob, "container_launch_failure_prob");
  check_prob(blacklist_ignore_fraction, "blacklist_ignore_fraction");
  check_prob(fetch_failure_prob, "fetch_failure_prob");
  if (!(fetch_retry_backoff_s > 0.0)) {
    std::ostringstream os;
    os << "FaultPlan: fetch_retry_backoff_s must be > 0, got "
       << fetch_retry_backoff_s;
    fail(os.str());
  }
  if (max_fetch_failures_per_map == 0) {
    fail("FaultPlan: max_fetch_failures_per_map must be >= 1");
  }
  if (!(re_replication_bandwidth_mibps > 0.0)) {
    std::ostringstream os;
    os << "FaultPlan: re_replication_bandwidth_mibps must be > 0, got "
       << re_replication_bandwidth_mibps;
    fail(os.str());
  }
  if (node_liveness_timeout_s < 0.0) {
    fail("FaultPlan: node_liveness_timeout_s must be >= 0");
  }
  if (max_attempts == 0) fail("FaultPlan: max_attempts must be >= 1");
  if (blacklist_threshold == 0) {
    fail("FaultPlan: blacklist_threshold must be >= 1");
  }
  if (am_max_attempts == 0) {
    fail("FaultPlan: am_max_attempts must be >= 1");
  }
  for (const SimTime at : am_crashes) {
    if (at < 0.0) {
      std::ostringstream os;
      os << "FaultPlan: am_crashes entry at negative time " << at;
      fail(os.str());
    }
    if (horizon_s > 0.0 && at >= horizon_s) {
      std::ostringstream os;
      os << "FaultPlan: am_crashes entry at " << at
         << " is beyond the run horizon " << horizon_s;
      fail(os.str());
    }
  }
  if (am_crash_mttf_s < 0.0) {
    std::ostringstream os;
    os << "FaultPlan: am_crash_mttf_s must be >= 0, got " << am_crash_mttf_s;
    fail(os.str());
  }
  if (am_restart_delay_s < 0.0) {
    std::ostringstream os;
    os << "FaultPlan: am_restart_delay_s must be >= 0, got "
       << am_restart_delay_s;
    fail(os.str());
  }
  if (am_snapshot_interval_s < 0.0) {
    std::ostringstream os;
    os << "FaultPlan: am_snapshot_interval_s must be >= 0, got "
       << am_snapshot_interval_s;
    fail(os.str());
  }
  if (horizon_s > 0.0) {
    for (const auto& crash : crashes) {
      if (crash.at >= horizon_s) {
        std::ostringstream os;
        os << "FaultPlan: crash of node " << crash.node << " at "
           << crash.at << " is beyond the run horizon " << horizon_s;
        fail(os.str());
      }
    }
  }
  std::vector<char> overridden(num_nodes, 0);
  for (const auto& [node, p] : node_attempt_failure_prob) {
    if (node >= num_nodes) {
      std::ostringstream os;
      os << "FaultPlan: attempt-failure override names node " << node
         << " but the cluster has " << num_nodes << " nodes";
      fail(os.str());
    }
    if (overridden[node]) {
      std::ostringstream os;
      os << "FaultPlan: node " << node
         << " has more than one attempt-failure override";
      fail(os.str());
    }
    overridden[node] = 1;
    check_prob(p, "node_attempt_failure_prob");
  }

  // Crash intervals per node must be well-formed and non-overlapping: a
  // node may crash again only after an earlier crash's rejoin.
  std::map<NodeId, std::vector<const NodeCrash*>> per_node;
  for (const auto& crash : crashes) {
    if (crash.node >= num_nodes) {
      std::ostringstream os;
      os << "FaultPlan: crash names node " << crash.node
         << " but the cluster has " << num_nodes << " nodes";
      fail(os.str());
    }
    if (crash.at < 0.0) {
      std::ostringstream os;
      os << "FaultPlan: crash of node " << crash.node
         << " at negative time " << crash.at;
      fail(os.str());
    }
    if (crash.rejoin_at && *crash.rejoin_at <= crash.at) {
      std::ostringstream os;
      os << "FaultPlan: node " << crash.node << " rejoin at "
         << *crash.rejoin_at << " does not follow its crash at " << crash.at;
      fail(os.str());
    }
    per_node[crash.node].push_back(&crash);
  }
  for (auto& [node, list] : per_node) {
    std::sort(list.begin(), list.end(),
              [](const NodeCrash* a, const NodeCrash* b) {
                return a->at < b->at;
              });
    for (std::size_t i = 0; i + 1 < list.size(); ++i) {
      if (!list[i]->rejoin_at || *list[i]->rejoin_at >= list[i + 1]->at) {
        std::ostringstream os;
        os << "FaultPlan: node " << node << " crashes again at "
           << list[i + 1]->at << " while already down since "
           << list[i]->at
           << (list[i]->rejoin_at ? " (rejoin is not earlier)"
                                  : " (no rejoin scheduled)");
        fail(os.str());
      }
    }
  }

  for (const auto& window : degradations) {
    if (window.node >= num_nodes) {
      std::ostringstream os;
      os << "FaultPlan: degradation names node " << window.node
         << " but the cluster has " << num_nodes << " nodes";
      fail(os.str());
    }
    if (window.from < 0.0 || window.until <= window.from) {
      std::ostringstream os;
      os << "FaultPlan: degradation window [" << window.from << ", "
         << window.until << ") on node " << window.node << " is degenerate";
      fail(os.str());
    }
    if (!(window.factor > 0.0 && window.factor <= 1.0)) {
      std::ostringstream os;
      os << "FaultPlan: degradation factor " << window.factor << " on node "
         << window.node << " must be in (0, 1]";
      fail(os.str());
    }
  }

  if (disks_per_node == 0) fail("FaultPlan: disks_per_node must be >= 1");
  std::map<std::pair<NodeId, std::uint32_t>, char> disk_seen;
  for (const auto& fault : disk_faults) {
    if (fault.node >= num_nodes) {
      std::ostringstream os;
      os << "FaultPlan: disk fault names node " << fault.node
         << " but the cluster has " << num_nodes << " nodes";
      fail(os.str());
    }
    if (fault.disk >= disks_per_node) {
      std::ostringstream os;
      os << "FaultPlan: disk fault names disk " << fault.disk << " of node "
         << fault.node << " but nodes have " << disks_per_node << " disks";
      fail(os.str());
    }
    if (fault.at < 0.0) {
      std::ostringstream os;
      os << "FaultPlan: disk fault on node " << fault.node
         << " at negative time " << fault.at;
      fail(os.str());
    }
    if (horizon_s > 0.0 && fault.at >= horizon_s) {
      std::ostringstream os;
      os << "FaultPlan: disk fault on node " << fault.node << " at "
         << fault.at << " is beyond the run horizon " << horizon_s;
      fail(os.str());
    }
    // A disk dies once: the model has no disk replacement, so a second
    // fault of the same (node, disk) could only be a plan typo.
    if (disk_seen[{fault.node, fault.disk}]) {
      std::ostringstream os;
      os << "FaultPlan: disk " << fault.disk << " of node " << fault.node
         << " fails more than once";
      fail(os.str());
    }
    disk_seen[{fault.node, fault.disk}] = 1;
  }
  for (const auto& window : disk_degradations) {
    if (window.node >= num_nodes) {
      std::ostringstream os;
      os << "FaultPlan: disk degradation names node " << window.node
         << " but the cluster has " << num_nodes << " nodes";
      fail(os.str());
    }
    if (window.disk >= disks_per_node) {
      std::ostringstream os;
      os << "FaultPlan: disk degradation names disk " << window.disk
         << " of node " << window.node << " but nodes have "
         << disks_per_node << " disks";
      fail(os.str());
    }
    if (window.from < 0.0 || window.until <= window.from) {
      std::ostringstream os;
      os << "FaultPlan: disk degradation window [" << window.from << ", "
         << window.until << ") on node " << window.node << " disk "
         << window.disk << " is degenerate";
      fail(os.str());
    }
    if (!(window.factor > 0.0 && window.factor <= 1.0)) {
      std::ostringstream os;
      os << "FaultPlan: disk degradation factor " << window.factor
         << " on node " << window.node << " disk " << window.disk
         << " must be in (0, 1]";
      fail(os.str());
    }
  }
}

const char* to_string(FaultEventType type) {
  switch (type) {
    case FaultEventType::kCrash: return "crash";
    case FaultEventType::kDetected: return "detected";
    case FaultEventType::kRejoin: return "rejoin";
    case FaultEventType::kAttemptFailure: return "attempt-failure";
    case FaultEventType::kLaunchFailure: return "launch-failure";
    case FaultEventType::kBlacklist: return "blacklist";
    case FaultEventType::kAbort: return "abort";
    case FaultEventType::kReplicaLost: return "replica-lost";
    case FaultEventType::kReReplicated: return "re-replicated";
    case FaultEventType::kDataLoss: return "data-loss";
    case FaultEventType::kFetchFailure: return "fetch-failure";
    case FaultEventType::kMapOutputLost: return "map-output-lost";
    case FaultEventType::kAmCrash: return "am-crash";
    case FaultEventType::kAmRestart: return "am-restart";
    case FaultEventType::kPartLost: return "part-lost";
    case FaultEventType::kPartReconstructed: return "part-reconstructed";
    case FaultEventType::kDiskFault: return "disk-fault";
  }
  return "?";
}

void write_fault_plan(JsonWriter& writer, const FaultPlan& plan) {
  writer.begin_object();
  writer.key("crashes").begin_array();
  for (const auto& crash : plan.crashes) {
    writer.begin_object();
    writer.field("node", crash.node);
    writer.field("at", crash.at);
    if (crash.rejoin_at) writer.field("rejoin_at", *crash.rejoin_at);
    writer.field("silent", crash.silent);
    writer.end_object();
  }
  writer.end_array();
  writer.key("degradations").begin_array();
  for (const auto& window : plan.degradations) {
    writer.begin_object();
    writer.field("node", window.node);
    writer.field("from", window.from);
    writer.field("until", window.until);
    writer.field("factor", window.factor);
    writer.end_object();
  }
  writer.end_array();
  writer.field("attempt_failure_prob", plan.attempt_failure_prob);
  writer.key("node_attempt_failure_prob").begin_array();
  for (const auto& [node, p] : plan.node_attempt_failure_prob) {
    writer.begin_object();
    writer.field("node", node);
    writer.field("prob", p);
    writer.end_object();
  }
  writer.end_array();
  writer.field("container_launch_failure_prob",
               plan.container_launch_failure_prob);
  // The data-plane knobs are emitted only when they differ from their
  // defaults: flexmr.job_result.v1 consumers predate them, and the pinned
  // golden hashes guarantee empty-plan JSON stays byte-identical.
  FaultPlan defaults;
  if (plan.fetch_failure_prob != defaults.fetch_failure_prob) {
    writer.field("fetch_failure_prob", plan.fetch_failure_prob);
  }
  if (plan.fetch_retry_backoff_s != defaults.fetch_retry_backoff_s) {
    writer.field("fetch_retry_backoff_s", plan.fetch_retry_backoff_s);
  }
  if (plan.max_fetch_failures_per_map != defaults.max_fetch_failures_per_map) {
    writer.field("max_fetch_failures_per_map",
                 plan.max_fetch_failures_per_map);
  }
  if (plan.re_replication != defaults.re_replication) {
    writer.field("re_replication", plan.re_replication);
  }
  if (plan.re_replication_bandwidth_mibps !=
      defaults.re_replication_bandwidth_mibps) {
    writer.field("re_replication_bandwidth_mibps",
                 plan.re_replication_bandwidth_mibps);
  }
  // Disk fault domains: same conditional contract.
  if (plan.disks_per_node != defaults.disks_per_node) {
    writer.field("disks_per_node", plan.disks_per_node);
  }
  if (!plan.disk_faults.empty()) {
    writer.key("disk_faults").begin_array();
    for (const auto& fault : plan.disk_faults) {
      writer.begin_object();
      writer.field("node", fault.node);
      writer.field("disk", fault.disk);
      writer.field("at", fault.at);
      writer.end_object();
    }
    writer.end_array();
  }
  if (!plan.disk_degradations.empty()) {
    writer.key("disk_degradations").begin_array();
    for (const auto& window : plan.disk_degradations) {
      writer.begin_object();
      writer.field("node", window.node);
      writer.field("disk", window.disk);
      writer.field("from", window.from);
      writer.field("until", window.until);
      writer.field("factor", window.factor);
      writer.end_object();
    }
    writer.end_array();
  }
  // AM-fault knobs: same conditional contract — absent unless the plan
  // actually arms AM recovery or changes a recovery default.
  if (!plan.am_crashes.empty()) {
    writer.key("am_crashes").begin_array();
    for (const SimTime at : plan.am_crashes) writer.value(at);
    writer.end_array();
  }
  if (plan.am_crash_mttf_s != defaults.am_crash_mttf_s) {
    writer.field("am_crash_mttf_s", plan.am_crash_mttf_s);
  }
  if (plan.am_max_attempts != defaults.am_max_attempts) {
    writer.field("am_max_attempts", plan.am_max_attempts);
  }
  if (plan.am_restart_delay_s != defaults.am_restart_delay_s) {
    writer.field("am_restart_delay_s", plan.am_restart_delay_s);
  }
  if (plan.am_snapshot_interval_s != defaults.am_snapshot_interval_s) {
    writer.field("am_snapshot_interval_s", plan.am_snapshot_interval_s);
  }
  writer.field("node_liveness_timeout_s", plan.node_liveness_timeout_s);
  writer.field("max_attempts", plan.max_attempts);
  writer.field("blacklist_threshold", plan.blacklist_threshold);
  writer.field("blacklist_ignore_fraction", plan.blacklist_ignore_fraction);
  writer.end_object();
}

void write_fault_event(JsonWriter& writer, const FaultEvent& event) {
  writer.begin_object();
  writer.field("t", event.time);
  writer.field("type", to_string(event.type));
  if (event.node != kInvalidNode) writer.field("node", event.node);
  if (event.task != kInvalidTask) {
    writer.field("task", static_cast<std::uint64_t>(event.task));
  }
  if (event.attempts > 0) writer.field("attempts", event.attempts);
  if (event.block != kInvalidBlock) writer.field("block", event.block);
  writer.end_object();
}

}  // namespace flexmr::faults
