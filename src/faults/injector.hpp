// FaultInjector — the ground-truth half of the fault subsystem.
//
// The injector plays the *physical world*: it kills nodes at their planned
// crash times (silencing their heartbeats), re-registers them at rejoin,
// applies degradation windows to machine speeds, and draws per-attempt
// transient/launch failures from its own RNG stream (so arming faults
// never perturbs the exec-noise or placement streams of a plan-free run).
//
// The observable half lives in the JobDriver/RM: the AM only reacts to a
// silent crash once the node's heartbeats stop arriving for the plan's
// liveness timeout — `responsive()` is the injector's ground truth that
// the heartbeat generator consults, never the scheduler.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::obs {
class EventTracer;
}

namespace flexmr::faults {

class FaultInjector {
 public:
  /// Fired at ground-truth crash time; `silent` mirrors the plan entry.
  using CrashHandler = std::function<void(NodeId node, bool silent)>;
  /// Fired when a node re-registers.
  using RejoinHandler = std::function<void(NodeId node)>;
  /// Fired at a planned single-disk failure (the node itself stays up).
  using DiskFaultHandler =
      std::function<void(NodeId node, std::uint32_t disk)>;

  FaultInjector(FaultPlan plan, std::uint64_t seed)
      : plan_(std::move(plan)), rng_(seed ^ 0xfa1175eedc0ffee1ULL) {}

  const FaultPlan& plan() const { return plan_; }

  void set_crash_handler(CrashHandler handler) {
    on_crash_ = std::move(handler);
  }
  void set_rejoin_handler(RejoinHandler handler) {
    on_rejoin_ = std::move(handler);
  }
  void set_disk_fault_handler(DiskFaultHandler handler) {
    on_disk_fault_ = std::move(handler);
  }

  /// Opt-in tracing: arm() emits the plan's degradation windows as spans
  /// on the fault-injector track (ground truth — the AM never sees them).
  /// Install before arm(). Null disables.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  /// Schedules every planned crash/rejoin/degradation on `sim`. Call once,
  /// after the handlers are installed. `cluster` is needed for degradation
  /// windows (fault factor) and node count.
  void arm(Simulator& sim, cluster::Cluster& cluster);

  /// Ground truth: is the node's NodeManager process up and heartbeating?
  bool responsive(NodeId node) const {
    return node >= down_.size() || down_[node] == 0;
  }

  /// True while at least one planned rejoin has not fired yet — an
  /// all-nodes-lost job must keep waiting instead of aborting.
  bool rejoin_pending() const { return pending_rejoins_ > 0; }

  /// True while `node` is down but has a planned rejoin that has not fired
  /// yet — a block whose last live replica sits on such a node is not lost
  /// forever, so the data-loss abort must wait for the rejoin.
  bool rejoin_pending(NodeId node) const {
    return node < node_pending_rejoins_.size() &&
           node_pending_rejoins_[node] > 0;
  }

  /// Per-attempt draws (consumed at dispatch, in deterministic event
  /// order, so a fault sweep is reproducible per seed).
  bool draw_launch_failure(NodeId node);
  bool draw_attempt_failure(NodeId node);
  /// One reducer→map-host shuffle fetch (no RNG consumed when
  /// fetch_failure_prob == 0, so fetch-free plans keep the PR 2 stream).
  bool draw_fetch_failure();
  /// Fraction of the attempt's projected compute at which it dies.
  double draw_failure_fraction();

 private:
  FaultPlan plan_;
  Rng rng_;
  CrashHandler on_crash_;
  RejoinHandler on_rejoin_;
  DiskFaultHandler on_disk_fault_;
  obs::EventTracer* tracer_ = nullptr;
  std::vector<char> down_;
  std::uint32_t pending_rejoins_ = 0;
  std::vector<std::uint32_t> node_pending_rejoins_;
};

}  // namespace flexmr::faults
