// FaultPlan — the declarative fault model of one simulated run.
//
// The paper's clusters (12-node physical, 20-node virtual, 40-node
// multi-tenant EC2) exhibit churn, not just heterogeneity: nodes stall,
// containers die, and the AM only learns about a dead node through missed
// heartbeats. A FaultPlan describes every fault the run injects:
//
//   * NodeCrash        — the node's processes die at `at`. A *silent* crash
//                        (the default, Hadoop's reality) is only detected
//                        once `node_liveness_timeout_s` passes without a
//                        heartbeat, so in-flight work on the dead node
//                        wastes real simulated time. A non-silent crash is
//                        the legacy oracle path (instant detection), kept
//                        for `RunConfig::node_failures` compatibility.
//                        With `rejoin_at` set, the node re-registers then:
//                        the RM restores its slots, schedulers re-offer,
//                        and all pre-crash speed estimates are discarded.
//   * DegradedWindow   — a transient slowdown (co-runner burst, thermal
//                        throttling): effective IPS is multiplied by
//                        `factor` during [from, until).
//   * attempt faults   — each task attempt on a node fails independently
//                        with `attempt_failure_prob(node)` (JVM crash, disk
//                        error), and each container launch fails with
//                        `container_launch_failure_prob` before any compute.
//
// Recovery knobs default to Hadoop's: 4 attempts per unit of work
// (mapreduce.map|reduce.maxattempts), AM node blacklisting after 3 failed
// attempts on a node (mapreduce.job.maxtaskfailures.per.tracker), and the
// blacklist is ignored once it would cover more than 33% of the cluster
// (yarn.app.mapreduce.am.job.node-blacklisting.ignore-threshold-node-
// percent). The liveness timeout defaults to 6 heartbeat periods (30 s at
// the simulator's 5 s AM heartbeat) — Hadoop's 600 s NM expiry scaled to
// the same missed-beat count it allows at its 1-3 s NM heartbeat would
// stall small simulated jobs for longer than their whole runtime.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/json.hpp"
#include "common/units.hpp"

namespace flexmr::faults {

struct NodeCrash {
  NodeId node = 0;
  SimTime at = 0;
  /// Absolute time the node re-registers with the RM; nullopt = permanent.
  std::optional<SimTime> rejoin_at;
  /// Silent death (heartbeat-expiry detection). False = legacy oracle
  /// detection at `at` exactly.
  bool silent = true;
};

struct DegradedWindow {
  NodeId node = 0;
  SimTime from = 0;
  SimTime until = 0;
  /// Effective-speed multiplier in (0, 1] applied during the window.
  double factor = 0.5;
};

// ---- per-disk fault domains ----------------------------------------------
//
// A node stripes its replicas/parts across `disks_per_node` disks
// (block b of node n lives on disk (b + n) % disks_per_node, a fixed
// deterministic mapping). A DiskFault destroys exactly that disk's data on
// a *live* node — unlike a silent crash, the data is really gone, so a
// rejoin block report cannot restore it and only the repair pipeline can.
// A DiskDegradedWindow models a slow disk (firmware retries, failing
// media): reads of its data lose their locality discount during the
// window.

struct DiskFault {
  NodeId node = 0;
  std::uint32_t disk = 0;
  SimTime at = 0;
};

struct DiskDegradedWindow {
  NodeId node = 0;
  std::uint32_t disk = 0;
  SimTime from = 0;
  SimTime until = 0;
  /// Fraction of the disk's locality benefit that survives, in (0, 1]:
  /// local bytes on the degraded disk are credited as `factor` local.
  double factor = 0.5;
};

struct FaultPlan {
  std::vector<NodeCrash> crashes;
  std::vector<DegradedWindow> degradations;

  /// Disks per node of the block→disk striping (fault-domain granularity).
  std::uint32_t disks_per_node = 4;
  /// Single-disk data loss on live nodes.
  std::vector<DiskFault> disk_faults;
  /// Slow-disk windows (degraded read bandwidth on one disk).
  std::vector<DiskDegradedWindow> disk_degradations;

  /// Cluster-wide per-attempt transient failure probability.
  double attempt_failure_prob = 0.0;
  /// Per-node overrides of attempt_failure_prob (node, probability).
  std::vector<std::pair<NodeId, double>> node_attempt_failure_prob;
  /// Probability a container launch fails during startup (no compute).
  double container_launch_failure_prob = 0.0;

  /// Probability one reducer→map-host shuffle fetch fails transiently
  /// (connection reset, read timeout). Failed fetches are retried with
  /// exponential backoff and reported to the AM; a map output accumulating
  /// `max_fetch_failures_per_map` reports is re-executed (Hadoop's
  /// "Too many fetch-failures" path).
  double fetch_failure_prob = 0.0;
  /// Initial backoff before refetching a failed shuffle source; doubles per
  /// consecutive failure of the same fetch (mapreduce.reduce.shuffle
  /// retry-delay analogue).
  SimDuration fetch_retry_backoff_s = 1.0;
  /// Fetch-failure reports against one map output before the AM re-executes
  /// the map (mapreduce.job.max.fetchfailures.per.mapper, default 3).
  std::uint32_t max_fetch_failures_per_map = 3;

  /// When a node dies, the NameNode restores the replication factor of its
  /// blocks by copying surviving replicas onto other nodes. Disable to model
  /// a cluster whose re-replication is throttled to zero (blocks stay
  /// under-replicated until rejoin).
  bool re_replication = true;
  /// Bandwidth of the (single-stream) re-replication pipeline; one block of
  /// `block_size` MiB takes block_size / bandwidth seconds to restore.
  double re_replication_bandwidth_mibps = 100.0;

  // ---- AppMaster faults (journaled job recovery) ------------------------
  //
  // The AM itself can die: every in-flight container is torn down (its
  // work is wasted simulated time, matching MRAppMaster semantics), and
  // after `am_restart_delay_s` a fresh AM attempt replays the job journal
  // and re-runs only uncommitted work — until `am_max_attempts` is spent,
  // at which point the job aborts.

  /// Fixed simulated times at which the current AM attempt crashes.
  std::vector<SimTime> am_crashes;
  /// Probabilistic AM death: mean time to failure per AM attempt,
  /// exponentially distributed (0 = disabled). Each restarted attempt
  /// draws its own lifetime.
  SimDuration am_crash_mttf_s = 0.0;
  /// AM attempts before the job aborts
  /// (mapreduce.am.max-attempts, Hadoop default 2).
  std::uint32_t am_max_attempts = 2;
  /// Delay between an AM crash and the replacement attempt registering
  /// with the RM (container re-allocation + JVM spin-up).
  SimDuration am_restart_delay_s = 10.0;
  /// Cadence at which the journal folds its log into a snapshot (piggy-
  /// backed on the AM heartbeat, so the effective cadence is quantized to
  /// heartbeat periods). 0 = never snapshot (replay walks the full log).
  SimDuration am_snapshot_interval_s = 60.0;

  /// True when the plan can kill the AM (fixed-time or probabilistic) —
  /// such runs must go through the recovery runner.
  bool has_am_faults() const {
    return !am_crashes.empty() || am_crash_mttf_s > 0.0;
  }

  /// Declare a node lost after this long without a heartbeat.
  SimDuration node_liveness_timeout_s = 30.0;
  /// Attempts per unit of work before the job aborts (Hadoop: 4).
  std::uint32_t max_attempts = 4;
  /// Failed attempts on one node before the AM blacklists it (Hadoop: 3).
  std::uint32_t blacklist_threshold = 3;
  /// Ignore the blacklist once it covers more than this fraction of the
  /// cluster (Hadoop: 0.33).
  double blacklist_ignore_fraction = 0.33;

  /// Effective transient-attempt failure probability for `node`.
  double attempt_failure_prob_for(NodeId node) const;

  /// Smallest surviving-locality factor of any disk-degradation window
  /// active on (node, disk) at time `t`; 1.0 when none is.
  double disk_degradation_factor(NodeId node, std::uint32_t disk,
                                 SimTime t) const;

  /// True when the plan injects nothing (the fault machinery is skipped
  /// entirely and runs are byte-identical to a plan-free build).
  bool empty() const;

  /// Structural validation against a cluster of `num_nodes` nodes. Throws
  /// ConfigError naming the offending entry: out-of-range node ids,
  /// negative times, probabilities outside [0, 1], rejoin before crash,
  /// overlapping crash intervals on one node, degenerate windows, AM knobs
  /// out of range. A positive `horizon_s` additionally rejects crash times
  /// scheduled at or beyond it (they could never fire within the run).
  void validate(std::uint32_t num_nodes, SimTime horizon_s = 0.0) const;
};

/// Fault-timeline event kinds recorded into JobResult::events.
enum class FaultEventType {
  kCrash,           ///< Ground truth: node died (silent or oracle).
  kDetected,        ///< AM/RM declared the node lost.
  kRejoin,          ///< Node re-registered; slots restored.
  kAttemptFailure,  ///< A task attempt failed transiently.
  kLaunchFailure,   ///< A container launch failed during startup.
  kBlacklist,       ///< AM blacklisted a node.
  kAbort,           ///< Job aborted (max_attempts exceeded / cluster lost).
  kReplicaLost,     ///< A block lost one replica to a node death.
  kReReplicated,    ///< NameNode restored a replica on a surviving node.
  kDataLoss,        ///< A block lost its last replica before being read.
  kFetchFailure,    ///< A reducer's shuffle fetch from a map host failed.
  kMapOutputLost,   ///< Fetch-failure reports forced a map re-execution.
  kAmCrash,         ///< The AppMaster died; in-flight containers torn down.
  kAmRestart,       ///< A replacement AM attempt replayed the journal.
  kPartLost,        ///< An rs(k,m) block lost one part (disk/node fault).
  kPartReconstructed,  ///< The repair pipeline rebuilt a lost part.
  kDiskFault,       ///< A single disk died on a live node.
};

/// Stable wire names ("crash", "detected", "rejoin", ...).
const char* to_string(FaultEventType type);

/// Sentinel for FaultEvent::block on non-storage events.
inline constexpr std::uint32_t kInvalidBlock =
    static_cast<std::uint32_t>(-1);

struct FaultEvent {
  SimTime time = 0;
  FaultEventType type = FaultEventType::kCrash;
  NodeId node = kInvalidNode;
  TaskId task = kInvalidTask;
  /// Attempt count at the moment of the event (failure/blacklist events).
  std::uint32_t attempts = 0;
  /// HDFS block id for storage-plane events (kReplicaLost, kReReplicated,
  /// kDataLoss); kInvalidBlock otherwise.
  std::uint32_t block = kInvalidBlock;
};

/// Streams the plan as a JSON object (embedded in flexmr.job_result.v1 so
/// a failing fault-sweep run is reproducible from its artifact alone).
void write_fault_plan(JsonWriter& writer, const FaultPlan& plan);

/// Streams one fault event as a JSON object.
void write_fault_event(JsonWriter& writer, const FaultEvent& event);

}  // namespace flexmr::faults
