#include "faults/injector.hpp"

#include <algorithm>
#include <string>

#include "obs/tracer.hpp"

namespace flexmr::faults {

void FaultInjector::arm(Simulator& sim, cluster::Cluster& cluster) {
  down_.assign(cluster.num_nodes(), 0);
  node_pending_rejoins_.assign(cluster.num_nodes(), 0);
  for (const auto& crash : plan_.crashes) {
    const NodeCrash entry = crash;
    // A job submitted after a planned fault time learns about it at start.
    sim.schedule_at(std::max(entry.at, sim.now()), [this, entry]() {
      down_[entry.node] = 1;
      if (on_crash_) on_crash_(entry.node, entry.silent);
    });
    if (entry.rejoin_at) {
      ++pending_rejoins_;
      ++node_pending_rejoins_[entry.node];
      sim.schedule_at(std::max(*entry.rejoin_at, sim.now()),
                      [this, entry]() {
                        down_[entry.node] = 0;
                        if (on_rejoin_) on_rejoin_(entry.node);
                        // Decremented only after the handler: an abort
                        // check inside rejoin resync must still see this
                        // rejoin as pending.
                        --pending_rejoins_;
                        --node_pending_rejoins_[entry.node];
                      });
    }
  }
  for (const auto& fault : plan_.disk_faults) {
    const DiskFault entry = fault;
    // Declarative (no RNG): the disk dies at its planned time; the driver
    // turns that into part/replica loss on the live node.
    sim.schedule_at(std::max(entry.at, sim.now()), [this, entry]() {
      if (on_disk_fault_) on_disk_fault_(entry.node, entry.disk);
    });
  }
  for (const auto& window : plan_.disk_degradations) {
    if (tracer_ != nullptr) {
      // Ground-truth span like node degradations below; the dispatch path
      // consults the plan directly, so nothing is scheduled here.
      tracer_->complete({obs::kFaultsPid, 1 + window.node},
                        "disk degradation node " +
                            std::to_string(window.node) + " disk " +
                            std::to_string(window.disk),
                        "fault", window.from, window.until - window.from,
                        {{"node", window.node},
                         {"disk", window.disk},
                         {"factor", window.factor}});
    }
  }
  for (const auto& window : plan_.degradations) {
    const DegradedWindow w = window;
    cluster::Machine* machine = &cluster.machine(w.node);
    sim.schedule_at(w.from, [machine, w]() {
      machine->set_fault_factor(w.factor);
    });
    sim.schedule_at(w.until, [machine]() {
      machine->set_fault_factor(1.0);
    });
    if (tracer_ != nullptr) {
      // Whole-window X span, emitted up front (the plan is static). One
      // lane per node so overlapping windows on different nodes render
      // side by side.
      tracer_->complete({obs::kFaultsPid, 1 + w.node},
                        "degradation node " + std::to_string(w.node),
                        "fault", w.from, w.until - w.from,
                        {{"node", w.node}, {"factor", w.factor}});
    }
  }
}

bool FaultInjector::draw_launch_failure(NodeId node) {
  (void)node;
  const double p = plan_.container_launch_failure_prob;
  return p > 0.0 && rng_.bernoulli(p);
}

bool FaultInjector::draw_attempt_failure(NodeId node) {
  const double p = plan_.attempt_failure_prob_for(node);
  return p > 0.0 && rng_.bernoulli(p);
}

bool FaultInjector::draw_fetch_failure() {
  const double p = plan_.fetch_failure_prob;
  return p > 0.0 && rng_.bernoulli(p);
}

double FaultInjector::draw_failure_fraction() {
  return rng_.uniform(0.05, 0.95);
}

}  // namespace flexmr::faults
