// INI front end for the cluster service: tools, benches and examples
// describe a multi-tenant scenario in a flat config file instead of code.
//
//   [group1]            # cluster node groups, as in examples/custom_cluster
//   model = rack server
//   count = 8
//   ips = 12
//   slots = 4
//
//   [service]
//   total_jobs = 100
//   max_concurrent_jobs = 4
//   policy = weighted-fair     # fifo | fair | weighted-fair
//   seed = 42
//   block_mb = 64
//   replication = 3
//
//   [preemption]
//   enabled = true
//   period_s = 30
//   over_share_factor = 1.25
//   max_kills_per_round = 2
//
//   [tenant1]                  # tenant2, tenant3, ... — at least one
//   name = analytics
//   weight = 2
//   arrivals_per_hour = 40
//   benchmarks = WC, II, TS    # PUMA codes, cycled per arrival
//   scale = small              # small | large
//   scheduler = flexmap        # hadoop | skewtune | flexmap | ...
//
//   [failures]
//   node1 = 3 @ 500            # node 3 dies at t=500s
#pragma once

#include <string>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "service/service.hpp"

namespace flexmr::service {

/// Builds the cluster from [groupN] sections. Throws ConfigError when no
/// group is defined.
cluster::Cluster build_cluster(const Config& config);

/// Parses [service], [preemption], [tenantN] and [failures] sections.
ServiceConfig parse_service_config(const Config& config);

/// "hadoop" | "hadoop-nospec" | "skewtune" | "flexmap" | "flexmap-nov" |
/// "flexmap-noh" | "flexmap-norb".
workloads::SchedulerKind parse_scheduler_kind(const std::string& name);

/// "fifo" | "fair" | "weighted-fair".
mr::SharePolicy parse_share_policy(const std::string& name);

/// Built-in demo scenario: mixed 10-node cluster, three tenants with
/// unequal weights and rates, preemption on.
const char* demo_config();

}  // namespace flexmr::service
