// Continuous multi-tenant cluster service.
//
// Everything below mr/ simulates one job (or one pre-declared batch); real
// clusters run as a *service*: named tenants submit jobs in an open arrival
// stream, an admission queue bounds how many applications run at once, and
// a cluster scheduler divides containers between the admitted jobs by
// tenant share. This layer closes that gap:
//
//   arrivals   Poisson per tenant (seeded, pre-generated, merged by time),
//              each arrival drawing the next benchmark from the tenant's
//              rotation with its own layout/noise seed,
//   admission  a FIFO-fair queue with a concurrency cap: a freed slot in
//              the cap goes to the queued job of the tenant with the least
//              weighted running work (ties: earliest arrival),
//   sharing    MultiJobCoordinator fair / weighted-fair arbitration, with
//              optional container preemption of over-share tenants,
//   SLOs       per-tenant JCT and queueing-delay distributions (exact
//              p50/p99 via SampleSet) plus a sampled slot-share series and
//              Jain's fairness index across tenants.
//
// Determinism contract: identical ServiceConfig (including seed) →
// identical arrivals, admissions, placements and ServiceResult JSON, byte
// for byte. The result JSON carries no wall-clock fields; a pinned golden
// hash over it guards the whole stack in CI.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/stats.hpp"
#include "mr/multi_job.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::service {

/// One named tenant of the shared cluster.
struct TenantSpec {
  std::string name;
  /// Fair-share weight under kWeightedFair (and preemption shares).
  double weight = 1.0;
  /// Mean Poisson arrival rate, jobs per simulated hour.
  double arrivals_per_hour = 30.0;
  /// PUMA benchmark codes cycled per arrival ("WC", "II", ...).
  std::vector<std::string> benchmarks;
  workloads::InputScale scale = workloads::InputScale::kSmall;
  /// Per-job scheduling policy (each tenant may run a different one —
  /// e.g. a FlexMap tenant next to a stock-Hadoop tenant).
  workloads::SchedulerKind scheduler = workloads::SchedulerKind::kFlexMap;
};

struct ServiceConfig {
  std::vector<TenantSpec> tenants;
  /// The arrival stream is truncated to this many jobs in time order.
  std::size_t total_jobs = 100;
  /// Admission cap: jobs running concurrently (YARN's max-applications).
  std::uint32_t max_concurrent_jobs = 4;
  mr::SharePolicy policy = mr::SharePolicy::kWeightedFair;
  mr::PreemptionConfig preemption;
  MiB block_size = kDefaultBlockMiB;
  std::uint32_t replication = 3;
  /// params.seed is the master seed: arrivals, layouts, per-job noise and
  /// scheduler seeds all derive from it.
  mr::SimParams params;
  /// Cluster-level failure injection, (node, time) pairs.
  std::vector<std::pair<NodeId, SimTime>> node_failures;
  /// AM-crash injection: (global job id, seconds after admission) pairs.
  /// The listed jobs journal their committed work; when the crash fires
  /// the AM dies, its containers are torn down, and after
  /// `am_restart_delay_s` a successor attempt replays the journal and
  /// finishes only the uncommitted remainder. The job keeps its admission
  /// slot through the downtime, and downtime counts against its JCT/SLO.
  std::vector<std::pair<std::size_t, SimDuration>> am_crashes;
  /// A crash on this attempt aborts the job instead of restarting it.
  std::uint32_t am_max_attempts = 2;
  SimDuration am_restart_delay_s = 10.0;
  /// Cadence of the per-tenant slot-share sampler.
  SimDuration share_sample_period_s = 30.0;
};

/// Lifecycle of one job through the service.
struct JobRecord {
  std::size_t job = 0;     ///< Global id, arrival order.
  std::size_t tenant = 0;  ///< Index into ServiceConfig::tenants.
  std::string benchmark;
  SimTime arrival = 0;
  SimTime admitted = 0;
  SimTime finish = 0;
  bool aborted = false;
  /// AM restarts survived (0 for the common never-crashed job).
  std::uint32_t am_restarts = 0;

  double jct() const { return finish - arrival; }
  double queue_delay() const { return admitted - arrival; }
};

struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_aborted = 0;
  SampleSet jct;          ///< finish − arrival, per job (seconds).
  SampleSet queue_delay;  ///< admitted − arrival, per job (seconds).
  SampleSet slot_share;   ///< Sampled fraction of cluster containers.
};

struct ServiceResult {
  std::string policy;
  std::uint64_t seed = 0;
  std::size_t total_jobs = 0;
  SimTime makespan = 0;  ///< Finish time of the last job.
  std::uint64_t preemption_kills = 0;
  /// AM restarts survived across all jobs (emitted in the JSON only when
  /// non-zero, keeping crash-free documents byte-identical).
  std::uint64_t am_restarts = 0;
  /// Jain's index over tenant mean slot shares (1 = perfectly fair).
  double fairness_index = 1.0;
  std::vector<TenantStats> tenants;
  std::vector<JobRecord> jobs;  ///< Global id order.

  /// Deterministic flexmr.service.v1 document (no wall-clock fields).
  std::string json() const;
};

class ClusterService {
 public:
  /// Validates `config` (ConfigError on empty tenants, unknown benchmark
  /// codes, non-positive rates/weights/caps) and pre-generates the arrival
  /// stream and per-job layouts, so run() is pure event-driven execution.
  ClusterService(Simulator& sim, cluster::Cluster& cluster,
                 ServiceConfig config);

  /// Merged observability for the whole service: every admitted job joins
  /// the one session under its own pid/token namespace. Call before run().
  void set_trace(obs::TraceSession* trace);

  /// Runs the open stream to completion. One-shot.
  ServiceResult run();

  const mr::MultiJobCoordinator& coordinator() const { return coord_; }

 private:
  /// One arrival, fully materialized up front for determinism.
  struct PendingJob {
    std::size_t tenant = 0;
    const workloads::Benchmark* bench = nullptr;
    SimTime arrival = 0;
    std::uint64_t seed = 0;
    hdfs::FileLayout layout;
    std::unique_ptr<mr::Scheduler> scheduler;
  };

  void generate_arrivals();
  void on_arrival(std::size_t job);
  void try_admit();
  void poll_completions();
  void sample_shares();

  Simulator* sim_;
  cluster::Cluster* cluster_;
  ServiceConfig config_;
  mr::MultiJobCoordinator coord_;
  obs::TraceSession* trace_ = nullptr;

  std::vector<PendingJob> pending_;   ///< Global id order (= arrival order).
  std::vector<JobRecord> records_;    ///< Parallel to pending_.
  std::vector<std::size_t> queue_;    ///< Arrived, waiting for admission.
  /// (global job id, coordinator index) of admitted unfinished jobs.
  std::vector<std::pair<std::size_t, std::size_t>> active_;
  std::vector<std::size_t> tenant_running_;  ///< Admitted jobs per tenant.
  std::vector<SampleSet> tenant_share_samples_;
  std::size_t completed_ = 0;
  bool ran_ = false;
};

}  // namespace flexmr::service
