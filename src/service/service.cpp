#include "service/service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "obs/session.hpp"

namespace flexmr::service {

namespace {

/// Stream-splitting seed mix: one master seed, independent per-purpose
/// streams (splitmix-seeded xoshiro warmup, so nearby tags decorrelate).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag) {
  Rng r(seed ^ (0x9e3779b97f4a7c15ULL * (tag + 1)));
  return r();
}

void validate(const ServiceConfig& config) {
  if (config.tenants.empty()) {
    throw ConfigError("service needs at least one tenant");
  }
  for (const TenantSpec& tenant : config.tenants) {
    if (tenant.name.empty()) {
      throw ConfigError("tenant name must be non-empty");
    }
    if (!(tenant.weight > 0.0)) {
      throw ConfigError("tenant " + tenant.name + ": weight must be > 0");
    }
    if (!(tenant.arrivals_per_hour > 0.0)) {
      throw ConfigError("tenant " + tenant.name +
                        ": arrivals_per_hour must be > 0");
    }
    if (tenant.benchmarks.empty()) {
      throw ConfigError("tenant " + tenant.name +
                        ": needs at least one benchmark code");
    }
    for (const std::string& code : tenant.benchmarks) {
      workloads::benchmark(code);  // Throws on unknown codes.
    }
  }
  if (config.total_jobs == 0) {
    throw ConfigError("total_jobs must be > 0");
  }
  if (config.max_concurrent_jobs == 0) {
    throw ConfigError("max_concurrent_jobs must be > 0");
  }
  if (!(config.share_sample_period_s > 0)) {
    throw ConfigError("share_sample_period_s must be > 0");
  }
  for (const auto& [job, offset] : config.am_crashes) {
    if (job >= config.total_jobs) {
      throw ConfigError("AM crash targets unknown job " +
                        std::to_string(job));
    }
    if (offset < 0) {
      throw ConfigError("AM crash offset must be non-negative");
    }
  }
  if (config.am_max_attempts == 0) {
    throw ConfigError("am_max_attempts must be > 0");
  }
  if (config.am_restart_delay_s < 0) {
    throw ConfigError("am_restart_delay_s must be non-negative");
  }
}

void write_sample_set(JsonWriter& w, const SampleSet& s) {
  w.begin_object();
  w.field("count", static_cast<std::uint64_t>(s.count()));
  if (!s.empty()) {
    w.field("mean", s.mean());
    w.field("p50", s.quantile(0.5));
    w.field("p99", s.quantile(0.99));
    w.field("max", s.max());
  }
  w.end_object();
}

}  // namespace

ClusterService::ClusterService(Simulator& sim, cluster::Cluster& cluster,
                               ServiceConfig config)
    : sim_(&sim),
      cluster_(&cluster),
      config_(std::move(config)),
      coord_(sim, cluster, config_.policy),
      tenant_running_(config_.tenants.size(), 0),
      tenant_share_samples_(config_.tenants.size()) {
  validate(config_);
  generate_arrivals();
}

void ClusterService::set_trace(obs::TraceSession* trace) {
  FLEXMR_ASSERT_MSG(!ran_, "set_trace before run");
  trace_ = trace;
}

void ClusterService::generate_arrivals() {
  // Each tenant gets an independent Poisson stream from its own seed
  // stream; the merged sequence is truncated to total_jobs in time order.
  // Everything about an arrival (time, benchmark, layout, scheduler,
  // noise seed) is fixed here, before any simulation state exists.
  struct Candidate {
    SimTime time;
    std::size_t tenant;
    std::size_t seq;  ///< Per-tenant arrival index (benchmark rotation).
  };
  std::vector<Candidate> candidates;
  candidates.reserve(config_.tenants.size() * config_.total_jobs);
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    Rng rng(mix_seed(config_.params.seed, 0xA441'0000 + t));
    const double mean_gap_s = 3600.0 / config_.tenants[t].arrivals_per_hour;
    SimTime at = 0;
    for (std::size_t k = 0; k < config_.total_jobs; ++k) {
      at += rng.exponential(mean_gap_s);
      candidates.push_back({at, t, k});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.seq < b.seq;
            });
  candidates.resize(std::min(candidates.size(), config_.total_jobs));

  pending_.reserve(candidates.size());
  records_.reserve(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const Candidate& c = candidates[j];
    const TenantSpec& tenant = config_.tenants[c.tenant];
    const workloads::Benchmark& bench = workloads::benchmark(
        tenant.benchmarks[c.seq % tenant.benchmarks.size()]);

    PendingJob job;
    job.tenant = c.tenant;
    job.bench = &bench;
    job.arrival = c.time;
    job.seed = mix_seed(config_.params.seed, 0xB0B'0000 + j);
    job.layout = workloads::make_layout(
        bench, tenant.scale, cluster_->num_nodes(), config_.block_size,
        config_.replication, job.seed);
    job.scheduler = workloads::make_scheduler(tenant.scheduler, job.seed);
    pending_.push_back(std::move(job));

    JobRecord record;
    record.job = j;
    record.tenant = c.tenant;
    record.benchmark = bench.code;
    record.arrival = c.time;
    records_.push_back(std::move(record));
  }
}

void ClusterService::on_arrival(std::size_t job) {
  queue_.push_back(job);
  try_admit();
}

void ClusterService::try_admit() {
  while (active_.size() < config_.max_concurrent_jobs && !queue_.empty()) {
    // The free admission slot goes to the queued job of the tenant with
    // the least weighted running work; ties to the earliest arrival (the
    // queue is in arrival order, so the first minimum wins both ties).
    std::size_t best = 0;
    double best_key = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const std::size_t t = pending_[queue_[i]].tenant;
      const double key = static_cast<double>(tenant_running_[t]) /
                         config_.tenants[t].weight;
      if (key < best_key) {
        best_key = key;
        best = i;
      }
    }
    const std::size_t j = queue_[best];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));

    PendingJob& job = pending_[j];
    const TenantSpec& tenant = config_.tenants[job.tenant];
    records_[j].admitted = sim_->now();
    ++tenant_running_[job.tenant];
    FLEXMR_LOG(Debug, "svc") << "admitted job #" << j << " (tenant "
                             << tenant.name << ") at t=" << sim_->now()
                             << ", queue=" << queue_.size()
                             << ", active=" << active_.size() + 1;

    mr::JobSpec spec = workloads::to_job_spec(*job.bench, tenant.scale);
    spec.name += " #" + std::to_string(j) + " (" + tenant.name + ")";
    mr::SimParams params = config_.params;
    params.seed = job.seed;
    const std::size_t ci =
        coord_.submit(job.layout, std::move(spec), params, *job.scheduler,
                      sim_->now(), tenant.weight);
    // AM kills are configured as offsets from admission; the journal is
    // installed here, before the job's start event fires.
    for (const auto& [target, offset] : config_.am_crashes) {
      if (target == j) coord_.schedule_am_crash(ci, sim_->now() + offset);
    }
    active_.emplace_back(j, ci);
  }
}

void ClusterService::poll_completions() {
  bool freed = false;
  for (std::size_t i = 0; i < active_.size();) {
    const auto [j, ci] = active_[i];
    // A job in AM-restart limbo keeps its admission slot: its successor is
    // coming, and releasing the slot would over-admit past the cap.
    if (!coord_.job_finished(ci)) {
      ++i;
      continue;
    }
    const mr::JobResult result = coord_.result(ci);
    records_[j].finish = sim_->now();
    records_[j].aborted = result.aborted;
    records_[j].am_restarts = result.am_restarts;
    --tenant_running_[pending_[j].tenant];
    ++completed_;
    freed = true;
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  if (freed) try_admit();
}

void ClusterService::sample_shares() {
  if (completed_ >= records_.size()) return;  // Stream drained: stop.
  const double total =
      static_cast<double>(coord_.resource_manager().total_slots());
  if (total > 0) {
    for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
      std::uint32_t held = 0;
      for (const auto& [j, ci] : active_) {
        if (pending_[j].tenant == t) held += coord_.driver(ci).slots_in_use();
      }
      tenant_share_samples_[t].add(static_cast<double>(held) / total);
    }
  }
  sim_->schedule_after(config_.share_sample_period_s,
                       [this]() { sample_shares(); });
}

ServiceResult ClusterService::run() {
  FLEXMR_ASSERT_MSG(!ran_, "run is one-shot");
  ran_ = true;

  for (const auto& [node, time] : config_.node_failures) {
    coord_.schedule_node_failure(node, time);
  }
  if (!config_.am_crashes.empty()) {
    coord_.set_am_recovery({config_.am_max_attempts,
                            config_.am_restart_delay_s});
  }
  coord_.set_preemption(config_.preemption);
  if (trace_ != nullptr) coord_.set_trace(trace_);
  coord_.start();

  for (std::size_t j = 0; j < pending_.size(); ++j) {
    sim_->schedule_at(pending_[j].arrival, [this, j]() { on_arrival(j); });
  }
  sim_->schedule_after(config_.share_sample_period_s,
                       [this]() { sample_shares(); });

  while (completed_ < pending_.size()) {
    if (!sim_->step()) {
      throw InvariantError("service ran dry with unfinished jobs");
    }
    if (trace_ != nullptr) trace_->metrics().maybe_sample(sim_->now());
    poll_completions();
  }
  if (trace_ != nullptr) trace_->metrics().sample_now(sim_->now());

  ServiceResult out;
  out.policy = mr::to_string(config_.policy);
  out.seed = config_.params.seed;
  out.total_jobs = records_.size();
  out.preemption_kills = coord_.preemption_kills();
  out.tenants.reserve(config_.tenants.size());
  for (std::size_t t = 0; t < config_.tenants.size(); ++t) {
    TenantStats stats;
    stats.name = config_.tenants[t].name;
    stats.weight = config_.tenants[t].weight;
    stats.slot_share = tenant_share_samples_[t];
    out.tenants.push_back(std::move(stats));
  }
  for (const JobRecord& record : records_) {
    TenantStats& stats = out.tenants[record.tenant];
    out.makespan = std::max(out.makespan, record.finish);
    out.am_restarts += record.am_restarts;
    if (record.aborted) {
      ++stats.jobs_aborted;
    } else {
      ++stats.jobs_completed;
      stats.jct.add(record.jct());
    }
    stats.queue_delay.add(record.queue_delay());
  }
  // Jain's index over mean slot shares: (Σx)² / (n·Σx²).
  double sum = 0, sum_sq = 0;
  for (const TenantStats& stats : out.tenants) {
    const double x = stats.slot_share.empty() ? 0.0 : stats.slot_share.mean();
    sum += x;
    sum_sq += x * x;
  }
  out.fairness_index =
      sum_sq > 0 ? (sum * sum) / (static_cast<double>(out.tenants.size()) *
                                  sum_sq)
                 : 1.0;
  out.jobs = records_;
  return out;
}

std::string ServiceResult::json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "flexmr.service.v1");
  w.field("policy", policy);
  w.field("seed", seed);
  w.field("total_jobs", static_cast<std::uint64_t>(total_jobs));
  w.field("makespan_s", makespan);
  w.field("preemption_kills", preemption_kills);
  // Gated on non-zero so crash-free documents (and their pinned golden
  // hashes) stay byte-identical to builds without AM recovery.
  if (am_restarts > 0) w.field("am_restarts", am_restarts);
  w.field("fairness_index", fairness_index);
  w.key("tenants").begin_array();
  for (const TenantStats& stats : tenants) {
    w.begin_object();
    w.field("name", stats.name);
    w.field("weight", stats.weight);
    w.field("jobs_completed", static_cast<std::uint64_t>(stats.jobs_completed));
    w.field("jobs_aborted", static_cast<std::uint64_t>(stats.jobs_aborted));
    w.key("jct_s");
    write_sample_set(w, stats.jct);
    w.key("queue_delay_s");
    write_sample_set(w, stats.queue_delay);
    w.key("slot_share");
    write_sample_set(w, stats.slot_share);
    w.end_object();
  }
  w.end_array();
  w.key("jobs").begin_array();
  for (const JobRecord& record : jobs) {
    w.begin_object();
    w.field("id", static_cast<std::uint64_t>(record.job));
    w.field("tenant", static_cast<std::uint64_t>(record.tenant));
    w.field("benchmark", record.benchmark);
    w.field("arrival_s", record.arrival);
    w.field("admitted_s", record.admitted);
    w.field("finish_s", record.finish);
    w.field("jct_s", record.jct());
    w.field("queue_delay_s", record.queue_delay());
    w.field("aborted", record.aborted);
    if (record.am_restarts > 0) {
      w.field("am_restarts", static_cast<std::uint64_t>(record.am_restarts));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace flexmr::service
