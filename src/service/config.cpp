#include "service/config.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace flexmr::service {

namespace {

/// Splits "WC, II, TS" into trimmed tokens.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    std::size_t lo = pos, hi = comma;
    while (lo < hi && std::isspace(static_cast<unsigned char>(value[lo]))) {
      ++lo;
    }
    while (hi > lo &&
           std::isspace(static_cast<unsigned char>(value[hi - 1]))) {
      --hi;
    }
    if (hi > lo) out.push_back(value.substr(lo, hi - lo));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

cluster::Cluster build_cluster(const Config& config) {
  cluster::ClusterBuilder builder;
  bool any = false;
  for (int g = 1;; ++g) {
    const std::string section = "group" + std::to_string(g);
    if (!config.has(section + ".count")) break;
    any = true;
    cluster::MachineSpec spec;
    spec.model = config.get_string(section + ".model", section);
    spec.base_ips = config.require_double(section + ".ips");
    spec.slots =
        static_cast<std::uint32_t>(config.get_int(section + ".slots", 4));
    const double slowdown = config.get_double(section + ".slowdown", 1.0);
    builder.add(spec,
                static_cast<std::uint32_t>(
                    config.require_int(section + ".count")),
                slowdown < 1.0 ? cluster::static_slowdown(slowdown)
                               : cluster::no_interference());
  }
  if (!any) {
    throw ConfigError("config defines no [groupN] cluster sections");
  }
  return builder.build();
}

workloads::SchedulerKind parse_scheduler_kind(const std::string& name) {
  using workloads::SchedulerKind;
  if (name == "hadoop") return SchedulerKind::kHadoop;
  if (name == "hadoop-nospec") return SchedulerKind::kHadoopNoSpec;
  if (name == "skewtune") return SchedulerKind::kSkewTune;
  if (name == "flexmap") return SchedulerKind::kFlexMap;
  if (name == "flexmap-nov") return SchedulerKind::kFlexMapNoVertical;
  if (name == "flexmap-noh") return SchedulerKind::kFlexMapNoHorizontal;
  if (name == "flexmap-norb") return SchedulerKind::kFlexMapNoReduceBias;
  throw ConfigError("unknown scheduler: " + name);
}

mr::SharePolicy parse_share_policy(const std::string& name) {
  if (name == "fifo") return mr::SharePolicy::kFifo;
  if (name == "fair") return mr::SharePolicy::kFair;
  if (name == "weighted-fair") return mr::SharePolicy::kWeightedFair;
  throw ConfigError("unknown share policy: " + name);
}

ServiceConfig parse_service_config(const Config& config) {
  ServiceConfig out;
  out.total_jobs = static_cast<std::size_t>(
      config.get_int("service.total_jobs", 100));
  out.max_concurrent_jobs = static_cast<std::uint32_t>(
      config.get_int("service.max_concurrent_jobs", 4));
  out.policy = parse_share_policy(
      config.get_string("service.policy", "weighted-fair"));
  out.block_size = config.get_double("service.block_mb", kDefaultBlockMiB);
  out.replication = static_cast<std::uint32_t>(
      config.get_int("service.replication", 3));
  out.params.seed =
      static_cast<std::uint64_t>(config.get_int("service.seed", 42));
  out.share_sample_period_s =
      config.get_double("service.share_sample_period_s", 30.0);

  out.preemption.enabled = config.get_bool("preemption.enabled", false);
  out.preemption.period_s = config.get_double("preemption.period_s", 30.0);
  out.preemption.over_share_factor =
      config.get_double("preemption.over_share_factor", 1.25);
  out.preemption.max_kills_per_round = static_cast<std::uint32_t>(
      config.get_int("preemption.max_kills_per_round", 2));

  for (int t = 1;; ++t) {
    const std::string section = "tenant" + std::to_string(t);
    if (!config.has(section + ".name")) break;
    TenantSpec tenant;
    tenant.name = config.require_string(section + ".name");
    tenant.weight = config.get_double(section + ".weight", 1.0);
    tenant.arrivals_per_hour =
        config.get_double(section + ".arrivals_per_hour", 30.0);
    tenant.benchmarks =
        split_csv(config.get_string(section + ".benchmarks", "WC"));
    const std::string scale = config.get_string(section + ".scale", "small");
    if (scale == "small") {
      tenant.scale = workloads::InputScale::kSmall;
    } else if (scale == "large") {
      tenant.scale = workloads::InputScale::kLarge;
    } else {
      throw ConfigError("tenant scale must be small or large: " + scale);
    }
    tenant.scheduler = parse_scheduler_kind(
        config.get_string(section + ".scheduler", "flexmap"));
    out.tenants.push_back(std::move(tenant));
  }

  for (int i = 1;; ++i) {
    const auto value = config.get("failures.node" + std::to_string(i));
    if (!value) break;
    const auto at = value->find('@');
    if (at == std::string::npos) {
      throw ConfigError("failure spec must be '<node> @ <time>': " + *value);
    }
    out.node_failures.emplace_back(
        static_cast<NodeId>(std::stoul(value->substr(0, at))),
        std::stod(value->substr(at + 1)));
  }

  // [am] — AM-crash injection: crashN = '<job> @ <seconds after admission>'.
  out.am_max_attempts = static_cast<std::uint32_t>(
      config.get_int("am.max_attempts", 2));
  out.am_restart_delay_s = config.get_double("am.restart_delay_s", 10.0);
  for (int i = 1;; ++i) {
    const auto value = config.get("am.crash" + std::to_string(i));
    if (!value) break;
    const auto at = value->find('@');
    if (at == std::string::npos) {
      throw ConfigError("AM crash spec must be '<job> @ <offset>': " +
                        *value);
    }
    out.am_crashes.emplace_back(
        static_cast<std::size_t>(std::stoul(value->substr(0, at))),
        std::stod(value->substr(at + 1)));
  }
  return out;
}

const char* demo_config() {
  return R"(
# Built-in demo: mixed 10-node cluster, three tenants, preemption on.
[group1]
model = rack server
count = 6
ips = 12
slots = 4

[group2]
model = legacy box
count = 4
ips = 6
slots = 4

[service]
total_jobs = 24
max_concurrent_jobs = 4
policy = weighted-fair
seed = 42

[preemption]
enabled = true
period_s = 30

[tenant1]
name = analytics
weight = 2
arrivals_per_hour = 60
benchmarks = WC, II
scheduler = flexmap

[tenant2]
name = reporting
weight = 1
arrivals_per_hour = 40
benchmarks = GR, HR
scheduler = flexmap

[tenant3]
name = batch
weight = 1
arrivals_per_hour = 20
benchmarks = TS
scheduler = hadoop
)";
}

}  // namespace flexmr::service
