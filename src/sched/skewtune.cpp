#include "sched/skewtune.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr::sched {

namespace {
/// Minimum running-task count before the straggler scan fans out to the
/// lane workers (matches the driver's snapshot threshold).
constexpr std::size_t kParallelScanMin = 2048;
}  // namespace

void SkewTuneScheduler::on_job_start(mr::DriverContext& ctx) {
  StockHadoopScheduler::on_job_start(ctx);
  chunks_.clear();
  mitigation_tasks_.clear();
  pending_is_mitigation_ = false;
}

void SkewTuneScheduler::on_recovery(
    mr::DriverContext& ctx, const recover::RecoveredState& recovered) {
  StockHadoopScheduler::on_recovery(ctx, recovered);
  // The virtual on_job_start re-entered above already cleared chunks_ /
  // mitigation_tasks_ / pending_is_mitigation_; assert the contract so a
  // future on_job_start refactor cannot silently leak pre-crash plans.
  FLEXMR_ASSERT(chunks_.empty() && mitigation_tasks_.empty() &&
                !pending_is_mitigation_);
}

void SkewTuneScheduler::on_map_dispatch(mr::DriverContext& ctx, TaskId task,
                                        NodeId node) {
  (void)ctx;
  (void)node;
  if (pending_is_mitigation_) {
    mitigation_tasks_.insert(task);
    pending_is_mitigation_ = false;
  }
}

void SkewTuneScheduler::on_node_failed(
    mr::DriverContext& ctx, NodeId node,
    const std::vector<BlockUnitId>& reclaimed) {
  StockHadoopScheduler::on_node_failed(ctx, node, reclaimed);
  // BUs whose parent block still has launched siblings cannot be
  // re-pended as a block; hand them to the mitigation queue instead.
  std::vector<BlockUnitId> loose;
  for (const BlockUnitId bu : reclaimed) {
    if (block_launched(ctx.layout().bus[bu].block)) loose.push_back(bu);
  }
  if (!loose.empty()) chunks_.push_back(std::move(loose));
}

void SkewTuneScheduler::on_attempt_failed(
    mr::DriverContext& ctx, NodeId node,
    const std::vector<BlockUnitId>& reclaimed) {
  StockHadoopScheduler::on_attempt_failed(ctx, node, reclaimed);
  std::vector<BlockUnitId> loose;
  for (const BlockUnitId bu : reclaimed) {
    if (block_launched(ctx.layout().bus[bu].block)) loose.push_back(bu);
  }
  if (!loose.empty()) chunks_.push_back(std::move(loose));
}

TaskId SkewTuneScheduler::find_straggler(mr::DriverContext& ctx) const {
  // Runs on every idle offer once input drains — the worst O(nodes)
  // control term on the 10k grid (~10× the others; see ROADMAP).
  FLEXMR_PROF_SCOPE("sched/skewtune_argmax");
  const SimTime now = ctx.now();
  const auto running = ctx.running_maps();
  // Candidate scoring is pure per-element FP (no accumulation across
  // elements), and the strict-`>` argmax keeps the *first* maximum — so
  // per-chunk argmaxes combined with the same strict `>` in chunk order
  // give exactly the serial winner, and the scan may fan out over the
  // lane workers on big clusters (DESIGN.md §13.4).
  const auto time_left_of = [&](const mr::RunningMapInfo& info) -> double {
    if (!info.computing) return 0;
    if (mitigation_tasks_.contains(info.id)) return 0;
    if (info.size_mib <= 2 * kBlockUnitMiB) return 0;  // nothing to split
    const SimDuration elapsed = now - info.dispatch_time;
    if (elapsed < options_.min_runtime_s) return 0;
    const double rate = info.progress / elapsed;
    if (rate <= 0) return 0;
    const double time_left = (1.0 - info.progress) / rate;
    // Mitigation must buy more than it costs. With k helpers the tail
    // shrinks to ~time_left/k but every helper pays the repartition
    // overhead; SkewTune's planner approximates this with a fixed factor.
    if (time_left <
        options_.min_benefit_factor * options_.repartition_overhead_s) {
      return 0;
    }
    return time_left;
  };
  TaskId best = kInvalidTask;
  double best_time_left = 0;
  LaneSet* lanes = ctx.lane_set();
  if (lanes != nullptr && lanes->workers() > 0 &&
      running.size() >= kParallelScanMin) {
    const std::size_t max_chunks = lanes->workers() + 1;
    std::vector<TaskId> chunk_best(max_chunks, kInvalidTask);
    std::vector<double> chunk_time_left(max_chunks, 0);
    lanes->run_chunked(
        running.size(), kParallelScanMin,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const double time_left = time_left_of(running[i]);
            if (time_left > chunk_time_left[chunk]) {
              chunk_time_left[chunk] = time_left;
              chunk_best[chunk] = running[i].id;
            }
          }
        });
    for (std::size_t chunk = 0; chunk < max_chunks; ++chunk) {
      if (chunk_time_left[chunk] > best_time_left) {
        best_time_left = chunk_time_left[chunk];
        best = chunk_best[chunk];
      }
    }
    return best;
  }
  for (const auto& info : running) {
    const double time_left = time_left_of(info);
    if (time_left > best_time_left) {
      best_time_left = time_left;
      best = info.id;
    }
  }
  return best;
}

std::optional<mr::MapLaunch> SkewTuneScheduler::serve_chunk(
    mr::DriverContext& ctx) {
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    auto& chunk = chunks_[i];
    const bool readable =
        std::all_of(chunk.begin(), chunk.end(), [&](BlockUnitId bu) {
          return ctx.block_readable(ctx.layout().bus[bu].block);
        });
    if (!readable) continue;
    mr::MapLaunch launch;
    launch.bus = std::move(chunk);
    chunks_.erase(chunks_.begin() + static_cast<std::ptrdiff_t>(i));
    ctx.index().take_units(launch.bus);
    launch.extra_startup_s = options_.repartition_overhead_s;
    pending_is_mitigation_ = true;
    return launch;
  }
  return std::nullopt;
}

std::optional<mr::MapLaunch> SkewTuneScheduler::on_slot_free(
    mr::DriverContext& ctx, NodeId node) {
  // Normal Hadoop dispatch while input remains.
  if (auto launch = launch_pending_block(ctx, node)) return launch;

  // Serve an already-planned mitigation chunk.
  if (auto launch = serve_chunk(ctx)) return launch;

  // Idle slot, no pending work: look for a straggler worth splitting.
  const TaskId straggler = find_straggler(ctx);
  if (straggler == kInvalidTask) return std::nullopt;

  std::vector<BlockUnitId> remaining = ctx.kill_and_reclaim(straggler);
  if (remaining.empty()) return std::nullopt;

  // Partition the remainder into equal chunks, one per currently-free slot
  // plus this one (the homogeneity assumption: every helper gets the same
  // share regardless of its actual speed).
  const std::size_t helpers =
      std::max<std::size_t>(1, ctx.total_free_slots() + 1);
  const std::size_t chunk_size =
      (remaining.size() + helpers - 1) / helpers;
  for (std::size_t begin = 0; begin < remaining.size();
       begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, remaining.size());
    chunks_.emplace_back(
        remaining.begin() + static_cast<std::ptrdiff_t>(begin),
        remaining.begin() + static_cast<std::ptrdiff_t>(end));
  }

  FLEXMR_LOG(Debug, "sched") << "skewtune repartition: straggler=" << straggler
                             << " reclaimed_bus=" << remaining.size()
                             << " helpers=" << helpers << " at t=" << ctx.now();
  if (obs::EventTracer* tracer = ctx.tracer()) {
    tracer->instant(
        {obs::node_pid(node), 0}, "skewtune-repartition", "sched", ctx.now(),
        {{"straggler", straggler},
         {"reclaimed_bus", static_cast<std::uint64_t>(remaining.size())},
         {"helpers", static_cast<std::uint64_t>(helpers)},
         {"chunk_bus", static_cast<std::uint64_t>(chunk_size)}});
  }
  return serve_chunk(ctx);
}

}  // namespace flexmr::sched
