#include "sched/stock.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr::sched {

namespace {
/// Minimum running-task count before the LATE candidate build fans out to
/// the lane workers (matches the driver's snapshot threshold).
constexpr std::size_t kParallelScanMin = 2048;
}  // namespace

void StockHadoopScheduler::on_job_start(mr::DriverContext& ctx) {
  const auto& layout = ctx.layout();
  block_launched_.assign(layout.blocks.size(), 0);
  node_local_blocks_.assign(ctx.num_nodes(), {});
  node_partial_blocks_.assign(ctx.num_nodes(), {});
  node_cursor_.assign(ctx.num_nodes(), 0);
  partial_cursor_.assign(ctx.num_nodes(), 0);
  pending_count_ = layout.blocks.size();
  global_cursor_ = 0;
  remote_wait_since_.assign(ctx.num_nodes(), -1.0);
  // Under rs(k,m) striping a holder owns one *part*, not the block: no
  // node is fully local, so every holder routes to the partial tier (1b)
  // and the full-local lists stay empty. Replication keeps the old lists
  // and never touches the partial tier.
  const bool erasure = layout.storage.erasure();
  for (const auto& block : layout.blocks) {
    for (const NodeId node : block.replicas) {
      (erasure ? node_partial_blocks_ : node_local_blocks_)[node].push_back(
          block.id);
    }
  }
}

void StockHadoopScheduler::on_recovery(
    mr::DriverContext& ctx, const recover::RecoveredState& recovered) {
  (void)recovered;  // replayed work is read back through the index
  on_job_start(ctx);
  // The driver replayed committed maps before calling us, so their BUs are
  // already taken in the index. A block with no free BU left is finished
  // work — mark it launched so the dispatch scan skips it. Blocks with a
  // free remainder (a partial-credit prefix was committed) stay pending;
  // launch_pending_block relaunches just the remainder.
  const auto& layout = ctx.layout();
  for (const auto& block : layout.blocks) {
    bool any_free = false;
    for (const BlockUnitId bu : block.bus) {
      if (!ctx.index().taken(bu)) {
        any_free = true;
        break;
      }
    }
    if (!any_free) {
      block_launched_[block.id] = 1;
      --pending_count_;
    }
  }
}

std::optional<mr::MapLaunch> StockHadoopScheduler::launch_pending_block(
    mr::DriverContext& ctx, NodeId node) {
  const auto& layout = ctx.layout();

  // A pending block is normally fully unprocessed, but a preempted (or
  // SkewTune-killed) map may have consumed a prefix before its block was
  // re-pended — the relaunched map covers only the free remainder.
  auto free_units = [&](std::uint32_t block_id) {
    std::vector<BlockUnitId> bus;
    for (const BlockUnitId bu : layout.blocks[block_id].bus) {
      if (!ctx.index().taken(bu)) bus.push_back(bu);
    }
    return bus;
  };
  auto make_launch = [&](std::uint32_t block_id,
                         std::vector<BlockUnitId> bus) {
    block_launched_[block_id] = 1;
    --pending_count_;
    ctx.index().take_units(bus);
    mr::MapLaunch launch;
    launch.bus = std::move(bus);
    return launch;
  };

  // 1. Node-local block.
  auto& locals = node_local_blocks_[node];
  auto& cursor = node_cursor_[node];
  while (cursor < locals.size()) {
    const std::uint32_t block_id = locals[cursor];
    if (!block_launched_[block_id]) {
      if (auto bus = free_units(block_id); !bus.empty()) {
        remote_wait_since_[node] = -1.0;
        return make_launch(block_id, std::move(bus));
      }
      // Raced empty (every BU taken since the re-pend): treat as launched.
      block_launched_[block_id] = 1;
      --pending_count_;
    }
    ++cursor;
  }

  // 1b. Partial-local block (rs(k,m) only; the list is empty otherwise).
  //     Holding one live part does not make the stripe readable — the
  //     block still needs k live parts overall — so unlike rule 1 this
  //     scan must consult block_readable.
  auto& partials = node_partial_blocks_[node];
  auto& pcursor = partial_cursor_[node];
  while (pcursor < partials.size()) {
    const std::uint32_t block_id = partials[pcursor];
    if (!block_launched_[block_id] && ctx.block_readable(block_id)) {
      if (auto bus = free_units(block_id); !bus.empty()) {
        remote_wait_since_[node] = -1.0;
        return make_launch(block_id, std::move(bus));
      }
      block_launched_[block_id] = 1;
      --pending_count_;
    }
    ++pcursor;
  }

  // 2. Any pending block (remote execution on an idle node) — after the
  //    delay-scheduling wait, if one is configured.
  if (pending_count_ > 0 && options_.locality_wait_s > 0.0) {
    if (remote_wait_since_[node] < 0.0) {
      remote_wait_since_[node] = ctx.now();
      return std::nullopt;  // start waiting for a local block to free up
    }
    if (ctx.now() - remote_wait_since_[node] < options_.locality_wait_s) {
      return std::nullopt;
    }
  }
  while (global_cursor_ < block_launched_.size()) {
    // Skip pending blocks with no live replica (every holder is down):
    // their data cannot be read until a holder rejoins, at which point
    // on_node_recovered rewinds this cursor.
    if (!block_launched_[global_cursor_] &&
        ctx.block_readable(global_cursor_)) {
      if (auto bus = free_units(global_cursor_); !bus.empty()) {
        remote_wait_since_[node] = -1.0;
        return make_launch(global_cursor_, std::move(bus));
      }
      block_launched_[global_cursor_] = 1;
      --pending_count_;
    }
    ++global_cursor_;
  }
  return std::nullopt;
}

std::optional<mr::MapLaunch> StockHadoopScheduler::late_speculate(
    mr::DriverContext& ctx, NodeId node) {
  // LATE's candidate build walks every running map per offer — with the
  // snapshot above it is the stock scheduler's O(nodes) control term.
  FLEXMR_PROF_SCOPE("sched/late_speculate");
  const auto running = ctx.running_maps();

  // SpeculativeCap: bound concurrent speculative copies.
  const auto cap = static_cast<std::size_t>(std::ceil(
      options_.late.speculative_cap * ctx.total_slots()));
  std::size_t speculating = 0;
  for (const auto& info : running) {
    if (info.speculative) ++speculating;
  }
  if (speculating >= cap) return std::nullopt;

  // SlowNodeThreshold: no backups on nodes that look slow themselves.
  std::vector<double> node_speeds;
  for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
    if (const auto ips = ctx.observed_ips(n)) node_speeds.push_back(*ips);
  }
  if (const auto own = ctx.observed_ips(node); own && !node_speeds.empty()) {
    std::vector<double> sorted = node_speeds;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        options_.late.slow_node_percentile *
        static_cast<double>(sorted.size() - 1));
    if (*own < sorted[idx]) return std::nullopt;
  }

  // Candidates: running, old enough, unfinished enough, not yet backed up.
  const SimTime now = ctx.now();
  struct Candidate {
    TaskId id;
    double rate;
    double time_left;
  };
  // Pure per-element filter + FP scoring: chunkable on the lane workers,
  // with per-chunk vectors concatenated in chunk (= element) order so the
  // candidate list — and therefore the percentile threshold and the
  // first-wins argmax below — is byte-identical to the serial build
  // (DESIGN.md §13.4).
  const auto consider = [&](const mr::RunningMapInfo& info,
                            std::vector<Candidate>& cands,
                            std::vector<double>& rs) {
    if (!info.computing || info.speculative || info.has_twin) return;
    const SimDuration elapsed = now - info.dispatch_time;
    if (elapsed < options_.late.min_runtime_s) return;
    if (info.progress >= options_.late.max_progress) return;
    if (info.node == node) return;  // a copy next to the original is useless
    const double rate = info.progress / elapsed;
    if (rate <= 0) return;
    cands.push_back({info.id, rate, (1.0 - info.progress) / rate});
    rs.push_back(rate);
  };
  std::vector<Candidate> candidates;
  std::vector<double> rates;
  LaneSet* lanes = ctx.lane_set();
  if (lanes != nullptr && lanes->workers() > 0 &&
      running.size() >= kParallelScanMin) {
    const std::size_t max_chunks = lanes->workers() + 1;
    std::vector<std::vector<Candidate>> cand_parts(max_chunks);
    std::vector<std::vector<double>> rate_parts(max_chunks);
    lanes->run_chunked(
        running.size(), kParallelScanMin,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            consider(running[i], cand_parts[chunk], rate_parts[chunk]);
          }
        });
    for (std::size_t chunk = 0; chunk < max_chunks; ++chunk) {
      candidates.insert(candidates.end(), cand_parts[chunk].begin(),
                        cand_parts[chunk].end());
      rates.insert(rates.end(), rate_parts[chunk].begin(),
                   rate_parts[chunk].end());
    }
  } else {
    for (const auto& info : running) consider(info, candidates, rates);
  }
  if (candidates.empty()) return std::nullopt;

  // SlowTaskThreshold: only tasks in the slow tail of progress rates.
  std::sort(rates.begin(), rates.end());
  const auto rate_idx = static_cast<std::size_t>(
      options_.late.slow_task_percentile *
      static_cast<double>(rates.size() - 1));
  const double slow_rate = rates[rate_idx];

  const Candidate* best = nullptr;
  for (const auto& candidate : candidates) {
    if (candidate.rate > slow_rate) continue;
    if (!best || candidate.time_left > best->time_left) best = &candidate;
  }
  if (!best) return std::nullopt;

  FLEXMR_LOG(Debug, "sched") << "late speculate: victim=" << best->id
                             << " rate=" << best->rate
                             << " est_time_left_s=" << best->time_left
                             << " at t=" << now;
  if (obs::EventTracer* tracer = ctx.tracer()) {
    tracer->instant({obs::node_pid(node), 0}, "late-speculate", "sched", now,
                    {{"victim", best->id},
                     {"victim_rate", best->rate},
                     {"est_time_left_s", best->time_left},
                     {"slow_rate_threshold", slow_rate}});
  }
  mr::MapLaunch launch;
  launch.speculative_of = best->id;
  return launch;
}

std::optional<mr::MapLaunch> StockHadoopScheduler::on_slot_free(
    mr::DriverContext& ctx, NodeId node) {
  if (auto launch = launch_pending_block(ctx, node)) return launch;
  if (options_.speculation) return late_speculate(ctx, node);
  return std::nullopt;
}

void StockHadoopScheduler::on_node_failed(
    mr::DriverContext& ctx, NodeId node,
    const std::vector<BlockUnitId>& reclaimed) {
  (void)node;
  repend_reclaimed(ctx, reclaimed);
}

void StockHadoopScheduler::on_attempt_failed(
    mr::DriverContext& ctx, NodeId node,
    const std::vector<BlockUnitId>& reclaimed) {
  (void)node;
  repend_reclaimed(ctx, reclaimed);
}

void StockHadoopScheduler::on_node_recovered(mr::DriverContext& ctx,
                                             NodeId node) {
  (void)ctx;
  node_cursor_[node] = 0;
  partial_cursor_[node] = 0;
  global_cursor_ = 0;
  remote_wait_since_[node] = -1.0;
}

void StockHadoopScheduler::on_block_rehosted(mr::DriverContext& ctx,
                                             std::uint32_t block,
                                             NodeId node) {
  // The copy lands at the tail of the node's local (or, for an rs(k,m)
  // reconstructed part, partial-local) list — at or past the node's scan
  // cursor, so the locality scan finds it without a rewind. (A launched
  // block is pushed too: the scan skips it, and it matters again if a
  // failure later re-pends it.)
  (ctx.layout().storage.erasure() ? node_partial_blocks_
                                  : node_local_blocks_)[node]
      .push_back(block);
}

void StockHadoopScheduler::repend_reclaimed(
    mr::DriverContext& ctx, const std::vector<BlockUnitId>& reclaimed) {
  const auto& layout = ctx.layout();
  std::set<std::uint32_t> blocks;
  for (const BlockUnitId bu : reclaimed) {
    blocks.insert(layout.bus[bu].block);
  }
  for (const std::uint32_t block_id : blocks) {
    if (!block_launched_[block_id]) continue;
    // Any free BU re-pends the block: a preempted map may have credited a
    // consumed prefix, so the block can come back partially processed and
    // the relaunch covers just the remainder (see launch_pending_block).
    bool any_free = false;
    for (const BlockUnitId bu : layout.blocks[block_id].bus) {
      if (!ctx.index().taken(bu)) {
        any_free = true;
        break;
      }
    }
    if (any_free) {
      block_launched_[block_id] = 0;
      ++pending_count_;
    }
  }
  // Rewind the scan cursors: re-pended blocks may sit behind them.
  for (auto& cursor : node_cursor_) cursor = 0;
  for (auto& cursor : partial_cursor_) cursor = 0;
  global_cursor_ = 0;
}

}  // namespace flexmr::sched
