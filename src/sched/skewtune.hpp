// SkewTune (Kwon et al., SIGMOD'12) reimplemented on the simulator, as the
// paper uses it: a skew-mitigation baseline that, when slots idle at the
// tail of the map phase, stops the straggler with the greatest estimated
// time-left and repartitions its *unprocessed* input evenly across the idle
// slots ("SkewTune parallelizes a straggler task by repartitioning and
// redistributing its input data across all available nodes. It assumes all
// slave nodes have the same processing capability." — §IV-A).
//
// Modeled costs, matching the mechanism's real overheads:
//   * repartitioning is planned by scanning the remaining input; every
//     mitigation task pays `repartition_overhead_s` extra startup,
//   * mitigation chunks are usually remote to their new host, so they pay
//     the driver's normal remote-read penalty,
//   * the straggler's processed prefix is kept (SkewTune's operator-level
//     split), surfacing as a PartialCompleted task.
//
// The homogeneity assumption shows up as *equal* chunk sizes — exactly why
// the paper finds SkewTune loses to FlexMap when slow nodes are plentiful.
#pragma once

#include <deque>
#include <set>
#include <vector>

#include "sched/stock.hpp"

namespace flexmr::sched {

struct SkewTuneOptions {
  /// Extra startup charged to every mitigation task (scan + plan + move).
  SimDuration repartition_overhead_s = 10.0;
  /// Only mitigate stragglers whose estimated time-left exceeds this
  /// multiple of the repartition overhead (SkewTune's "is it worth it").
  double min_benefit_factor = 2.0;
  /// Don't judge tasks younger than this.
  SimDuration min_runtime_s = 5.0;
};

class SkewTuneScheduler final : public StockHadoopScheduler {
 public:
  explicit SkewTuneScheduler(SkewTuneOptions options = {})
      : StockHadoopScheduler(StockOptions{.speculation = false, .late = {}}),
        options_(options) {}

  std::string name() const override { return "skewtune"; }

  void on_job_start(mr::DriverContext& ctx) override;
  /// Mitigation state (planned chunks, mitigation-task ids) is transient
  /// policy state deliberately NOT journaled: a restarted AM re-plans
  /// mitigation from live observation. The base recovery rebuilds the
  /// pending pool; on_job_start (virtually re-entered by it) clears the
  /// queues. Killed mitigation chunks simply re-pend as part of their
  /// block's free remainder.
  void on_recovery(mr::DriverContext& ctx,
                   const recover::RecoveredState& recovered) override;
  std::optional<mr::MapLaunch> on_slot_free(mr::DriverContext& ctx,
                                            NodeId node) override;
  void on_map_dispatch(mr::DriverContext& ctx, TaskId task,
                       NodeId node) override;
  /// Whole blocks re-pend via the base class; BUs from partially-covered
  /// blocks (a mitigated straggler's prefix died) become one repair chunk.
  void on_node_failed(mr::DriverContext& ctx, NodeId node,
                      const std::vector<BlockUnitId>& reclaimed) override;
  /// Same split for a transient attempt failure: whole blocks re-pend,
  /// loose BUs (a failed mitigation chunk) re-enter the chunk queue.
  void on_attempt_failed(mr::DriverContext& ctx, NodeId node,
                         const std::vector<BlockUnitId>& reclaimed) override;

 private:
  /// Picks the straggler to mitigate; returns kInvalidTask if none is
  /// worth it.
  TaskId find_straggler(mr::DriverContext& ctx) const;

  /// Serves the first chunk whose input blocks are still readable (a chunk
  /// of a replica-less block stays queued until a holder rejoins).
  std::optional<mr::MapLaunch> serve_chunk(mr::DriverContext& ctx);

  SkewTuneOptions options_;
  std::deque<std::vector<BlockUnitId>> chunks_;  ///< Planned mitigation work.
  /// Tasks created by mitigation — never re-mitigated (SkewTune splits a
  /// straggler once; recursively splitting its own repair tasks would pay
  /// the repartition overhead over and over).
  std::set<TaskId> mitigation_tasks_;
  bool pending_is_mitigation_ = false;
};

}  // namespace flexmr::sched
