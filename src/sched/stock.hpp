// Stock Hadoop map scheduling: one map per HDFS block, static input
// binding, locality-first dispatch, and (optionally) LATE speculative
// execution — the scheduler YARN ships and the paper's primary baseline.
//
// Dispatch order on a free slot (Hadoop's node-local → off-switch order,
// collapsed to two levels on a flat topology):
//   1. the lowest-id pending block with a replica on the node,
//   1b. under rs(k,m) striping: the lowest-id pending block with a *part*
//       on the node ("partial-local" — the node serves 1/k of the stripe
//       from its own disk, so it still beats a fully remote read),
//   2. the lowest-id pending block anywhere (remote execution),
//   3. if speculation is enabled and no blocks are pending: a LATE
//      speculative copy of the slowest-looking running task.
//
// LATE (Zaharia et al., OSDI'08), as summarized in the paper §II-B:
//   * estimate time-left = (1 - progress) / progress_rate,
//   * only speculate tasks whose progress rate is below SlowTaskThreshold
//     (a percentile of running tasks' rates),
//   * never launch speculative copies on slow nodes (observed IPS below
//     SlowNodeThreshold percentile),
//   * cap concurrently running speculative copies at SpeculativeCap
//     (a fraction of cluster slots),
//   * copy the candidate with the largest time-left.
#pragma once

#include <cstdint>
#include <vector>

#include "mr/scheduler.hpp"

namespace flexmr::sched {

struct LateParams {
  double speculative_cap = 0.1;      ///< Fraction of total slots.
  double slow_task_percentile = 0.25;
  double slow_node_percentile = 0.25;
  /// Don't judge brand-new tasks. Real YARN speculators need statistics
  /// to warm up and rarely fire in a task's first tens of seconds; the
  /// paper leans on exactly this sluggishness ("may also miss the best
  /// timing for load balancing", §IV-E).
  SimDuration min_runtime_s = 15.0;
  double max_progress = 0.9;         ///< Too late to bother past this.
};

struct StockOptions {
  bool speculation = true;
  /// Delay scheduling (Zaharia et al., EuroSys'10 — shipped in Hadoop's
  /// fair scheduler): a slot with no node-local pending block waits this
  /// long before accepting a remote block. 0 disables the wait.
  SimDuration locality_wait_s = 0.0;
  LateParams late;
};

class StockHadoopScheduler : public mr::Scheduler {
 public:
  explicit StockHadoopScheduler(StockOptions options = {})
      : options_(options) {}

  std::string name() const override {
    return options_.speculation ? "hadoop" : "hadoop-nospec";
  }

  void on_job_start(mr::DriverContext& ctx) override;
  /// Rebuilds the pending-block pool on a restarted AM: blocks whose every
  /// BU was replayed from the journal (already taken in the context's
  /// index) are done, not pending; partially-committed blocks stay pending
  /// and relaunch covering just the free remainder.
  void on_recovery(mr::DriverContext& ctx,
                   const recover::RecoveredState& recovered) override;
  std::optional<mr::MapLaunch> on_slot_free(mr::DriverContext& ctx,
                                            NodeId node) override;
  /// Re-pends every block whose BUs all returned to the pool after a node
  /// failure (one map per block: a block re-runs whole or not at all).
  void on_node_failed(mr::DriverContext& ctx, NodeId node,
                      const std::vector<BlockUnitId>& reclaimed) override;
  /// Same re-pend for a single failed attempt (transient JVM/launch
  /// failure): its whole block returns to the pending pool for retry.
  void on_attempt_failed(mr::DriverContext& ctx, NodeId node,
                         const std::vector<BlockUnitId>& reclaimed) override;
  /// A rejoined node's local blocks become attractive again: rewind the
  /// dispatch cursors so locality-first scanning reconsiders them (and so
  /// the global scan revisits pending blocks it skipped as unreadable).
  void on_node_recovered(mr::DriverContext& ctx, NodeId node) override;
  /// A re-replicated copy of `block` landed on `node`: the block joins the
  /// node's local list so locality-first dispatch can use the new copy.
  void on_block_rehosted(mr::DriverContext& ctx, std::uint32_t block,
                         NodeId node) override;

 protected:
  /// Whether block `block_id` currently has a launched map bound to it.
  bool block_launched(std::uint32_t block_id) const {
    return block_launched_[block_id] != 0;
  }
  /// Attempts rules 1–2 (pending blocks). Shared with SkewTune.
  std::optional<mr::MapLaunch> launch_pending_block(mr::DriverContext& ctx,
                                                    NodeId node);

  /// Rule 3: LATE. Returns a speculative launch or nullopt.
  std::optional<mr::MapLaunch> late_speculate(mr::DriverContext& ctx,
                                              NodeId node);

  std::size_t pending_blocks() const { return pending_count_; }

 private:
  /// Shared failure cleanup: re-pend fully-freed blocks and rewind the
  /// scan cursors (re-pended blocks may sit behind them).
  void repend_reclaimed(mr::DriverContext& ctx,
                        const std::vector<BlockUnitId>& reclaimed);

  StockOptions options_;
  std::vector<char> block_launched_;
  std::vector<std::vector<std::uint32_t>> node_local_blocks_;
  /// rs(k,m) only: blocks with a part on the node (empty lists under
  /// replication, so the partial-local tier costs nothing there).
  std::vector<std::vector<std::uint32_t>> node_partial_blocks_;
  std::vector<std::size_t> node_cursor_;
  std::vector<std::size_t> partial_cursor_;
  std::size_t pending_count_ = 0;
  std::uint32_t global_cursor_ = 0;
  /// Delay scheduling: when each node started waiting for a local block
  /// (negative = not waiting).
  std::vector<SimTime> remote_wait_since_;
};

}  // namespace flexmr::sched
