#include "flexmap/flexmap_scheduler.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace flexmr::flexmap {

void FlexMapScheduler::on_job_start(mr::DriverContext& ctx) {
  const bool reuse = options_.warm_start && monitor_ != nullptr &&
                     monitor_->num_nodes() == ctx.num_nodes();
  if (!reuse) {
    monitor_ = std::make_unique<SpeedMonitor>(ctx.num_nodes());
  }
  sizer_ = std::make_unique<DynamicSizer>(ctx.num_nodes(), options_.sizing);
  binder_ = std::make_unique<LateTaskBinder>(ctx.index());
  task_epoch_.clear();
  trace_.clear();
  speed_trace_.clear();
  reduce_quota_.clear();
  reduce_assigned_.clear();
}

void FlexMapScheduler::on_recovery(
    mr::DriverContext& ctx, const recover::RecoveredState& recovered) {
  on_job_start(ctx);
  for (const recover::SchedulerNote& note : recovered.scheduler_notes) {
    if (note.kind != kSizingNoteKind) continue;
    sizer_->restore_unit(static_cast<NodeId>(note.a),
                         static_cast<std::uint32_t>(note.b), note.c != 0);
  }
}

std::optional<mr::MapLaunch> FlexMapScheduler::on_slot_free(
    mr::DriverContext& ctx, NodeId node) {
  if (ctx.index().unprocessed() == 0) return std::nullopt;

  FLEXMR_PROF_SCOPE("sched/flexmap_sizing");

  // Algorithm-1 sizing decision, traced with its inputs so a Perfetto
  // view can answer "why did this node get a task this size?".
  obs::ScopedSpan span(ctx.tracer(), {obs::node_pid(node), 0}, "sizing",
                      "flexmap");

  // Horizontal scaling input: how fast is this node relative to the
  // slowest node the monitor has heard from?
  const double relative = monitor_->relative_speed(node);
  const std::uint32_t sized = sizer_->task_size(node, relative);

  // End-game guard: a task that would run longer than the map phase's
  // estimated time-to-drain becomes the very straggler elasticity is meant
  // to remove, so cap the launch at what this container can chew through
  // before the cluster drains the remaining work (unprocessed + in-flight).
  // Early in the phase the bound is far above the sizer's target; it only
  // binds near the end. (Engineering addition on top of Algorithm 1; the
  // paper relies on the input simply running out.)
  const std::uint32_t cap = end_game_cap(ctx, node);
  const std::uint32_t target = std::min(sized, cap);

  BoundSplit split = binder_->bind(node, target);
  span.arg("relative_speed", relative);
  span.arg("sizer_target", sized);
  span.arg("end_game_cap", cap);
  span.arg("bound_bus", static_cast<std::uint64_t>(split.bus.size()));
  if (split.bus.empty()) return std::nullopt;  // file exhausted

  last_launch_epoch_ = sizer_->epoch(node);
  span.arg("epoch", last_launch_epoch_);
  mr::MapLaunch launch;
  launch.bus = std::move(split.bus);
  return launch;
}

void FlexMapScheduler::on_map_dispatch(mr::DriverContext& ctx, TaskId task,
                                       NodeId node) {
  (void)ctx;
  (void)node;
  task_epoch_[task] = last_launch_epoch_;
}

void FlexMapScheduler::on_map_complete(mr::DriverContext& ctx,
                                       const mr::TaskRecord& rec) {
  const auto it = task_epoch_.find(rec.id);
  if (it == task_epoch_.end()) return;
  const std::uint32_t epoch = it->second;
  task_epoch_.erase(it);

  trace_.push_back(SizingTracePoint{rec.node, rec.phase_progress_at_end,
                                    rec.num_bus, rec.input_mib,
                                    rec.productivity()});
  const std::uint32_t unit_before = sizer_->size_unit(rec.node);
  const bool frozen_before = sizer_->frozen(rec.node);
  sizer_->on_task_complete(rec.node, epoch, rec.productivity());
  // Journal sizing commits (unit growth OR a freeze) so a restarted AM
  // resumes the ramp instead of re-climbing from 1 BU.
  if (recover::JobJournal* journal = ctx.journal();
      journal != nullptr && (sizer_->size_unit(rec.node) != unit_before ||
                             sizer_->frozen(rec.node) != frozen_before)) {
    journal->record_scheduler_note(
        {kSizingNoteKind, rec.node, sizer_->size_unit(rec.node),
         sizer_->frozen(rec.node) ? 1u : 0u});
  }
}

void FlexMapScheduler::on_heartbeat(mr::DriverContext& ctx, NodeId node) {
  if (!ctx.node_alive(node)) return;
  if (const auto ips = ctx.observed_ips(node)) {
    speed_trace_.push_back(SpeedTracePoint{ctx.now(), node, *ips});
    monitor_->update(node, *ips);
  }
}

void FlexMapScheduler::on_node_failed(mr::DriverContext& ctx, NodeId node,
                                      const std::vector<BlockUnitId>&) {
  (void)ctx;
  // The binder works straight off the index, so reclaimed BUs need no
  // bookkeeping here; just stop treating the dead node as a speed anchor
  // and recompute reduce quotas if the phase hasn't consumed them yet.
  monitor_->forget(node);
  reduce_quota_.clear();
  reduce_assigned_.clear();
}

void FlexMapScheduler::on_node_recovered(mr::DriverContext& ctx,
                                         NodeId node) {
  (void)ctx;
  monitor_->forget(node);
  sizer_->reset_node(node);
  reduce_quota_.clear();
  reduce_assigned_.clear();
}

std::uint32_t FlexMapScheduler::end_game_cap(const mr::DriverContext& ctx,
                                             NodeId node) const {
  // Sharded-engine audit: this kernel (and capacity_share below) is a
  // sequential FP sum over nodes — known_sum and cluster_rate are
  // accumulation chains whose rounding depends on addition order, so
  // chunking them across lane workers would change low-order bits and
  // break golden byte-identity. They stay serial by design; only the
  // per-element kernels (running_maps snapshot, LATE candidates,
  // SkewTune argmax) are fanned out. See DESIGN.md §13.4.
  // Observed per-container rates; unreported nodes assume the mean.
  double known_sum = 0.0;
  std::size_t known = 0;
  for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
    if (!ctx.node_alive(n)) continue;
    if (const auto speed = monitor_->get_speed(n)) {
      known_sum += *speed;
      ++known;
    }
  }
  const double fallback =
      known > 0 ? known_sum / static_cast<double>(known) : 1.0;
  double cluster_rate = 0.0;
  for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
    if (!ctx.node_alive(n)) continue;
    cluster_rate += monitor_->get_speed(n).value_or(fallback) *
                    ctx.machine_spec(n).slots;
  }
  const double own_rate = monitor_->get_speed(node).value_or(fallback);
  FLEXMR_ASSERT(cluster_rate > 0.0);

  // Cap at this container's capacity-proportional share of the unassigned
  // pool: if every container took exactly its share they would all finish
  // together, so exceeding it risks running past the drain point. The
  // bound loosens nothing early (the sizer's target is far below it) and
  // tightens automatically as the pool empties.
  const double share_bus = static_cast<double>(ctx.unassigned_bus()) *
                           own_rate / cluster_rate;
  return share_bus < 1.0
             ? 1u
             : static_cast<std::uint32_t>(std::min(share_bus, 1e9));
}

double FlexMapScheduler::capacity_share(const mr::DriverContext& ctx,
                                        NodeId node) const {
  // Machine capacity = observed per-container IPS × container count.
  // Nodes that never reported are assumed average-speed per container.
  if (!ctx.node_alive(node)) return 0.0;
  double known_sum = 0.0;
  std::size_t known = 0;
  for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
    if (!ctx.node_alive(n)) continue;
    if (const auto speed = monitor_->get_speed(n)) {
      known_sum += *speed;
      ++known;
    }
  }
  const double fallback =
      known > 0 ? known_sum / static_cast<double>(known) : 1.0;
  double own = 0.0;
  double total = 0.0;
  for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
    if (!ctx.node_alive(n)) continue;
    const double capacity = monitor_->get_speed(n).value_or(fallback) *
                            ctx.machine_spec(n).slots;
    if (n == node) own = capacity;
    total += capacity;
  }
  FLEXMR_ASSERT(total > 0.0);
  return own / total;
}

bool FlexMapScheduler::accept_reducer(mr::DriverContext& ctx, NodeId node) {
  if (!options_.reduce_bias) return true;

  // The paper's placement loop — draw a node uniformly, accept with
  // probability c_i^2, redraw otherwise — induces a multinomial over nodes
  // with p_i ∝ c_i^2. Our dispatch is offer-driven (a slot, not the AM,
  // initiates), so repeated acceptance draws per slot would wash the bias
  // out over time; instead we materialize the same distribution as
  // per-node quotas (largest-remainder rounding of R·c_i²/Σc_j²) computed
  // once at reduce-phase start from the speeds the monitor observed.
  if (reduce_quota_.empty()) {
    const std::uint32_t total = ctx.total_reducers();
    FLEXMR_ASSERT(total > 0);
    std::vector<double> weight(ctx.num_nodes());
    double weight_sum = 0.0;
    double max_share = 0.0;
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      max_share = std::max(max_share, capacity_share(ctx, n));
    }
    FLEXMR_ASSERT(max_share > 0.0);
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      const double c = capacity_share(ctx, n) / max_share;
      weight[n] = c * c;
      weight_sum += weight[n];
    }
    reduce_quota_.assign(ctx.num_nodes(), 0);
    reduce_assigned_.assign(ctx.num_nodes(), 0);
    std::vector<std::pair<double, NodeId>> remainders;
    std::uint32_t assigned = 0;
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      const double exact = total * weight[n] / weight_sum;
      reduce_quota_[n] = static_cast<std::uint32_t>(exact);
      assigned += reduce_quota_[n];
      remainders.emplace_back(exact - std::floor(exact), n);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (std::size_t i = 0; assigned < total; ++i) {
      ++reduce_quota_[remainders[i % remainders.size()].second];
      ++assigned;
    }
  }
  if (reduce_assigned_[node] >= reduce_quota_[node]) return false;

  // Size guard: a key-skewed job's outsized head reducer must not land on
  // a slow node merely because that node was offered first — its compute
  // time would dominate the phase. Slow nodes only take reducers around
  // the mean size; fast nodes take anything.
  const double mean = ctx.mean_reducer_input();
  if (mean > 0.0 && ctx.next_reducer_input() > 1.5 * mean) {
    double max_share = 0.0;
    for (NodeId n = 0; n < ctx.num_nodes(); ++n) {
      max_share = std::max(max_share, capacity_share(ctx, n));
    }
    const double c = max_share > 0.0
                         ? capacity_share(ctx, node) / max_share
                         : 1.0;
    if (c < 0.7) return false;
  }

  ++reduce_assigned_[node];
  return true;
}

}  // namespace flexmr::flexmap
