// FlexMapScheduler: the paper's elastic map execution engine, assembled
// from its four components (architecture of Fig. 4):
//
//   SpeedMonitor   — per-node IPS from heartbeats (Eq. 3),
//   DynamicSizer   — Algorithm 1 (vertical + horizontal scaling),
//   LateTaskBinder — builds the n-BU split from node-local BUs when a
//                    container is granted (MBE + LTB),
//   BiasedReducePlacer — c_i^2 reduce dispatch (§III-F).
//
// On every container offer the scheduler asks the sizer for the node's
// current task size, binds that many BUs with locality preference, and
// dispatches. Completions feed productivity back into vertical scaling;
// heartbeats feed the speed monitor for horizontal scaling. FlexMap never
// speculates: elasticity replaces backup copies.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "flexmap/ltb.hpp"
#include "flexmap/reduce_placer.hpp"
#include "flexmap/sizing.hpp"
#include "flexmap/speed_monitor.hpp"
#include "mr/scheduler.hpp"

namespace flexmr::flexmap {

/// SchedulerNote.kind tag for journaled sizing-unit changes: {a = node,
/// b = size unit in BUs, c = frozen flag}. Absolute values, so replay in
/// commit order is idempotent and last-wins.
inline constexpr std::uint32_t kSizingNoteKind = 0xF1E0;

struct FlexMapOptions {
  SizingOptions sizing;
  bool reduce_bias = true;  ///< Ablation: disable c_i^2 reduce placement.
  std::uint64_t seed = 42;  ///< For reduce placement sampling.
  /// Keep the learned per-node speeds across jobs (§IV-G extensibility:
  /// iterative workloads like k-means re-run over the same cluster, so
  /// later iterations start with horizontal scaling already calibrated).
  /// Size units still re-ramp: carrying them over would assign the whole
  /// input in the first offer round and forfeit elasticity. Only applies
  /// when the next job runs on a same-sized cluster.
  bool warm_start = false;
};

/// A point in the Fig. 7 trace: one elastic task's size and productivity
/// at the map-phase progress where it completed.
struct SizingTracePoint {
  NodeId node = 0;
  double phase_progress = 0;   ///< 0..1 at task completion.
  std::uint32_t size_bus = 0;
  MiB size_mib = 0;
  double productivity = 0;
};

/// One SpeedMonitor reading: the Eq. 3 round-average IPS a node reported
/// at a heartbeat. The sequence per node is the raw signal horizontal
/// scaling acts on.
struct SpeedTracePoint {
  SimTime time = 0;
  NodeId node = 0;
  MiBps ips = 0;
};

class FlexMapScheduler final : public mr::Scheduler {
 public:
  explicit FlexMapScheduler(FlexMapOptions options = {})
      : options_(options) {}

  std::string name() const override { return "flexmap"; }

  void on_job_start(mr::DriverContext& ctx) override;
  /// Rebuilds from scratch, then replays journaled sizing notes so the
  /// per-node size-unit ramp resumes where the crashed AM left it (speed
  /// estimates are deliberately NOT journaled — the new AM re-observes
  /// them through heartbeats, like a real restarted MRAppMaster).
  void on_recovery(mr::DriverContext& ctx,
                   const recover::RecoveredState& recovered) override;
  std::optional<mr::MapLaunch> on_slot_free(mr::DriverContext& ctx,
                                            NodeId node) override;
  void on_map_dispatch(mr::DriverContext& ctx, TaskId task,
                       NodeId node) override;
  void on_map_complete(mr::DriverContext& ctx,
                       const mr::TaskRecord& rec) override;
  void on_heartbeat(mr::DriverContext& ctx, NodeId node) override;
  void on_node_failed(mr::DriverContext& ctx, NodeId node,
                      const std::vector<BlockUnitId>& reclaimed) override;
  /// A rejoined node is a blank slate: pre-crash speed readings and sizing
  /// state describe the old incarnation, so both restart from scratch and
  /// reduce quotas are recomputed against the new capacity picture.
  void on_node_recovered(mr::DriverContext& ctx, NodeId node) override;
  bool accept_reducer(mr::DriverContext& ctx, NodeId node) override;

  /// Observability for tests and the Fig. 7 bench.
  const SpeedMonitor& speed_monitor() const { return *monitor_; }

  /// Overrides the monitor's estimate for `node` (used by the oracle
  /// variant and by white-box tests). Only valid after on_job_start.
  void set_observed_speed(NodeId node, MiBps ips) {
    monitor_->update(node, ips);
  }
  const DynamicSizer& sizer() const { return *sizer_; }
  const std::vector<SizingTracePoint>& sizing_trace() const {
    return trace_;
  }
  /// Every (time, node, IPS) heartbeat reading fed to the SpeedMonitor
  /// during the last job.
  const std::vector<SpeedTracePoint>& speed_trace() const {
    return speed_trace_;
  }

 private:
  /// Node capacity (observed per-container IPS × containers) as a fraction
  /// of total cluster capacity. Unreported nodes assume the mean speed.
  double capacity_share(const mr::DriverContext& ctx, NodeId node) const;

  /// Largest task (in BUs) a container on `node` can finish before the
  /// cluster drains the remaining map work.
  std::uint32_t end_game_cap(const mr::DriverContext& ctx,
                             NodeId node) const;

  FlexMapOptions options_;
  std::unique_ptr<SpeedMonitor> monitor_;
  std::unique_ptr<DynamicSizer> sizer_;
  std::unique_ptr<LateTaskBinder> binder_;
  std::unordered_map<TaskId, std::uint32_t> task_epoch_;
  std::vector<SizingTracePoint> trace_;
  std::vector<SpeedTracePoint> speed_trace_;
  /// Per-node reducer quotas (multinomial expectation of the paper's c²
  /// sampling), built lazily at reduce-phase start.
  std::vector<std::uint32_t> reduce_quota_;
  std::vector<std::uint32_t> reduce_assigned_;
  /// Size (in BUs) of the launch produced by the current on_slot_free,
  /// consumed by the immediately following on_map_dispatch.
  std::uint32_t last_launch_epoch_ = 0;
};

}  // namespace flexmr::flexmap
