// FlexMap-specific observability export (schema "flexmr.flexmap_trace.v1"):
// the Fig. 7 sizing trace (size-unit evolution per node), the per-heartbeat
// SpeedMonitor readings, and each node's final sizing/speed state.
#pragma once

#include <string>

#include "common/json.hpp"
#include "flexmap/flexmap_scheduler.hpp"

namespace flexmr::flexmap {

/// Streams the scheduler's traces as a JSON object into `writer` (valid
/// after the job it observed has run).
void write_flexmap_trace(JsonWriter& writer,
                         const FlexMapScheduler& scheduler);

/// Standalone document form.
std::string flexmap_trace_json(const FlexMapScheduler& scheduler);

}  // namespace flexmr::flexmap
