#include "flexmap/export.hpp"

namespace flexmr::flexmap {

void write_flexmap_trace(JsonWriter& writer,
                         const FlexMapScheduler& scheduler) {
  writer.begin_object();
  writer.field("schema", "flexmr.flexmap_trace.v1");

  writer.key("sizing_trace").begin_array();
  for (const auto& point : scheduler.sizing_trace()) {
    writer.begin_object();
    writer.field("node", point.node);
    writer.field("phase_progress", point.phase_progress);
    writer.field("size_bus", point.size_bus);
    writer.field("size_mib", point.size_mib);
    writer.field("productivity", point.productivity);
    writer.end_object();
  }
  writer.end_array();

  writer.key("speed_trace").begin_array();
  for (const auto& point : scheduler.speed_trace()) {
    writer.begin_object();
    writer.field("time", point.time);
    writer.field("node", point.node);
    writer.field("ips", point.ips);
    writer.end_object();
  }
  writer.end_array();

  const auto& monitor = scheduler.speed_monitor();
  const auto& sizer = scheduler.sizer();
  writer.key("nodes").begin_array();
  for (NodeId node = 0; node < monitor.num_nodes(); ++node) {
    writer.begin_object();
    writer.field("node", node);
    writer.field("size_unit_bus", sizer.size_unit(node));
    writer.field("frozen", sizer.frozen(node));
    if (const auto ips = monitor.get_speed(node)) {
      writer.field("observed_ips", *ips);
    } else {
      writer.key("observed_ips").null();
    }
    writer.end_object();
  }
  writer.end_array();

  writer.end_object();
}

std::string flexmap_trace_json(const FlexMapScheduler& scheduler) {
  JsonWriter writer;
  write_flexmap_trace(writer, scheduler);
  return writer.str();
}

}  // namespace flexmr::flexmap
