// OracleScheduler: FlexMap with perfect knowledge.
//
// Identical policy to FlexMapScheduler, but the speed monitor is fed the
// machines' true effective speeds instead of heartbeat estimates. This is
// not implementable in a real AM — it exists as the upper bound for the
// ablation study: the gap between FlexMap and Oracle is the cost of
// *estimating* speeds from Eq. 3; the gap between Oracle and stock Hadoop
// is the full value of elastic sizing.
#pragma once

#include "cluster/cluster.hpp"
#include "flexmap/flexmap_scheduler.hpp"

namespace flexmr::flexmap {

class OracleScheduler final : public mr::Scheduler {
 public:
  /// `cluster` must outlive the scheduler and be the cluster the job runs
  /// on; the oracle reads its ground-truth speeds every heartbeat.
  OracleScheduler(const cluster::Cluster& cluster,
                  FlexMapOptions options = {})
      : cluster_(&cluster), inner_(options) {}

  std::string name() const override { return "flexmap-oracle"; }

  void on_job_start(mr::DriverContext& ctx) override {
    inner_.on_job_start(ctx);
    feed_truth();
  }
  std::optional<mr::MapLaunch> on_slot_free(mr::DriverContext& ctx,
                                            NodeId node) override {
    return inner_.on_slot_free(ctx, node);
  }
  void on_map_dispatch(mr::DriverContext& ctx, TaskId task,
                       NodeId node) override {
    inner_.on_map_dispatch(ctx, task, node);
  }
  void on_map_complete(mr::DriverContext& ctx,
                       const mr::TaskRecord& rec) override {
    inner_.on_map_complete(ctx, rec);
  }
  void on_heartbeat(mr::DriverContext& ctx, NodeId node) override {
    (void)ctx;
    // Replace the estimate with ground truth (per-container speed for the
    // reference workload; costs cancel in the ratios the sizer uses).
    inner_.set_observed_speed(node, cluster_->machine(node).effective_ips());
  }
  bool accept_reducer(mr::DriverContext& ctx, NodeId node) override {
    return inner_.accept_reducer(ctx, node);
  }

  const FlexMapScheduler& inner() const { return inner_; }

 private:
  void feed_truth() {
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
      inner_.set_observed_speed(n, cluster_->machine(n).effective_ips());
    }
  }

  const cluster::Cluster* cluster_;
  FlexMapScheduler inner_;
};

}  // namespace flexmr::flexmap
