// Biased reduce placement (paper §III-F).
//
// FlexMap's elastic maps concentrate intermediate data on fast nodes, so
// dispatching reducers uniformly would both bottleneck on slow nodes
// (one-wave reduce execution) and shuffle more bytes across machines. The
// paper's fix: normalize machine capacity to (0, 1] with the fastest
// machine at 1 (c_i), then dispatch each reducer by rejection sampling —
// draw a node uniformly, accept with probability c_i².
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace flexmr::flexmap {

class BiasedReducePlacer {
 public:
  explicit BiasedReducePlacer(std::uint64_t seed) : rng_(seed) {}

  /// The c_i^2 acceptance rule, applied when a container on a node is
  /// offered for a reducer: accept with probability capacity², where
  /// `capacity` is the node's machine capacity (per-container speed ×
  /// containers) normalized into (0, 1] with the fastest machine at 1.
  /// Declined offers recur on later cluster events, so a slow node ends up
  /// taking reducers only when fast nodes cannot absorb them — "more
  /// reducers dispatched onto faster nodes" with guaranteed progress.
  bool accept(double capacity) {
    FLEXMR_ASSERT(capacity >= 0.0 && capacity <= 1.0);
    // Shared bernoulli convention (strict <): capacity 0 never accepts.
    return rng_.bernoulli(capacity * capacity);
  }

 private:
  Rng rng_;
};

}  // namespace flexmr::flexmap
