// SpeedMonitor (paper §III-D): tracks per-node input processing speed.
//
// The driver computes each heartbeat round's per-node average container IPS
// (Eq. 3: HDFS_BYTES_READ / task runtime, averaged over the node's
// containers so record-cost skew washes out). The monitor keeps the latest
// known estimate per node — the paper's getSpeed interface — and derives
// the slowest/fastest known speeds used by horizontal scaling and by the
// biased reduce placer.
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr::flexmap {

class SpeedMonitor {
 public:
  explicit SpeedMonitor(std::uint32_t num_nodes)
      : speeds_(num_nodes) {}

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(speeds_.size());
  }

  /// Records the round-average IPS heard from `node` this heartbeat.
  void update(NodeId node, MiBps ips) {
    FLEXMR_ASSERT(node < speeds_.size());
    FLEXMR_ASSERT(ips >= 0.0);
    speeds_[node] = ips;
  }

  /// Drops a node's estimate (its NodeManager failed): the node must no
  /// longer anchor the slowest/fastest baselines.
  void forget(NodeId node) {
    FLEXMR_ASSERT(node < speeds_.size());
    speeds_[node].reset();
  }

  /// The paper's getSpeed: last known IPS of `node`, nullopt before the
  /// node first reports.
  std::optional<MiBps> get_speed(NodeId node) const {
    FLEXMR_ASSERT(node < speeds_.size());
    return speeds_[node];
  }

  /// Slowest known node speed; nullopt until anyone has reported.
  std::optional<MiBps> slowest() const;

  /// Fastest known node speed; nullopt until anyone has reported.
  std::optional<MiBps> fastest() const;

  /// node speed / slowest known speed; 1.0 while speeds are unknown.
  double relative_speed(NodeId node) const;

  /// node speed / fastest known speed in (0, 1]; 1.0 while unknown.
  /// This is the capacity value c_i the reduce placer biases by.
  double capacity(NodeId node) const;

  std::size_t known_nodes() const;

 private:
  std::vector<std::optional<MiBps>> speeds_;
};

}  // namespace flexmr::flexmap
