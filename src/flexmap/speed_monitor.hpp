// SpeedMonitor (paper §III-D): tracks per-node input processing speed.
//
// The driver computes each heartbeat round's per-node average container IPS
// (Eq. 3: HDFS_BYTES_READ / task runtime, averaged over the node's
// containers so record-cost skew washes out). The monitor keeps the latest
// known estimate per node — the paper's getSpeed interface — and derives
// the slowest/fastest known speeds used by horizontal scaling and by the
// biased reduce placer.
//
// The extrema are cached: update()/forget() maintain them incrementally and
// only an update that *retreats from* a current extremum (the anchor node
// slowing up / speeding down, or being forgotten) schedules a lazy O(n)
// rescan. Without the cache every relative_speed()/capacity() query rescans
// all nodes, which made each heartbeat wave O(n²) at cluster scale. Results
// are guaranteed identical to the scan (see the randomized equivalence test
// in tests/test_speed_monitor.cpp).
#pragma once

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr::flexmap {

class SpeedMonitor {
 public:
  explicit SpeedMonitor(std::uint32_t num_nodes)
      : speeds_(num_nodes) {}

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(speeds_.size());
  }

  /// Records the round-average IPS heard from `node` this heartbeat.
  void update(NodeId node, MiBps ips) {
    FLEXMR_ASSERT(node < speeds_.size());
    FLEXMR_ASSERT(ips >= 0.0);
    const std::optional<MiBps> old = speeds_[node];
    speeds_[node] = ips;
    if (!old) ++known_count_;
    if (dirty_) return;
    if (old && anchors_extremum(*old)) {
      // The node may have been the sole anchor of an extremum; only a
      // rescan can tell what the new extremum is.
      dirty_ = true;
      return;
    }
    merge(ips);
  }

  /// Drops a node's estimate (its NodeManager failed): the node must no
  /// longer anchor the slowest/fastest baselines.
  void forget(NodeId node) {
    FLEXMR_ASSERT(node < speeds_.size());
    if (speeds_[node]) {
      --known_count_;
      if (!dirty_ && anchors_extremum(*speeds_[node])) dirty_ = true;
    }
    speeds_[node].reset();
  }

  /// The paper's getSpeed: last known IPS of `node`, nullopt before the
  /// node first reports.
  std::optional<MiBps> get_speed(NodeId node) const {
    FLEXMR_ASSERT(node < speeds_.size());
    return speeds_[node];
  }

  /// Slowest known node speed; nullopt until anyone has reported.
  std::optional<MiBps> slowest() const {
    if (dirty_) rescan();
    return slowest_;
  }

  /// Fastest known node speed; nullopt until anyone has reported.
  std::optional<MiBps> fastest() const {
    if (dirty_) rescan();
    return fastest_;
  }

  /// node speed / slowest known speed; 1.0 while speeds are unknown.
  double relative_speed(NodeId node) const;

  /// node speed / fastest known speed in (0, 1]; 1.0 while unknown.
  /// This is the capacity value c_i the reduce placer biases by.
  double capacity(NodeId node) const;

  std::size_t known_nodes() const { return known_count_; }

 private:
  bool anchors_extremum(MiBps speed) const {
    return (slowest_ && speed <= *slowest_) ||
           (fastest_ && speed >= *fastest_);
  }

  /// Folds a fresh reading into the cached extrema (cache must be clean).
  void merge(MiBps ips) {
    if (!slowest_ || ips < *slowest_) slowest_ = ips;
    if (!fastest_ || ips > *fastest_) fastest_ = ips;
  }

  void rescan() const;

  std::vector<std::optional<MiBps>> speeds_;
  std::size_t known_count_ = 0;
  // Extrema cache; `dirty_` forces a rescan on the next query.
  mutable std::optional<MiBps> slowest_;
  mutable std::optional<MiBps> fastest_;
  mutable bool dirty_ = false;
};

}  // namespace flexmr::flexmap
