// Dynamic map task sizing — the paper's Algorithm 1 (DataProvision).
//
// Every node starts at one block unit. Sizing evolves along two axes:
//
//  * VERTICAL (per node, productivity feedback): while a node's completed
//    tasks have productivity below FAST_LIMIT the size unit doubles each
//    wave; between FAST_LIMIT and LINEAR_LIMIT it grows by one BU per
//    wave; at or above LINEAR_LIMIT it freezes.
//  * HORIZONTAL (across nodes, speed feedback): the task size actually
//    launched is size_unit × (node speed / slowest node speed).
//
// "Per wave" is enforced with epochs: each launched task is stamped with
// its node's sizing epoch, and only the first completion stamped with the
// current epoch triggers a growth step (otherwise every task of the same
// wave would double the unit again).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr::flexmap {

/// Hard saturation point for the size unit when max_unit_bus = 0
/// (unbounded): 2^30 BUs = 8 PiB per task, far beyond any input, but small
/// enough that doubling can never wrap the uint32. Growth freezes here.
inline constexpr std::uint32_t kMaxSizeUnit = 1u << 30;

struct SizingOptions {
  double fast_limit = 0.8;    ///< FAST_LIMIT (paper: 0.8).
  double linear_limit = 0.9;  ///< LINEAR_LIMIT (paper: 0.9).
  bool vertical = true;       ///< Ablation: disable productivity growth.
  bool horizontal = true;     ///< Ablation: disable speed proportionality.
  /// Upper bound on the size unit, in BUs (0 = unbounded, the paper's
  /// setting; Fig. 7 reaches 64 BUs = 512 MB).
  std::uint32_t max_unit_bus = 0;
};

class DynamicSizer {
 public:
  DynamicSizer(std::uint32_t num_nodes, SizingOptions options = {})
      : options_(options), nodes_(num_nodes) {
    FLEXMR_ASSERT(options.fast_limit > 0 &&
                  options.fast_limit <= options.linear_limit &&
                  options.linear_limit <= 1.0);
  }

  /// Size unit s_i of `node`, in BUs.
  std::uint32_t size_unit(NodeId node) const {
    return nodes_[node].size_unit;
  }

  /// Current sizing epoch of `node` (stamp launches with this).
  std::uint32_t epoch(NodeId node) const { return nodes_[node].epoch; }

  bool frozen(NodeId node) const { return nodes_[node].frozen; }

  /// Task size m_i for a launch on `node`: size unit scaled by the node's
  /// speed relative to the slowest node (horizontal scaling, line 17).
  /// Result is at least 1 BU.
  std::uint32_t task_size(NodeId node, double relative_speed) const {
    const auto& state = nodes_[node];
    double size = static_cast<double>(state.size_unit);
    if (options_.horizontal) {
      FLEXMR_ASSERT(relative_speed > 0);
      size *= relative_speed;
    }
    const double rounded = std::floor(size + 0.5);
    return rounded < 1.0 ? 1u : static_cast<std::uint32_t>(rounded);
  }

  /// Feeds back a completed task's productivity. `task_epoch` is the epoch
  /// the task was launched with; stale epochs are ignored. Returns true if
  /// the size unit changed.
  bool on_task_complete(NodeId node, std::uint32_t task_epoch,
                        double productivity);

  /// Replays a journaled sizing decision on a restarted AM: the node jumps
  /// straight to the journaled (absolute) size unit and freeze flag, with
  /// a fresh epoch. Notes replay in commit order, so the last one wins —
  /// the recovered sizer resumes from exactly where the crashed AM left
  /// the ramp instead of re-climbing from 1 BU.
  void restore_unit(NodeId node, std::uint32_t unit, bool frozen) {
    FLEXMR_ASSERT(node < nodes_.size());
    const std::uint32_t bound =
        options_.max_unit_bus > 0 ? options_.max_unit_bus : kMaxSizeUnit;
    nodes_[node].size_unit = unit < 1 ? 1u : (unit > bound ? bound : unit);
    nodes_[node].frozen = frozen;
    ++nodes_[node].epoch;
  }

  /// Restarts `node` from scratch (a crashed node rejoining the cluster):
  /// back to a 1-BU size unit, unfrozen, with a fresh epoch so stale
  /// completions from the old incarnation cannot trigger growth.
  void reset_node(NodeId node) {
    nodes_[node].size_unit = 1;
    nodes_[node].frozen = false;
    ++nodes_[node].epoch;
  }

 private:
  struct NodeState {
    std::uint32_t size_unit = 1;  ///< s_i, in BUs (starts at one 8 MB BU).
    std::uint32_t epoch = 0;
    bool frozen = false;
  };

  SizingOptions options_;
  std::vector<NodeState> nodes_;
};

}  // namespace flexmr::flexmap
