#include "flexmap/speed_monitor.hpp"

#include <algorithm>

namespace flexmr::flexmap {

void SpeedMonitor::rescan() const {
  slowest_.reset();
  fastest_.reset();
  for (const auto& speed : speeds_) {
    if (!speed) continue;
    if (!slowest_ || *speed < *slowest_) slowest_ = speed;
    if (!fastest_ || *speed > *fastest_) fastest_ = speed;
  }
  dirty_ = false;
}

double SpeedMonitor::relative_speed(NodeId node) const {
  const auto own = get_speed(node);
  const auto low = slowest();
  if (!own || !low || *low <= 0.0) return 1.0;
  return *own / *low;
}

double SpeedMonitor::capacity(NodeId node) const {
  const auto own = get_speed(node);
  const auto high = fastest();
  if (!own || !high || *high <= 0.0) return 1.0;
  return std::clamp(*own / *high, 1e-6, 1.0);
}

}  // namespace flexmr::flexmap
