#include "flexmap/speed_monitor.hpp"

#include <algorithm>

namespace flexmr::flexmap {

std::optional<MiBps> SpeedMonitor::slowest() const {
  std::optional<MiBps> result;
  for (const auto& speed : speeds_) {
    if (!speed) continue;
    if (!result || *speed < *result) result = speed;
  }
  return result;
}

std::optional<MiBps> SpeedMonitor::fastest() const {
  std::optional<MiBps> result;
  for (const auto& speed : speeds_) {
    if (!speed) continue;
    if (!result || *speed > *result) result = speed;
  }
  return result;
}

double SpeedMonitor::relative_speed(NodeId node) const {
  const auto own = get_speed(node);
  const auto low = slowest();
  if (!own || !low || *low <= 0.0) return 1.0;
  return *own / *low;
}

double SpeedMonitor::capacity(NodeId node) const {
  const auto own = get_speed(node);
  const auto high = fastest();
  if (!own || !high || *high <= 0.0) return 1.0;
  return std::clamp(*own / *high, 1e-6, 1.0);
}

std::size_t SpeedMonitor::known_nodes() const {
  std::size_t n = 0;
  for (const auto& speed : speeds_) {
    if (speed) ++n;
  }
  return n;
}

}  // namespace flexmr::flexmap
