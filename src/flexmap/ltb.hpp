// LateTaskBinder (paper §III-C): builds an n-BU input split for a map task
// at container-grant time, maximizing data locality.
//
// Given a granted container on `node` and a target size of n BUs, the
// binder takes up to n BUs with replicas on the node from the
// BlockLocationIndex (the NodeToBlock/BlockToNode maps); if the node holds
// fewer, the remainder comes from the node with the most unprocessed BUs
// (the paper's remote heuristic). Taking a BU removes it everywhere, so a
// BU is bound to exactly one task.
//
// Under fault injection the index reflects the *live* replica view (dead
// nodes' pools are empty, re-replicated copies appear on their new hosts),
// so the binder adapts to replica loss with no code of its own.
//
// Under rs(k,m) striping the index's per-node pools hold *part* holders,
// so take_local naturally yields partial-local BUs (the node serves its
// own 1/k of the stripe) ranked ahead of take_remote's fully remote ones —
// the local > partial-local > remote ordering needs no binder changes; the
// driver scales the locality credit by 1/k at dispatch.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "hdfs/block_index.hpp"

namespace flexmr::flexmap {

struct BoundSplit {
  std::vector<BlockUnitId> bus;
  std::size_t local = 0;   ///< How many of `bus` are node-local.
  std::size_t remote = 0;
};

class LateTaskBinder {
 public:
  explicit LateTaskBinder(hdfs::BlockLocationIndex& index) : index_(&index) {}

  /// Binds up to `n` BUs for a container on `node`. Returns an empty split
  /// only when no unprocessed BU remains anywhere.
  BoundSplit bind(NodeId node, std::size_t n) {
    BoundSplit split;
    split.bus = index_->take_local(node, n);
    split.local = split.bus.size();
    if (split.bus.size() < n && index_->unprocessed() > 0) {
      auto remote = index_->take_remote(node, n - split.bus.size());
      split.remote = remote.size();
      split.bus.insert(split.bus.end(), remote.begin(), remote.end());
    }
    return split;
  }

 private:
  hdfs::BlockLocationIndex* index_;
};

}  // namespace flexmr::flexmap
