#include "flexmap/sizing.hpp"

namespace flexmr::flexmap {

bool DynamicSizer::on_task_complete(NodeId node, std::uint32_t task_epoch,
                                    double productivity) {
  FLEXMR_ASSERT(node < nodes_.size());
  NodeState& state = nodes_[node];
  if (!options_.vertical || state.frozen) return false;
  if (task_epoch != state.epoch) return false;  // stale wave feedback

  ++state.epoch;  // one growth decision per wave
  if (productivity < options_.fast_limit) {
    state.size_unit *= 2;  // fast scaling: jump past inefficient sizes
  } else if (productivity < options_.linear_limit) {
    state.size_unit += 1;  // linear scaling: approach the knee gently
  } else {
    state.frozen = true;  // efficient enough; stop growing
    return false;
  }
  if (options_.max_unit_bus > 0 && state.size_unit > options_.max_unit_bus) {
    state.size_unit = options_.max_unit_bus;
    state.frozen = true;
  }
  return true;
}

}  // namespace flexmr::flexmap
