#include "flexmap/sizing.hpp"

namespace flexmr::flexmap {

bool DynamicSizer::on_task_complete(NodeId node, std::uint32_t task_epoch,
                                    double productivity) {
  FLEXMR_ASSERT(node < nodes_.size());
  NodeState& state = nodes_[node];
  if (!options_.vertical || state.frozen) return false;
  if (task_epoch != state.epoch) return false;  // stale wave feedback

  ++state.epoch;  // one growth decision per wave
  if (productivity < options_.fast_limit) {
    // Fast scaling: jump past inefficient sizes. Saturating: a node that
    // stays unproductive forever (paper default max_unit_bus = 0 sets no
    // bound) must not wrap the unit back to small sizes after 32 waves.
    state.size_unit = state.size_unit <= kMaxSizeUnit / 2
                          ? state.size_unit * 2
                          : kMaxSizeUnit;
  } else if (productivity < options_.linear_limit) {
    // Linear scaling: approach the knee gently (saturating as above).
    if (state.size_unit < kMaxSizeUnit) state.size_unit += 1;
  } else {
    state.frozen = true;  // efficient enough; stop growing
    return false;
  }
  const std::uint32_t bound =
      options_.max_unit_bus > 0 ? options_.max_unit_bus : kMaxSizeUnit;
  if (state.size_unit >= bound) {
    state.size_unit = bound;
    state.frozen = true;
  }
  return true;
}

}  // namespace flexmr::flexmap
