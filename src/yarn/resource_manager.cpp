#include "yarn/resource_manager.hpp"

#include <algorithm>

#include "obs/profiler.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr::yarn {

ResourceManager::ResourceManager(const cluster::Cluster& cluster)
    : dead_(cluster.num_nodes(), 0),
      last_heartbeat_(cluster.num_nodes(), 0.0) {
  free_.reserve(cluster.num_nodes());
  capacity_.reserve(cluster.num_nodes());
  alive_.reserve(cluster.num_nodes());
  for (NodeId node = 0; node < cluster.num_nodes(); ++node) {
    free_.push_back(cluster.machine(node).slots());
    capacity_.push_back(cluster.machine(node).slots());
    alive_.push_back(node);
    total_slots_ += cluster.machine(node).slots();
  }
  total_free_ = total_slots_;
}

void ResourceManager::acquire(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  FLEXMR_ASSERT_MSG(free_[node] > 0, "acquire on a node with no free slots");
  --free_[node];
  --total_free_;
}

void ResourceManager::release(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (dead_[node]) return;  // slots of a failed node are gone
  ++free_[node];
  ++total_free_;
  offer_node(node);
}

void ResourceManager::mark_dead(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (dead_[node]) return;
  dead_[node] = 1;
  total_free_ -= free_[node];
  free_[node] = 0;
  total_slots_ -= capacity_[node];
  alive_.erase(std::find(alive_.begin(), alive_.end(), node));
}

void ResourceManager::mark_alive(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (!dead_[node]) return;
  dead_[node] = 0;
  free_[node] = capacity_[node];
  total_free_ += capacity_[node];
  total_slots_ += capacity_[node];
  alive_.insert(std::lower_bound(alive_.begin(), alive_.end(), node), node);
}

void ResourceManager::offer_node(NodeId node) {
  // Offers mutate global slot accounting and cascade into scheduler
  // decisions: control-lane-only on the sharded engine. A lane worker
  // reaching here means a decision kernel leaked shared-state mutation.
  FLEXMR_ASSERT_MSG(!LaneSet::on_worker(),
                    "RM offer from a lane worker (control-lane only)");
  if (!handler_ || offering_ || dead_[node]) return;
  FLEXMR_PROF_SCOPE("rm/offer_node");
  offering_ = true;
  while (free_[node] > 0 && handler_(node)) {
    --free_[node];
    --total_free_;
  }
  offering_ = false;
}

void ResourceManager::offer_all() {
  FLEXMR_ASSERT_MSG(!LaneSet::on_worker(),
                    "RM offer from a lane worker (control-lane only)");
  if (!handler_ || offering_) return;
  // This walk is the O(nodes) per-heartbeat control term the 10k grid
  // exposed (ROADMAP): attribute it even when no slot is granted.
  FLEXMR_PROF_SCOPE("rm/offer_all");
  offering_ = true;
  // Walk alive nodes in ascending id order (identical to the historical
  // full scan). Index-based: a handler cascade may append work but never
  // runs a nested offer loop (offering_ guard), and node death happens on
  // its own events, not inside an offer.
  for (std::size_t i = 0; i < alive_.size(); ++i) {
    const NodeId node = alive_[i];
    while (free_[node] > 0 && handler_(node)) {
      --free_[node];
      --total_free_;
    }
  }
  offering_ = false;
}

}  // namespace flexmr::yarn
