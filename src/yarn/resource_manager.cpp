#include "yarn/resource_manager.hpp"

namespace flexmr::yarn {

ResourceManager::ResourceManager(const cluster::Cluster& cluster)
    : dead_(cluster.num_nodes(), 0),
      last_heartbeat_(cluster.num_nodes(), 0.0) {
  free_.reserve(cluster.num_nodes());
  capacity_.reserve(cluster.num_nodes());
  for (NodeId node = 0; node < cluster.num_nodes(); ++node) {
    free_.push_back(cluster.machine(node).slots());
    capacity_.push_back(cluster.machine(node).slots());
    total_slots_ += cluster.machine(node).slots();
  }
}

std::uint32_t ResourceManager::total_free() const {
  std::uint32_t total = 0;
  for (const auto count : free_) total += count;
  return total;
}

void ResourceManager::acquire(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  FLEXMR_ASSERT_MSG(free_[node] > 0, "acquire on a node with no free slots");
  --free_[node];
}

void ResourceManager::release(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (dead_[node]) return;  // slots of a failed node are gone
  ++free_[node];
  offer_node(node);
}

void ResourceManager::mark_dead(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (dead_[node]) return;
  dead_[node] = 1;
  free_[node] = 0;
  total_slots_ -= capacity_[node];
}

void ResourceManager::mark_alive(NodeId node) {
  FLEXMR_ASSERT(node < free_.size());
  if (!dead_[node]) return;
  dead_[node] = 0;
  free_[node] = capacity_[node];
  total_slots_ += capacity_[node];
}

void ResourceManager::offer_node(NodeId node) {
  if (!handler_ || offering_ || dead_[node]) return;
  offering_ = true;
  while (free_[node] > 0 && handler_(node)) {
    --free_[node];
  }
  offering_ = false;
}

void ResourceManager::offer_all() {
  if (!handler_ || offering_) return;
  offering_ = true;
  for (NodeId node = 0; node < free_.size(); ++node) {
    if (dead_[node]) continue;
    while (free_[node] > 0 && handler_(node)) {
      --free_[node];
    }
  }
  offering_ = false;
}

}  // namespace flexmr::yarn
