// ResourceManager: YARN slot accounting and the container-offer protocol.
//
// The RM tracks free container slots per node and *offers* them to the
// AppMaster (our JobDriver) through a callback. An offer handler returns
// true to consume the slot (a task was dispatched there) or false to
// decline; declined slots stay free and are re-offered whenever cluster
// state changes (a release, an explicit offer_all after a heartbeat or a
// phase transition). This models YARN's heartbeat-driven allocation loop
// without simulating the RPC machinery, and it is exactly the hook FlexMap
// needs: the paper's RMContainerAllocator modification signals JobImpl when
// containers become available so the mapper size can be decided *then*.
#pragma once

#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr::yarn {

class ResourceManager {
 public:
  /// Handler returns true if it used the offered slot on `node`.
  using OfferHandler = std::function<bool(NodeId)>;

  explicit ResourceManager(const cluster::Cluster& cluster);

  void set_offer_handler(OfferHandler handler) {
    handler_ = std::move(handler);
  }

  /// Handler invoked by preempt(want): kill running containers until up to
  /// `want` slots are freed; returns the number actually reclaimed. YARN's
  /// capacity/fair schedulers preempt through the RM the same way — the RM
  /// owns the decision *when*, the AMs own *which* container dies.
  using PreemptionHandler = std::function<std::uint32_t(std::uint32_t)>;

  void set_preemption_handler(PreemptionHandler handler) {
    preemption_handler_ = std::move(handler);
  }

  /// Requests `want` containers back from over-share applications; routed
  /// to the installed handler. Returns how many were reclaimed (0 with no
  /// handler). The freed slots re-enter circulation through the normal
  /// release → offer path, so arbitration decides who gets them next.
  std::uint32_t preempt(std::uint32_t want) {
    if (!preemption_handler_ || want == 0) return 0;
    return preemption_handler_(want);
  }

  std::uint32_t free_slots(NodeId node) const { return free_[node]; }
  std::uint32_t total_free() const { return total_free_; }
  /// Slots of *alive* nodes (mark_dead subtracts the failed node's).
  std::uint32_t total_slots() const { return total_slots_; }
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Consumes one free slot on `node` (the handler calls this implicitly by
  /// returning true; direct use is for dispatches outside the offer path).
  void acquire(NodeId node);

  /// Returns a slot on `node` and immediately re-offers it.
  void release(NodeId node);

  /// Offers every free slot, node by node, until the handler declines.
  void offer_all();

  /// Offers the free slots of a single node until declined.
  void offer_node(NodeId node);

  /// Marks a node as failed: its slots are withdrawn, future releases for
  /// it are ignored, and it is never offered again (until mark_alive).
  void mark_dead(NodeId node);
  bool is_dead(NodeId node) const { return dead_[node] != 0; }

  /// Node re-registration (a crashed node rejoining the cluster): restores
  /// the node's full slot capacity — its previous containers died with it
  /// — and resumes offering it. No-op on a node that is not dead.
  void mark_alive(NodeId node);

  /// NodeManager → RM liveness tracking. The heartbeat generator records
  /// arrivals here; the AM/driver compares `last_heartbeat` against its
  /// liveness timeout to declare silent nodes lost. Nodes start with a
  /// heartbeat at registration time (construction: 0).
  void record_heartbeat(NodeId node, SimTime now) {
    FLEXMR_ASSERT(node < last_heartbeat_.size());
    last_heartbeat_[node] = now;
  }
  SimTime last_heartbeat(NodeId node) const {
    FLEXMR_ASSERT(node < last_heartbeat_.size());
    return last_heartbeat_[node];
  }

 private:
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> capacity_;  ///< Original slots per node.
  std::vector<char> dead_;
  /// Alive node ids, ascending — the offer loop walks this instead of
  /// rescanning (and re-skipping dead entries of) the whole cluster on
  /// every heartbeat. Node death/rejoin is rare, so the sorted erase/
  /// insert there is cheap; offer order stays identical to a full scan.
  std::vector<NodeId> alive_;
  std::vector<SimTime> last_heartbeat_;
  std::uint32_t total_slots_ = 0;
  std::uint32_t total_free_ = 0;  ///< Maintained incrementally.
  OfferHandler handler_;
  PreemptionHandler preemption_handler_;
  bool offering_ = false;  ///< Guards against re-entrant offer cascades.
};

}  // namespace flexmr::yarn
