#include "workloads/puma.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flexmr::workloads {

const std::vector<Benchmark>& puma_suite() {
  static const std::vector<Benchmark> suite = {
      // Map-heavy text jobs over Wikipedia (heavy-tailed record costs).
      {.code = "WC", .name = "wordcount", .input_data = "Wikipedia",
       .small_input = gib_to_mib(20), .large_input = gib_to_mib(256),
       .map_cost = 1.0, .shuffle_ratio = 0.25, .reduce_cost = 0.3,
       .record_skew = 0.25, .reduce_key_skew = 0.0},
      // Inverted index: posting lists ≈ input size → reduce-dominated, the
      // case where the paper reports FlexMap can lose to stock Hadoop.
      {.code = "II", .name = "inverted-index", .input_data = "Wikipedia",
       .small_input = gib_to_mib(20), .large_input = gib_to_mib(256),
       .map_cost = 1.1, .shuffle_ratio = 0.9, .reduce_cost = 1.0,
       .record_skew = 0.25, .reduce_key_skew = 0.5},
      {.code = "TV", .name = "term-vector", .input_data = "Wikipedia",
       .small_input = gib_to_mib(10), .large_input = gib_to_mib(256),
       .map_cost = 1.3, .shuffle_ratio = 0.5, .reduce_cost = 0.8,
       .record_skew = 0.25, .reduce_key_skew = 0.3},
      {.code = "GR", .name = "grep", .input_data = "Wikipedia",
       .small_input = gib_to_mib(20), .large_input = gib_to_mib(256),
       .map_cost = 0.6, .shuffle_ratio = 0.01, .reduce_cost = 0.1,
       .record_skew = 0.25, .reduce_key_skew = 0.0},
      // K-means (k = 6): distance computation dominates the map side.
      {.code = "KM", .name = "kmeans", .input_data = "Netflix, k=6",
       .small_input = gib_to_mib(10), .large_input = gib_to_mib(256),
       .map_cost = 2.2, .shuffle_ratio = 0.05, .reduce_cost = 0.3,
       .record_skew = 0.1, .reduce_key_skew = 0.0},
      {.code = "HR", .name = "histogram-ratings", .input_data = "Netflix",
       .small_input = gib_to_mib(10), .large_input = gib_to_mib(128),
       .map_cost = 0.75, .shuffle_ratio = 0.01, .reduce_cost = 0.1,
       .record_skew = 0.1, .reduce_key_skew = 0.0},
      {.code = "HM", .name = "histogram-movies", .input_data = "Netflix",
       .small_input = gib_to_mib(10), .large_input = gib_to_mib(128),
       .map_cost = 0.8, .shuffle_ratio = 0.01, .reduce_cost = 0.1,
       .record_skew = 0.1, .reduce_key_skew = 0.0},
      // TeraSort: trivial map, full shuffle, sort-heavy reduce.
      {.code = "TS", .name = "tera-sort", .input_data = "TeraGen",
       .small_input = gib_to_mib(10), .large_input = gib_to_mib(128),
       .map_cost = 0.35, .shuffle_ratio = 1.0, .reduce_cost = 1.2,
       .record_skew = 0.02, .reduce_key_skew = 0.0},
  };
  return suite;
}

const Benchmark& benchmark(std::string_view code) {
  for (const auto& bench : puma_suite()) {
    if (bench.code == code) return bench;
  }
  throw ConfigError("unknown PUMA benchmark code: " + std::string(code));
}

mr::JobSpec to_job_spec(const Benchmark& bench, InputScale scale,
                        std::uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = bench.name;
  spec.input_size = bench.input(scale);
  spec.map_cost = bench.map_cost;
  spec.shuffle_ratio = bench.shuffle_ratio;
  spec.reduce_cost = bench.reduce_cost;
  spec.num_reducers = num_reducers;
  spec.reduce_key_skew = bench.reduce_key_skew;
  return spec;
}

hdfs::FileLayout make_layout(const Benchmark& bench, InputScale scale,
                             std::uint32_t num_nodes, MiB block_size,
                             std::uint32_t replication, std::uint64_t seed,
                             hdfs::StoragePolicy storage) {
  Rng rng(seed);
  hdfs::NameNode namenode(num_nodes, hdfs::PlacementPolicy::kRandom,
                          rng.split());
  auto layout = namenode.create_file(bench.input(scale), block_size,
                                     replication, kBlockUnitMiB, storage);
  if (bench.record_skew > 0.0) {
    // Lognormal(μ = -σ²/2, σ) has mean 1: skew redistributes cost between
    // BUs without changing the job's total work in expectation.
    const double sigma = bench.record_skew;
    const double mu = -sigma * sigma / 2.0;
    for (auto& bu : layout.bus) {
      bu.cost = std::exp(mu + sigma * rng.normal());
    }
  }
  return layout;
}

}  // namespace flexmr::workloads
