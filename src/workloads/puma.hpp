// PUMA benchmark models (Table II of the paper).
//
// The paper runs eight PUMA benchmarks over Wikipedia, Netflix and TeraGen
// inputs. We cannot ship those datasets; what the simulator needs from them
// is each benchmark's *cost profile*:
//   map_cost       — CPU per MiB of input relative to wordcount,
//   shuffle_ratio  — intermediate bytes per input byte (map-heavy jobs have
//                    tiny ratios; §IV-G: 30% of production jobs shuffle
//                    nothing and another 70% shuffle ~10% of input),
//   reduce_cost    — CPU per MiB of reduce input,
//   record_skew    — lognormal sigma of per-BU record cost (Wikipedia text
//                    is heavy-tailed; TeraGen rows are uniform),
//   reduce_key_skew— Zipf exponent of reducer partition sizes.
// Profiles are set from the benchmarks' published behavior: WC/GR/HM/HR are
// map-heavy, II/TS reduce-heavy, KM compute-intensive (§IV-B discusses
// which benchmarks are map- vs reduce-dominated).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "hdfs/namenode.hpp"
#include "mr/job.hpp"

namespace flexmr::workloads {

enum class InputScale {
  kSmall,  ///< Table II "small": the 12-node and 20-node clusters.
  kLarge,  ///< Table II "large": the 40-node cluster.
};

struct Benchmark {
  std::string code;        ///< Short tag used in the paper's figures.
  std::string name;
  std::string input_data;  ///< What the paper fed it (Table II).
  MiB small_input = 0;
  MiB large_input = 0;
  double map_cost = 1.0;
  double shuffle_ratio = 0.0;
  double reduce_cost = 0.0;
  double record_skew = 0.0;
  double reduce_key_skew = 0.0;

  MiB input(InputScale scale) const {
    return scale == InputScale::kSmall ? small_input : large_input;
  }
};

/// All eight PUMA benchmarks, in the paper's figure order:
/// WC, II, TV, GR, KM, HR, HM, TS.
const std::vector<Benchmark>& puma_suite();

/// Lookup by code ("WC", "II", ...). Throws ConfigError on unknown codes.
const Benchmark& benchmark(std::string_view code);

/// Builds the JobSpec for one benchmark at one input scale.
mr::JobSpec to_job_spec(const Benchmark& bench, InputScale scale,
                        std::uint32_t num_reducers = 0);

/// Creates the benchmark's input file layout on `num_nodes` nodes, with
/// per-BU record costs drawn from the benchmark's skew model (lognormal
/// with unit mean). Identical seed → identical layout and skew, so every
/// scheduler in a comparison sees the same data. `storage` selects the
/// placement policy: default replication, or rs(k,m) striping.
hdfs::FileLayout make_layout(const Benchmark& bench, InputScale scale,
                             std::uint32_t num_nodes, MiB block_size,
                             std::uint32_t replication, std::uint64_t seed,
                             hdfs::StoragePolicy storage = {});

}  // namespace flexmr::workloads
