#include "workloads/experiment.hpp"

#include "common/error.hpp"
#include "recover/runner.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::workloads {

std::string scheduler_label(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kHadoop: return "Hadoop";
    case SchedulerKind::kHadoopNoSpec: return "Hadoop-nospec";
    case SchedulerKind::kSkewTune: return "SkewTune";
    case SchedulerKind::kFlexMap: return "FlexMap";
    case SchedulerKind::kFlexMapNoVertical: return "FlexMap-noV";
    case SchedulerKind::kFlexMapNoHorizontal: return "FlexMap-noH";
    case SchedulerKind::kFlexMapNoReduceBias: return "FlexMap-noRB";
  }
  throw ConfigError("unknown scheduler kind");
}

std::unique_ptr<mr::Scheduler> make_scheduler(SchedulerKind kind,
                                              std::uint64_t seed) {
  using sched::SkewTuneScheduler;
  using sched::StockHadoopScheduler;
  using sched::StockOptions;
  switch (kind) {
    case SchedulerKind::kHadoop:
      return std::make_unique<StockHadoopScheduler>();
    case SchedulerKind::kHadoopNoSpec:
      return std::make_unique<StockHadoopScheduler>(
          StockOptions{.speculation = false, .late = {}});
    case SchedulerKind::kSkewTune:
      return std::make_unique<SkewTuneScheduler>();
    case SchedulerKind::kFlexMap: {
      flexmap::FlexMapOptions options;
      options.seed = seed;
      return std::make_unique<flexmap::FlexMapScheduler>(options);
    }
    case SchedulerKind::kFlexMapNoVertical: {
      flexmap::FlexMapOptions options;
      options.seed = seed;
      options.sizing.vertical = false;
      return std::make_unique<flexmap::FlexMapScheduler>(options);
    }
    case SchedulerKind::kFlexMapNoHorizontal: {
      flexmap::FlexMapOptions options;
      options.seed = seed;
      options.sizing.horizontal = false;
      return std::make_unique<flexmap::FlexMapScheduler>(options);
    }
    case SchedulerKind::kFlexMapNoReduceBias: {
      flexmap::FlexMapOptions options;
      options.seed = seed;
      options.reduce_bias = false;
      return std::make_unique<flexmap::FlexMapScheduler>(options);
    }
  }
  throw ConfigError("unknown scheduler kind");
}

mr::JobResult run_job(cluster::Cluster& cluster, const Benchmark& bench,
                      InputScale scale, mr::Scheduler& scheduler,
                      const RunConfig& config) {
  cluster.reset();
  Simulator sim;
  if (config.lanes > 0) {
    // The heartbeat interval is the natural conservative lookahead: it is
    // the cadence at which node-local progress feeds back into global
    // scheduling decisions (DESIGN.md §13).
    sim.configure_lanes(config.lanes, config.params.heartbeat_period_s,
                        config.lane_threads);
  }
  // Admission check: rs(k,m) needs k+m distinct holders among the nodes
  // that are actually up when the file is written (t=0). Nodes crashing
  // later degrade reads; nodes already down shrink the placement domain.
  std::uint32_t alive0 = cluster.num_nodes();
  for (const auto& crash : config.faults.crashes) {
    if (crash.at <= 0.0) --alive0;
  }
  for (const auto& [node, time] : config.node_failures) {
    if (time <= 0.0) --alive0;
  }
  config.storage.validate(alive0);
  const auto layout =
      make_layout(bench, scale, cluster.num_nodes(), config.block_size,
                  config.replication, config.params.seed, config.storage);
  auto spec = to_job_spec(bench, scale);
  if (config.faults.has_am_faults()) {
    // AM-killable runs go through the restart loop: a crashed driver is
    // permanently done() without finishing, and only the runner can play
    // YARN's re-launch role. Crash-free plans stay on the plain path below
    // (byte-identical to builds without recovery code).
    faults::FaultPlan plan = config.faults;
    for (const auto& [node, time] : config.node_failures) {
      plan.crashes.push_back(
          faults::NodeCrash{node, time, std::nullopt, /*silent=*/false});
    }
    recover::RecoveryRunner runner(sim, cluster, layout, spec, config.params,
                                   scheduler, std::move(plan), config.trace);
    auto result = runner.run();
    result.scheduler = scheduler.name();
    return result;
  }
  mr::JobDriver driver(sim, cluster, layout, spec, config.params, scheduler);
  if (config.trace != nullptr) driver.set_trace(config.trace);
  if (!config.faults.empty()) driver.install_faults(config.faults);
  for (const auto& [node, time] : config.node_failures) {
    driver.schedule_node_failure(node, time);
  }
  auto result = driver.run();
  result.scheduler = scheduler.name();
  return result;
}

std::vector<mr::JobResult> run_iterations(cluster::Cluster& cluster,
                                          const Benchmark& bench,
                                          InputScale scale,
                                          mr::Scheduler& scheduler,
                                          RunConfig config,
                                          std::uint32_t iterations) {
  FLEXMR_ASSERT(iterations > 0);
  std::vector<mr::JobResult> results;
  results.reserve(iterations);
  const std::uint64_t base_seed = config.params.seed;
  for (std::uint32_t i = 0; i < iterations; ++i) {
    config.params.seed = base_seed + 7919ull * i;
    results.push_back(run_job(cluster, bench, scale, scheduler, config));
  }
  return results;
}

mr::JobResult run_job(cluster::Cluster& cluster, const Benchmark& bench,
                      InputScale scale, SchedulerKind kind,
                      const RunConfig& config) {
  const auto scheduler = make_scheduler(kind, config.params.seed);
  auto result = run_job(cluster, bench, scale, *scheduler, config);
  result.scheduler = scheduler_label(kind);
  return result;
}

}  // namespace flexmr::workloads
