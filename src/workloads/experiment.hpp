// Experiment harness: composes a simulator, a cluster, a file layout, a
// scheduler and a JobDriver into one reproducible run. All benches,
// examples and integration tests go through this entry point.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "faults/fault_plan.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "mr/driver.hpp"
#include "mr/metrics.hpp"
#include "sched/skewtune.hpp"
#include "sched/stock.hpp"
#include "workloads/puma.hpp"

namespace flexmr::obs {
class TraceSession;
}

namespace flexmr::workloads {

/// The four systems the paper compares, plus FlexMap ablation variants.
enum class SchedulerKind {
  kHadoop,          ///< Stock Hadoop with LATE speculation (YARN default).
  kHadoopNoSpec,    ///< Stock Hadoop, speculation disabled.
  kSkewTune,        ///< SkewTune straggler repartitioning.
  kFlexMap,         ///< The paper's system.
  kFlexMapNoVertical,    ///< Ablation: horizontal scaling only.
  kFlexMapNoHorizontal,  ///< Ablation: vertical scaling only.
  kFlexMapNoReduceBias,  ///< Ablation: uniform reduce placement.
};

std::string scheduler_label(SchedulerKind kind);

std::unique_ptr<mr::Scheduler> make_scheduler(SchedulerKind kind,
                                              std::uint64_t seed = 42);

struct RunConfig {
  MiB block_size = kDefaultBlockMiB;  ///< Stock split size (64 or 128 MB).
  std::uint32_t replication = 3;
  /// Storage policy for the input file: default 3× replication, or
  /// rs(k,m) erasure striping (`[storage]` in config files). Validated
  /// against the nodes alive at t=0 before the layout is built.
  hdfs::StoragePolicy storage;
  mr::SimParams params;  ///< params.seed controls the whole run.
  /// Failure injection: (node, time) pairs applied before the run starts.
  /// Legacy oracle-detected crashes; merged into `faults` by the driver.
  std::vector<std::pair<NodeId, SimTime>> node_failures;
  /// Declarative fault plan (crashes with rejoin, transient attempt
  /// failures, launch failures, degradation windows). Empty = no faults.
  faults::FaultPlan faults;
  /// Opt-in tracing: point at an obs::TraceSession to record spans,
  /// events and metrics for this run. Null (the default) disables all
  /// instrumentation; a run with tracing on is event-for-event identical
  /// to the same run with tracing off.
  obs::TraceSession* trace = nullptr;
  /// > 0 runs the job on the sharded engine with this many per-node event
  /// lanes (plus the control lane), lookahead = params.heartbeat_period_s.
  /// 0 (the default) keeps the classic single-heap engine. Results are
  /// byte-identical either way (DESIGN.md §13) — this selects an execution
  /// strategy, not a semantics.
  std::uint32_t lanes = 0;
  /// Worker threads for the sharded engine's lane drain and decision-
  /// kernel fan-outs; 0 = auto (hardware threads minus one, which means
  /// inline execution on a single-core host).
  std::size_t lane_threads = 0;
};

/// Runs one job on `cluster` (which is reset first) and returns its
/// metrics. The same (bench, scale, config.seed) always produces the same
/// layout and interference trace, so scheduler comparisons are paired.
mr::JobResult run_job(cluster::Cluster& cluster, const Benchmark& bench,
                      InputScale scale, mr::Scheduler& scheduler,
                      const RunConfig& config);

/// Convenience: builds the scheduler from `kind` and runs.
mr::JobResult run_job(cluster::Cluster& cluster, const Benchmark& bench,
                      InputScale scale, SchedulerKind kind,
                      const RunConfig& config);

/// Iterative workloads (k-means-style): runs `iterations` consecutive
/// jobs of the same benchmark through ONE scheduler instance, with
/// per-iteration seeds derived from config.params.seed. A FlexMap
/// scheduler constructed with warm_start keeps its learned speeds and
/// size units between iterations and skips the ramp from iteration 2 on.
std::vector<mr::JobResult> run_iterations(cluster::Cluster& cluster,
                                          const Benchmark& bench,
                                          InputScale scale,
                                          mr::Scheduler& scheduler,
                                          RunConfig config,
                                          std::uint32_t iterations);

}  // namespace flexmr::workloads
