// A real multi-threaded mini-MapReduce engine.
//
// This is the runtime counterpart of the simulator: worker threads execute
// genuine map/reduce functions over an in-memory Dataset. Heterogeneity is
// emulated by duty-cycle throttling (a worker with speed 0.25 sleeps 3x
// the time it computes), and the per-task startup cost that motivates
// coarse tasks is emulated with a fixed sleep — the JVM-startup analogue.
//
// Two drivers share all machinery:
//   * run_fixed    — stock Hadoop's model: every map task is a fixed
//                    number of chunks, bound up front;
//   * run_elastic  — FlexMap's model: tasks are bound late from a shared
//                    pool, sized per worker by Algorithm 1 (productivity-
//                    driven vertical growth + speed-proportional
//                    horizontal scaling), using the same DynamicSizer the
//                    simulator uses.
//
// The reduce output is exact and independent of scheduling, which the
// property tests exploit: fixed and elastic runs must produce identical
// results.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "flexmap/sizing.hpp"
#include "rt/dataset.hpp"
#include "rt/udf.hpp"

namespace flexmr::obs {
class EventTracer;
}

namespace flexmr::rt {

struct WorkerSpec {
  WorkerSpec(double initial_speed = 1.0,
             std::vector<std::pair<double, double>> speed_schedule = {})
      : speed(initial_speed), schedule(std::move(speed_schedule)) {}

  /// Relative speed in (0, 1]: 1 = full speed, 0.25 = 4x slower.
  double speed = 1.0;
  /// Optional speed changes: (seconds since job start, new speed) pairs in
  /// ascending time order — the runtime analogue of the simulator's
  /// interference models (a VM neighbor arriving mid-job).
  std::vector<std::pair<double, double>> schedule;

  double speed_at(double elapsed_seconds) const {
    double current = speed;
    for (const auto& [at, value] : schedule) {
      if (elapsed_seconds < at) break;
      current = value;
    }
    return current;
  }
};

struct EngineConfig {
  std::uint32_t num_reducers = 4;
  /// Fixed per-map-task startup cost (the "JVM startup" analogue).
  std::chrono::microseconds task_startup{2000};
  flexmap::SizingOptions sizing;  ///< Used by run_elastic.
  /// Opt-in tracing: one X span per map task on the rt-engine track
  /// (pid obs::kRtEnginePid, tid = worker index), timestamps in wall
  /// seconds since job start. The tracer's own mutex makes concurrent
  /// worker emissions safe. Null disables.
  obs::EventTracer* tracer = nullptr;
};

struct RtTaskRecord {
  std::size_t worker = 0;
  std::size_t num_chunks = 0;
  double startup_seconds = 0;
  double work_seconds = 0;
  double productivity() const {
    const double total = startup_seconds + work_seconds;
    return total > 0 ? work_seconds / total : 0;
  }
};

struct RtResult {
  /// Final reduced key → value map (ordered for easy comparison).
  std::map<std::string, Value> output;
  double map_wall_seconds = 0;
  double total_wall_seconds = 0;
  std::vector<RtTaskRecord> tasks;
  std::vector<std::size_t> chunks_per_worker;

  std::size_t map_tasks() const { return tasks.size(); }
  double mean_task_chunks() const;
};

class MapReduceEngine {
 public:
  MapReduceEngine(std::vector<WorkerSpec> workers, EngineConfig config);

  /// Stock model: ceil(chunks / chunks_per_task) tasks of uniform size.
  RtResult run_fixed(const Dataset& dataset, const MapFn& map_fn,
                     const ReduceFn& reduce_fn,
                     std::size_t chunks_per_task);

  /// FlexMap model: late-bound, elastically sized tasks.
  RtResult run_elastic(const Dataset& dataset, const MapFn& map_fn,
                       const ReduceFn& reduce_fn);

  std::size_t num_workers() const { return workers_.size(); }

 private:
  enum class Mode { kFixed, kElastic };
  RtResult run(const Dataset& dataset, const MapFn& map_fn,
               const ReduceFn& reduce_fn, Mode mode,
               std::size_t chunks_per_task);

  std::vector<WorkerSpec> workers_;
  EngineConfig config_;
};

}  // namespace flexmr::rt
