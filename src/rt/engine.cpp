#include "rt/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "obs/tracer.hpp"

namespace flexmr::rt {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Duty-cycle throttle: a worker of speed s that computed for `busy`
/// seconds sleeps busy*(1/s - 1), so its effective throughput is s.
void throttle(double speed, double busy_seconds) {
  if (speed >= 1.0) return;
  const double sleep_seconds = busy_seconds * (1.0 / speed - 1.0);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(sleep_seconds));
}

std::size_t partition_of(const std::string& key, std::uint32_t reducers) {
  return std::hash<std::string>{}(key) % reducers;
}

}  // namespace

double RtResult::mean_task_chunks() const {
  if (tasks.empty()) return 0;
  double sum = 0;
  for (const auto& task : tasks) {
    sum += static_cast<double>(task.num_chunks);
  }
  return sum / static_cast<double>(tasks.size());
}

MapReduceEngine::MapReduceEngine(std::vector<WorkerSpec> workers,
                                 EngineConfig config)
    : workers_(std::move(workers)), config_(config) {
  FLEXMR_ASSERT(!workers_.empty());
  FLEXMR_ASSERT(config_.num_reducers > 0);
  for (const auto& worker : workers_) {
    FLEXMR_ASSERT(worker.speed > 0.0 && worker.speed <= 1.0);
    double last = 0.0;
    for (const auto& [at, value] : worker.schedule) {
      FLEXMR_ASSERT(at >= last);
      FLEXMR_ASSERT(value > 0.0 && value <= 1.0);
      last = at;
    }
  }
}

RtResult MapReduceEngine::run_fixed(const Dataset& dataset,
                                    const MapFn& map_fn,
                                    const ReduceFn& reduce_fn,
                                    std::size_t chunks_per_task) {
  FLEXMR_ASSERT(chunks_per_task > 0);
  return run(dataset, map_fn, reduce_fn, Mode::kFixed, chunks_per_task);
}

RtResult MapReduceEngine::run_elastic(const Dataset& dataset,
                                      const MapFn& map_fn,
                                      const ReduceFn& reduce_fn) {
  return run(dataset, map_fn, reduce_fn, Mode::kElastic, 1);
}

RtResult MapReduceEngine::run(const Dataset& dataset, const MapFn& map_fn,
                              const ReduceFn& reduce_fn, Mode mode,
                              std::size_t chunks_per_task) {
  const std::size_t total_chunks = dataset.num_chunks();
  const std::uint32_t reducers = config_.num_reducers;

  // Shared map-phase state. The chunk pool is a cursor: both modes consume
  // chunks in order, they differ only in how many a task takes (late
  // binding means the count is decided when a worker goes idle).
  std::mutex state_mutex;
  std::size_t next_chunk = 0;

  // Per-worker observed throughput (chunks/second of *compute+throttle*
  // wall time) — the runtime SpeedMonitor. Guarded by state_mutex.
  std::vector<double> observed_speed(workers_.size(), 0.0);
  flexmap::DynamicSizer sizer(
      static_cast<std::uint32_t>(workers_.size()), config_.sizing);

  // Shuffle staging: each completed map task appends its combined output
  // per partition.
  std::vector<std::vector<std::unordered_map<std::string, Value>>>
      partitions(reducers);

  RtResult result;
  result.chunks_per_worker.assign(workers_.size(), 0);
  std::mutex result_mutex;

  const auto job_start = Clock::now();

  obs::EventTracer* const tracer = config_.tracer;
  if (tracer != nullptr) {
    tracer->set_process_name(obs::kRtEnginePid, "rt engine");
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      tracer->set_thread_name(obs::kRtEnginePid,
                              static_cast<std::uint32_t>(w),
                              "worker " + std::to_string(w));
    }
    tracer->set_thread_name(obs::kRtEnginePid,
                            static_cast<std::uint32_t>(workers_.size()),
                            "reduce");
  }

  auto worker_loop = [&](std::size_t worker_index) {
    const WorkerSpec& spec = workers_[worker_index];
    for (;;) {
      // Decide this task's size and claim its chunks (late binding).
      std::size_t begin;
      std::size_t count;
      std::uint32_t epoch = 0;
      {
        std::lock_guard lock(state_mutex);
        if (next_chunk >= total_chunks) return;
        if (mode == Mode::kFixed) {
          count = chunks_per_task;
        } else {
          double slowest = 0.0;
          double own = observed_speed[worker_index];
          for (const double s : observed_speed) {
            if (s > 0.0 && (slowest == 0.0 || s < slowest)) slowest = s;
          }
          const double relative =
              (own > 0.0 && slowest > 0.0) ? own / slowest : 1.0;
          epoch = sizer.epoch(
              static_cast<NodeId>(worker_index));
          count = sizer.task_size(static_cast<NodeId>(worker_index),
                                  relative);
        }
        count = std::min(count, total_chunks - next_chunk);
        begin = next_chunk;
        next_chunk += count;
      }

      // Task startup cost (JVM-startup analogue): fixed wall time.
      const auto task_start = Clock::now();
      std::this_thread::sleep_for(config_.task_startup);
      const double startup = seconds_since(task_start);

      // Map the chunks, throttled to the worker's (time-varying) speed.
      const auto work_start = Clock::now();
      Emitter emitter;
      for (std::size_t c = begin; c < begin + count; ++c) {
        const auto chunk_start = Clock::now();
        map_fn(dataset.chunk(c), emitter);
        const double speed = spec.speed_at(seconds_since(job_start));
        throttle(speed, seconds_since(chunk_start));
      }
      const double work = seconds_since(work_start);

      // Partition the combined output into the shuffle staging area.
      std::vector<std::unordered_map<std::string, Value>> split(reducers);
      for (auto& [key, value] : emitter.take()) {
        split[partition_of(key, reducers)].emplace(key, value);
      }

      RtTaskRecord record;
      record.worker = worker_index;
      record.num_chunks = count;
      record.startup_seconds = startup;
      record.work_seconds = work;

      if (tracer != nullptr) {
        // X (complete) events only: B/E nesting is per-tid and workers
        // run concurrently, so self-contained spans are the safe shape.
        const double task_ts =
            std::chrono::duration<double>(task_start - job_start).count();
        tracer->complete(
            {obs::kRtEnginePid, static_cast<std::uint32_t>(worker_index)},
            "map task", "rt", task_ts, seconds_since(task_start),
            {{"chunks", static_cast<std::uint64_t>(count)},
             {"startup_s", startup},
             {"work_s", work},
             {"productivity", record.productivity()}});
      }

      {
        std::lock_guard lock(result_mutex);
        for (std::uint32_t r = 0; r < reducers; ++r) {
          if (!split[r].empty()) {
            partitions[r].push_back(std::move(split[r]));
          }
        }
        result.tasks.push_back(record);
        result.chunks_per_worker[worker_index] += count;
      }
      {
        std::lock_guard lock(state_mutex);
        const double task_wall = seconds_since(task_start);
        if (task_wall > 0) {
          observed_speed[worker_index] =
              static_cast<double>(count) / task_wall;
        }
        if (mode == Mode::kElastic) {
          sizer.on_task_complete(static_cast<NodeId>(worker_index), epoch,
                                 record.productivity());
        }
      }
    }
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      threads.emplace_back(worker_loop, w);
    }
    for (auto& thread : threads) thread.join();
  }
  result.map_wall_seconds = seconds_since(job_start);

  // Reduce phase: one task per partition, spread over the workers.
  const auto reduce_start = Clock::now();
  std::vector<std::map<std::string, Value>> reduced(reducers);
  {
    std::atomic<std::uint32_t> next_partition{0};
    auto reduce_loop = [&]() {
      for (;;) {
        const std::uint32_t r = next_partition.fetch_add(1);
        if (r >= reducers) return;
        std::unordered_map<std::string, std::vector<Value>> grouped;
        for (const auto& piece : partitions[r]) {
          for (const auto& [key, value] : piece) {
            grouped[key].push_back(value);
          }
        }
        for (const auto& [key, values] : grouped) {
          reduced[r][key] = reduce_fn(key, values);
        }
      }
    };
    std::vector<std::thread> threads;
    const std::size_t reduce_threads =
        std::min<std::size_t>(workers_.size(), reducers);
    threads.reserve(reduce_threads);
    for (std::size_t w = 0; w < reduce_threads; ++w) {
      threads.emplace_back(reduce_loop);
    }
    for (auto& thread : threads) thread.join();
  }
  for (auto& piece : reduced) {
    result.output.merge(piece);
  }
  result.total_wall_seconds = seconds_since(job_start);
  if (tracer != nullptr) {
    tracer->complete(
        {obs::kRtEnginePid, static_cast<std::uint32_t>(workers_.size())},
        "reduce phase", "rt",
        std::chrono::duration<double>(reduce_start - job_start).count(),
        seconds_since(reduce_start),
        {{"partitions", static_cast<std::uint64_t>(reducers)}});
  }
  return result;
}

}  // namespace flexmr::rt
