// User-defined functions for the threaded runtime: the map/reduce
// interface plus the built-in UDFs used by examples and tests.
//
// Keys are strings; values are 64-bit counts — enough for the counting-
// style PUMA benchmarks (wordcount, grep, histogram) while keeping the
// shuffle representation simple.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flexmr::rt {

using Value = std::int64_t;

/// Collects a mapper's intermediate key/value pairs, combining on the fly
/// (hash-combiner, as Hadoop's combiner would for associative reduces).
class Emitter {
 public:
  void emit(std::string_view key, Value value) {
    counts_[std::string(key)] += value;
  }

  std::unordered_map<std::string, Value> take() { return std::move(counts_); }

 private:
  std::unordered_map<std::string, Value> counts_;
};

/// A map function: consume one record (here: one whitespace-separated
/// token stream chunk) and emit pairs.
using MapFn = std::function<void(std::string_view chunk, Emitter& out)>;

/// A reduce function: fold the combined values for one key.
using ReduceFn = std::function<Value(std::string_view key,
                                     const std::vector<Value>& values)>;

/// Splits a chunk into whitespace-separated tokens and calls fn on each.
template <typename Fn>
void for_each_token(std::string_view chunk, Fn&& fn) {
  std::size_t begin = 0;
  while (begin < chunk.size()) {
    while (begin < chunk.size() && chunk[begin] == ' ') ++begin;
    std::size_t end = begin;
    while (end < chunk.size() && chunk[end] != ' ') ++end;
    if (end > begin) fn(chunk.substr(begin, end - begin));
    begin = end;
  }
}

// ---- Built-in UDFs -------------------------------------------------------

/// wordcount: token → 1, summed.
inline MapFn wordcount_map() {
  return [](std::string_view chunk, Emitter& out) {
    for_each_token(chunk, [&out](std::string_view token) {
      out.emit(token, 1);
    });
  };
}

/// grep: count occurrences of tokens containing `pattern`.
inline MapFn grep_map(std::string pattern) {
  return [pattern = std::move(pattern)](std::string_view chunk,
                                        Emitter& out) {
    for_each_token(chunk, [&](std::string_view token) {
      if (token.find(pattern) != std::string_view::npos) {
        out.emit(token, 1);
      }
    });
  };
}

/// histogram: bucket tokens by length ("len<k>").
inline MapFn histogram_map() {
  return [](std::string_view chunk, Emitter& out) {
    for_each_token(chunk, [&out](std::string_view token) {
      out.emit("len" + std::to_string(token.size()), 1);
    });
  };
}

/// The summing reducer shared by all counting UDFs.
inline ReduceFn sum_reduce() {
  return [](std::string_view, const std::vector<Value>& values) {
    Value total = 0;
    for (const Value v : values) total += v;
    return total;
  };
}

}  // namespace flexmr::rt
