// In-memory dataset for the real (threaded) mini-MapReduce runtime.
//
// A Dataset is text split into fixed-size *chunks* — the runtime analogue
// of the simulator's 8 MB block units, scaled down so examples and tests
// run in milliseconds. Content is generated deterministically from a seed:
// space-separated words drawn from a Zipf-ish vocabulary, so wordcount and
// grep have realistic key skew.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace flexmr::rt {

class Dataset {
 public:
  /// Generates `num_chunks` chunks of ~`chunk_bytes` each (chunks end at
  /// word boundaries). `vocabulary` controls distinct-word count.
  static Dataset generate_text(std::size_t num_chunks,
                               std::size_t chunk_bytes,
                               std::uint64_t seed,
                               std::size_t vocabulary = 1000);

  std::size_t num_chunks() const { return chunks_.size(); }
  std::string_view chunk(std::size_t index) const { return chunks_[index]; }
  std::size_t total_bytes() const;

 private:
  std::vector<std::string> chunks_;
};

}  // namespace flexmr::rt
