#include "rt/dataset.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flexmr::rt {

Dataset Dataset::generate_text(std::size_t num_chunks,
                               std::size_t chunk_bytes, std::uint64_t seed,
                               std::size_t vocabulary) {
  FLEXMR_ASSERT(num_chunks > 0 && chunk_bytes > 0 && vocabulary > 0);
  Dataset dataset;
  dataset.chunks_.reserve(num_chunks);
  Rng rng(seed);

  // Zipf sampling over word ids via inverse-CDF on a precomputed table.
  std::vector<double> cdf(vocabulary);
  double acc = 0;
  for (std::size_t i = 0; i < vocabulary; ++i) {
    acc += 1.0 / static_cast<double>(i + 1);
    cdf[i] = acc;
  }
  for (double& c : cdf) c /= acc;

  auto sample_word = [&]() {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::size_t>(it - cdf.begin());
  };

  for (std::size_t c = 0; c < num_chunks; ++c) {
    std::string chunk;
    chunk.reserve(chunk_bytes + 16);
    while (chunk.size() < chunk_bytes) {
      chunk += "w";
      chunk += std::to_string(sample_word());
      chunk += ' ';
    }
    dataset.chunks_.push_back(std::move(chunk));
  }
  return dataset;
}

std::size_t Dataset::total_bytes() const {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size();
  return total;
}

}  // namespace flexmr::rt
