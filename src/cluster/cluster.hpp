// A cluster of worker machines plus their interference models.
//
// Following the paper's setup, the RM/NameNode master is *not* modeled as a
// worker: a Cluster contains only the nodes that run HDFS and MapReduce
// containers. Build one with ClusterBuilder, then call start(sim, rng) once
// per simulation to arm the interference models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/interference.hpp"
#include "cluster/machine.hpp"
#include "common/rng.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::cluster {

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  Cluster(Cluster&&) = default;
  Cluster& operator=(Cluster&&) = default;

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(machines_.size());
  }

  Machine& machine(NodeId id) { return *machines_[id]; }
  const Machine& machine(NodeId id) const { return *machines_[id]; }

  std::uint32_t total_slots() const;

  /// Arms every machine's interference model on `sim`.
  void start(Simulator& sim, Rng& rng);

  /// Removes all per-run state (speed listeners) so the cluster object can
  /// be reused across simulations. Multipliers reset to 1.
  void reset();

  /// Ground-truth per-container speeds (used by presets/tests and by the
  /// oracle ablation, never by the schedulers under test).
  MiBps fastest_ips() const;
  MiBps slowest_ips() const;

 private:
  friend class ClusterBuilder;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::unique_ptr<InterferenceModel>> interference_;
};

class ClusterBuilder {
 public:
  /// Adds `count` machines of the given spec, each with a fresh
  /// interference model from `factory`.
  ClusterBuilder& add(MachineSpec spec, std::uint32_t count,
                      InterferenceFactory factory = no_interference());

  Cluster build();

 private:
  struct Group {
    MachineSpec spec;
    std::uint32_t count;
    InterferenceFactory factory;
  };
  std::vector<Group> groups_;
};

}  // namespace flexmr::cluster
