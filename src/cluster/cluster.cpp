#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexmr::cluster {

std::uint32_t Cluster::total_slots() const {
  std::uint32_t total = 0;
  for (const auto& machine : machines_) total += machine->slots();
  return total;
}

void Cluster::start(Simulator& sim, Rng& rng) {
  for (std::size_t i = 0; i < machines_.size(); ++i) {
    interference_[i]->start(sim, *machines_[i], rng);
  }
}

void Cluster::reset() {
  for (auto& machine : machines_) {
    machine->clear_speed_listeners();
    machine->set_multiplier(1.0);
    machine->set_fault_factor(1.0);
  }
}

MiBps Cluster::fastest_ips() const {
  FLEXMR_ASSERT(!machines_.empty());
  MiBps best = 0.0;
  for (const auto& machine : machines_) {
    best = std::max(best, machine->effective_ips());
  }
  return best;
}

MiBps Cluster::slowest_ips() const {
  FLEXMR_ASSERT(!machines_.empty());
  MiBps worst = machines_.front()->effective_ips();
  for (const auto& machine : machines_) {
    worst = std::min(worst, machine->effective_ips());
  }
  return worst;
}

ClusterBuilder& ClusterBuilder::add(MachineSpec spec, std::uint32_t count,
                                    InterferenceFactory factory) {
  FLEXMR_ASSERT(count > 0);
  groups_.push_back(Group{std::move(spec), count, std::move(factory)});
  return *this;
}

Cluster ClusterBuilder::build() {
  Cluster cluster;
  NodeId id = 0;
  for (const auto& group : groups_) {
    for (std::uint32_t i = 0; i < group.count; ++i) {
      cluster.machines_.push_back(std::make_unique<Machine>(id++, group.spec));
      cluster.interference_.push_back(group.factory());
    }
  }
  FLEXMR_ASSERT_MSG(!cluster.machines_.empty(), "cluster has no machines");
  return cluster;
}

}  // namespace flexmr::cluster
