// Cluster presets reproducing the paper's three testbeds plus the two
// 6-node study clusters from §II-C. See each function's comment for how the
// preset was calibrated against the paper's own measurements.
#pragma once

#include "cluster/cluster.hpp"

namespace flexmr::cluster::presets {

/// Table I: 12-node physical cluster (one node is RM/NameNode, so 11
/// workers). Per-container speeds are calibrated so the slowest map runs
/// about 2x longer than the fastest (Fig. 1a).
Cluster physical12();

/// §II-B / §IV-A: 20-node virtual cluster (19 workers, 4 vCPU each) in a
/// university cloud. Roughly 20 % of nodes suffer bursty interference that
/// dilates tasks up to ~5x (Fig. 1b).
Cluster virtual20(std::uint64_t seed = 7);

/// §IV-F: 40-node multi-tenant cluster (39 workers). `slow_fraction` of the
/// workers co-run a CPU-intensive background tenant for the whole job,
/// which cuts their effective speed to `slow_multiplier`.
Cluster multitenant40(double slow_fraction, double slow_multiplier = 0.35,
                      std::uint64_t seed = 11);

/// §II-C Fig. 3b,c and §IV-D: 6-node homogeneous cluster.
Cluster homogeneous6();

/// §II-C Fig. 3d: 6-node heterogeneous cluster (same hardware classes as
/// the physical cluster, scaled down).
Cluster heterogeneous6();

/// Fig. 2's didactic 3-node cluster with capacity ratio 1:1:3.
Cluster tiny3();

}  // namespace flexmr::cluster::presets
