#include "cluster/interference.hpp"

#include <algorithm>

namespace flexmr::cluster {

void OnOffInterference::start(Simulator& sim, Machine& machine, Rng& rng) {
  rng_ = rng.split();
  if (params_.start_busy) {
    enter_busy(sim, machine);
  } else {
    enter_idle(sim, machine);
  }
}

// Interference timers are the purest node-owned events in the simulation
// (each touches one machine and its own split RNG stream), so they carry
// the machine's lane on the sharded engine — a placement hint; the fire
// order, and thus the RNG draw order, is global either way.

void OnOffInterference::enter_idle(Simulator& sim, Machine& machine) {
  machine.set_multiplier(1.0);
  const double duration = rng_.exponential(params_.mean_idle_s);
  sim.schedule_on_after(sim.lane_for_node(machine.id()), duration,
                        [this, &sim, &machine]() { enter_busy(sim, machine); });
}

void OnOffInterference::enter_busy(Simulator& sim, Machine& machine) {
  machine.set_multiplier(rng_.uniform(params_.busy_lo, params_.busy_hi));
  const double duration = rng_.exponential(params_.mean_busy_s);
  sim.schedule_on_after(sim.lane_for_node(machine.id()), duration,
                        [this, &sim, &machine]() { enter_idle(sim, machine); });
}

void RandomWalkInterference::start(Simulator& sim, Machine& machine,
                                   Rng& rng) {
  rng_ = rng.split();
  value_ = params_.start;
  machine.set_multiplier(value_);
  sim.schedule_on_after(sim.lane_for_node(machine.id()),
                        params_.step_period_s,
                        [this, &sim, &machine]() { step(sim, machine); });
}

void RandomWalkInterference::step(Simulator& sim, Machine& machine) {
  value_ = std::clamp(value_ + rng_.normal(0.0, params_.step_stddev),
                      params_.floor, 1.0);
  machine.set_multiplier(value_);
  sim.schedule_on_after(sim.lane_for_node(machine.id()),
                        params_.step_period_s,
                        [this, &sim, &machine]() { step(sim, machine); });
}

}  // namespace flexmr::cluster
