// Machine model.
//
// A machine has a static per-container base processing speed (MiB/s of
// reference-workload input) and a time-varying multiplier in (0, 1] driven
// by an interference model. Speed changes notify registered listeners so
// running tasks can re-integrate their progress (see RateIntegrator).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace flexmr::cluster {

struct MachineSpec {
  std::string model = "generic";
  /// Per-container input processing speed for a cost-1.0 workload, MiB/s.
  MiBps base_ips = 10.0;
  /// Concurrent containers (YARN slots).
  std::uint32_t slots = 4;
  /// NIC bandwidth available to this node, MiB/s (10 GbE ≈ 1192 MiB/s).
  MiBps nic_bandwidth = 1192.0;
  /// Descriptive only (Table I fidelity).
  double memory_gb = 16.0;
};

class Machine {
 public:
  /// Called with (node, new effective per-container IPS) on speed changes.
  using SpeedListener = std::function<void(NodeId, MiBps)>;
  /// Handle returned by add_speed_listener, for targeted removal.
  using SpeedListenerId = std::uint64_t;

  Machine(NodeId id, MachineSpec spec) : id_(id), spec_(std::move(spec)) {
    FLEXMR_ASSERT(spec_.base_ips > 0 && spec_.slots > 0);
  }

  NodeId id() const { return id_; }
  const MachineSpec& spec() const { return spec_; }
  std::uint32_t slots() const { return spec_.slots; }

  double multiplier() const { return multiplier_; }
  double fault_factor() const { return fault_factor_; }
  MiBps effective_ips() const {
    return spec_.base_ips * multiplier_ * fault_factor_;
  }

  /// Sets the interference multiplier and notifies listeners. Multiplier
  /// must be in (0, 1]: interference can only slow a machine down.
  void set_multiplier(double m) {
    FLEXMR_ASSERT(m > 0.0 && m <= 1.0);
    if (m == multiplier_) return;
    multiplier_ = m;
    notify();
  }

  /// Fault-injection degradation factor in (0, 1], composed with the
  /// interference multiplier (the two are driven independently: the
  /// interference model keeps updating `multiplier_` during a degradation
  /// window and must not erase it, nor vice versa).
  void set_fault_factor(double f) {
    FLEXMR_ASSERT(f > 0.0 && f <= 1.0);
    if (f == fault_factor_) return;
    fault_factor_ = f;
    notify();
  }

  /// Registers a listener and returns a handle the owner MUST use to
  /// unregister before it is destroyed — machines routinely outlive the
  /// drivers listening to them (sequential jobs on one cluster), and a
  /// stale callback is a use-after-free.
  SpeedListenerId add_speed_listener(SpeedListener listener) {
    const SpeedListenerId id = next_listener_id_++;
    listeners_.emplace_back(id, std::move(listener));
    return id;
  }

  /// Removes one listener; safe to call after clear_speed_listeners
  /// already dropped it (returns false then).
  bool remove_speed_listener(SpeedListenerId id) {
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->first == id) {
        listeners_.erase(it);
        return true;
      }
    }
    return false;
  }

  void clear_speed_listeners() { listeners_.clear(); }

  std::size_t num_speed_listeners() const { return listeners_.size(); }

 private:
  void notify() {
    for (const auto& [id, listener] : listeners_) {
      listener(id_, effective_ips());
    }
  }

  NodeId id_;
  MachineSpec spec_;
  double multiplier_ = 1.0;
  double fault_factor_ = 1.0;
  SpeedListenerId next_listener_id_ = 1;
  std::vector<std::pair<SpeedListenerId, SpeedListener>> listeners_;
};

}  // namespace flexmr::cluster
