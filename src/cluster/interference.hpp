// Interference models: how a machine's speed multiplier evolves over
// simulated time. These stand in for the performance variation the paper
// observed on its clusters:
//   - None            → dedicated physical machine,
//   - StaticSlowdown  → a co-running CPU-intensive tenant for the whole job
//                       (the paper's 40-node multi-tenant setup, §IV-F),
//   - OnOff           → bursty VM interference in a shared cloud (§II-B:
//                       "hotspots may change during the job execution"),
//   - RandomWalk      → slowly drifting contention.
//
// A model installs its own events on the Simulator and drives
// Machine::set_multiplier, which fans out to running-task listeners.
#pragma once

#include <memory>
#include <vector>

#include "cluster/machine.hpp"
#include "common/rng.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::cluster {

class InterferenceModel {
 public:
  virtual ~InterferenceModel() = default;
  /// Begins driving `machine`'s multiplier. Called once at simulation start.
  virtual void start(Simulator& sim, Machine& machine, Rng& rng) = 0;
};

/// Dedicated machine: multiplier stays at 1.
class NoInterference final : public InterferenceModel {
 public:
  void start(Simulator&, Machine& machine, Rng&) override {
    machine.set_multiplier(1.0);
  }
};

/// A constant slowdown for the whole run: multiplier = `factor`.
class StaticSlowdown final : public InterferenceModel {
 public:
  explicit StaticSlowdown(double factor) : factor_(factor) {
    FLEXMR_ASSERT(factor > 0.0 && factor <= 1.0);
  }
  void start(Simulator&, Machine& machine, Rng&) override {
    machine.set_multiplier(factor_);
  }

 private:
  double factor_;
};

/// Alternates between idle (multiplier 1) and busy (multiplier sampled in
/// [busy_lo, busy_hi]) phases with exponentially distributed durations.
class OnOffInterference final : public InterferenceModel {
 public:
  struct Params {
    double mean_idle_s = 120.0;  ///< Mean idle-phase duration.
    double mean_busy_s = 60.0;   ///< Mean busy-phase duration.
    double busy_lo = 0.15;       ///< Worst-case multiplier when busy.
    double busy_hi = 0.5;        ///< Best-case multiplier when busy.
    bool start_busy = false;
  };

  explicit OnOffInterference(Params params) : params_(params) {
    FLEXMR_ASSERT(params.busy_lo > 0.0 && params.busy_lo <= params.busy_hi &&
                  params.busy_hi <= 1.0);
    FLEXMR_ASSERT(params.mean_idle_s > 0.0 && params.mean_busy_s > 0.0);
  }

  void start(Simulator& sim, Machine& machine, Rng& rng) override;

 private:
  void enter_idle(Simulator& sim, Machine& machine);
  void enter_busy(Simulator& sim, Machine& machine);

  Params params_;
  Rng rng_;
};

/// Multiplier performs a bounded random walk: every `step_period_s` it
/// moves by a normal step and is clamped into [floor, 1].
class RandomWalkInterference final : public InterferenceModel {
 public:
  struct Params {
    double step_period_s = 20.0;
    double step_stddev = 0.1;
    double floor = 0.2;
    double start = 1.0;
  };

  explicit RandomWalkInterference(Params params) : params_(params) {
    FLEXMR_ASSERT(params.floor > 0.0 && params.floor <= 1.0);
    FLEXMR_ASSERT(params.start >= params.floor && params.start <= 1.0);
    FLEXMR_ASSERT(params.step_period_s > 0.0);
  }

  void start(Simulator& sim, Machine& machine, Rng& rng) override;

 private:
  void step(Simulator& sim, Machine& machine);

  Params params_;
  Rng rng_;
  double value_ = 1.0;
};

/// Replays an explicit (time, multiplier) schedule — the way to model a
/// measured contention trace, and the fully-reproducible option for tests
/// (no RNG involved). Times must be non-decreasing.
class TraceInterference final : public InterferenceModel {
 public:
  struct Point {
    SimTime time;
    double multiplier;
  };

  explicit TraceInterference(std::vector<Point> points)
      : points_(std::move(points)) {
    SimTime last = 0.0;
    for (const auto& point : points_) {
      FLEXMR_ASSERT(point.time >= last);
      FLEXMR_ASSERT(point.multiplier > 0.0 && point.multiplier <= 1.0);
      last = point.time;
    }
  }

  void start(Simulator& sim, Machine& machine, Rng&) override {
    for (const auto& point : points_) {
      if (point.time <= sim.now()) {
        machine.set_multiplier(point.multiplier);
        continue;
      }
      Machine* target = &machine;
      const double multiplier = point.multiplier;
      sim.schedule_at(point.time, [target, multiplier]() {
        target->set_multiplier(multiplier);
      });
    }
  }

 private:
  std::vector<Point> points_;
};

/// Factory signature used by ClusterBuilder: one fresh model per machine.
using InterferenceFactory = std::function<std::unique_ptr<InterferenceModel>()>;

inline InterferenceFactory no_interference() {
  return []() { return std::make_unique<NoInterference>(); };
}

inline InterferenceFactory static_slowdown(double factor) {
  return [factor]() { return std::make_unique<StaticSlowdown>(factor); };
}

inline InterferenceFactory on_off_interference(OnOffInterference::Params p) {
  return [p]() { return std::make_unique<OnOffInterference>(p); };
}

inline InterferenceFactory random_walk_interference(
    RandomWalkInterference::Params p) {
  return [p]() { return std::make_unique<RandomWalkInterference>(p); };
}

inline InterferenceFactory trace_interference(
    std::vector<TraceInterference::Point> points) {
  return [points]() {
    return std::make_unique<TraceInterference>(points);
  };
}

}  // namespace flexmr::cluster
