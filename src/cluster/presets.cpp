#include "cluster/presets.hpp"

#include "common/rng.hpp"

namespace flexmr::cluster::presets {

namespace {

// Table I machine classes. Hadoop's cluster-wide container configuration
// is uniform (the paper's point: "most MapReduce implementations assume a
// homogeneous cluster"), so every node runs the same number of containers
// and heterogeneity is carried entirely by per-container speed. Base IPS
// values are relative per-container map throughputs (MiB/s of wordcount
// input) calibrated so the slowest map runs ~2-3x the fastest (Fig. 1a):
// the dual-core OptiPlex desktops are heavily oversubscribed at 4
// containers while the multi-core servers are not. The OptiPlex class
// dominates the cluster by count (7 of 12 in Table I) — "slow nodes may
// account for nearly 50% of total nodes" (§IV-B).
// Calibration: nominal CPU specs alone would put the OptiPlex desktops at
// ~0.4 of the T430's per-container speed, but the paper's measured stock
// efficiency (Fig. 6: ~0.4-0.65) and its ">50% slowdown vs. an all-slow
// homogeneous cluster" (§II-B) imply a much larger *effective* disparity —
// the 8 GB desktops run 4 containers plus DataNode under memory and disk
// pressure. We set the effective per-container ratio to ~4.5x, which
// reproduces the paper's stock-Hadoop efficiency band.
MachineSpec t320() {
  return {.model = "PowerEdge T320", .base_ips = 11.0, .slots = 4,
          .nic_bandwidth = 1192.0, .memory_gb = 24.0};
}
MachineSpec t430() {
  return {.model = "PowerEdge T430", .base_ips = 14.0, .slots = 4,
          .nic_bandwidth = 1192.0, .memory_gb = 128.0};
}
MachineSpec t110() {
  return {.model = "PowerEdge T110", .base_ips = 7.0, .slots = 4,
          .nic_bandwidth = 1192.0, .memory_gb = 16.0};
}
MachineSpec optiplex990() {
  return {.model = "OptiPlex 990", .base_ips = 3.0, .slots = 4,
          .nic_bandwidth = 1192.0, .memory_gb = 8.0};
}

}  // namespace

Cluster physical12() {
  // 12 machines total; one OptiPlex serves as RM/NameNode, leaving 11
  // workers: 2x T320, 1x T430, 2x T110, 6x OptiPlex.
  return ClusterBuilder()
      .add(t320(), 2)
      .add(t430(), 1)
      .add(t110(), 2)
      .add(optiplex990(), 6)
      .build();
}

Cluster virtual20(std::uint64_t seed) {
  // 19 worker VMs, 4 vCPUs / 4 GB each on shared blades (§IV-A). A subset
  // of VMs sits on contended hosts: Fig. 1b shows ~20% of map tasks running
  // ~5x slower, and Fig. 7(c,d) shows the contended nodes staying slow for
  // the duration of a job (the slow node finishes at 2 BUs). We model that
  // with 4 of 19 VMs statically dilated ~5x (a co-located noisy tenant) and
  // the rest under light bursty interference whose episodes are long
  // relative to task durations.
  MachineSpec vm{.model = "vSphere VM (4 vCPU)", .base_ips = 10.0,
                 .slots = 4, .nic_bandwidth = 1192.0, .memory_gb = 4.0};

  OnOffInterference::Params light;
  light.mean_idle_s = 120.0;
  light.mean_busy_s = 90.0;
  light.busy_lo = 0.35;
  light.busy_hi = 0.8;

  // Interference models split their own streams from the per-run RNG, so
  // `seed` only selects which nodes are the contended ones (fixed: the
  // first 5 — node identity is immaterial under uniform specs).
  (void)seed;
  return ClusterBuilder()
      .add(vm, 3, static_slowdown(0.15))
      .add(vm, 2, static_slowdown(0.3))
      .add(vm, 14, on_off_interference(light))
      .build();
}

Cluster multitenant40(double slow_fraction, double slow_multiplier,
                      std::uint64_t seed) {
  FLEXMR_ASSERT(slow_fraction >= 0.0 && slow_fraction <= 1.0);
  // 39 workers, 2x Xeon E5-2640 / 128 GB, 10 GbE (§IV-A). The paper creates
  // "5%, 10%, 20%, 40% heterogeneity by co-running CPU-intensive background
  // jobs": a fixed fraction of nodes is statically slowed for the run.
  MachineSpec xeon{.model = "2x Xeon E5-2640", .base_ips = 11.0, .slots = 8,
                   .nic_bandwidth = 1192.0, .memory_gb = 128.0};
  constexpr std::uint32_t kWorkers = 39;
  const auto slow =
      static_cast<std::uint32_t>(slow_fraction * kWorkers + 0.5);
  (void)seed;  // node identity is immaterial under uniform specs
  ClusterBuilder builder;
  if (slow > 0) builder.add(xeon, slow, static_slowdown(slow_multiplier));
  if (slow < kWorkers) builder.add(xeon, kWorkers - slow);
  return builder.build();
}

Cluster homogeneous6() {
  MachineSpec node{.model = "homogeneous worker", .base_ips = 10.0,
                   .slots = 4, .nic_bandwidth = 1192.0, .memory_gb = 16.0};
  return ClusterBuilder().add(node, 6).build();
}

Cluster heterogeneous6() {
  // Scaled-down mix of the physical cluster's classes: Fig. 3d needs a
  // pronounced fast/slow split so the JCT-vs-task-size curve is U-shaped.
  return ClusterBuilder()
      .add(t430(), 1)
      .add(t320(), 1)
      .add(optiplex990(), 4)
      .build();
}

Cluster tiny3() {
  // Fig. 2: two slow nodes and one fast node, capacity ratio 1:1:3. The
  // fast node gets 3x the per-container speed at equal slot count so the
  // ratio is purely a speed ratio, as in the figure.
  MachineSpec slow{.model = "slow", .base_ips = 5.0, .slots = 2,
                   .nic_bandwidth = 1192.0, .memory_gb = 8.0};
  MachineSpec fast{.model = "fast", .base_ips = 15.0, .slots = 2,
                   .nic_bandwidth = 1192.0, .memory_gb = 8.0};
  return ClusterBuilder().add(slow, 2).add(fast, 1).build();
}

}  // namespace flexmr::cluster::presets
