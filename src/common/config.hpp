// Small INI-style configuration reader.
//
// Examples and ad-hoc experiments can describe a cluster/workload in a flat
// `[section] key = value` file instead of recompiling. Lines starting with
// '#' or ';' are comments. Keys are addressed as "section.key"; keys before
// any section header live in the "" section and are addressed bare.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace flexmr {

class Config {
 public:
  Config() = default;

  /// Parses INI text. Throws ConfigError on malformed lines.
  static Config parse(std::string_view text);

  /// Loads and parses a file. Throws ConfigError if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Required-key variants throw ConfigError when absent or malformed.
  std::string require_string(const std::string& key) const;
  double require_double(const std::string& key) const;
  long require_int(const std::string& key) const;

  void set(const std::string& key, const std::string& value);

  std::size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace flexmr
