#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace flexmr {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    FLEXMR_ASSERT_MSG(!root_written_, "JSON document has a single root");
    root_written_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    FLEXMR_ASSERT_MSG(key_pending_, "object values need a key first");
    key_pending_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FLEXMR_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::kObject &&
                        !key_pending_,
                    "unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  scope_has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FLEXMR_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                    "unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  scope_has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  FLEXMR_ASSERT_MSG(!stack_.empty() && stack_.back() == Scope::kObject &&
                        !key_pending_,
                    "key() is only valid directly inside an object");
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  FLEXMR_ASSERT_MSG(!json.empty(), "raw JSON value must be non-empty");
  before_value();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  FLEXMR_ASSERT_MSG(stack_.empty() && root_written_,
                    "JSON document is incomplete");
  return out_;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  FLEXMR_ASSERT(ec == std::errc{});
  return std::string(buf, ptr);
}

}  // namespace flexmr
