#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace flexmr {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FLEXMR_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  FLEXMR_ASSERT_MSG(cells.size() == header_.size(),
                    "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace flexmr
