// Fixed-size thread pool used by bench harnesses to run independent
// simulations in parallel, and by the rt/ runtime as its worker substrate.
//
// Tasks are type-erased std::move_only_function-style callables; submit()
// returns a std::future. parallel_for_each provides a blocking data-parallel
// helper with exception propagation (first exception rethrown).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace flexmr {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tasks currently executing on workers (includes the reader's own task
  /// when called from inside one). An occupancy snapshot: benches record
  /// it per work item so wall-clock-per-run numbers carry how contended
  /// the pool was when the run was timed.
  std::size_t active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Applies fn to every element of [begin, end) across the pool; blocks
  /// until all complete. The first exception thrown by any invocation is
  /// rethrown in the caller (remaining items still run).
  template <typename Iter, typename F>
  void parallel_for_each(Iter begin, Iter end, F&& fn) {
    std::vector<std::future<void>> futures;
    for (Iter it = begin; it != end; ++it) {
      futures.push_back(submit([&fn, it]() { fn(*it); }));
    }
    std::exception_ptr first_error;
    for (auto& fut : futures) {
      try {
        fut.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until done.
  template <typename F>
  void parallel_for_index(std::size_t n, F&& fn) {
    std::vector<std::size_t> indices(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = i;
    parallel_for_each(indices.begin(), indices.end(),
                      [&fn](std::size_t i) { fn(i); });
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<std::size_t> active_{0};
  bool stopping_ = false;
};

}  // namespace flexmr
