// Plain-text table renderer for bench harness output. Every figure/table
// reproduction prints its rows through this so outputs are uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace flexmr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a separator under the header.
  std::string str() const;

  /// Renders as CSV (no quoting; cells must not contain commas).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexmr
