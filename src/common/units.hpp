// Basic unit types and conversions used throughout FlexMR.
//
// Simulated time is a double count of seconds since simulation start.
// Data sizes are doubles in mebibytes (MiB): the paper reasons entirely in
// MB-granularity block units, and fractional MiB arise from rate integration.
#pragma once

#include <cstdint>

namespace flexmr {

/// Simulated time, in seconds since simulation start.
using SimTime = double;

/// A duration in simulated seconds.
using SimDuration = double;

/// Data size in mebibytes.
using MiB = double;

/// Data-processing or transfer rate in MiB per second.
using MiBps = double;

inline constexpr MiB kBlockUnitMiB = 8.0;   ///< The paper's basic block unit.
inline constexpr MiB kDefaultBlockMiB = 64.0;
inline constexpr MiB kLargeBlockMiB = 128.0;

constexpr MiB gib_to_mib(double gib) { return gib * 1024.0; }
constexpr double mib_to_gib(MiB mib) { return mib / 1024.0; }

/// Identifier types. Plain integers wrapped in distinct enums would be
/// safer, but indices into contiguous vectors dominate this codebase, so we
/// use explicit typedefs and keep conversions visible at call sites.
using NodeId = std::uint32_t;
using TaskId = std::uint32_t;
using BlockUnitId = std::uint32_t;
using JobId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

}  // namespace flexmr
