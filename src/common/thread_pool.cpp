#include "common/thread_pool.hpp"

#include <algorithm>

namespace flexmr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    task();  // packaged_task: exceptions land in the future, not here
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace flexmr
