// Dependency-free JSON emission for result/trace/bench artifacts.
//
// JsonWriter is a streaming writer: begin/end object/array calls nest, keys
// and values interleave, and commas are inserted automatically. Strings are
// escaped per RFC 8259; doubles use the shortest round-trip representation
// (std::to_chars) so output is byte-stable across runs and platforms, and
// non-finite values — which JSON cannot represent — become null.
//
// Misuse (a value where a key is required, unbalanced end calls, reading an
// incomplete document) trips FLEXMR_ASSERT rather than producing malformed
// output.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace flexmr {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null();

  /// Inserts `json` verbatim as one value. The caller vouches that it is a
  /// complete, valid JSON document (e.g. produced by another JsonWriter).
  JsonWriter& raw(std::string_view json);

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document. Asserts that every scope has been closed and
  /// exactly one root value was written.
  const std::string& str() const;

  /// RFC 8259 string escaping (quotes not included).
  static std::string escape(std::string_view s);

  /// Shortest round-trip decimal for `v`; "null" for NaN/Inf.
  static std::string number(double v);

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> scope_has_items_;
  bool key_pending_ = false;
  bool root_written_ = false;
};

}  // namespace flexmr
