#include "common/logging.hpp"

#include <cstdio>

namespace flexmr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "[%-5s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace flexmr
