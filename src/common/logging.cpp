#include "common/logging.hpp"

#include <cstdio>

namespace flexmr {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::set_filter(std::string_view csv) {
  std::vector<std::string> tags;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    std::size_t end = csv.find(',', begin);
    if (end == std::string_view::npos) end = csv.size();
    std::string_view tag = csv.substr(begin, end - begin);
    while (!tag.empty() && tag.front() == ' ') tag.remove_prefix(1);
    while (!tag.empty() && tag.back() == ' ') tag.remove_suffix(1);
    if (!tag.empty()) tags.emplace_back(tag);
    begin = end + 1;
  }
  std::lock_guard lock(mutex_);
  filter_ = std::move(tags);
}

bool Logger::passes_filter(std::string_view component) const {
  std::lock_guard lock(mutex_);
  if (filter_.empty()) return true;
  for (const std::string& tag : filter_) {
    if (component == tag) return true;
  }
  return false;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::lock_guard lock(mutex_);
  if (!filter_.empty()) {
    bool pass = false;
    for (const std::string& tag : filter_) {
      if (component == tag) {
        pass = true;
        break;
      }
    }
    if (!pass) return;
  }
  std::fprintf(stderr, "[%-5s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace flexmr
