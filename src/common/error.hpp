// Assertion and error-reporting helpers.
//
// FLEXMR_ASSERT is active in all build types: simulator invariants (e.g.
// exactly-once block-unit accounting) guard result validity, so violating
// them must abort the run rather than silently corrupt an experiment.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace flexmr {

/// Thrown when a simulator invariant is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on invalid user-supplied configuration.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace flexmr

#define FLEXMR_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::flexmr::detail::assert_fail(#expr, __FILE__, __LINE__, {});      \
  } while (0)

#define FLEXMR_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr))                                                         \
      ::flexmr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
