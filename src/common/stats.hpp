// Statistics accumulators used to summarize experiment results: streaming
// moments, exact percentiles over stored samples, and fixed-bin histograms
// for the paper's PDF plots (Fig. 1, Fig. 3a).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace flexmr {

/// Streaming mean/variance/min/max via Welford's algorithm.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Intended for per-task
/// runtime distributions (thousands of samples, not millions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean.
  double cv() const;
  /// Exact quantile by linear interpolation; q in [0, 1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  const std::vector<double>& samples() const { return samples_; }

  /// Divides every sample by the maximum (used by the paper's
  /// "normalized map execution time" PDFs). No-op if empty or max == 0.
  void normalize_by_max();

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  /// Probability density: count / (total * bin_width).
  double density(std::size_t i) const;
  /// Fraction of mass in bin i.
  double fraction(std::size_t i) const;

  /// Renders a fixed-width ASCII bar chart, one line per bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace flexmr
