#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace flexmr {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const {
  FLEXMR_ASSERT(n_ > 0);
  return mean_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  FLEXMR_ASSERT(n_ > 0);
  return min_;
}

double OnlineStats::max() const {
  FLEXMR_ASSERT(n_ > 0);
  return max_;
}

double SampleSet::mean() const {
  FLEXMR_ASSERT(!samples_.empty());
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double SampleSet::min() const {
  FLEXMR_ASSERT(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  FLEXMR_ASSERT(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  FLEXMR_ASSERT(!samples_.empty());
  FLEXMR_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= samples_.size()) return samples_.back();
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

void SampleSet::normalize_by_max() {
  if (samples_.empty()) return;
  const double m = max();
  if (m == 0.0) return;
  for (double& x : samples_) x /= m;
  sorted_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  FLEXMR_ASSERT(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + width_ * (static_cast<double>(i) + 0.5);
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak =
      *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    os.precision(3);
    os << '[';
    os.width(8);
    os << bin_lo(i) << ", ";
    os.width(8);
    os << bin_hi(i) << ") ";
    os.width(7);
    os << counts_[i] << ' ' << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace flexmr
