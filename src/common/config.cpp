#include "common/config.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace flexmr {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Config Config::parse(std::string_view text) {
  Config config;
  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ConfigError("malformed section header at line " +
                          std::to_string(line_no));
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ConfigError("expected 'key = value' at line " +
                        std::to_string(line_no));
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw ConfigError("empty key at line " + std::to_string(line_no));
    }
    const std::string full = section.empty() ? key : section + "." + key;
    config.values_[full] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse(os.str());
}

bool Config::has(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    throw ConfigError("key '" + key + "' is not a number: " + *value);
  }
  return parsed;
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    throw ConfigError("key '" + key + "' is not an integer: " + *value);
  }
  return parsed;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes") return true;
  if (*value == "false" || *value == "0" || *value == "no") return false;
  throw ConfigError("key '" + key + "' is not a boolean: " + *value);
}

std::string Config::require_string(const std::string& key) const {
  const auto value = get(key);
  if (!value) throw ConfigError("missing required key: " + key);
  return *value;
}

double Config::require_double(const std::string& key) const {
  if (!has(key)) throw ConfigError("missing required key: " + key);
  return get_double(key, 0.0);
}

long Config::require_int(const std::string& key) const {
  if (!has(key)) throw ConfigError("missing required key: " + key);
  return get_int(key, 0);
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

}  // namespace flexmr
