// Deterministic random number generation.
//
// Simulations must be bit-reproducible across runs and platforms given a
// seed, so we ship our own xoshiro256** implementation instead of relying on
// std::mt19937 plus libstdc++ distribution internals. Distribution helpers
// here are written against the raw generator and are part of the
// reproducibility contract.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/error.hpp"

namespace flexmr {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation,
/// re-typed). High-quality 64-bit generator, trivially seedable.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Splits off an independent stream (for per-node generators).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    FLEXMR_ASSERT(n > 0);
    // Lemire's multiply-shift rejection method for unbiased bounded ints.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (= 1/rate). mean must be > 0.
  double exponential(double mean) {
    FLEXMR_ASSERT(mean > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Pareto (heavy-tailed) with scale x_m and shape alpha.
  double pareto(double x_m, double alpha) {
    FLEXMR_ASSERT(x_m > 0.0 && alpha > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace flexmr
