// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but bench
// harnesses run many simulations on a thread pool, so log emission is
// serialized with a mutex. Default level is Warn to keep bench output clean;
// examples raise it to Info.
//
// The `component` passed to FLEXMR_LOG is a subsystem tag — `sim`, `sched`,
// `hdfs`, `svc`, ... — printed bracketed on every line and matchable by the
// CLIs' `--log-filter` knob, so profiler findings (DESIGN.md §15) can be
// cross-referenced with the log stream of just that subsystem.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace flexmr {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  static Logger& instance();

  // The level is atomic because bench harnesses set it from main while
  // ThreadPool workers consult it through FLEXMR_LOG. Relaxed ordering
  // suffices: a worker acting on a stale level briefly is harmless, a
  // torn read is not.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Restricts output to the comma-separated subsystem tags in `csv`
  /// (e.g. "sim,sched"); empty clears the filter (all subsystems pass).
  /// Lines whose component is not in the set are dropped at write time —
  /// the `enabled()` fast path stays a single atomic load.
  void set_filter(std::string_view csv);

  /// True if a line tagged `component` would pass the current filter.
  bool passes_filter(std::string_view component) const;

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::Warn};
  mutable std::mutex mutex_;
  std::vector<std::string> filter_;  ///< Empty = no filtering.
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace flexmr

// Usage: FLEXMR_LOG(Info, "yarn") << "granted container on node " << id;
#define FLEXMR_LOG(level, component)                                     \
  if (::flexmr::Logger::instance().enabled(::flexmr::LogLevel::level))   \
  ::flexmr::detail::LogLine(::flexmr::LogLevel::level, (component))
