// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but bench
// harnesses run many simulations on a thread pool, so log emission is
// serialized with a mutex. Default level is Warn to keep bench output clean;
// examples raise it to Info.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string_view>

namespace flexmr {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  static Logger& instance();

  // The level is atomic because bench harnesses set it from main while
  // ThreadPool workers consult it through FLEXMR_LOG. Relaxed ordering
  // suffices: a worker acting on a stale level briefly is harmless, a
  // torn read is not.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::Warn};
  std::mutex mutex_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace flexmr

// Usage: FLEXMR_LOG(Info, "yarn") << "granted container on node " << id;
#define FLEXMR_LOG(level, component)                                     \
  if (::flexmr::Logger::instance().enabled(::flexmr::LogLevel::level))   \
  ::flexmr::detail::LogLine(::flexmr::LogLevel::level, (component))
