// ReplicaManager — the live half of the NameNode.
//
// PR 2 made the compute plane fault-tolerant but left the data plane an
// oracle: `NameNode::create_file` produced a static FileLayout and a dead
// node silently kept "serving" its replicas. The ReplicaManager tracks the
// *live* replica set of every block as nodes die and rejoin, maintains the
// under-replicated queue a real NameNode keeps, and runs a bandwidth-
// modeled re-replication pipeline that restores the replication factor on
// surviving nodes.
//
// Replica lifecycle of one block (replication r):
//
//   placed(r live) --node death--> under-replicated (queued)
//        ^                              |
//        |                        pipeline copy
//        |                   (block_bytes / bandwidth s)
//        +------ re-replicated <--------+
//
//   under-replicated --last holder dies--> zero-replica (stalled):
//     the driver aborts with DataLossError unless a dead holder has a
//     planned rejoin, in which case the block waits for its block report.
//
// Under an rs(k,m) StoragePolicy the same machinery runs on parts: the
// target holder count is k+m, a block is *unreadable* (the zero-replica
// state above) once fewer than k parts are live, and each pipeline pass
// reconstructs one lost part by reading k surviving parts — a full block
// of repair traffic per part, the k× read amplification that prices
// erasure repair against whole-block re-replication.
//
// Two holder views are kept per block: *live* holders (alive nodes whose
// disk has the data — what schedulers and locality decisions see) and
// *remembered* holders (every disk with the data, alive or dead — a silent
// crash does not wipe the disk, so a rejoining node's block report
// restores its replicas; over-replication after a rejoin is tolerated,
// exactly as in HDFS).
//
// The pipeline copies one block at a time: HDFS throttles re-replication
// (dfs.namenode.replication.max-streams / dfs.datanode.balance.bandwidth-
// PerSec) so recovery is deliberately slow relative to task traffic. Target
// selection is deterministic: the alive non-holder with the fewest live
// replicas, ties toward the lowest node id.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "hdfs/block.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::obs {
class EventTracer;
}

namespace flexmr::hdfs {

class ReplicaManager {
 public:
  /// What one node death (or single-disk loss) did to the replica map.
  struct NodeLossReport {
    /// Blocks that lost a replica/part on the node (ascending block id).
    std::vector<std::uint32_t> lost;
    /// Subset of `lost` now unreadable: no live replica at all, or fewer
    /// than k live parts under rs(k,m).
    std::vector<std::uint32_t> zero;
  };

  /// Fired when a re-replication copy lands on `target`.
  using CopyComplete =
      std::function<void(std::uint32_t block, NodeId target)>;

  ReplicaManager(const FileLayout& layout, std::uint32_t num_nodes);

  /// Turns the re-replication pipeline on. Without this call the manager
  /// only tracks liveness (blocks stay under-replicated until rejoin).
  void enable_re_replication(Simulator& sim, double bandwidth_mibps);

  void set_copy_complete_handler(CopyComplete handler) {
    on_copy_complete_ = std::move(handler);
  }

  /// Opt-in tracing of the re-replication pipeline (one X span per copy,
  /// an instant per torn-down copy). Null disables.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }

  /// Blocks currently below their replication factor with recovery work
  /// outstanding: queued + parked + the in-flight copy. Feeds the
  /// under_replicated_blocks metrics gauge.
  std::size_t under_replicated_count() const {
    return queue_.size() + parked_.size() + (in_flight_ ? 1 : 0);
  }

  /// Alive nodes whose disk holds `block` (the view LTB and the
  /// schedulers consume).
  const std::vector<NodeId>& live_holders(std::uint32_t block) const {
    return live_holders_[block];
  }
  std::size_t live_holder_count(std::uint32_t block) const {
    return live_holders_[block].size();
  }
  bool holds_live(std::uint32_t block, NodeId node) const;

  /// Every disk with the data, alive or dead (rejoin memory).
  const std::vector<NodeId>& remembered_holders(std::uint32_t block) const {
    return disk_holders_[block];
  }

  bool node_alive(NodeId node) const { return alive_[node] != 0; }

  /// Live holders a block needs to stay readable (k under rs(k,m), else 1)
  /// and the holder count repair restores toward (k+m, else replication).
  std::uint32_t min_live() const { return min_live_; }
  std::uint32_t target_holders() const { return target_holders_; }

  /// True while at least one block is unreadable (no live replica, or
  /// < k live parts) — such blocks keep unprocessed BUs that no scheduler
  /// can take, so the driver's scheduling-deadlock guard must stand down
  /// until rejoin.
  bool has_unreadable_blocks() const { return unreadable_count_ > 0; }

  /// Bytes the repair pipeline has read so far (re-replication reads the
  /// block once per copy; rs(k,m) reads k parts — one full block — per
  /// reconstructed part).
  MiB repair_read_mib() const { return repair_read_mib_; }
  /// Lost parts the pipeline has reconstructed (0 under replication).
  std::uint64_t parts_reconstructed() const { return parts_reconstructed_; }

  /// Which of a node's disks a block's replica/part lives on — a fixed
  /// deterministic striping shared by the fault plan and the driver.
  static std::uint32_t disk_of(std::uint32_t block, NodeId node,
                               std::uint32_t disks_per_node) {
    return (block + node) % disks_per_node;
  }

  /// The node was declared lost: drop its replicas from the live view,
  /// queue re-replication work, and report what happened.
  NodeLossReport on_node_lost(NodeId node);

  /// One disk of a (possibly live) node failed: only the replicas/parts
  /// striped onto that disk are destroyed — unlike a crash the data is
  /// really gone, so the node's rejoin block report will not restore them
  /// and the repair pipeline may legitimately re-target the same node.
  NodeLossReport on_disk_lost(NodeId node, std::uint32_t disk,
                              std::uint32_t disks_per_node);

  /// The node re-registered and sent its block report: every block on its
  /// disk regains a live replica. Returns the restored block ids.
  std::vector<std::uint32_t> on_node_restored(NodeId node);

 private:
  struct InFlightCopy {
    std::uint32_t block = 0;
    NodeId source = kInvalidNode;
    NodeId target = kInvalidNode;
    EventId event = kInvalidEvent;
    SimTime started_at = 0;  ///< Copy start, for the trace span.
  };

  void enqueue(std::uint32_t block);
  void pump();
  void finish_copy(std::uint32_t block, NodeId target);
  NodeId pick_target(std::uint32_t block) const;

  const FileLayout* layout_;
  Simulator* sim_ = nullptr;
  double bandwidth_mibps_ = 0.0;
  CopyComplete on_copy_complete_;
  obs::EventTracer* tracer_ = nullptr;

  std::vector<std::vector<NodeId>> live_holders_;  // per block
  std::vector<std::vector<NodeId>> disk_holders_;  // per block
  std::vector<std::vector<std::uint32_t>> node_blocks_;  // per node
  std::vector<MiB> block_bytes_;
  std::vector<char> alive_;
  std::vector<std::size_t> live_block_count_;  // per node, target selection

  // 0 = idle, 1 = queued, 2 = parked (no target available until a rejoin).
  std::vector<char> queue_state_;
  std::deque<std::uint32_t> queue_;
  std::vector<std::uint32_t> parked_;
  std::optional<InFlightCopy> in_flight_;
  std::uint32_t min_live_ = 1;
  std::uint32_t target_holders_ = 3;
  std::size_t unreadable_count_ = 0;
  MiB repair_read_mib_ = 0.0;
  std::uint64_t parts_reconstructed_ = 0;
};

}  // namespace flexmr::hdfs
