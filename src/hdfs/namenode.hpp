// NameNode: creates file layouts with replica placement.
//
// Placement mirrors the Hadoop default on a flat (single-rack) topology:
// each block's replicas land on `replication` distinct nodes chosen
// uniformly at random. A round-robin policy is provided for tests that need
// a perfectly even layout.
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"
#include "hdfs/block.hpp"

namespace flexmr::hdfs {

enum class PlacementPolicy {
  kRandom,      ///< Hadoop default: replicas on uniform-random distinct nodes.
  kRoundRobin,  ///< Deterministic even spread (testing / worst-case studies).
};

class NameNode {
 public:
  NameNode(std::uint32_t num_nodes, PlacementPolicy policy, Rng rng);

  /// Creates a file of `size` MiB split into `block_size` blocks of
  /// `bu_size` BUs, replicated `replication` times. If the cluster has
  /// fewer nodes than `replication`, every node holds a replica.
  /// Under `storage.rs(k,m)` each block is instead striped onto k+m
  /// distinct part holders (the cluster must have at least k+m nodes);
  /// `replication` is still recorded but placement ignores it.
  FileLayout create_file(MiB size, MiB block_size, std::uint32_t replication,
                         MiB bu_size = kBlockUnitMiB,
                         StoragePolicy storage = {});

  std::uint32_t num_nodes() const { return num_nodes_; }

 private:
  std::vector<NodeId> place_replicas(std::uint32_t count);

  std::uint32_t num_nodes_;
  PlacementPolicy policy_;
  Rng rng_;
  NodeId next_rr_ = 0;
};

}  // namespace flexmr::hdfs
