#include "hdfs/block_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "simcore/lane_set.hpp"

namespace flexmr::hdfs {

BlockLocationIndex::BlockLocationIndex(const FileLayout& layout,
                                       std::uint32_t num_nodes)
    : layout_(&layout),
      node_lists_(num_nodes),
      cursor_(num_nodes, 0),
      counts_(num_nodes, 0),
      taken_(layout.bus.size(), 0),
      active_(num_nodes, 1),
      extra_holders_(layout.blocks.size()),
      dropped_holders_(layout.blocks.size()),
      unprocessed_(layout.bus.size()) {
  for (const auto& bu : layout.bus) {
    for (const NodeId node : layout.replicas_of(bu.id)) {
      FLEXMR_ASSERT(node < num_nodes);
      node_lists_[node].push_back(bu.id);
      ++counts_[node];
    }
  }
}

std::size_t BlockLocationIndex::local_count(NodeId node) const {
  FLEXMR_ASSERT(node < counts_.size());
  return counts_[node];
}

void BlockLocationIndex::take_one(BlockUnitId bu) {
  FLEXMR_ASSERT_MSG(!taken_[bu], "block unit taken twice");
  taken_[bu] = 1;
  --unprocessed_;
  const std::uint32_t block = layout_->bus[bu].block;
  for (const NodeId node : layout_->replicas_of(bu)) {
    if (!active_[node] || holder_dropped(block, node)) continue;
    FLEXMR_ASSERT(counts_[node] > 0);
    --counts_[node];
  }
  for (const NodeId node : extra_holders_[block]) {
    if (!active_[node] || holder_dropped(block, node)) continue;
    FLEXMR_ASSERT(counts_[node] > 0);
    --counts_[node];
  }
}

std::vector<BlockUnitId> BlockLocationIndex::take_local(NodeId node,
                                                        std::size_t n) {
  FLEXMR_ASSERT(node < node_lists_.size());
  std::vector<BlockUnitId> taken;
  if (!active_[node]) return taken;  // a dead node serves nothing
  taken.reserve(n);
  auto& list = node_lists_[node];
  auto& cur = cursor_[node];
  while (taken.size() < n && cur < list.size()) {
    const BlockUnitId bu = list[cur];
    if (taken_[bu] || holder_dropped(layout_->bus[bu].block, node)) {
      ++cur;
      continue;
    }
    take_one(bu);
    taken.push_back(bu);
    ++cur;
  }
  // The cursor may have raced past BUs that were put_back earlier; rescan
  // from the front only if we still owe BUs and the node claims to have some.
  if (taken.size() < n && counts_[node] > 0) {
    for (std::size_t i = 0; i < list.size() && taken.size() < n; ++i) {
      const BlockUnitId bu = list[i];
      if (!taken_[bu] && !holder_dropped(layout_->bus[bu].block, node)) {
        take_one(bu);
        taken.push_back(bu);
      }
    }
  }
  return taken;
}

std::vector<BlockUnitId> BlockLocationIndex::take_remote(NodeId avoid,
                                                         std::size_t n) {
  std::vector<BlockUnitId> taken;
  taken.reserve(n);
  while (taken.size() < n && unprocessed_ > 0) {
    // Paper heuristic: select remote BUs from the node with the most
    // unprocessed BUs (ties break toward the lowest node id).
    NodeId best = kInvalidNode;
    std::size_t best_count = 0;
    for (NodeId node = 0; node < counts_.size(); ++node) {
      if (node == avoid) continue;
      if (counts_[node] > best_count) {
        best_count = counts_[node];
        best = node;
      }
    }
    if (best == kInvalidNode) {
      // Everything unprocessed lives only on `avoid` — fine, it is local
      // after all; take from there.
      best = avoid;
      if (counts_[best] == 0) break;
    }
    auto chunk = take_local(best, n - taken.size());
    FLEXMR_ASSERT_MSG(!chunk.empty(), "count bookkeeping out of sync");
    taken.insert(taken.end(), chunk.begin(), chunk.end());
  }
  return taken;
}

void BlockLocationIndex::take_block(const Block& block) {
  for (const BlockUnitId bu : block.bus) {
    FLEXMR_ASSERT_MSG(!taken_[bu], "block already (partially) taken");
    take_one(bu);
  }
}

void BlockLocationIndex::take_units(const std::vector<BlockUnitId>& bus) {
  // Taking BUs commits them to a task — shared-state mutation that must
  // stay on the control lane of the sharded engine (decision kernels on
  // lane workers only *read*; the commit happens after the fan-in).
  FLEXMR_ASSERT_MSG(!LaneSet::on_worker(),
                    "BU take from a lane worker (control-lane only)");
  for (const BlockUnitId bu : bus) {
    FLEXMR_ASSERT_MSG(!taken_[bu], "unit already taken");
    take_one(bu);
  }
}

void BlockLocationIndex::put_back(const std::vector<BlockUnitId>& bus) {
  for (const BlockUnitId bu : bus) {
    FLEXMR_ASSERT_MSG(taken_[bu], "cannot put back an untaken block unit");
    taken_[bu] = 0;
    ++unprocessed_;
    const std::uint32_t block = layout_->bus[bu].block;
    for (const NodeId node : layout_->replicas_of(bu)) {
      if (!active_[node] || holder_dropped(block, node)) continue;
      ++counts_[node];
      // Reset the scan cursor so take_local can find it again cheaply.
      cursor_[node] = 0;
    }
    for (const NodeId node : extra_holders_[block]) {
      if (!active_[node] || holder_dropped(block, node)) continue;
      ++counts_[node];
      cursor_[node] = 0;
    }
  }
}

void BlockLocationIndex::deactivate_node(NodeId node) {
  FLEXMR_ASSERT(node < node_lists_.size());
  if (!active_[node]) return;
  active_[node] = 0;
  counts_[node] = 0;
  cursor_[node] = 0;
}

void BlockLocationIndex::restore_node(NodeId node) {
  FLEXMR_ASSERT(node < node_lists_.size());
  if (active_[node]) return;
  active_[node] = 1;
  std::size_t count = 0;
  for (const BlockUnitId bu : node_lists_[node]) {
    // A disk-lost copy stays lost across the node's downtime: the rejoin
    // block report simply doesn't list it.
    if (!taken_[bu] && !holder_dropped(layout_->bus[bu].block, node)) ++count;
  }
  counts_[node] = count;
  cursor_[node] = 0;
}

void BlockLocationIndex::add_replica(const Block& block, NodeId node) {
  FLEXMR_ASSERT(node < node_lists_.size());
  FLEXMR_ASSERT_MSG(active_[node], "cannot rehost a block on a dead node");
  auto& dropped = dropped_holders_[block.id];
  const auto dropped_it = std::find(dropped.begin(), dropped.end(), node);
  if (dropped_it != dropped.end()) {
    // Repair landed back on a holder that lost this block to a disk fault:
    // its node_lists_ entries still exist, so re-arming the holder is just
    // un-dropping and recounting.
    dropped.erase(dropped_it);
    for (const BlockUnitId bu : block.bus) {
      if (!taken_[bu]) ++counts_[node];
    }
    cursor_[node] = 0;
    return;
  }
  auto& extras = extra_holders_[block.id];
  FLEXMR_ASSERT_MSG(
      std::find(extras.begin(), extras.end(), node) == extras.end() &&
          std::find(block.replicas.begin(), block.replicas.end(), node) ==
              block.replicas.end(),
      "node already holds a replica of this block");
  extras.push_back(node);
  for (const BlockUnitId bu : block.bus) {
    node_lists_[node].push_back(bu);
    if (!taken_[bu]) ++counts_[node];
  }
}

void BlockLocationIndex::drop_replica(const Block& block, NodeId node) {
  FLEXMR_ASSERT(node < node_lists_.size());
  auto& dropped = dropped_holders_[block.id];
  if (std::find(dropped.begin(), dropped.end(), node) != dropped.end()) {
    return;  // already dropped
  }
  const auto& extras = extra_holders_[block.id];
  FLEXMR_ASSERT_MSG(
      std::find(block.replicas.begin(), block.replicas.end(), node) !=
              block.replicas.end() ||
          std::find(extras.begin(), extras.end(), node) != extras.end(),
      "disk fault on a node that never held this block");
  dropped.push_back(node);
  any_dropped_ = true;
  if (!active_[node]) return;  // counts already zeroed by deactivate_node
  for (const BlockUnitId bu : block.bus) {
    if (taken_[bu]) continue;
    FLEXMR_ASSERT(counts_[node] > 0);
    --counts_[node];
  }
}

}  // namespace flexmr::hdfs
