#include "hdfs/namenode.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace flexmr::hdfs {

double FileLayout::total_work() const {
  double work = 0.0;
  for (const auto& bu : bus) work += bu.size * bu.cost;
  return work;
}

void StoragePolicy::validate(std::uint32_t alive_nodes) const {
  if (!erasure()) return;
  if (rs_k < 1) {
    throw ConfigError("StoragePolicy: rs(k,m) requires k >= 1");
  }
  if (rs_m < 1) {
    throw ConfigError(
        "StoragePolicy: rs(k,m) requires m >= 1 (use replication for "
        "unprotected striping)");
  }
  if (rs_k + rs_m > alive_nodes) {
    std::ostringstream os;
    os << "StoragePolicy: rs(" << rs_k << "," << rs_m << ") needs " << rs_k + rs_m
       << " distinct part holders but only " << alive_nodes
       << " nodes are alive at t=0";
    throw ConfigError(os.str());
  }
  if (!(decode_mibps > 0)) {
    std::ostringstream os;
    os << "StoragePolicy: decode_mibps must be > 0, got " << decode_mibps;
    throw ConfigError(os.str());
  }
  if (!(repair_bandwidth_mibps > 0)) {
    std::ostringstream os;
    os << "StoragePolicy: repair_bandwidth_mibps must be > 0, got "
       << repair_bandwidth_mibps;
    throw ConfigError(os.str());
  }
}

NameNode::NameNode(std::uint32_t num_nodes, PlacementPolicy policy, Rng rng)
    : num_nodes_(num_nodes), policy_(policy), rng_(rng) {
  FLEXMR_ASSERT(num_nodes > 0);
}

std::vector<NodeId> NameNode::place_replicas(std::uint32_t count) {
  count = std::min(count, num_nodes_);
  std::vector<NodeId> replicas;
  replicas.reserve(count);
  if (policy_ == PlacementPolicy::kRoundRobin) {
    for (std::uint32_t i = 0; i < count; ++i) {
      replicas.push_back((next_rr_ + i) % num_nodes_);
    }
    next_rr_ = (next_rr_ + 1) % num_nodes_;
    return replicas;
  }
  // Random distinct nodes via partial Fisher-Yates over node ids.
  std::vector<NodeId> pool(num_nodes_);
  for (NodeId i = 0; i < num_nodes_; ++i) pool[i] = i;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto j = i + static_cast<std::uint32_t>(
                           rng_.uniform_int(num_nodes_ - i));
    std::swap(pool[i], pool[j]);
    replicas.push_back(pool[i]);
  }
  std::sort(replicas.begin(), replicas.end());
  return replicas;
}

FileLayout NameNode::create_file(MiB size, MiB block_size,
                                 std::uint32_t replication, MiB bu_size,
                                 StoragePolicy storage) {
  // Caller-facing misconfiguration is a ConfigError, not an assert: these
  // values come straight from RunConfig / bench flags.
  if (!(size > 0)) {
    std::ostringstream os;
    os << "NameNode::create_file: file size must be > 0, got " << size;
    throw ConfigError(os.str());
  }
  if (!(block_size > 0)) {
    std::ostringstream os;
    os << "NameNode::create_file: block size must be > 0, got " << block_size;
    throw ConfigError(os.str());
  }
  if (replication == 0) {
    throw ConfigError("NameNode::create_file: replication must be >= 1");
  }
  storage.validate(num_nodes_);
  if (!(bu_size > 0) || block_size < bu_size) {
    std::ostringstream os;
    os << "NameNode::create_file: BU size " << bu_size
       << " must be in (0, block size " << block_size << "]";
    throw ConfigError(os.str());
  }
  const double rem = std::fmod(block_size, bu_size);
  if (rem > 1e-9 && bu_size - rem > 1e-9) {
    std::ostringstream os;
    os << "NameNode::create_file: BU size " << bu_size
       << " does not divide block size " << block_size;
    throw ConfigError(os.str());
  }

  FileLayout layout;
  layout.total_size = size;
  layout.block_size = block_size;
  layout.bu_size = bu_size;
  layout.replication = std::min(replication, num_nodes_);
  layout.storage = storage;
  // Under rs(k,m) a block's "replicas" are its k+m part holders, each on a
  // distinct node (validated above, so place_replicas never clamps).
  const std::uint32_t holders_per_block =
      storage.erasure() ? storage.total_parts() : layout.replication;

  const auto bus_per_block =
      static_cast<std::uint32_t>(std::ceil(block_size / bu_size - 1e-9));
  MiB remaining = size;
  std::uint32_t block_id = 0;
  BlockUnitId bu_id = 0;
  while (remaining > 1e-9) {
    Block block;
    block.id = block_id;
    block.replicas = place_replicas(holders_per_block);
    for (std::uint32_t i = 0; i < bus_per_block && remaining > 1e-9; ++i) {
      BlockUnit bu;
      bu.id = bu_id++;
      bu.block = block_id;
      bu.size = std::min(bu_size, remaining);
      remaining -= bu.size;
      block.bus.push_back(bu.id);
      layout.bus.push_back(bu);
    }
    layout.blocks.push_back(std::move(block));
    ++block_id;
  }
  return layout;
}

}  // namespace flexmr::hdfs
