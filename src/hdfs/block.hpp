// HDFS data model.
//
// A job's input file is divided into fixed-size *blocks* (64 MB / 128 MB in
// the paper) placed with r-way replication. FlexMap further subdivides each
// block into 8 MB *block units* (BUs) — the smallest unit of task sizing.
// A BU inherits the replica placement of its parent block, so both the
// stock block-grained scheduler and FlexMap's BU-grained late binder see
// one consistent physical layout.
//
// Alternatively the NameNode can stripe each block as a Reed-Solomon
// rs(k,m) group: k data parts plus m parity parts on k+m distinct nodes,
// each part block/k bytes. Under striping `Block::replicas` holds the
// part holders (holder i owns part i), so every holder is only
// *partial-local* — it has 1/k of the block's bytes. Any k live parts
// reconstruct the block; a read with dead parts is a *degraded read* and
// pays a modeled decode cost.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace flexmr::hdfs {

/// How the NameNode lays a file's blocks onto nodes: whole-block r-way
/// replication (the default; byte-identical to the pre-erasure simulator)
/// or Reed-Solomon rs(k,m) striping.
struct StoragePolicy {
  enum class Kind : std::uint8_t { kReplication, kErasure };

  Kind kind = Kind::kReplication;
  /// Data / parity part counts of the rs(k,m) code (only read under
  /// kErasure).
  std::uint32_t rs_k = 6;
  std::uint32_t rs_m = 3;
  /// Modeled decode throughput of a degraded read: reconstructing the
  /// missing parts' share of `b` bytes costs b / decode_mibps seconds of
  /// extra task startup.
  double decode_mibps = 400.0;
  /// Bandwidth budget of the repair pipeline. Reconstructing one lost
  /// part reads k surviving parts (k × block/k = one full block of
  /// repair traffic — the k× read amplification vs replication, which
  /// copies the block once and restores *all* of it).
  double repair_bandwidth_mibps = 100.0;

  bool erasure() const { return kind == Kind::kErasure; }
  /// Holders per block: k+m part holders, or `replication` whole copies.
  std::uint32_t total_parts() const { return rs_k + rs_m; }
  /// Minimum live holders for a block to be readable: any k parts, or
  /// one whole replica.
  std::uint32_t min_live() const { return erasure() ? rs_k : 1; }
  /// Raw-capacity overhead of the policy: (k+m)/k, or the replication
  /// factor under whole-block copies.
  double overhead(std::uint32_t replication) const {
    return erasure() ? static_cast<double>(rs_k + rs_m) / rs_k
                     : static_cast<double>(replication);
  }

  static StoragePolicy rs(std::uint32_t k, std::uint32_t m) {
    StoragePolicy policy;
    policy.kind = Kind::kErasure;
    policy.rs_k = k;
    policy.rs_m = m;
    return policy;
  }

  /// Rejects k < 1, m < 1, k+m > `alive_nodes` (parts must land on
  /// distinct live nodes) and non-positive bandwidths with ConfigError.
  /// No-op under kReplication.
  void validate(std::uint32_t alive_nodes) const;
};

/// One block unit: the atomic input quantum (normally 8 MiB; the final BU
/// of a file may be smaller).
struct BlockUnit {
  BlockUnitId id = 0;
  std::uint32_t block = 0;  ///< Index of the parent block.
  MiB size = kBlockUnitMiB;
  /// Relative per-byte processing cost of the records in this BU (data
  /// skew). 1.0 = the workload's average record mix.
  double cost = 1.0;
};

/// One HDFS block: a contiguous run of BUs plus its replica set.
struct Block {
  std::uint32_t id = 0;
  std::vector<BlockUnitId> bus;
  std::vector<NodeId> replicas;
};

/// The full layout of one input file.
struct FileLayout {
  MiB total_size = 0;
  MiB block_size = kDefaultBlockMiB;
  MiB bu_size = kBlockUnitMiB;
  std::uint32_t replication = 3;
  StoragePolicy storage;
  std::vector<Block> blocks;
  std::vector<BlockUnit> bus;

  /// Under replication: the whole-block replica holders. Under rs(k,m):
  /// the k+m part holders — each holds 1/k of the BU's bytes.
  const std::vector<NodeId>& replicas_of(BlockUnitId bu) const {
    return blocks[bus[bu].block].replicas;
  }

  /// Live holders a block needs to stay readable (k parts or 1 replica).
  std::uint32_t min_live() const { return storage.min_live(); }
  /// Target holder count the repair pipeline restores toward.
  std::uint32_t target_holders() const {
    return storage.erasure() ? storage.total_parts() : replication;
  }

  /// Total work of the file in cost-weighted MiB (Σ size·cost).
  double total_work() const;
};

}  // namespace flexmr::hdfs
