// HDFS data model.
//
// A job's input file is divided into fixed-size *blocks* (64 MB / 128 MB in
// the paper) placed with r-way replication. FlexMap further subdivides each
// block into 8 MB *block units* (BUs) — the smallest unit of task sizing.
// A BU inherits the replica placement of its parent block, so both the
// stock block-grained scheduler and FlexMap's BU-grained late binder see
// one consistent physical layout.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace flexmr::hdfs {

/// One block unit: the atomic input quantum (normally 8 MiB; the final BU
/// of a file may be smaller).
struct BlockUnit {
  BlockUnitId id = 0;
  std::uint32_t block = 0;  ///< Index of the parent block.
  MiB size = kBlockUnitMiB;
  /// Relative per-byte processing cost of the records in this BU (data
  /// skew). 1.0 = the workload's average record mix.
  double cost = 1.0;
};

/// One HDFS block: a contiguous run of BUs plus its replica set.
struct Block {
  std::uint32_t id = 0;
  std::vector<BlockUnitId> bus;
  std::vector<NodeId> replicas;
};

/// The full layout of one input file.
struct FileLayout {
  MiB total_size = 0;
  MiB block_size = kDefaultBlockMiB;
  MiB bu_size = kBlockUnitMiB;
  std::uint32_t replication = 3;
  std::vector<Block> blocks;
  std::vector<BlockUnit> bus;

  const std::vector<NodeId>& replicas_of(BlockUnitId bu) const {
    return blocks[bus[bu].block].replicas;
  }

  /// Total work of the file in cost-weighted MiB (Σ size·cost).
  double total_work() const;
};

}  // namespace flexmr::hdfs
