// BlockLocationIndex — the NodeToBlock / BlockToNode bookkeeping that late
// task binding maintains in the AppMaster (paper §III-C).
//
// The index tracks which BUs of a job are still unprocessed and where their
// replicas live. Taking a BU for a task removes it from every replica
// holder's list, guaranteeing exactly-once processing. The stock scheduler
// uses the same index at block granularity (take_block), so the invariant
// holds uniformly across schedulers.
//
// Determinism: per-node BU lists are stored in placement order and consumed
// through a cursor, so iteration never depends on hash ordering.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "hdfs/block.hpp"

namespace flexmr::hdfs {

class BlockLocationIndex {
 public:
  BlockLocationIndex(const FileLayout& layout, std::uint32_t num_nodes);

  /// Total BUs still unprocessed.
  std::size_t unprocessed() const { return unprocessed_; }

  /// Unprocessed BUs with a replica on `node` (the NodeToBlock view).
  std::size_t local_count(NodeId node) const;

  bool taken(BlockUnitId bu) const { return taken_[bu]; }

  /// Takes up to `n` BUs local to `node`, in stored order. May return fewer
  /// (including zero) when the node holds fewer unprocessed replicas.
  std::vector<BlockUnitId> take_local(NodeId node, std::size_t n);

  /// Takes up to `n` BUs following the paper's remote heuristic: repeatedly
  /// pick the node (≠ `avoid`) with the most unprocessed BUs and take from
  /// it. Returns fewer only when the file is exhausted.
  std::vector<BlockUnitId> take_remote(NodeId avoid, std::size_t n);

  /// Takes the specific BU set of one block (stock Hadoop's one-map-per-
  /// block binding). All of the block's BUs must still be unprocessed.
  void take_block(const Block& block);

  /// Takes an explicit BU list (SkewTune re-takes the chunks of a killed
  /// straggler it planned). All must be unprocessed.
  void take_units(const std::vector<BlockUnitId>& bus);

  /// Puts BUs back (SkewTune returns a killed straggler's unread suffix to
  /// the pool so mitigation tasks can re-take it).
  void put_back(const std::vector<BlockUnitId>& bus);

  // ---- live replica view (data-plane fault tolerance) -------------------
  //
  // When a node is declared lost its replicas stop being takeable: the
  // node's local pool shrinks to zero and take/put bookkeeping skips it.
  // A rejoin restores the pool; re-replication grows another node's pool
  // by the rehosted block's unprocessed BUs. With no deactivations the
  // index behaves byte-identically to the static layout view.

  /// Drop `node` from the live view: its local pool empties and replica
  /// counting ignores it until restore_node.
  void deactivate_node(NodeId node);

  /// Re-admit `node` (rejoin block report): its local pool is recounted
  /// from its placement-order list.
  void restore_node(NodeId node);

  /// A re-replication copy (or reconstructed erasure part) of `block`
  /// landed on `node`: the block's BUs join the node's local pool. If the
  /// node previously lost its copy of this block to a disk fault
  /// (drop_replica), the repair re-arms that holder instead of adding a
  /// duplicate entry.
  void add_replica(const Block& block, NodeId node);

  /// A single-disk fault destroyed `node`'s copy/part of `block` while the
  /// node stayed alive: only that one block leaves the node's local pool
  /// (deactivate_node removes all of them). Idempotent; `node` must hold
  /// the block. The drop persists across deactivate/restore cycles — the
  /// data is gone until a repair lands (add_replica).
  void drop_replica(const Block& block, NodeId node);

  /// True when `node`'s copy of `block` was destroyed by drop_replica and
  /// has not been repaired since.
  bool holder_dropped(std::uint32_t block, NodeId node) const {
    if (!any_dropped_) return false;
    const auto& dropped = dropped_holders_[block];
    return std::find(dropped.begin(), dropped.end(), node) != dropped.end();
  }

  bool node_active(NodeId node) const { return active_[node] != 0; }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(node_lists_.size());
  }

 private:
  void take_one(BlockUnitId bu);

  const FileLayout* layout_;
  std::vector<std::vector<BlockUnitId>> node_lists_;  // placement order
  std::vector<std::size_t> cursor_;                   // per-node scan cursor
  std::vector<std::size_t> counts_;                   // per-node unprocessed
  std::vector<char> taken_;
  std::vector<char> active_;
  /// Re-replication targets per block, beyond the layout's replica set.
  std::vector<std::vector<NodeId>> extra_holders_;
  /// Holders whose copy of a block was destroyed by a disk fault while the
  /// node stayed alive (drop_replica). Checked on every take/put only once
  /// any_dropped_ flips, so the default path stays branch-cheap.
  std::vector<std::vector<NodeId>> dropped_holders_;
  bool any_dropped_ = false;
  std::size_t unprocessed_ = 0;
};

}  // namespace flexmr::hdfs
