#include "hdfs/replica_manager.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace flexmr::hdfs {

ReplicaManager::ReplicaManager(const FileLayout& layout,
                               std::uint32_t num_nodes)
    : layout_(&layout),
      live_holders_(layout.blocks.size()),
      disk_holders_(layout.blocks.size()),
      node_blocks_(num_nodes),
      block_bytes_(layout.blocks.size(), 0.0),
      alive_(num_nodes, 1),
      live_block_count_(num_nodes, 0),
      queue_state_(layout.blocks.size(), 0),
      min_live_(layout.min_live()),
      target_holders_(layout.target_holders()) {
  for (const auto& block : layout.blocks) {
    live_holders_[block.id] = block.replicas;
    disk_holders_[block.id] = block.replicas;
    for (const NodeId node : block.replicas) {
      FLEXMR_ASSERT(node < num_nodes);
      node_blocks_[node].push_back(block.id);
      ++live_block_count_[node];
    }
    for (const BlockUnitId bu : block.bus) {
      block_bytes_[block.id] += layout.bus[bu].size;
    }
  }
}

void ReplicaManager::enable_re_replication(Simulator& sim,
                                           double bandwidth_mibps) {
  FLEXMR_ASSERT(bandwidth_mibps > 0.0);
  sim_ = &sim;
  bandwidth_mibps_ = bandwidth_mibps;
}

bool ReplicaManager::holds_live(std::uint32_t block, NodeId node) const {
  const auto& holders = live_holders_[block];
  return std::find(holders.begin(), holders.end(), node) != holders.end();
}

ReplicaManager::NodeLossReport ReplicaManager::on_node_lost(NodeId node) {
  NodeLossReport report;
  if (!alive_[node]) return report;
  alive_[node] = 0;
  live_block_count_[node] = 0;

  // An in-flight copy reading from or writing to the dead node is torn
  // down; the block re-enters the queue at the front so recovery resumes
  // with the most urgent work.
  if (in_flight_ &&
      (in_flight_->source == node || in_flight_->target == node)) {
    sim_->cancel(in_flight_->event);
    const std::uint32_t block = in_flight_->block;
    if (tracer_ != nullptr) {
      tracer_->instant({obs::kNameNodePid, 0},
                       "re-replication aborted (holder died)", "hdfs",
                       sim_->now(),
                       {{"block", block},
                        {"source", in_flight_->source},
                        {"target", in_flight_->target}});
    }
    in_flight_.reset();
    if (queue_state_[block] == 0) {
      queue_state_[block] = 1;
      queue_.push_front(block);
    }
  }

  for (const std::uint32_t block : node_blocks_[node]) {
    auto& holders = live_holders_[block];
    const auto it = std::find(holders.begin(), holders.end(), node);
    if (it == holders.end()) continue;  // already non-live (repeat death)
    holders.erase(it);
    report.lost.push_back(block);
    if (holders.size() < min_live_) {
      report.zero.push_back(block);
      if (holders.size() + 1 == min_live_) ++unreadable_count_;
    } else {
      enqueue(block);
    }
  }
  pump();
  return report;
}

ReplicaManager::NodeLossReport ReplicaManager::on_disk_lost(
    NodeId node, std::uint32_t disk, std::uint32_t disks_per_node) {
  NodeLossReport report;
  auto& blocks = node_blocks_[node];
  for (std::size_t i = 0; i < blocks.size();) {
    const std::uint32_t block = blocks[i];
    if (disk_of(block, node, disks_per_node) != disk) {
      ++i;
      continue;
    }
    // The disk's data is destroyed: forget it from both the live view and
    // the rejoin memory, so neither a block report nor target selection
    // treats the node as still holding it.
    blocks[i] = blocks.back();
    blocks.pop_back();
    auto& remembered = disk_holders_[block];
    const auto rit = std::find(remembered.begin(), remembered.end(), node);
    if (rit != remembered.end()) remembered.erase(rit);

    if (in_flight_ && in_flight_->block == block &&
        (in_flight_->source == node || in_flight_->target == node)) {
      sim_->cancel(in_flight_->event);
      if (tracer_ != nullptr) {
        tracer_->instant({obs::kNameNodePid, 0},
                         "repair aborted (disk failed)", "hdfs", sim_->now(),
                         {{"block", block},
                          {"source", in_flight_->source},
                          {"target", in_flight_->target}});
      }
      in_flight_.reset();
      if (queue_state_[block] == 0) {
        queue_state_[block] = 1;
        queue_.push_front(block);
      }
    }

    auto& holders = live_holders_[block];
    const auto it = std::find(holders.begin(), holders.end(), node);
    if (it != holders.end()) {
      holders.erase(it);
      FLEXMR_ASSERT(live_block_count_[node] > 0);
      --live_block_count_[node];
      report.lost.push_back(block);
      if (holders.size() < min_live_) {
        report.zero.push_back(block);
        if (holders.size() + 1 == min_live_) ++unreadable_count_;
      } else {
        enqueue(block);
      }
    }
  }
  std::sort(report.lost.begin(), report.lost.end());
  std::sort(report.zero.begin(), report.zero.end());
  pump();
  return report;
}

std::vector<std::uint32_t> ReplicaManager::on_node_restored(NodeId node) {
  std::vector<std::uint32_t> restored;
  if (alive_[node]) return restored;
  alive_[node] = 1;
  for (const std::uint32_t block : node_blocks_[node]) {
    auto& holders = live_holders_[block];
    if (holders.size() + 1 == min_live_) --unreadable_count_;
    holders.push_back(node);
    ++live_block_count_[node];
    restored.push_back(block);
    if (holders.size() < target_holders_) enqueue(block);
  }
  // Parked blocks were waiting for a viable target; the rejoined node may
  // be one.
  for (const std::uint32_t block : parked_) {
    queue_state_[block] = 1;
    queue_.push_back(block);
  }
  parked_.clear();
  pump();
  return restored;
}

void ReplicaManager::enqueue(std::uint32_t block) {
  if (sim_ == nullptr) return;  // re-replication disabled
  if (queue_state_[block] != 0) return;
  queue_state_[block] = 1;
  queue_.push_back(block);
}

NodeId ReplicaManager::pick_target(std::uint32_t block) const {
  // Deterministic: the alive node not already remembering the block (a
  // rejoining ex-holder would double-count) with the fewest live blocks,
  // ties toward the lowest id.
  const auto& remembered = disk_holders_[block];
  NodeId best = kInvalidNode;
  for (NodeId node = 0; node < alive_.size(); ++node) {
    if (!alive_[node]) continue;
    if (std::find(remembered.begin(), remembered.end(), node) !=
        remembered.end()) {
      continue;
    }
    if (best == kInvalidNode ||
        live_block_count_[node] < live_block_count_[best]) {
      best = node;
    }
  }
  return best;
}

void ReplicaManager::pump() {
  if (sim_ == nullptr) return;
  // Covers target selection too (pick_target is an O(nodes) scan per
  // queued block) — the NameNode's share of control time under faults.
  FLEXMR_PROF_SCOPE("hdfs/replica_pump");
  while (!in_flight_ && !queue_.empty()) {
    const std::uint32_t block = queue_.front();
    queue_.pop_front();
    queue_state_[block] = 0;
    const auto& holders = live_holders_[block];
    // Unreadable blocks stall until a rejoin re-enqueues them: replication
    // needs a surviving copy to read, rs(k,m) needs k surviving parts to
    // decode.
    if (holders.size() < min_live_) continue;
    if (holders.size() >= target_holders_) continue;  // raced a rejoin
    const NodeId target = pick_target(block);
    if (target == kInvalidNode) {
      queue_state_[block] = 2;
      parked_.push_back(block);
      continue;
    }
    InFlightCopy copy;
    copy.block = block;
    copy.source = holders.front();
    copy.target = target;
    copy.started_at = sim_->now();
    copy.event = sim_->schedule_after(
        block_bytes_[block] / bandwidth_mibps_,
        [this, block, target]() { finish_copy(block, target); });
    in_flight_ = copy;
  }
}

void ReplicaManager::finish_copy(std::uint32_t block, NodeId target) {
  FLEXMR_PROF_SCOPE("hdfs/finish_copy");
  const bool erasure = layout_->storage.erasure();
  if (tracer_ != nullptr && in_flight_) {
    tracer_->complete({obs::kNameNodePid, 0},
                      (erasure ? "reconstruct part of block "
                               : "re-replicate block ") +
                          std::to_string(block),
                      "hdfs", in_flight_->started_at,
                      sim_->now() - in_flight_->started_at,
                      {{"block", block},
                       {"source", in_flight_->source},
                       {"target", target},
                       {"mib", block_bytes_[block]}});
  }
  in_flight_.reset();
  FLEXMR_LOG(Debug, "hdfs") << (erasure ? "reconstructed part of block "
                                        : "re-replicated block ")
                            << block << " to node " << target << " at t="
                            << sim_->now();
  // Either way the pipeline read a full block's worth of bytes — but an
  // erasure pass restored only one part (block/k), the k× amplification.
  repair_read_mib_ += block_bytes_[block];
  if (erasure) ++parts_reconstructed_;
  live_holders_[block].push_back(target);
  disk_holders_[block].push_back(target);
  node_blocks_[target].push_back(block);
  ++live_block_count_[target];
  if (live_holders_[block].size() < target_holders_) enqueue(block);
  if (on_copy_complete_) on_copy_complete_(block, target);
  pump();
}

}  // namespace flexmr::hdfs
