// flexmr-trace: run an experiment config with tracing enabled and emit
// the flexmr.trace.v1 document, the metrics time-series CSV, and a
// percentile summary table.
//
//   ./build/tools/flexmr-trace examples/trace_demo.ini
//   ./build/tools/flexmr-trace examples/trace_demo.ini --out /tmp/t
//   ./build/tools/flexmr-trace examples/trace_demo.ini --replay
//
// Two trace sources:
//   * live (default) — an obs::TraceSession rides along in RunConfig and
//     records spans, instants, counters and sampled metrics as the
//     simulation runs: the full-resolution view (task phase children,
//     sizing decisions, fetch retries, queue-depth time series).
//   * --replay — the run is executed untraced and the trace is rebuilt
//     afterwards from the JobResult via mr::job_result_trace_json():
//     coarser (one X span per task, fault instants, no metrics rows) but
//     derivable from any finished run.
//
// Options:
//   --out DIR      output directory (default ".")
//   --replay       rebuild the trace from the JobResult instead of live
//   --cadence S    metrics sampling cadence in sim seconds (default 1.0)
//   --no-node-gauges   drop the per-node speed gauge columns (wide CSVs)
//
// The config format is the one examples/custom_cluster reads; see
// examples/trace_demo.ini for a walkthrough.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/config.hpp"
#include "common/logging.hpp"
#include "mr/trace.hpp"
#include "obs/session.hpp"
#include "workloads/experiment.hpp"

namespace {

constexpr const char* kDemoConfig = R"(
# Built-in demo: mixed cluster, wordcount under FlexMap.
[group1]
model = rack server
count = 4
ips = 12
slots = 4
slowdown = 1.0

[group2]
model = legacy box
count = 4
ips = 5
slots = 4
slowdown = 1.0

[job]
benchmark = WC
input_gib = 4
block_mb = 64

[run]
seed = 9
scheduler = flexmap
)";

flexmr::cluster::Cluster build_cluster(const flexmr::Config& config) {
  using namespace flexmr;
  cluster::ClusterBuilder builder;
  for (int g = 1;; ++g) {
    const std::string section = "group" + std::to_string(g);
    if (!config.has(section + ".count")) break;
    cluster::MachineSpec spec;
    spec.model = config.get_string(section + ".model", section);
    spec.base_ips = config.require_double(section + ".ips");
    spec.slots =
        static_cast<std::uint32_t>(config.get_int(section + ".slots", 4));
    const double slowdown = config.get_double(section + ".slowdown", 1.0);
    builder.add(spec,
                static_cast<std::uint32_t>(
                    config.require_int(section + ".count")),
                slowdown < 1.0 ? cluster::static_slowdown(slowdown)
                               : cluster::no_interference());
  }
  return builder.build();
}

flexmr::workloads::SchedulerKind parse_scheduler(const std::string& name) {
  using flexmr::workloads::SchedulerKind;
  if (name == "hadoop") return SchedulerKind::kHadoop;
  if (name == "hadoop-nospec") return SchedulerKind::kHadoopNoSpec;
  if (name == "skewtune") return SchedulerKind::kSkewTune;
  if (name == "flexmap") return SchedulerKind::kFlexMap;
  if (name == "flexmap-nov") return SchedulerKind::kFlexMapNoVertical;
  if (name == "flexmap-noh") return SchedulerKind::kFlexMapNoHorizontal;
  if (name == "flexmap-norb") return SchedulerKind::kFlexMapNoReduceBias;
  throw flexmr::ConfigError("unknown scheduler: " + name);
}

std::vector<std::pair<flexmr::NodeId, flexmr::SimTime>> parse_failures(
    const flexmr::Config& config) {
  std::vector<std::pair<flexmr::NodeId, flexmr::SimTime>> failures;
  for (int i = 1;; ++i) {
    const auto value = config.get("failures.node" + std::to_string(i));
    if (!value) break;
    const auto at = value->find('@');
    if (at == std::string::npos) {
      throw flexmr::ConfigError("failure spec must be '<node> @ <time>': " +
                                *value);
    }
    failures.emplace_back(
        static_cast<flexmr::NodeId>(std::stoul(value->substr(0, at))),
        std::stod(value->substr(at + 1)));
  }
  return failures;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw flexmr::ConfigError("cannot write " + path);
  out << content;
}

struct Cli {
  std::string config_path;  // empty = built-in demo
  std::string out_dir = ".";
  bool replay = false;
  double cadence_s = 1.0;
  bool per_node_gauges = true;
  std::string log_filter;  // subsystem tags, e.g. "sim,sched"; empty = off
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw flexmr::ConfigError(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--out") {
      cli.out_dir = next();
    } else if (arg == "--replay") {
      cli.replay = true;
    } else if (arg == "--cadence") {
      cli.cadence_s = std::stod(next());
    } else if (arg == "--no-node-gauges") {
      cli.per_node_gauges = false;
    } else if (arg == "--log-filter") {
      cli.log_filter = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: flexmr-trace [config.ini] [--out DIR] [--replay] "
          "[--cadence S] [--no-node-gauges] [--log-filter TAGS]\n"
          "  --log-filter TAGS  raise logging to Debug for the named\n"
          "                     subsystem tags only (e.g. sim,sched,hdfs)\n");
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw flexmr::ConfigError("unknown option: " + arg);
    } else {
      cli.config_path = arg;
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexmr;
  try {
    const Cli cli = parse_cli(argc, argv);
    if (!cli.log_filter.empty()) {
      Logger::instance().set_filter(cli.log_filter);
      Logger::instance().set_level(LogLevel::Debug);
    }
    const Config config = cli.config_path.empty()
                              ? Config::parse(kDemoConfig)
                              : Config::load(cli.config_path);

    auto cluster = build_cluster(config);
    auto bench =
        workloads::benchmark(config.get_string("job.benchmark", "WC"));
    bench.small_input = gib_to_mib(config.get_double("job.input_gib", 4));

    workloads::RunConfig run;
    run.block_size = config.get_double("job.block_mb", 64.0);
    run.params.seed =
        static_cast<std::uint64_t>(config.get_int("run.seed", 1));
    run.node_failures = parse_failures(config);
    const auto kind =
        parse_scheduler(config.get_string("run.scheduler", "flexmap"));

    obs::TraceOptions options;
    options.metrics_cadence_s = cli.cadence_s;
    options.per_node_gauges = cli.per_node_gauges;
    obs::TraceSession session(options);
    if (!cli.replay) run.trace = &session;
    session.set_metadata("config", cli.config_path.empty()
                                       ? "<built-in demo>"
                                       : cli.config_path);
    session.set_metadata("benchmark", bench.name);
    session.set_metadata("scheduler", workloads::scheduler_label(kind));
    session.set_metadata("seed", std::to_string(run.params.seed));

    std::printf("cluster: %u nodes, %u slots; job: %s (%.0f GiB); "
                "scheduler: %s; trace: %s\n",
                cluster.num_nodes(), cluster.total_slots(),
                bench.name.c_str(), mib_to_gib(bench.small_input),
                workloads::scheduler_label(kind).c_str(),
                cli.replay ? "replay" : "live");

    const auto result = workloads::run_job(
        cluster, bench, workloads::InputScale::kSmall, kind, run);

    const std::string trace_path = cli.out_dir + "/trace.json";
    if (cli.replay) {
      write_file(trace_path, mr::job_result_trace_json(result));
    } else {
      write_file(trace_path, session.trace_json());
      write_file(cli.out_dir + "/metrics.csv", session.metrics_csv());
    }

    std::printf("JCT %.1fs | efficiency %.3f | %zu map tasks | "
                "%zu reducers\n",
                result.jct(), result.efficiency(),
                result.map_tasks_launched(),
                result.count(mr::TaskKind::kReduce,
                             mr::TaskStatus::kCompleted));
    std::printf("wrote %s%s\n", trace_path.c_str(),
                cli.replay ? "" : (" and " + cli.out_dir +
                                   "/metrics.csv").c_str());
    if (!cli.replay) {
      std::printf("\n%s", session.summary().c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
