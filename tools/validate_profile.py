#!/usr/bin/env python3
"""Shape validator for flexmr.profile.v1 documents.

Checks the invariants the self-profiler (src/obs/profiler.hpp) promises by
construction:

  * valid JSON; schema == flexmr.profile.v1; host block with
    hardware_concurrency; wall_ns and total_exclusive_ns present
  * every scope has id/name/parent/count/inclusive_ns/exclusive_ns, with
    parents serialized before children (parent < id; roots use -1),
    count >= 1 and exclusive_ns <= inclusive_ns
  * total_exclusive_ns equals the sum over scopes
  * a scope's inclusive time is >= the sum of its children's inclusive
    time (self time is never negative at any node)
  * the lanes block (when windows > 0) has a per_lane table with
    busy_ns/idle_ns/drained and a max/mean imbalance summary consistent
    with the per-lane busy column

Usage: validate_profile.py PROFILE.json [PROFILE2.json ...]
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    sys.exit(1)


def validate(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "flexmr.profile.v1":
        fail(path, f"schema is {doc.get('schema')!r}")
    host = doc.get("host")
    if not isinstance(host, dict) or "hardware_concurrency" not in host:
        fail(path, "host block missing hardware_concurrency")
    for key in ("wall_ns", "total_exclusive_ns"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(path, f"bad {key}: {doc.get(key)!r}")

    scopes = doc.get("scopes")
    if not isinstance(scopes, list):
        fail(path, "scopes missing")
    child_inclusive = {}
    total_exclusive = 0
    for i, s in enumerate(scopes):
        for key in ("id", "name", "parent", "count", "inclusive_ns",
                    "exclusive_ns"):
            if key not in s:
                fail(path, f"scope {i} missing {key}: {s}")
        if s["id"] != i:
            fail(path, f"scope {i} id {s['id']} out of order")
        if not (s["parent"] == -1 or 0 <= s["parent"] < i):
            fail(path, f"scope {i} parent {s['parent']} not before it")
        if not s["name"]:
            fail(path, f"scope {i} has an empty name")
        if s["count"] < 1:
            fail(path, f"scope {i} ({s['name']}) has count {s['count']}")
        if s["exclusive_ns"] > s["inclusive_ns"]:
            fail(path, f"scope {i} ({s['name']}) exclusive > inclusive")
        total_exclusive += s["exclusive_ns"]
        if s["parent"] >= 0:
            child_inclusive[s["parent"]] = (
                child_inclusive.get(s["parent"], 0) + s["inclusive_ns"])
    for parent, child_sum in child_inclusive.items():
        if scopes[parent]["inclusive_ns"] < child_sum:
            fail(path, f"scope {parent} ({scopes[parent]['name']}) "
                 f"inclusive {scopes[parent]['inclusive_ns']} < children "
                 f"sum {child_sum}")
    if total_exclusive != doc["total_exclusive_ns"]:
        fail(path, f"total_exclusive_ns {doc['total_exclusive_ns']} != "
             f"scope sum {total_exclusive}")

    lanes = doc.get("lanes")
    n_lanes = 0
    if isinstance(lanes, dict) and lanes.get("windows", 0) > 0:
        per_lane = lanes.get("per_lane")
        if not isinstance(per_lane, list) or not per_lane:
            fail(path, "lanes.windows > 0 but per_lane missing/empty")
        busy = []
        for row in per_lane:
            for key in ("lane", "busy_ns", "idle_ns", "drained"):
                if key not in row:
                    fail(path, f"per_lane row missing {key}: {row}")
            busy.append(row["busy_ns"])
        imbalance = lanes.get("imbalance")
        if not isinstance(imbalance, dict):
            fail(path, "lanes.imbalance missing")
        if imbalance.get("max_busy_ns") != max(busy):
            fail(path, f"imbalance.max_busy_ns {imbalance.get('max_busy_ns')}"
                 f" != max(per_lane busy) {max(busy)}")
        n_lanes = len(per_lane)

    print(f"{path}: OK ({len(scopes)} scopes, {total_exclusive} ns self "
          f"time, {n_lanes} lanes, {lanes.get('windows', 0) if lanes else 0}"
          f" windows)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for p in sys.argv[1:]:
        validate(p)
