// flexmr-service: run a continuous multi-tenant cluster service scenario
// and emit the flexmr.service.v1 result document, plus (with --trace) the
// merged multi-job flexmr.trace.v1 Perfetto document and metrics CSV.
//
//   ./build/tools/flexmr-service                       # built-in demo
//   ./build/tools/flexmr-service examples/service.ini
//   ./build/tools/flexmr-service examples/service.ini --trace --out /tmp/s
//
// Options:
//   --out DIR    output directory (default ".")
//   --trace      also record the merged trace + metrics time series
//   --cadence S  metrics sampling cadence in sim seconds (default 1.0)
//   --log-filter TAGS  Debug logging for the named subsystem tags only
//                (comma-separated, e.g. svc,sched)
//
// The config format is documented in src/service/config.hpp; see
// examples/service.ini for a walkthrough.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/logging.hpp"
#include "obs/session.hpp"
#include "service/config.hpp"
#include "service/service.hpp"
#include "simcore/simulator.hpp"

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw flexmr::ConfigError("cannot write " + path);
  out << content;
}

struct Cli {
  std::string config_path;  // empty = built-in demo
  std::string out_dir = ".";
  bool trace = false;
  double cadence_s = 1.0;
  std::string log_filter;  // subsystem tags, e.g. "svc,sched"; empty = off
};

Cli parse_cli(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw flexmr::ConfigError(arg + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "--out") {
      cli.out_dir = next();
    } else if (arg == "--trace") {
      cli.trace = true;
    } else if (arg == "--cadence") {
      cli.cadence_s = std::stod(next());
    } else if (arg == "--log-filter") {
      cli.log_filter = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: flexmr-service [config.ini] [--out DIR] [--trace] "
          "[--cadence S] [--log-filter TAGS]\n"
          "  --log-filter TAGS  raise logging to Debug for the named\n"
          "                     subsystem tags only (e.g. svc,sched)\n");
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      throw flexmr::ConfigError("unknown option: " + arg);
    } else {
      cli.config_path = arg;
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexmr;
  try {
    const Cli cli = parse_cli(argc, argv);
    if (!cli.log_filter.empty()) {
      Logger::instance().set_filter(cli.log_filter);
      Logger::instance().set_level(LogLevel::Debug);
    }
    const Config config = cli.config_path.empty()
                              ? Config::parse(service::demo_config())
                              : Config::load(cli.config_path);

    auto cluster = service::build_cluster(config);
    auto service_config = service::parse_service_config(config);

    Simulator sim;
    service::ClusterService svc(sim, cluster, std::move(service_config));

    obs::TraceOptions options;
    options.metrics_cadence_s = cli.cadence_s;
    options.per_node_gauges = false;
    obs::TraceSession session(options);
    if (cli.trace) {
      session.set_metadata("config", cli.config_path.empty()
                                         ? "<built-in demo>"
                                         : cli.config_path);
      svc.set_trace(&session);
    }

    std::printf("cluster: %u nodes, %u slots\n", cluster.num_nodes(),
                cluster.total_slots());

    const auto result = svc.run();

    std::printf("%zu jobs | makespan %.0fs | policy %s | fairness %.3f | "
                "%llu preemptions\n",
                result.total_jobs, result.makespan, result.policy.c_str(),
                result.fairness_index,
                static_cast<unsigned long long>(result.preemption_kills));
    for (const auto& tenant : result.tenants) {
      std::printf(
          "  %-12s w=%.1f  done=%zu aborted=%zu  jct p50 %.0fs p99 %.0fs"
          "  queue p50 %.0fs p99 %.0fs  share %.2f\n",
          tenant.name.c_str(), tenant.weight, tenant.jobs_completed,
          tenant.jobs_aborted,
          tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.5),
          tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.99),
          tenant.queue_delay.empty() ? 0.0 : tenant.queue_delay.quantile(0.5),
          tenant.queue_delay.empty() ? 0.0
                                     : tenant.queue_delay.quantile(0.99),
          tenant.slot_share.empty() ? 0.0 : tenant.slot_share.mean());
    }

    const std::string result_path = cli.out_dir + "/service_result.json";
    write_file(result_path, result.json());
    std::printf("wrote %s\n", result_path.c_str());
    if (cli.trace) {
      write_file(cli.out_dir + "/service_trace.json", session.trace_json());
      write_file(cli.out_dir + "/service_metrics.csv",
                 session.metrics_csv());
      std::printf("wrote %s/service_trace.json and %s/service_metrics.csv\n",
                  cli.out_dir.c_str(), cli.out_dir.c_str());
      std::printf("\n%s", session.summary().c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
