// flexmr-profile: read flexmr.profile.v1 self-profiles (DESIGN.md §15).
//
//   flexmr-profile report PROFILE_scale.json [--top N]
//       Top-N scopes by self (exclusive) time, with counts, per-call cost
//       and the lane table, so "where do the host cycles go?" has a
//       one-command answer.
//
//   flexmr-profile diff OLD.json NEW.json [--threshold F] [--min-share F]
//                  [--min-pts P]
//       Perf-regression guard: compares each scope's *share* of total self
//       time (shares are ratios within one run, so they transfer across
//       machines far better than absolute nanoseconds). Exits 1 if any
//       scope at or above --min-share (default 0.02 = 2%) grew its share
//       by more than --threshold (default 0.25 = +25% relative) AND by at
//       least --min-pts percentage points absolute (default 5) — the AND
//       keeps run-to-run jitter from tripping the guard: identical
//       binaries on a shared CI core swing short scopes by ±3 points, a
//       real new O(nodes) term adds tens. Scopes new in NEW above the
//       floor count as regressions from zero.
//
// The repo's JSON layer is write-only by design; the small recursive-
// descent parser here accepts the documents our JsonWriter emits (strict
// RFC 8259 subset, no comments, no trailing commas) and is private to this
// tool — simulation code never parses JSON.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject

  const JsonValue* get(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double num_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  /// Parses the single root value; throws std::runtime_error on malformed
  /// input (including trailing garbage).
  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP codepoint (surrogate pairs are not used
          // by our writer; a lone surrogate round-trips as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Profile model
// ---------------------------------------------------------------------------

struct ScopeRow {
  std::string path;  ///< "mr/heartbeat > rm/offer_all" (parent chain).
  std::string name;
  double count = 0;
  double inclusive_ns = 0;
  double exclusive_ns = 0;
};

struct Profile {
  double wall_ns = 0;
  double total_exclusive_ns = 0;
  std::vector<ScopeRow> scopes;  ///< In document (creation) order.
  const JsonValue* lanes = nullptr;
};

Profile load_profile(const JsonValue& doc) {
  const JsonValue* schema = doc.get("schema");
  if (schema == nullptr || schema->str != "flexmr.profile.v1") {
    throw std::runtime_error("not a flexmr.profile.v1 document");
  }
  Profile p;
  p.wall_ns = doc.get("wall_ns") ? doc.get("wall_ns")->num_or(0) : 0;
  const JsonValue* scopes = doc.get("scopes");
  if (scopes == nullptr || scopes->kind != JsonValue::Kind::kArray) {
    throw std::runtime_error("missing scopes array");
  }
  for (const JsonValue& s : scopes->items) {
    ScopeRow row;
    row.name = s.get("name") ? s.get("name")->str : "?";
    row.count = s.get("count") ? s.get("count")->num_or(0) : 0;
    row.inclusive_ns =
        s.get("inclusive_ns") ? s.get("inclusive_ns")->num_or(0) : 0;
    row.exclusive_ns =
        s.get("exclusive_ns") ? s.get("exclusive_ns")->num_or(0) : 0;
    const double parent = s.get("parent") ? s.get("parent")->num_or(-1) : -1;
    if (parent >= 0 && static_cast<std::size_t>(parent) < p.scopes.size()) {
      row.path = p.scopes[static_cast<std::size_t>(parent)].path + " > " +
                 row.name;
    } else {
      row.path = row.name;
    }
    p.total_exclusive_ns += row.exclusive_ns;
    p.scopes.push_back(std::move(row));
  }
  p.lanes = doc.get("lanes");
  return p;
}

std::string read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string("cannot read ") + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

double seconds(double ns) { return ns / 1e9; }

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

int report(const char* path, std::size_t top_n) {
  const std::string text = read_file(path);
  const JsonValue doc = JsonParser(text).parse();
  const Profile p = load_profile(doc);

  std::vector<const ScopeRow*> by_self;
  by_self.reserve(p.scopes.size());
  for (const ScopeRow& row : p.scopes) by_self.push_back(&row);
  std::stable_sort(by_self.begin(), by_self.end(),
                   [](const ScopeRow* a, const ScopeRow* b) {
                     return a->exclusive_ns > b->exclusive_ns;
                   });

  std::printf("profile: %s\n", path);
  std::printf("wall %.3fs, attributed self time %.3fs (%.1f%% of wall)\n\n",
              seconds(p.wall_ns), seconds(p.total_exclusive_ns),
              p.wall_ns > 0 ? 100.0 * p.total_exclusive_ns / p.wall_ns : 0.0);
  std::printf("%-8s %-10s %-10s %-12s %-10s %s\n", "self%", "self(s)",
              "incl(s)", "count", "ns/call", "scope");
  const std::size_t limit = std::min(top_n, by_self.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const ScopeRow& row = *by_self[i];
    const double share = p.total_exclusive_ns > 0
                             ? 100.0 * row.exclusive_ns / p.total_exclusive_ns
                             : 0.0;
    std::printf("%7.2f%% %-10.3f %-10.3f %-12.0f %-10.0f %s\n", share,
                seconds(row.exclusive_ns), seconds(row.inclusive_ns),
                row.count, row.count > 0 ? row.exclusive_ns / row.count : 0.0,
                row.path.c_str());
  }

  if (p.lanes != nullptr) {
    const JsonValue* per_lane = p.lanes->get("per_lane");
    const double windows =
        p.lanes->get("windows") ? p.lanes->get("windows")->num_or(0) : 0;
    if (windows > 0 && per_lane != nullptr && !per_lane->items.empty()) {
      const JsonValue* imbalance = p.lanes->get("imbalance");
      std::printf("\nlanes: %zu (control last), %.0f windows, drain wall "
                  "%.3fs, merge %.3fs, busy max/mean %.2f\n",
                  per_lane->items.size(), windows,
                  seconds(p.lanes->get("drain_wall_ns")->num_or(0)),
                  seconds(p.lanes->get("merge_ns")->num_or(0)),
                  imbalance != nullptr
                      ? imbalance->get("max_over_mean")->num_or(0)
                      : 0.0);
      std::printf("%-8s %-12s %-12s %s\n", "lane", "busy(s)", "idle(s)",
                  "drained");
      for (const JsonValue& lane : per_lane->items) {
        std::printf("%-8.0f %-12.4f %-12.4f %.0f\n",
                    lane.get("lane")->num_or(-1),
                    seconds(lane.get("busy_ns")->num_or(0)),
                    seconds(lane.get("idle_ns")->num_or(0)),
                    lane.get("drained")->num_or(0));
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

int diff(const char* old_path, const char* new_path, double threshold,
         double min_share, double min_pts) {
  const JsonValue old_doc = JsonParser(read_file(old_path)).parse();
  const JsonValue new_doc = JsonParser(read_file(new_path)).parse();
  const Profile old_p = load_profile(old_doc);
  const Profile new_p = load_profile(new_doc);

  std::map<std::string, double> old_share;
  for (const ScopeRow& row : old_p.scopes) {
    old_share[row.path] = old_p.total_exclusive_ns > 0
                              ? row.exclusive_ns / old_p.total_exclusive_ns
                              : 0.0;
  }

  // Regression = relative growth beyond the threshold AND at least
  // min_pts percentage points absolute. Both guards matter: relative
  // alone trips on 0.1%→0.2% jitter, absolute alone hides a hot scope
  // doubling.
  int regressions = 0;
  std::printf("diff: %s -> %s (threshold +%.0f%% relative and >=%.0f pts, "
              "floor %.0f%% share)\n\n",
              old_path, new_path, threshold * 100.0, min_pts * 100.0,
              min_share * 100.0);
  for (const ScopeRow& row : new_p.scopes) {
    const double share = new_p.total_exclusive_ns > 0
                             ? row.exclusive_ns / new_p.total_exclusive_ns
                             : 0.0;
    if (share < min_share) continue;
    const auto it = old_share.find(row.path);
    const double before = it == old_share.end() ? 0.0 : it->second;
    const bool regressed = share > before * (1.0 + threshold) &&
                           share - before >= min_pts;
    if (regressed) {
      ++regressions;
      if (it == old_share.end()) {
        std::printf("REGRESSION %-44s new scope at %5.1f%% self-time share\n",
                    row.path.c_str(), share * 100.0);
      } else {
        std::printf("REGRESSION %-44s share %5.1f%% -> %5.1f%% (%+.1f pts)\n",
                    row.path.c_str(), before * 100.0, share * 100.0,
                    (share - before) * 100.0);
      }
    } else {
      std::printf("ok         %-44s share %5.1f%% -> %5.1f%%\n",
                  row.path.c_str(), before * 100.0, share * 100.0);
    }
  }
  if (regressions > 0) {
    std::printf("\n%d scope(s) regressed beyond the threshold\n", regressions);
    return 1;
  }
  std::printf("\nno self-time share regressions\n");
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  flexmr-profile report PROFILE.json [--top N]\n"
      "  flexmr-profile diff OLD.json NEW.json [--threshold F] "
      "[--min-share F] [--min-pts P]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return usage();
    const std::string mode = argv[1];
    if (mode == "report") {
      if (argc < 3) return usage();
      std::size_t top_n = 20;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
          top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr,
                                                        10));
        } else {
          return usage();
        }
      }
      return report(argv[2], top_n);
    }
    if (mode == "diff") {
      if (argc < 4) return usage();
      double threshold = 0.25;
      double min_share = 0.02;
      double min_pts = 0.05;  // percentage points, as a share fraction
      for (int i = 4; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
          threshold = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--min-share") == 0 && i + 1 < argc) {
          min_share = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--min-pts") == 0 && i + 1 < argc) {
          min_pts = std::strtod(argv[++i], nullptr) / 100.0;
        } else {
          return usage();
        }
      }
      return diff(argv[2], argv[3], threshold, min_share, min_pts);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "flexmr-profile: %s\n", e.what());
    return 2;
  }
}
