#!/usr/bin/env python3
"""Shape validator for flexmr.trace.v1 documents.

Checks what Perfetto's legacy trace_event JSON importer needs, plus the
invariants the tracer promises by construction:

  * valid JSON with a traceEvents array; schema == flexmr.trace.v1
  * every event has ph/pid/tid, non-metadata events have ts >= 0
  * B/E spans are balanced and strictly nested per (pid, tid), with
    monotonically non-decreasing timestamps along each track
  * X events have dur >= 0; i events carry a scope
  * the metrics block (when present) has columns/rows of matching width

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}")
    sys.exit(1)


def validate(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "flexmr.trace.v1":
        fail(path, f"schema is {doc.get('schema')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing or empty")

    # Per-(pid, tid) open-span stacks and timestamp cursors.
    stacks = {}
    last_ts = {}
    counts = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None or "pid" not in ev or "tid" not in ev:
            fail(path, f"event {i} missing ph/pid/tid: {ev}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(path, f"event {i} bad ts: {ev}")
        track = (ev["pid"], ev["tid"])
        if ts < last_ts.get(track, 0) - 1e-6:
            fail(path, f"event {i} ts moves backwards on track {track}")
        last_ts[track] = ts
        if ph == "B":
            if "name" not in ev:
                fail(path, f"B event {i} has no name")
            stacks.setdefault(track, []).append((ev["name"], ts))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                fail(path, f"E event {i} with no open span on {track}")
            name, begin_ts = stack.pop()
            if ts < begin_ts - 1e-6:
                fail(path, f"span {name!r} on {track} ends before it begins")
        elif ph == "X":
            if ev.get("dur", -1) < 0:
                fail(path, f"X event {i} bad dur: {ev}")
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(path, f"i event {i} bad scope: {ev}")
        elif ph == "C":
            if "name" not in ev or "args" not in ev:
                fail(path, f"C event {i} missing name/args")
        else:
            fail(path, f"event {i} unknown phase {ph!r}")

    dangling = {t: s for t, s in stacks.items() if s}
    if dangling:
        fail(path, f"unclosed spans: {dangling}")

    metrics = doc.get("metrics")
    if metrics and metrics.get("rows"):
        width = len(metrics["columns"])  # columns[0] is ts_s
        for r, row in enumerate(metrics["rows"]):
            if len(row) != width:
                fail(path, f"metrics row {r} width {len(row)} != {width}")

    spans = counts.get("B", 0) + counts.get("X", 0)
    print(f"{path}: OK ({len(events)} events: {spans} spans, "
          f"{counts.get('i', 0)} instants, {counts.get('C', 0)} counter "
          f"samples, {len(metrics.get('rows', [])) if metrics else 0} "
          f"metrics rows)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for p in sys.argv[1:]:
        validate(p)
