// Fault-tolerance sweep: JCT degradation under increasing transient
// attempt-failure rates, plus recovery cost of a mid-phase node crash,
// for all four comparison systems. Not a paper figure — the paper runs on
// healthy clusters — but the fault model (heartbeat-expiry detection,
// Hadoop retry/blacklist defaults) makes the robustness cost measurable:
// every retried attempt is wasted slot time, and elastic tasks lose more
// work per failure than fixed-size ones because a failed container
// forfeits all the BUs it bundled.
#include <cstdio>
#include <mutex>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

struct FaultPointStats {
  OnlineStats jct;
  OnlineStats wasted;
  OnlineStats failed_attempts;
  std::size_t aborted_runs = 0;
};

/// Mean of a cell where every run may have aborted (no samples).
double mean_or_zero(const OnlineStats& stats) {
  return stats.count() > 0 ? stats.mean() : 0.0;
}

/// |kinds| × |rates| × |seeds| runs; a run that aborts (a unit of work
/// exhausted max_attempts) is counted, not averaged.
std::vector<std::vector<FaultPointStats>> fault_sweep(
    const std::function<cluster::Cluster()>& make_cluster,
    const workloads::Benchmark& bench,
    const std::vector<workloads::SchedulerKind>& kinds,
    const std::vector<double>& rates,
    const std::vector<std::uint64_t>& seeds,
    const std::function<void(workloads::RunConfig&, double)>& apply_rate) {
  std::vector<std::vector<FaultPointStats>> stats(
      kinds.size(), std::vector<FaultPointStats>(rates.size()));
  std::mutex mutex;

  struct WorkItem {
    std::size_t kind;
    std::size_t rate;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      for (const auto seed : seeds) items.push_back({k, r, seed});
    }
  }

  static ThreadPool pool;
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    auto cluster = make_cluster();
    workloads::RunConfig config;
    config.params.seed = w.seed;
    apply_rate(config, rates[w.rate]);
    try {
      const auto result = workloads::run_job(
          cluster, bench, workloads::InputScale::kSmall, kinds[w.kind],
          config);
      std::lock_guard lock(mutex);
      auto& cell = stats[w.kind][w.rate];
      cell.jct.add(result.jct());
      cell.wasted.add(result.wasted_slot_time());
      cell.failed_attempts.add(static_cast<double>(
          result.count(mr::TaskKind::kMap, mr::TaskStatus::kFailed) +
          result.count(mr::TaskKind::kReduce, mr::TaskStatus::kFailed)));
    } catch (const mr::JobAbortedError&) {
      std::lock_guard lock(mutex);
      ++stats[w.kind][w.rate].aborted_runs;
    }
  });
  return stats;
}

void run_rate_sweep(BenchArtifact& artifact,
                    const std::vector<workloads::SchedulerKind>& kinds,
                    const std::vector<std::uint64_t>& seeds) {
  const std::vector<double> rates = {0.0, 0.05, 0.15, 0.3};
  print_header(
      "Fault sweep: JCT degradation vs transient attempt-failure rate",
      "every system degrades monotonically; FlexMap pays more per failure "
      "(bigger tasks lose more work) but its rate-proportional sizing "
      "keeps the tail bounded; no system aborts below 30% failure rate");

  auto bench = workloads::benchmark("WC");
  bench.small_input = 4096.0;
  const auto stats = fault_sweep(
      []() { return cluster::presets::physical12(); }, bench, kinds, rates,
      seeds, [](workloads::RunConfig& config, double rate) {
        config.faults.attempt_failure_prob = rate;
      });

  TextTable table({"System", "p=0", "p=0.05", "p=0.15", "p=0.30",
                   "x0.30/x0", "aborts"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    std::size_t aborted = 0;
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const double mean = mean_or_zero(stats[k][r].jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      aborted += stats[k][r].aborted_runs;
      const std::string series =
          "rate/" + label + "/p" + TextTable::num(rates[r], 2);
      if (stats[k][r].jct.count() > 0) {
        artifact.add_metric(series, "jct", stats[k][r].jct);
        artifact.add_metric(series, "wasted_slot_time", stats[k][r].wasted);
        artifact.add_metric(series, "failed_attempts",
                            stats[k][r].failed_attempts);
        artifact.add_metric(series, "jct_vs_faultfree",
                            base > 0 ? mean / base : 0.0);
      }
      artifact.add_metric(series, "aborted_runs",
                          static_cast<double>(stats[k][r].aborted_runs));
    }
    const double worst = mean_or_zero(stats[k].back().jct);
    row.push_back(base > 0 && worst > 0 ? TextTable::num(worst / base, 2)
                                        : "-");
    row.push_back(TextTable::num(static_cast<double>(aborted), 0));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

void run_crash_recovery(BenchArtifact& artifact,
                        const std::vector<workloads::SchedulerKind>& kinds,
                        const std::vector<std::uint64_t>& seeds) {
  print_header(
      "Crash recovery: silent mid-map-phase node loss (30 s detection)",
      "the undetected window adds ~a liveness timeout of wasted work on "
      "top of the re-execution cost; a rejoining node claws some back");

  // Long enough (~2 min healthy) that map work is still pending when the
  // node returns; on the 4 GiB sweep input the re-queued BUs would already
  // be re-dispatched by detection time and the rejoin would change nothing.
  auto bench = workloads::benchmark("WC");
  bench.small_input = 16384.0;
  struct Scenario {
    const char* label;
    std::optional<SimTime> rejoin;
  };
  // Rejoin at 60 s: shortly after the ~55 s heartbeat-expiry detection of
  // the 25 s crash, while re-executed work is still in flight.
  const std::vector<Scenario> scenarios = {{"healthy", std::nullopt},
                                           {"crash", std::nullopt},
                                           {"crash+rejoin", 60.0}};
  const std::vector<double> ids = {0.0, 1.0, 2.0};  // scenario index
  const auto stats = fault_sweep(
      []() { return cluster::presets::physical12(); }, bench, kinds, ids,
      seeds, [&](workloads::RunConfig& config, double id) {
        const auto& scenario = scenarios[static_cast<std::size_t>(id)];
        if (std::string(scenario.label) == "healthy") return;
        config.faults.crashes = {
            faults::NodeCrash{3, 25.0, scenario.rejoin, true}};
      });

  TextTable table({"System", "healthy", "crash", "crash+rejoin",
                   "crash/healthy"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const double mean = mean_or_zero(stats[k][s].jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      const std::string series =
          std::string("crash/") + label + "/" + scenarios[s].label;
      if (stats[k][s].jct.count() > 0) {
        artifact.add_metric(series, "jct", stats[k][s].jct);
        artifact.add_metric(series, "wasted_slot_time", stats[k][s].wasted);
      }
    }
    const double crashed = mean_or_zero(stats[k][1].jct);
    row.push_back(base > 0 && crashed > 0
                      ? TextTable::num(crashed / base, 2)
                      : "-");
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  const std::vector<workloads::SchedulerKind> kinds = {
      workloads::SchedulerKind::kHadoop,
      workloads::SchedulerKind::kHadoopNoSpec,
      workloads::SchedulerKind::kSkewTune,
      workloads::SchedulerKind::kFlexMap,
  };
  bench::BenchArtifact artifact(
      "faults", "JCT under transient failures and node crashes");
  const auto seeds = bench::default_seeds();
  artifact.record_seeds(seeds);
  bench::run_rate_sweep(artifact, kinds, seeds);
  bench::run_crash_recovery(artifact, kinds, seeds);
  artifact.write();
  return 0;
}
