// Reproduces Fig. 8: normalized JCT on the 40-node multi-tenant cluster
// with 5% / 10% / 20% / 40% of workers slowed by co-running tenants, for
// Stock Hadoop (LATE speculation on), Hadoop without speculation,
// SkewTune, and FlexMap, across the PUMA suite at the "large" input scale.
//
// Paper: with few slow nodes, speculation ≈ FlexMap; as the slow fraction
// grows, Hadoop with and without speculation converge (speculation stops
// helping), SkewTune's edge shrinks, and FlexMap's gain expands to ~40%.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

void run_fraction(double fraction, BenchArtifact& artifact) {
  std::printf("Fig. 8: slow-node fraction %.0f%%\n", fraction * 100);
  TextTable table({"Benchmark", "Hadoop+spec", "NoSpec", "SkewTune",
                   "FlexMap", "FlexMap vs Hadoop"});
  const std::vector<SweepPoint> points = {
      {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop+spec"},
      {workloads::SchedulerKind::kHadoopNoSpec, kDefaultBlockMiB, "NoSpec"},
      {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune"},
      {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap"},
  };
  const auto seeds = default_seeds(3);
  artifact.record_seeds(seeds);
  const std::string prefix =
      std::to_string(static_cast<int>(fraction * 100)) + "%";
  auto make_cluster = [fraction]() {
    return cluster::presets::multitenant40(fraction);
  };
  for (const auto& bench : workloads::puma_suite()) {
    const auto results = sweep(make_cluster, bench,
                               workloads::InputScale::kLarge, points, seeds);
    artifact.add_sweep(prefix + "/" + bench.code, results);
    const double base = results[0].jct.mean();  // Hadoop with speculation
    table.add_row(
        {bench.code, TextTable::num(1.0),
         TextTable::num(results[1].jct.mean() / base),
         TextTable::num(results[2].jct.mean() / base),
         TextTable::num(results[3].jct.mean() / base),
         TextTable::num((1.0 - results[3].jct.mean() / base) * 100, 1) +
             "%"});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::print_header(
      "Fig. 8(a-d): 40-node multi-tenant cluster, large inputs",
      "FlexMap's gain over stock Hadoop grows with the slow-node "
      "fraction, up to ~40%; speculation and SkewTune converge to stock");
  bench::BenchArtifact artifact(
      "fig8", "Normalized JCT vs slow-node fraction, 40-node multi-tenant");
  for (const double fraction : {0.05, 0.10, 0.20, 0.40}) {
    bench::run_fraction(fraction, artifact);
  }
  artifact.write();
  return 0;
}
