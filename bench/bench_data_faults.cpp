// Data-plane fault sweep: shuffle fetch-failure rates and HDFS replica
// loss with and without NameNode re-replication, for all four comparison
// systems. Complements bench_faults (control-plane failures): here the
// failures hit the data itself — reducers lose fetches and force map
// re-execution past the report threshold, and a dead node takes a third
// of the replicas of its blocks with it until the NameNode copies them
// back onto the survivors.
#include <cstdio>
#include <mutex>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

struct DataFaultStats {
  OnlineStats jct;
  OnlineStats wasted;
  OnlineStats fetch_failures;
  OnlineStats maps_rerun;
  OnlineStats re_replicated;
  std::size_t aborted_runs = 0;
};

double mean_or_zero(const OnlineStats& stats) {
  return stats.count() > 0 ? stats.mean() : 0.0;
}

double count_events(const mr::JobResult& result,
                    faults::FaultEventType type) {
  double n = 0;
  for (const auto& e : result.fault_events) {
    if (e.type == type) ++n;
  }
  return n;
}

/// |kinds| × |points| × |seeds| runs; aborted runs (data loss) are
/// counted, not averaged.
std::vector<std::vector<DataFaultStats>> data_fault_sweep(
    const workloads::Benchmark& bench,
    const std::vector<workloads::SchedulerKind>& kinds,
    std::size_t num_points, const std::vector<std::uint64_t>& seeds,
    const std::function<void(workloads::RunConfig&, std::size_t)>& apply) {
  std::vector<std::vector<DataFaultStats>> stats(
      kinds.size(), std::vector<DataFaultStats>(num_points));
  std::mutex mutex;

  struct WorkItem {
    std::size_t kind;
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (std::size_t p = 0; p < num_points; ++p) {
      for (const auto seed : seeds) items.push_back({k, p, seed});
    }
  }

  static ThreadPool pool;
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    auto cluster = cluster::presets::physical12();
    workloads::RunConfig config;
    config.params.seed = w.seed;
    apply(config, w.point);
    try {
      const auto result = workloads::run_job(
          cluster, bench, workloads::InputScale::kSmall, kinds[w.kind],
          config);
      std::lock_guard lock(mutex);
      auto& cell = stats[w.kind][w.point];
      cell.jct.add(result.jct());
      cell.wasted.add(result.wasted_slot_time());
      cell.fetch_failures.add(
          count_events(result, faults::FaultEventType::kFetchFailure));
      cell.maps_rerun.add(
          count_events(result, faults::FaultEventType::kMapOutputLost));
      cell.re_replicated.add(
          count_events(result, faults::FaultEventType::kReReplicated));
    } catch (const mr::JobAbortedError&) {
      std::lock_guard lock(mutex);
      ++stats[w.kind][w.point].aborted_runs;
    }
  });
  return stats;
}

void run_fetch_failure_sweep(
    BenchArtifact& artifact,
    const std::vector<workloads::SchedulerKind>& kinds,
    const std::vector<std::uint64_t>& seeds) {
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.1};
  print_header(
      "Fetch-failure sweep: JCT vs per-fetch shuffle failure rate",
      "every failed fetch costs a backoff; past the report threshold the "
      "source map is re-executed, re-opening the map phase — the cost is "
      "similar across systems because the shuffle volume is");

  auto bench = workloads::benchmark("WC");
  bench.small_input = 4096.0;
  bench.shuffle_ratio = 1.0;
  const auto stats = data_fault_sweep(
      bench, kinds, rates.size(), seeds,
      [&](workloads::RunConfig& config, std::size_t point) {
        config.faults.fetch_failure_prob = rates[point];
      });

  TextTable table({"System", "p=0", "p=0.02", "p=0.05", "p=0.10",
                   "x0.10/x0", "reruns@0.10"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const double mean = mean_or_zero(stats[k][r].jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      const std::string series =
          "fetch/" + label + "/p" + TextTable::num(rates[r], 2);
      if (stats[k][r].jct.count() > 0) {
        artifact.add_metric(series, "jct", stats[k][r].jct);
        artifact.add_metric(series, "wasted_slot_time", stats[k][r].wasted);
        artifact.add_metric(series, "fetch_failures",
                            stats[k][r].fetch_failures);
        artifact.add_metric(series, "maps_rerun", stats[k][r].maps_rerun);
        artifact.add_metric(series, "jct_vs_faultfree",
                            base > 0 ? mean / base : 0.0);
      }
      artifact.add_metric(series, "aborted_runs",
                          static_cast<double>(stats[k][r].aborted_runs));
    }
    const double worst = mean_or_zero(stats[k].back().jct);
    row.push_back(base > 0 && worst > 0 ? TextTable::num(worst / base, 2)
                                        : "-");
    row.push_back(TextTable::num(mean_or_zero(stats[k].back().maps_rerun),
                                 1));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

void run_replica_loss(BenchArtifact& artifact,
                      const std::vector<workloads::SchedulerKind>& kinds,
                      const std::vector<std::uint64_t>& seeds) {
  print_header(
      "Replica loss: permanent node crash with vs without re-replication",
      "with re-replication the NameNode restores the replication factor "
      "on the survivors, so later dispatches regain locality; without it "
      "the job still finishes on the remaining replicas but every read of "
      "an affected block is remote");

  // Long enough that plenty of map work is still pending when the crash
  // is detected, so restored locality has dispatches left to help.
  auto bench = workloads::benchmark("WC");
  bench.small_input = 16384.0;
  struct Scenario {
    const char* label;
    bool crash;
    bool re_replicate;
  };
  const std::vector<Scenario> scenarios = {
      {"healthy", false, true},
      {"crash+rerepl", true, true},
      {"crash-norerepl", true, false},
  };
  const auto stats = data_fault_sweep(
      bench, kinds, scenarios.size(), seeds,
      [&](workloads::RunConfig& config, std::size_t point) {
        const auto& scenario = scenarios[point];
        if (!scenario.crash) return;
        config.faults.crashes = {
            faults::NodeCrash{3, 25.0, std::nullopt, true}};
        config.faults.re_replication = scenario.re_replicate;
      });

  TextTable table({"System", "healthy", "crash+rerepl", "crash-norerepl",
                   "rerepl/healthy", "copies"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const double mean = mean_or_zero(stats[k][s].jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      const std::string series =
          std::string("replica/") + label + "/" + scenarios[s].label;
      if (stats[k][s].jct.count() > 0) {
        artifact.add_metric(series, "jct", stats[k][s].jct);
        artifact.add_metric(series, "wasted_slot_time", stats[k][s].wasted);
        artifact.add_metric(series, "re_replicated",
                            stats[k][s].re_replicated);
      }
      artifact.add_metric(series, "aborted_runs",
                          static_cast<double>(stats[k][s].aborted_runs));
    }
    const double rerepl = mean_or_zero(stats[k][1].jct);
    row.push_back(base > 0 && rerepl > 0 ? TextTable::num(rerepl / base, 2)
                                         : "-");
    row.push_back(TextTable::num(mean_or_zero(stats[k][1].re_replicated),
                                 0));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  const std::vector<workloads::SchedulerKind> kinds = {
      workloads::SchedulerKind::kHadoop,
      workloads::SchedulerKind::kHadoopNoSpec,
      workloads::SchedulerKind::kSkewTune,
      workloads::SchedulerKind::kFlexMap,
  };
  bench::BenchArtifact artifact(
      "data_faults",
      "JCT under shuffle fetch failures and HDFS replica loss");
  const auto seeds = bench::default_seeds();
  artifact.record_seeds(seeds);
  bench::run_fetch_failure_sweep(artifact, kinds, seeds);
  bench::run_replica_loss(artifact, kinds, seeds);
  artifact.write();
  return 0;
}
