// Reproduces Fig. 1 (and prints Table I): the distribution of wordcount
// map-task runtimes under stock Hadoop in (a) the 12-node physical cluster
// and (b) the 20-node virtual cluster.
//
// Paper's observations:
//  (a) hardware heterogeneity makes the slowest map run ~2x (or more)
//      longer than the fastest;
//  (b) VM interference is worse: ~20% of tasks experience ~5x slowdowns,
//      producing a heavy-tailed runtime distribution.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

void print_table_i() {
  print_header("Table I: hardware of the 12-node physical cluster",
               "four machine generations; OptiPlex desktops dominate");
  TextTable table({"Machine model", "per-container IPS (MiB/s)", "Slots",
                   "Memory(GB)", "Count"});
  const auto cluster = cluster::presets::physical12();
  std::string last;
  std::uint32_t count = 0;
  auto flush = [&](const cluster::MachineSpec& spec) {
    if (count > 0) {
      table.add_row({last, TextTable::num(spec.base_ips, 1),
                     std::to_string(spec.slots),
                     TextTable::num(spec.memory_gb, 0),
                     std::to_string(count)});
    }
  };
  const cluster::MachineSpec* prev = nullptr;
  for (NodeId node = 0; node < cluster.num_nodes(); ++node) {
    const auto& spec = cluster.machine(node).spec();
    if (spec.model != last) {
      if (prev) flush(*prev);
      last = spec.model;
      count = 0;
    }
    prev = &spec;
    ++count;
  }
  if (prev) flush(*prev);
  std::printf("%s\n", table.str().c_str());
}

void runtime_distribution(const char* title,
                          const std::function<cluster::Cluster()>& make,
                          const char* claim, BenchArtifact& artifact,
                          const std::string& series) {
  print_header(title, claim);
  artifact.record_seeds(default_seeds(3));
  SampleSet runtimes;
  for (const auto seed : default_seeds(3)) {
    auto cluster = make();
    workloads::RunConfig config;
    config.params.seed = seed;
    const auto result =
        workloads::run_job(cluster, workloads::benchmark("WC"),
                           workloads::InputScale::kSmall,
                           workloads::SchedulerKind::kHadoopNoSpec, config);
    const auto set = result.map_runtimes();
    for (const double runtime : set.samples()) runtimes.add(runtime);
  }
  std::printf("map tasks: %zu  min=%.1fs  p50=%.1fs  p90=%.1fs  "
              "p99=%.1fs  max=%.1fs  max/min=%.2fx\n\n",
              runtimes.count(), runtimes.min(), runtimes.median(),
              runtimes.quantile(0.9), runtimes.quantile(0.99),
              runtimes.max(), runtimes.max() / runtimes.min());
  Histogram hist(0.0, runtimes.max() * 1.01, 20);
  for (const double r : runtimes.samples()) hist.add(r);
  std::printf("%s\n", hist.ascii().c_str());
  artifact.add_metric(series, "map_runtime", runtimes);
  artifact.add_metric(series, "map_runtime_p99", runtimes.quantile(0.99));
}

// §II-B: "performance heterogeneity still incurred more than 50% of
// runtime slowdown on the physical cluster compared to that on a
// same-sized homogeneous cluster containing only slow machines."
// The striking part of the claim is the *baseline*: stock Hadoop on a
// cluster where every node is an OptiPlex beats the mixed cluster per
// unit of capacity — heterogeneity wastes the fast machines.
void heterogeneity_tax(BenchArtifact& artifact) {
  print_header(
      "§II-B: heterogeneity tax — mixed cluster vs capacity math",
      "stock Hadoop extracts far less than the mixed cluster's capacity "
      "advantage over an all-slow cluster; FlexMap recovers most of it");
  // All-slow: 11 OptiPlex-class workers. Mixed: the Table I cluster.
  auto all_slow = []() {
    cluster::MachineSpec slow{.model = "OptiPlex 990", .base_ips = 3.0,
                              .slots = 4, .nic_bandwidth = 1192.0,
                              .memory_gb = 8.0};
    return cluster::ClusterBuilder().add(slow, 11).build();
  };
  auto mixed = []() { return cluster::presets::physical12(); };

  auto capacity = [](cluster::Cluster& cluster) {
    double total = 0;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      total += cluster.machine(n).spec().base_ips *
               cluster.machine(n).slots();
    }
    return total;
  };
  auto c_slow = all_slow();
  auto c_mixed = mixed();
  const double capacity_ratio = capacity(c_mixed) / capacity(c_slow);

  TextTable table({"cluster", "scheduler", "JCT (s)",
                   "speedup vs all-slow", "capacity ratio"});
  OnlineStats slow_jct;
  OnlineStats mixed_hadoop;
  OnlineStats mixed_flexmap;
  artifact.record_seeds(default_seeds());
  for (const auto seed : default_seeds()) {
    workloads::RunConfig config;
    config.params.seed = seed;
    auto c1 = all_slow();
    slow_jct.add(workloads::run_job(c1, workloads::benchmark("WC"),
                                    workloads::InputScale::kSmall,
                                    workloads::SchedulerKind::kHadoop,
                                    config)
                     .jct());
    auto c2 = mixed();
    mixed_hadoop.add(workloads::run_job(c2, workloads::benchmark("WC"),
                                        workloads::InputScale::kSmall,
                                        workloads::SchedulerKind::kHadoop,
                                        config)
                         .jct());
    auto c3 = mixed();
    mixed_flexmap.add(
        workloads::run_job(c3, workloads::benchmark("WC"),
                           workloads::InputScale::kSmall,
                           workloads::SchedulerKind::kFlexMap, config)
            .jct());
  }
  table.add_row({"all-slow x11", "Hadoop", TextTable::num(slow_jct.mean(), 1),
                 "1.00x", "1.00x"});
  table.add_row({"Table I mixed", "Hadoop",
                 TextTable::num(mixed_hadoop.mean(), 1),
                 TextTable::num(slow_jct.mean() / mixed_hadoop.mean(), 2) +
                     "x",
                 TextTable::num(capacity_ratio, 2) + "x"});
  table.add_row({"Table I mixed", "FlexMap",
                 TextTable::num(mixed_flexmap.mean(), 1),
                 TextTable::num(slow_jct.mean() / mixed_flexmap.mean(), 2) +
                     "x",
                 TextTable::num(capacity_ratio, 2) + "x"});
  std::printf("%s\n", table.str().c_str());
  artifact.add_metric("tax/all-slow-hadoop", "jct", slow_jct);
  artifact.add_metric("tax/mixed-hadoop", "jct", mixed_hadoop);
  artifact.add_metric("tax/mixed-flexmap", "jct", mixed_flexmap);
  artifact.add_metric("tax/capacity-ratio", "ratio", capacity_ratio);
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "fig1", "Stock-Hadoop map runtime distributions + heterogeneity tax");
  bench::print_table_i();
  bench::runtime_distribution(
      "Fig. 1(a): wordcount map runtimes, 12-node physical cluster",
      []() { return cluster::presets::physical12(); },
      "slowest map runs ~2x+ the fastest; spread driven by machine class",
      artifact, "fig1a/physical");
  bench::runtime_distribution(
      "Fig. 1(b): wordcount map runtimes, 20-node virtual cluster",
      []() { return cluster::presets::virtual20(); },
      "~20% of tasks ~5x slower than the fastest — heavy tail", artifact,
      "fig1b/virtual");
  bench::heterogeneity_tax(artifact);
  artifact.write();
  return 0;
}
