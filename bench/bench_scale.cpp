// BENCH_scale: events/sec + wall-clock scaling baseline for the simulation
// hot paths (the repo's first recorded throughput trajectory).
//
// The paper evaluates on 12-40 node clusters; the roadmap's north star is
// large-cluster sweeps. This bench runs one paired job per (cluster size,
// scheduler) point across {16, 64, 256, 1000} nodes with the map-task count
// scaled to ~100 tasks/node (so the 1000-node point runs ~100k stock map
// tasks), on a heterogeneous fleet where a fifth of the nodes suffer bursty
// interference — which keeps completion re-estimation (schedule/cancel
// churn) part of what is measured, exactly the path the event-queue
// compaction and heartbeat optimizations target.
//
// Flags:
//   --smoke            small grid ({16, 64} nodes, 25 tasks/node) for CI
//   --nodes=a,b,c      override the cluster-size list
//   --tasks-per-node=N override the task density (default 100)
//   --schedulers=a,b   restrict both the grid and the lane series to a
//                      comma-separated subset of the scheduler labels
//                      (Hadoop-128m, Hadoop-64m, SkewTune-64m, FlexMap).
//                      SkewTune's per-offer candidate scan makes its
//                      10000-node point ~10x the others' cost, so large
//                      one-off measurements usually want to exclude it.
//   --profile          activate the self-profiler (DESIGN.md §15): host
//                      wall-clock attribution for dispatch / RM offers /
//                      speculation scans / lane drains, written to
//                      PROFILE_scale.json next to the bench artifact.
//                      Setting FLEXMR_PROFILE=1 does the same.
//   --lanes=a,b,c      after the grid, run a parallel_speedup series on the
//                      largest cluster size: sharded engine at each lane
//                      count × all four schedulers, measured one run at a
//                      time (never on the sweep pool) so the wall clocks
//                      are like-for-like; lanes=1 is the baseline and is
//                      added if missing. Speedups are only meaningful on
//                      multi-core hosts — the artifact records
//                      hardware_concurrency so readers can tell.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "cluster/interference.hpp"

namespace {

using namespace flexmr;

// Heterogeneity mix modeled on the paper's physical testbed: a slow
// desktop-class majority, a fast-server minority, and bursty interference
// on ~20% of the fleet (§II-B's "hotspots may change during the job").
cluster::Cluster make_scale_cluster(std::uint32_t nodes) {
  cluster::MachineSpec fast{.model = "fast server", .base_ips = 14.0,
                            .slots = 4, .nic_bandwidth = 1192.0,
                            .memory_gb = 128.0};
  cluster::MachineSpec mid{.model = "mid server", .base_ips = 11.0,
                           .slots = 4, .nic_bandwidth = 1192.0,
                           .memory_gb = 24.0};
  cluster::MachineSpec slow{.model = "slow desktop", .base_ips = 4.0,
                            .slots = 4, .nic_bandwidth = 1192.0,
                            .memory_gb = 8.0};

  cluster::OnOffInterference::Params bursty;
  bursty.mean_idle_s = 120.0;
  bursty.mean_busy_s = 90.0;
  bursty.busy_lo = 0.35;
  bursty.busy_hi = 0.8;

  const std::uint32_t n_fast = std::max(1u, nodes / 8);        // ~12%
  const std::uint32_t n_bursty = std::max(1u, nodes / 5);      // ~20%
  const std::uint32_t n_slow = std::max(1u, (nodes * 3) / 10); // ~30%
  const std::uint32_t n_mid = nodes - n_fast - n_bursty - n_slow;

  return cluster::ClusterBuilder()
      .add(fast, n_fast)
      .add(mid, n_mid)
      .add(slow, n_slow)
      .add(mid, n_bursty, cluster::on_off_interference(bursty))
      .build();
}

// A synthetic wordcount-like job sized so Hadoop-64m launches
// `tasks_per_node * nodes` map tasks.
workloads::Benchmark make_scale_benchmark(std::uint32_t nodes,
                                          std::uint32_t tasks_per_node) {
  workloads::Benchmark bench;
  bench.code = "SCALE";
  bench.name = "synthetic scaling workload";
  bench.input_data = "synthetic";
  bench.small_input =
      static_cast<MiB>(nodes) * tasks_per_node * kDefaultBlockMiB;
  bench.large_input = bench.small_input;
  bench.map_cost = 1.0;
  bench.shuffle_ratio = 0.1;
  bench.reduce_cost = 0.5;
  bench.record_skew = 0.4;
  return bench;
}

std::vector<std::uint32_t> parse_list(const char* arg) {
  std::vector<std::uint32_t> out;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::uint32_t>(std::strtoul(tok.c_str(),
                                                          nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> sizes = {16, 64, 256, 1000, 10000};
  std::uint32_t tasks_per_node = 100;
  std::vector<std::uint32_t> lane_counts;
  std::string scheduler_filter;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sizes = {16, 64};
      tasks_per_node = 25;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      sizes = parse_list(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--tasks-per-node=", 17) == 0) {
      tasks_per_node = static_cast<std::uint32_t>(
          std::strtoul(argv[i] + 17, nullptr, 10));
    } else if (std::strncmp(argv[i], "--lanes=", 8) == 0) {
      lane_counts = parse_list(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--schedulers=", 13) == 0) {
      scheduler_filter = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      bench::enable_profiling();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<bench::SweepPoint> points;
  for (const auto& point : bench::paper_comparison_points()) {
    if (scheduler_filter.empty() ||
        scheduler_filter.find(point.label) != std::string::npos) {
      points.push_back(point);
    }
  }
  if (points.empty()) {
    std::fprintf(stderr, "--schedulers=%s matched no scheduler label\n",
                 scheduler_filter.c_str());
    return 2;
  }

  bench::print_header(
      "BENCH scale — event-queue & heartbeat scaling baseline",
      "simulator throughput (events/sec) should stay flat as the cluster "
      "and task count grow; wall-clock should scale ~linearly with events");

  bench::BenchArtifact artifact("scale",
                                "Hot-path scaling baseline: events/sec and "
                                "wall-clock across cluster sizes");
  const std::uint64_t seed = 42;
  artifact.record_seeds({seed});

  TextTable table({"nodes", "scheduler", "map tasks", "jct (s)",
                   "wall (s)", "events", "events/s", "queue peak"});

  for (const std::uint32_t nodes : sizes) {
    const auto bench_def = make_scale_benchmark(nodes, tasks_per_node);
    for (const auto& point : points) {
      auto cluster = make_scale_cluster(nodes);
      workloads::RunConfig config;
      config.block_size = point.block_size;
      config.params.seed = seed;
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          workloads::run_job(cluster, bench_def, workloads::InputScale::kSmall,
                             point.kind, config);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      std::size_t map_tasks = 0;
      for (const auto& rec : result.tasks) {
        if (rec.kind == mr::TaskKind::kMap) ++map_tasks;
      }
      const double events = static_cast<double>(result.sim_events_fired);
      const double eps = wall > 0 ? events / wall : 0.0;

      table.add_row({std::to_string(nodes), point.label,
                     std::to_string(map_tasks), TextTable::num(result.jct()),
                     TextTable::num(wall), TextTable::num(events, 0),
                     TextTable::num(eps, 0),
                     std::to_string(result.sim_queue_peak)});

      const std::string series =
          "nodes" + std::to_string(nodes) + "/" + point.label;
      artifact.add_metric(series, "jct", result.jct());
      artifact.add_metric(series, "wall_clock_s", wall);
      artifact.add_metric(series, "events_fired", events);
      artifact.add_metric(series, "events_per_sec", eps);
      artifact.add_metric(series, "events_cancelled",
                          static_cast<double>(result.sim_events_cancelled));
      artifact.add_metric(series, "queue_peak",
                          static_cast<double>(result.sim_queue_peak));
      artifact.add_metric(series, "map_tasks",
                          static_cast<double>(map_tasks));
      std::printf("  done: %u nodes, %-12s  wall %.2fs  %.0f events/s\n",
                  nodes, point.label.c_str(), wall, eps);
      std::fflush(stdout);
    }
  }

  if (!lane_counts.empty()) {
    // lanes=1 anchors the speedup ratio; everything is the sharded engine
    // so the comparison isolates lane-count scaling, not engine choice.
    if (std::find(lane_counts.begin(), lane_counts.end(), 1u) ==
        lane_counts.end()) {
      lane_counts.insert(lane_counts.begin(), 1u);
    }
    std::sort(lane_counts.begin(), lane_counts.end());
    const std::uint32_t nodes =
        *std::max_element(sizes.begin(), sizes.end());
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\nparallel_speedup series: %u nodes, sharded engine, "
                "hardware_concurrency=%u%s\n",
                nodes, hw,
                hw <= 1 ? " (single core: lane workers run inline, "
                          "speedup ~1.0 expected)"
                        : "");
    const auto bench_def = make_scale_benchmark(nodes, tasks_per_node);
    TextTable lane_table({"scheduler", "lanes", "wall (s)", "speedup",
                          "events/s", "jct (s)"});
    for (const auto& point : points) {
      double baseline_wall = 0.0;
      for (const std::uint32_t lanes : lane_counts) {
        auto cluster = make_scale_cluster(nodes);
        workloads::RunConfig config;
        config.block_size = point.block_size;
        config.params.seed = seed;
        config.lanes = lanes;
        const auto start = std::chrono::steady_clock::now();
        const auto result = workloads::run_job(
            cluster, bench_def, workloads::InputScale::kSmall, point.kind,
            config);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - start)
                                .count();
        if (lanes == 1) baseline_wall = wall;
        const double speedup = wall > 0 ? baseline_wall / wall : 0.0;
        const double events = static_cast<double>(result.sim_events_fired);
        const double eps = wall > 0 ? events / wall : 0.0;
        lane_table.add_row({point.label, std::to_string(lanes),
                            TextTable::num(wall), TextTable::num(speedup),
                            TextTable::num(eps, 0),
                            TextTable::num(result.jct())});
        const std::string series = "parallel_speedup/" + point.label +
                                   "/lanes" + std::to_string(lanes);
        artifact.add_metric(series, "wall_clock_s", wall);
        artifact.add_metric(series, "speedup", speedup);
        artifact.add_metric(series, "events_per_sec", eps);
        artifact.add_metric(series, "jct", result.jct());
        std::printf("  done: %-12s lanes=%u  wall %.2fs  speedup %.2fx\n",
                    point.label.c_str(), lanes, wall, speedup);
        std::fflush(stdout);
      }
    }
    std::printf("\n%s\n", lane_table.str().c_str());
  }

  // The speedup series only means something relative to the host's core
  // count (a single-core container runs lane workers inline by design).
  {
    JsonWriter host;
    host.begin_object();
    host.field("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    host.end_object();
    artifact.attach("host", host.str());
  }

  std::printf("\n%s\n", table.str().c_str());
  artifact.write();
  return 0;
}
