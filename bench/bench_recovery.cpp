// AM-crash recovery sweep: cost of losing the AppMaster, for all four
// comparison systems. Not a paper figure — the paper's AM never dies —
// but the journaled replay-don't-redo recovery makes the robustness cost
// measurable in three axes:
//   1. crash point: how much JCT one AM loss adds at 25/50/75% of the
//      crash-free job, and what fraction of the work is redone vs
//      replayed from the journal;
//   2. crash rate: JCT inflation under exponential AM lifetimes (MTTF);
//   3. snapshot cadence: journal compaction must not change the result —
//      only the replay length at restart shrinks.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "recover/runner.hpp"

namespace flexmr::bench {
namespace {

const std::vector<workloads::SchedulerKind>& systems() {
  static const std::vector<workloads::SchedulerKind> kinds = {
      workloads::SchedulerKind::kHadoop,
      workloads::SchedulerKind::kHadoopNoSpec,
      workloads::SchedulerKind::kSkewTune,
      workloads::SchedulerKind::kFlexMap,
  };
  return kinds;
}

workloads::Benchmark recovery_bench() {
  auto bench = workloads::benchmark("WC");
  bench.small_input = 4096.0;
  return bench;
}

std::uint64_t credited_units(const mr::JobResult& result) {
  std::uint64_t units = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      units += task.num_bus;
    }
  }
  return units;
}

mr::JobResult run_one(workloads::SchedulerKind kind, std::uint64_t seed,
                      const faults::FaultPlan& plan) {
  auto cluster = cluster::presets::physical12();
  workloads::RunConfig config;
  config.params.seed = seed;
  config.faults = plan;
  return workloads::run_job(cluster, recovery_bench(),
                            workloads::InputScale::kSmall, kind, config);
}

/// One AM crash at 25/50/75% of each run's own crash-free JCT: the later
/// the crash, the more the journal replays and the less is redone.
void run_crash_point_sweep(BenchArtifact& artifact,
                           const std::vector<std::uint64_t>& seeds) {
  print_header(
      "AM crash point: one AM loss at a fraction of the crash-free JCT",
      "JCT inflation stays well under 2x at every crash point: committed "
      "work replays from the journal instead of re-running, so only the "
      "in-flight containers plus the restart delay are lost");

  const std::vector<double> fractions = {0.25, 0.5, 0.75};
  TextTable table({"System", "healthy", "f=0.25", "f=0.50", "f=0.75",
                   "redone@0.50", "replayed@0.50"});
  for (const auto kind : systems()) {
    const std::string label = workloads::scheduler_label(kind);
    OnlineStats healthy;
    std::vector<OnlineStats> jct(fractions.size());
    std::vector<OnlineStats> inflation(fractions.size());
    std::vector<OnlineStats> redone(fractions.size());
    std::vector<OnlineStats> replayed(fractions.size());
    for (const auto seed : seeds) {
      const auto base = run_one(kind, seed, faults::FaultPlan{});
      healthy.add(base.jct());
      const double total =
          static_cast<double>(credited_units(base));
      for (std::size_t f = 0; f < fractions.size(); ++f) {
        faults::FaultPlan plan;
        plan.am_crashes = {fractions[f] * base.jct()};
        const auto result = run_one(kind, seed, plan);
        jct[f].add(result.jct());
        inflation[f].add(result.jct() / base.jct());
        redone[f].add(static_cast<double>(result.redone_work_units) / total);
        const double rep =
            result.am_attempts.empty()
                ? 0.0
                : static_cast<double>(result.am_attempts[0].replayed_units);
        replayed[f].add(rep / total);
      }
    }
    std::vector<std::string> row = {label, TextTable::num(healthy.mean(), 1)};
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      row.push_back(TextTable::num(jct[f].mean(), 1));
      const std::string series =
          "crash_point/" + label + "/f" + TextTable::num(fractions[f], 2);
      artifact.add_metric(series, "jct", jct[f]);
      artifact.add_metric(series, "jct_vs_crashfree", inflation[f]);
      artifact.add_metric(series, "redone_fraction", redone[f]);
      artifact.add_metric(series, "replayed_fraction", replayed[f]);
    }
    artifact.add_metric("crash_point/" + label + "/healthy", "jct", healthy);
    row.push_back(TextTable::num(redone[1].mean(), 3));
    row.push_back(TextTable::num(replayed[1].mean(), 3));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

/// Exponential AM lifetimes: the shorter the MTTF relative to the job,
/// the more restarts pile up; journal replay keeps the inflation roughly
/// linear in the restart count instead of geometric.
void run_mttf_sweep(BenchArtifact& artifact,
                    const std::vector<std::uint64_t>& seeds) {
  print_header(
      "AM crash rate: JCT inflation vs AM MTTF (exponential lifetimes)",
      "inflation grows as MTTF shrinks toward the job length but the job "
      "always completes within the attempt budget; redone work per crash "
      "stays bounded by the in-flight container set");

  const std::vector<double> mttfs = {0.0, 600.0, 240.0, 120.0};
  TextTable table({"System", "no crash", "mttf=600", "mttf=240", "mttf=120",
                   "x120/x0", "restarts@120"});
  for (const auto kind : systems()) {
    const std::string label = workloads::scheduler_label(kind);
    std::vector<OnlineStats> jct(mttfs.size());
    std::vector<OnlineStats> restarts(mttfs.size());
    std::vector<OnlineStats> redone(mttfs.size());
    for (const auto seed : seeds) {
      for (std::size_t m = 0; m < mttfs.size(); ++m) {
        faults::FaultPlan plan;
        plan.am_crash_mttf_s = mttfs[m];
        plan.am_max_attempts = 100;
        const auto result = run_one(kind, seed, plan);
        jct[m].add(result.jct());
        restarts[m].add(static_cast<double>(result.am_restarts));
        redone[m].add(static_cast<double>(result.redone_work_units) /
                      static_cast<double>(credited_units(result)));
      }
    }
    std::vector<std::string> row = {label};
    for (std::size_t m = 0; m < mttfs.size(); ++m) {
      row.push_back(TextTable::num(jct[m].mean(), 1));
      const std::string series =
          "mttf/" + label + "/" +
          (mttfs[m] > 0 ? TextTable::num(mttfs[m], 0) : "off");
      artifact.add_metric(series, "jct", jct[m]);
      artifact.add_metric(series, "jct_vs_crashfree",
                          jct[0].mean() > 0 ? jct[m].mean() / jct[0].mean()
                                            : 0.0);
      artifact.add_metric(series, "am_restarts", restarts[m]);
      artifact.add_metric(series, "redone_fraction", redone[m]);
    }
    row.push_back(TextTable::num(jct.back().mean() / jct[0].mean(), 2));
    row.push_back(TextTable::num(restarts.back().mean(), 1));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

/// Snapshot cadence: runs the same mid-job AM crash under different
/// journal snapshot intervals through the RecoveryRunner directly, so the
/// journal itself is inspectable. The job's JCT is byte-stable across
/// intervals; only the log tail the restart replays shrinks.
void run_snapshot_sweep(BenchArtifact& artifact, std::uint64_t seed) {
  print_header(
      "Journal snapshot cadence: compaction is behavior-neutral",
      "identical JCT at every interval; shorter intervals take more "
      "snapshots and leave fewer log records to replay at restart");

  const std::vector<double> intervals = {0.0, 15.0, 60.0, 240.0};
  const auto bench = recovery_bench();
  TextTable table({"interval_s", "jct", "snapshots", "log_records",
                   "restarts"});
  for (const double interval : intervals) {
    auto cluster = cluster::presets::physical12();
    Simulator sim;
    const auto layout = workloads::make_layout(
        bench, workloads::InputScale::kSmall, cluster.num_nodes(),
        kDefaultBlockMiB, 3, seed);
    const auto spec = workloads::to_job_spec(bench,
                                             workloads::InputScale::kSmall);
    const auto scheduler =
        workloads::make_scheduler(workloads::SchedulerKind::kFlexMap, seed);
    faults::FaultPlan plan;
    plan.am_crashes = {30.0};
    plan.am_snapshot_interval_s = interval;
    mr::SimParams params;
    params.seed = seed;
    recover::RecoveryRunner runner(sim, cluster, layout, spec, params,
                                   *scheduler, plan);
    const auto result = runner.run();
    const std::string label =
        interval > 0 ? TextTable::num(interval, 0) : "off";
    table.add_row({label, TextTable::num(result.jct(), 2),
                   TextTable::num(
                       static_cast<double>(runner.journal().snapshots_taken()),
                       0),
                   TextTable::num(
                       static_cast<double>(runner.journal().log_records()), 0),
                   TextTable::num(static_cast<double>(result.am_restarts),
                                  0)});
    const std::string series = "snapshot/" + label;
    artifact.add_metric(series, "jct", result.jct());
    artifact.add_metric(
        series, "snapshots",
        static_cast<double>(runner.journal().snapshots_taken()));
    artifact.add_metric(series, "log_records",
                        static_cast<double>(runner.journal().log_records()));
    // One full journal document rides along for shape-checking (the
    // 15 s-interval run actually exercises the snapshot fold).
    if (interval == 15.0) {
      artifact.attach("journal", runner.journal().to_json());
    }
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "recovery", "AM crash recovery: replay-don't-redo cost model");
  const auto seeds = bench::default_seeds();
  artifact.record_seeds(seeds);
  bench::run_crash_point_sweep(artifact, seeds);
  bench::run_mttf_sweep(artifact, seeds);
  bench::run_snapshot_sweep(artifact, seeds.front());
  artifact.write();
  return 0;
}
