// Reproduces Fig. 3: the implications of (fixed) map task size.
//   (a) PDF of normalized map runtime at 8 MB vs 64 MB splits on the
//       20-node virtual cluster — small tasks are tighter, large splits
//       heavy-tailed;
//   (b,c) JCT and task productivity vs task size on a 6-node homogeneous
//       cluster — small tasks pay crushing startup overhead (productivity
//       ~0.28 at 8 MB), JCT improves monotonically with size;
//   (d) JCT and efficiency vs task size on a 6-node heterogeneous cluster
//       — the JCT curve turns U-shaped: an interior task size is optimal.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

const std::vector<MiB> kSizes = {8, 16, 32, 64, 128, 256};

void part_a(BenchArtifact& artifact) {
  print_header("Fig. 3(a): PDF of normalized map runtime, virtual cluster",
               "8 MB tasks cluster tightly (~0.3-0.5 of max); 64 MB tasks "
               "spread with a heavy tail");
  artifact.record_seeds(default_seeds(3));
  for (const MiB block : {8.0, 64.0}) {
    SampleSet runtimes;
    for (const auto seed : default_seeds(3)) {
      auto cluster = cluster::presets::virtual20();
      workloads::RunConfig config;
      config.block_size = block;
      config.params.seed = seed;
      const auto result =
          workloads::run_job(cluster, workloads::benchmark("WC"),
                             workloads::InputScale::kSmall,
                             workloads::SchedulerKind::kHadoopNoSpec,
                             config);
      auto set = result.map_runtimes();
      for (const double r : set.samples()) runtimes.add(r);
    }
    runtimes.normalize_by_max();
    Histogram hist(0.0, 1.0, 10);
    for (const double r : runtimes.samples()) hist.add(r);
    std::printf("block=%.0f MB  (n=%zu, cv=%.2f)\n%s\n", block,
                runtimes.count(), runtimes.cv(), hist.ascii(40).c_str());
    const std::string series =
        "pdf/" + std::to_string(static_cast<int>(block)) + "MB";
    artifact.add_metric(series, "normalized_map_runtime", runtimes);
    artifact.add_metric(series, "cv", runtimes.cv());
  }
}

void size_sweep(const char* title, const char* claim,
                const std::function<cluster::Cluster()>& make,
                BenchArtifact& artifact, const std::string& prefix) {
  print_header(title, claim);
  artifact.record_seeds(default_seeds(5));
  TextTable table({"Task size (MB)", "JCT (s)", "Map phase (s)",
                   "Productivity", "Efficiency"});
  for (const MiB block : kSizes) {
    OnlineStats jct;
    OnlineStats phase;
    OnlineStats productivity;
    OnlineStats efficiency;
    for (const auto seed : default_seeds(5)) {
      auto cluster = make();
      workloads::RunConfig config;
      config.block_size = block;
      config.params.seed = seed;
      const auto result =
          workloads::run_job(cluster, workloads::benchmark("WC"),
                             workloads::InputScale::kSmall,
                             workloads::SchedulerKind::kHadoopNoSpec,
                             config);
      jct.add(result.jct());
      phase.add(result.map_phase_runtime());
      productivity.add(result.mean_map_productivity());
      efficiency.add(result.efficiency());
    }
    table.add_row({TextTable::num(block, 0), TextTable::num(jct.mean(), 1),
                   TextTable::num(phase.mean(), 1),
                   TextTable::num(productivity.mean(), 3),
                   TextTable::num(efficiency.mean(), 3)});
    const std::string series =
        prefix + "/" + std::to_string(static_cast<int>(block)) + "MB";
    artifact.add_metric(series, "jct", jct);
    artifact.add_metric(series, "map_phase_runtime", phase);
    artifact.add_metric(series, "productivity", productivity);
    artifact.add_metric(series, "efficiency", efficiency);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "fig3", "Implications of fixed map task size: runtime PDF + sweeps");
  bench::part_a(artifact);
  bench::size_sweep(
      "Fig. 3(b,c): JCT & productivity vs task size, 6-node homogeneous",
      "productivity ~0.28 at 8 MB rising toward 1; JCT monotonically "
      "improves with size (no heterogeneity to punish big tasks)",
      []() { return cluster::presets::homogeneous6(); }, artifact, "homog");
  bench::size_sweep(
      "Fig. 3(d): JCT & efficiency vs task size, 6-node heterogeneous",
      "U-shaped JCT: overhead dominates small sizes, load imbalance "
      "dominates large sizes; efficiency falls as size grows",
      []() { return cluster::presets::heterogeneous6(); }, artifact,
      "heterog");
  artifact.write();
  return 0;
}
