// Reproduces Fig. 6: job efficiency (Eq. 2 — the load-balance measure) of
// Hadoop-128m / Hadoop-64m / SkewTune-64m / FlexMap across the PUMA suite
// on (a) the physical and (b) the virtual cluster.
//
// Paper: FlexMap improves efficiency by 15-48% on map-heavy benchmarks,
// less on reduce-heavy II/TS; on the virtual cluster 128 MB splits can be
// *more* efficient than 64 MB (fewer tasks touch fewer interfered nodes).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

void run_cluster(const char* title,
                 const std::function<cluster::Cluster()>& make_cluster,
                 BenchArtifact& artifact, const std::string& prefix) {
  print_header(title,
               "FlexMap has the highest map-phase efficiency on map-heavy "
               "benchmarks; stock Hadoop drops well below 1 under "
               "heterogeneity");
  TextTable table({"Benchmark", "Hadoop-128m", "Hadoop-64m", "SkewTune-64m",
                   "FlexMap"});
  const auto points = paper_comparison_points();
  const auto seeds = default_seeds();
  artifact.record_seeds(seeds);
  for (const auto& bench : workloads::puma_suite()) {
    const auto results = sweep(make_cluster, bench,
                               workloads::InputScale::kSmall, points, seeds);
    artifact.add_sweep(prefix + "/" + bench.code, results);
    table.add_row({bench.code,
                   TextTable::num(results[0].efficiency.mean()),
                   TextTable::num(results[1].efficiency.mean()),
                   TextTable::num(results[2].efficiency.mean()),
                   TextTable::num(results[3].efficiency.mean())});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "fig6", "Job efficiency (Eq. 2), PUMA suite, both clusters");
  bench::run_cluster("Fig. 6(a): job efficiency, 12-node physical cluster",
                     []() { return cluster::presets::physical12(); },
                     artifact, "physical");
  bench::run_cluster("Fig. 6(b): job efficiency, 20-node virtual cluster",
                     []() { return cluster::presets::virtual20(); },
                     artifact, "virtual");
  artifact.write();
  return 0;
}
