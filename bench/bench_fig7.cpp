// Reproduces Fig. 7: how FlexMap's task sizes and productivities evolve
// over the map phase of histogram-ratings, for the fastest and slowest
// node, on (a,b) the physical and (c,d) the virtual cluster.
//
// Paper: both nodes start at 1 BU; the fast node grows quickly (to 32 BUs
// = 256 MB physical, 64 BUs virtual) and reaches high productivity within
// a few waves; the slow node stays small (8 BUs physical, 2 BUs virtual)
// and never reaches high productivity before the phase ends.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "flexmap/export.hpp"
#include "flexmap/flexmap_scheduler.hpp"

namespace flexmr::bench {
namespace {

void trace_cluster(const char* title, cluster::Cluster cluster,
                   const char* claim, BenchArtifact& artifact,
                   const std::string& series) {
  print_header(title, claim);

  flexmap::FlexMapOptions options;
  options.seed = 99;
  flexmap::FlexMapScheduler scheduler(options);
  workloads::RunConfig config;
  config.params.seed = 99;
  const auto result = workloads::run_job(
      cluster, workloads::benchmark("HR"), workloads::InputScale::kSmall,
      scheduler, config);

  // Identify the fastest and slowest node with a ground-truth probe (the
  // paper used "a simple performance probe").
  NodeId fast = 0;
  NodeId slow = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    if (cluster.machine(n).effective_ips() >
        cluster.machine(fast).effective_ips()) {
      fast = n;
    }
    if (cluster.machine(n).effective_ips() <
        cluster.machine(slow).effective_ips()) {
      slow = n;
    }
  }

  TextTable table({"Map progress", "node", "class", "task size (BUs)",
                   "task size (MB)", "productivity"});
  // Peak sizes correspond to the paper's "final task size": our runs also
  // shrink tasks in the end-game (an engineering addition, see DESIGN.md),
  // so the last launched task is deliberately small.
  std::uint32_t fast_peak = 0;
  std::uint32_t slow_peak = 0;
  for (const auto& point : scheduler.sizing_trace()) {
    const bool is_fast = point.node == fast;
    const bool is_slow = point.node == slow;
    if (!is_fast && !is_slow) continue;
    if (is_fast) fast_peak = std::max(fast_peak, point.size_bus);
    if (is_slow) slow_peak = std::max(slow_peak, point.size_bus);
    table.add_row({TextTable::num(point.phase_progress * 100, 0) + "%",
                   std::to_string(point.node), is_fast ? "fast" : "slow",
                   std::to_string(point.size_bus),
                   TextTable::num(point.size_mib, 0),
                   TextTable::num(point.productivity, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("peak sizes: fast node %u BUs (%u MB), slow node %u BUs "
              "(%u MB); JCT %.1fs, efficiency %.2f\n\n",
              fast_peak, fast_peak * 8, slow_peak, slow_peak * 8,
              result.jct(), result.efficiency());

  artifact.record_seeds({config.params.seed});
  artifact.add_metric(series, "jct", result.jct());
  artifact.add_metric(series, "efficiency", result.efficiency());
  artifact.add_metric(series, "fast_peak_bus",
                      static_cast<double>(fast_peak));
  artifact.add_metric(series, "slow_peak_bus",
                      static_cast<double>(slow_peak));
  // The full sizing/speed trace (schema flexmr.flexmap_trace.v1) rides
  // along under "extra" so plots can be regenerated without re-running.
  artifact.attach(series, flexmap::flexmap_trace_json(scheduler));
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "fig7", "FlexMap task size & productivity evolution over map phase");
  bench::trace_cluster(
      "Fig. 7(a,b): task size & productivity vs map progress, physical",
      cluster::presets::physical12(),
      "fast node grows to tens of BUs at high productivity; slow node "
      "stays below ~8 BUs and low productivity", artifact, "physical");
  bench::trace_cluster(
      "Fig. 7(c,d): task size & productivity vs map progress, virtual",
      cluster::presets::virtual20(),
      "discrepancy is larger: slow node ends at ~2 BUs, fast node far "
      "above it", artifact, "virtual");
  artifact.write();
  return 0;
}
