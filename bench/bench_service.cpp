// Multi-tenant service bench: the same open arrival stream (three tenants,
// Poisson arrivals, mixed PUMA benchmarks) replayed under each cluster
// share policy — FIFO, fair, weighted-fair, weighted-fair + preemption —
// on the paper's multi-tenant 40-node testbed. Not a paper figure; the
// paper runs one job at a time, but §IV-F's multi-tenant cluster is where
// per-tenant SLOs start to matter: FIFO lets one heavy tenant queue
// everyone else out, fair sharing flattens the p99 queueing delay, and
// preemption bounds how long an over-share tenant can sit on containers
// FlexMap's elastic tasks can cheaply give back.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "service/service.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::bench {
namespace {

struct PolicyVariant {
  std::string label;
  mr::SharePolicy policy;
  bool preemption;
};

service::ServiceConfig scenario(const PolicyVariant& variant,
                                std::uint64_t seed) {
  service::ServiceConfig config;
  config.tenants = {
      {"analytics", 2.0, 60.0, {"WC", "II"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"reporting", 1.0, 40.0, {"GR", "HR"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"batch", 1.0, 20.0, {"TS"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kHadoop},
  };
  config.total_jobs = 30;
  config.max_concurrent_jobs = 4;
  config.policy = variant.policy;
  config.preemption.enabled = variant.preemption;
  config.params.seed = seed;
  return config;
}

struct RunStats {
  double makespan = 0;
  double fairness = 0;
  double preemptions = 0;
  /// Per tenant: p50/p99 JCT, p50/p99 queueing delay, mean slot share.
  std::vector<std::array<double, 5>> tenant;
};

RunStats run_one(const PolicyVariant& variant, std::uint64_t seed) {
  auto cluster = cluster::presets::multitenant40(0.0);
  Simulator sim;
  service::ClusterService svc(sim, cluster, scenario(variant, seed));
  const service::ServiceResult result = svc.run();

  RunStats stats;
  stats.makespan = result.makespan;
  stats.fairness = result.fairness_index;
  stats.preemptions = static_cast<double>(result.preemption_kills);
  for (const service::TenantStats& tenant : result.tenants) {
    stats.tenant.push_back(
        {tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.5),
         tenant.jct.empty() ? 0.0 : tenant.jct.quantile(0.99),
         tenant.queue_delay.empty() ? 0.0 : tenant.queue_delay.quantile(0.5),
         tenant.queue_delay.empty() ? 0.0
                                    : tenant.queue_delay.quantile(0.99),
         tenant.slot_share.empty() ? 0.0 : tenant.slot_share.mean()});
  }
  return stats;
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  using namespace flexmr::bench;

  print_header("service",
               "fair sharing flattens per-tenant p99 queueing delay vs "
               "FIFO; preemption enforces weighted shares");

  const std::vector<PolicyVariant> variants = {
      {"fifo", mr::SharePolicy::kFifo, false},
      {"fair", mr::SharePolicy::kFair, false},
      {"weighted-fair", mr::SharePolicy::kWeightedFair, false},
      {"weighted-fair+preempt", mr::SharePolicy::kWeightedFair, true},
  };
  const auto seeds = default_seeds(5);
  const std::vector<std::string> tenant_names = {"analytics", "reporting",
                                                 "batch"};

  struct WorkItem {
    std::size_t variant;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (const auto seed : seeds) items.push_back({v, seed});
  }

  // Buffer per-item results and fold in index order afterwards, so the
  // emitted stats are identical however the pool interleaves (the same
  // discipline as sweep() in bench_common.hpp).
  std::vector<RunStats> measured(items.size());
  static ThreadPool pool;
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    const auto i = static_cast<std::size_t>(&w - items.data());
    measured[i] = run_one(variants[w.variant], w.seed);
  });

  BenchArtifact artifact("service",
                         "Multi-tenant service: share policy comparison");
  artifact.record_seeds(seeds);

  for (std::size_t v = 0; v < variants.size(); ++v) {
    OnlineStats makespan, fairness, preemptions;
    std::vector<std::array<OnlineStats, 5>> tenant(tenant_names.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].variant != v) continue;
      const RunStats& stats = measured[i];
      makespan.add(stats.makespan);
      fairness.add(stats.fairness);
      preemptions.add(stats.preemptions);
      for (std::size_t t = 0; t < tenant.size(); ++t) {
        for (std::size_t m = 0; m < 5; ++m) {
          tenant[t][m].add(stats.tenant[t][m]);
        }
      }
    }
    const std::string& label = variants[v].label;
    artifact.add_metric(label, "makespan_s", makespan);
    artifact.add_metric(label, "fairness_index", fairness);
    artifact.add_metric(label, "preemption_kills", preemptions);
    std::printf("%-22s makespan %7.0fs  fairness %.3f  preemptions %.1f\n",
                label.c_str(), makespan.mean(), fairness.mean(),
                preemptions.mean());
    for (std::size_t t = 0; t < tenant.size(); ++t) {
      const std::string series = label + "/" + tenant_names[t];
      artifact.add_metric(series, "jct_p50_s", tenant[t][0]);
      artifact.add_metric(series, "jct_p99_s", tenant[t][1]);
      artifact.add_metric(series, "queue_delay_p50_s", tenant[t][2]);
      artifact.add_metric(series, "queue_delay_p99_s", tenant[t][3]);
      artifact.add_metric(series, "slot_share_mean", tenant[t][4]);
      std::printf("  %-12s jct p50 %6.0fs p99 %6.0fs | queue p50 %6.0fs "
                  "p99 %6.0fs | share %.2f\n",
                  tenant_names[t].c_str(), tenant[t][0].mean(),
                  tenant[t][1].mean(), tenant[t][2].mean(),
                  tenant[t][3].mean(), tenant[t][4].mean());
    }
  }

  // One full result document for the canonical seed, for diffing runs.
  {
    auto cluster = cluster::presets::multitenant40(0.0);
    Simulator sim;
    service::ClusterService svc(sim, cluster,
                                scenario(variants.back(), seeds.front()));
    artifact.attach("service_result", svc.run().json());
  }

  artifact.write();
  return 0;
}
