// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench prints (a) what it reproduces, (b) the paper's qualitative
// expectation, and (c) a TextTable of measured values, so the output can be
// pasted into EXPERIMENTS.md and compared row by row.
// Every bench also writes a machine-readable BENCH_<figure>.json artifact
// (schema "flexmr.bench.v1") via BenchArtifact, so the numbers survive the
// run and later PRs can diff them for regressions/speedups.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::bench {

inline void print_header(const std::string& figure,
                         const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper expectation: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Mean JCT over `seeds` paired runs of (bench, scheduler) on a fresh
/// cluster from `make_cluster`. Pairing: seed s uses the same layout and
/// interference draw for every scheduler.
struct SweepPoint {
  workloads::SchedulerKind kind;
  MiB block_size;
  std::string label;
};

struct SweepResult {
  std::string label;
  OnlineStats jct;
  OnlineStats efficiency;
  OnlineStats productivity;
  /// Real (host) seconds per simulation run — the perf trajectory the
  /// BENCH_*.json series carry across PRs. Sweep items run on a shared
  /// pool, so a run timed while its siblings saturate the cores is slower
  /// than the same run timed alone; read together with pool_occupancy
  /// (speedup-style comparisons belong in serial-measured series).
  OnlineStats run_wall_clock;
  /// Pool tasks in flight (including this one) when the item was timed —
  /// 1 means the wall clock is contention-free, pool-size means fully
  /// contended.
  OnlineStats pool_occupancy;
  /// Peak RSS (KiB) sampled when this result's sweep finished — the
  /// process high-water mark *as of that sweep*, so multi-sweep benches get
  /// a per-series trajectory instead of one end-of-process number. RSS is
  /// monotone, so a series can only implicate earlier-or-own allocations.
  std::uint64_t peak_rss_kib = 0;
};

/// Peak resident set size of this process so far, in KiB (ru_maxrss is
/// KiB on Linux; converted from bytes on macOS). 0 where unsupported.
inline std::uint64_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#endif
#else
  return 0;
#endif
}

/// The sweep worker pool, shared across sweeps within one bench binary.
/// Deliberately not a bare `static ThreadPool` at the use site: the pool
/// is destroyed at static-destruction time with workers still joinable,
/// and its teardown may log through the Logger singleton. Touching
/// Logger::instance() before first constructing the pool pins the
/// construction order (Logger first), so reverse static destruction tears
/// the pool down — joining its workers — while the Logger is still alive.
inline ThreadPool& sweep_pool() {
  Logger::instance();
  static ThreadPool pool;
  return pool;
}

/// Runs |points| × |seeds| simulations in parallel over a thread pool.
inline std::vector<SweepResult> sweep(
    const std::function<cluster::Cluster()>& make_cluster,
    const workloads::Benchmark& bench, workloads::InputScale scale,
    const std::vector<SweepPoint>& points,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].label = points[i].label;
  }

  struct WorkItem {
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const auto seed : seeds) items.push_back({i, seed});
  }

  // Per-item buffers, folded below in fixed item order. Folding OnlineStats
  // directly from the workers would accumulate in thread-completion order,
  // and Welford's update is not commutative in floating point — the same
  // sweep would produce different BENCH_*.json means/stddevs run to run.
  struct ItemResult {
    double jct = 0;
    double efficiency = 0;
    double productivity = 0;
    double run_wall_clock = 0;
    double pool_occupancy = 1;
  };
  std::vector<ItemResult> measured(items.size());

  ThreadPool& pool = sweep_pool();
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    auto cluster = make_cluster();
    workloads::RunConfig config;
    config.block_size = points[w.point].block_size;
    config.params.seed = w.seed;
    // Occupancy at timing start: how many sibling runs compete for cores
    // while this one's wall clock ticks. Recorded alongside the time so
    // cross-PR consumers can tell contention from real slowdowns.
    const auto occupancy = static_cast<double>(pool.active());
    const auto run_start = std::chrono::steady_clock::now();
    const auto result = workloads::run_job(cluster, bench, scale,
                                           points[w.point].kind, config);
    const double run_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_start)
            .count();
    const std::size_t index = static_cast<std::size_t>(&w - items.data());
    measured[index] =
        ItemResult{result.jct(), result.efficiency(),
                   result.mean_map_productivity(), run_seconds, occupancy};
  });
  for (std::size_t i = 0; i < items.size(); ++i) {
    SweepResult& out = results[items[i].point];
    out.jct.add(measured[i].jct);
    out.efficiency.add(measured[i].efficiency);
    out.productivity.add(measured[i].productivity);
    out.run_wall_clock.add(measured[i].run_wall_clock);
    out.pool_occupancy.add(measured[i].pool_occupancy);
  }
  // Sample at sweep completion (not process exit) so each sweep's series
  // carry the memory state their runs actually produced.
  const std::uint64_t rss_now = peak_rss_kib();
  for (auto& result : results) result.peak_rss_kib = rss_now;
  return results;
}

/// Activates the process-global self-profiler (idempotent; DESIGN.md §15).
/// The profiler binds its scope stack to the calling thread, so call this
/// from main before any simulation: sweep items running on pool workers
/// contribute no scopes (by design — their stacks would interleave), while
/// everything the main thread simulates is attributed.
inline void enable_profiling() {
  static obs::Profiler profiler;
  if (obs::Profiler::active() == nullptr) {
    obs::Profiler::activate(profiler);
  }
}

/// True if FLEXMR_PROFILE is set to anything but "" or "0" — the
/// environment opt-in every bench binary honors (CI uses it to collect
/// PROFILE_*.json from the smoke grid without per-bench flags).
inline bool profiling_requested_by_env() {
  const char* env = std::getenv("FLEXMR_PROFILE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// The four comparison systems of Fig. 5 / Fig. 6.
inline std::vector<SweepPoint> paper_comparison_points() {
  using workloads::SchedulerKind;
  return {
      {SchedulerKind::kHadoop, kLargeBlockMiB, "Hadoop-128m"},
      {SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop-64m"},
      {SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune-64m"},
      {SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap"},
  };
}

inline std::vector<std::uint64_t> default_seeds(std::size_t n = 5) {
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(1000 + 17 * i);
  return seeds;
}

/// Shared BENCH_<figure>.json emitter. One artifact per bench binary:
/// named series, each holding named metric summaries (mean/stddev/min/max/
/// count), plus the seeds used and the bench's wall-clock time. Figures
/// with richer output (e.g. the Fig. 7 sizing trace) attach it verbatim
/// under "extra".
class BenchArtifact {
 public:
  BenchArtifact(std::string figure, std::string title)
      : figure_(std::move(figure)),
        title_(std::move(title)),
        start_(std::chrono::steady_clock::now()) {
    if (profiling_requested_by_env()) enable_profiling();
  }

  /// Records the seeds a section ran with (duplicates collapse).
  void record_seeds(const std::vector<std::uint64_t>& seeds) {
    for (const auto seed : seeds) {
      if (std::find(seeds_.begin(), seeds_.end(), seed) == seeds_.end()) {
        seeds_.push_back(seed);
      }
    }
  }

  void add_metric(const std::string& series, const std::string& metric,
                  const OnlineStats& stats) {
    add(series, metric,
        Summary{stats.mean(), stats.stddev(), stats.min(), stats.max(),
                stats.count()});
  }

  void add_metric(const std::string& series, const std::string& metric,
                  const SampleSet& samples) {
    add(series, metric,
        Summary{samples.mean(), samples.stddev(), samples.min(),
                samples.max(), samples.count()});
  }

  /// Single measured value (count 1, stddev 0).
  void add_metric(const std::string& series, const std::string& metric,
                  double value) {
    add(series, metric, Summary{value, 0.0, value, value, 1});
  }

  /// The standard sweep triple: one series per result labeled
  /// "<prefix>/<label>" with jct, efficiency and productivity summaries.
  void add_sweep(const std::string& prefix,
                 const std::vector<SweepResult>& results) {
    for (const auto& result : results) {
      const std::string series = prefix + "/" + result.label;
      add_metric(series, "jct", result.jct);
      add_metric(series, "efficiency", result.efficiency);
      add_metric(series, "productivity", result.productivity);
      if (result.run_wall_clock.count() > 0) {
        add_metric(series, "run_wall_clock_s", result.run_wall_clock);
        add_metric(series, "pool_occupancy", result.pool_occupancy);
      }
      if (result.peak_rss_kib > 0) {
        add_metric(series, "peak_rss_kib",
                   static_cast<double>(result.peak_rss_kib));
      }
    }
  }

  /// Attaches a pre-serialized JSON document under "extra"."<key>".
  void attach(const std::string& key, std::string raw_json) {
    extra_.emplace_back(key, std::move(raw_json));
  }

  std::string json() const {
    const double wall_clock_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    JsonWriter writer;
    writer.begin_object();
    writer.field("schema", "flexmr.bench.v1");
    writer.field("figure", figure_);
    writer.field("title", title_);
    writer.field("wall_clock_s", wall_clock_s);
    writer.field("peak_rss_kib", peak_rss_kib());
    writer.key("seeds").begin_array();
    for (const auto seed : seeds_) writer.value(seed);
    writer.end_array();
    writer.key("series").begin_array();
    for (const auto& series : series_) {
      writer.begin_object();
      writer.field("label", series.label);
      writer.key("metrics").begin_object();
      for (const auto& [name, summary] : series.metrics) {
        writer.key(name).begin_object();
        writer.field("mean", summary.mean);
        writer.field("stddev", summary.stddev);
        writer.field("min", summary.min);
        writer.field("max", summary.max);
        writer.field("count", static_cast<std::uint64_t>(summary.count));
        writer.end_object();
      }
      writer.end_object();
      writer.end_object();
    }
    writer.end_array();
    writer.key("extra").begin_object();
    for (const auto& [key, raw] : extra_) {
      writer.key(key).raw(raw);
    }
    writer.end_object();
    writer.end_object();
    return writer.str();
  }

  /// Writes BENCH_<figure>.json into the working directory; when the
  /// self-profiler is active, PROFILE_<figure>.json (flexmr.profile.v1)
  /// lands next to it.
  void write() const {
    const std::string path = "BENCH_" + figure_ + ".json";
    if (write_doc(path, json())) {
      std::printf("wrote %s (%zu series)\n", path.c_str(), series_.size());
    }
    if (const obs::Profiler* prof = obs::Profiler::active()) {
      const std::string profile_path = "PROFILE_" + figure_ + ".json";
      if (write_doc(profile_path, prof->json())) {
        std::printf("wrote %s (%zu scopes)\n", profile_path.c_str(),
                    prof->scopes().size());
      }
    }
  }

 private:
  struct Summary {
    double mean = 0;
    double stddev = 0;
    double min = 0;
    double max = 0;
    std::size_t count = 0;
  };
  struct Series {
    std::string label;
    std::vector<std::pair<std::string, Summary>> metrics;
  };

  static bool write_doc(const std::string& path, const std::string& doc) {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), file);
    std::fputc('\n', file);
    std::fclose(file);
    return true;
  }

  void add(const std::string& series, const std::string& metric,
           Summary summary) {
    for (auto& existing : series_) {
      if (existing.label == series) {
        existing.metrics.emplace_back(metric, summary);
        return;
      }
    }
    series_.push_back(Series{series, {{metric, summary}}});
  }

  std::string figure_;
  std::string title_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::uint64_t> seeds_;
  std::vector<Series> series_;
  std::vector<std::pair<std::string, std::string>> extra_;
};

}  // namespace flexmr::bench
