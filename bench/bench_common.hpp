// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench prints (a) what it reproduces, (b) the paper's qualitative
// expectation, and (c) a TextTable of measured values, so the output can be
// pasted into EXPERIMENTS.md and compared row by row.
#pragma once

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::bench {

inline void print_header(const std::string& figure,
                         const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper expectation: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Mean JCT over `seeds` paired runs of (bench, scheduler) on a fresh
/// cluster from `make_cluster`. Pairing: seed s uses the same layout and
/// interference draw for every scheduler.
struct SweepPoint {
  workloads::SchedulerKind kind;
  MiB block_size;
  std::string label;
};

struct SweepResult {
  std::string label;
  OnlineStats jct;
  OnlineStats efficiency;
  OnlineStats productivity;
};

/// Runs |points| × |seeds| simulations in parallel over a thread pool.
inline std::vector<SweepResult> sweep(
    const std::function<cluster::Cluster()>& make_cluster,
    const workloads::Benchmark& bench, workloads::InputScale scale,
    const std::vector<SweepPoint>& points,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<SweepResult> results(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].label = points[i].label;
  }
  std::mutex mutex;

  struct WorkItem {
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const auto seed : seeds) items.push_back({i, seed});
  }

  static ThreadPool pool;  // shared across sweeps within one bench binary
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    auto cluster = make_cluster();
    workloads::RunConfig config;
    config.block_size = points[w.point].block_size;
    config.params.seed = w.seed;
    const auto result = workloads::run_job(cluster, bench, scale,
                                           points[w.point].kind, config);
    std::lock_guard lock(mutex);
    results[w.point].jct.add(result.jct());
    results[w.point].efficiency.add(result.efficiency());
    results[w.point].productivity.add(result.mean_map_productivity());
  });
  return results;
}

/// The four comparison systems of Fig. 5 / Fig. 6.
inline std::vector<SweepPoint> paper_comparison_points() {
  using workloads::SchedulerKind;
  return {
      {SchedulerKind::kHadoop, kLargeBlockMiB, "Hadoop-128m"},
      {SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop-64m"},
      {SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune-64m"},
      {SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap"},
  };
}

inline std::vector<std::uint64_t> default_seeds(std::size_t n = 5) {
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < n; ++i) seeds.push_back(1000 + 17 * i);
  return seeds;
}

}  // namespace flexmr::bench
