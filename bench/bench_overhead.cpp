// Reproduces §IV-D (Overhead): FlexMap vs stock Hadoop on a 6-node
// *homogeneous* cluster, where horizontal scaling is effectively disabled
// and any JCT difference is pure vertical-scaling overhead (running early
// waves with suboptimal sizes).
//
// Paper: FlexMap incurs a negligible ~5% penalty.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

int main() {
  using namespace flexmr;
  using workloads::SchedulerKind;
  bench::print_header(
      "§IV-D Overhead: wordcount on a 6-node homogeneous cluster",
      "FlexMap's vertical-scaling ramp costs only ~5% vs stock Hadoop");

  bench::BenchArtifact artifact(
      "overhead", "Vertical-scaling overhead on a homogeneous cluster");
  TextTable table({"System", "JCT (s)", "vs Hadoop-64m", "Efficiency",
                   "Map tasks"});
  const auto seeds = bench::default_seeds(7);
  artifact.record_seeds(seeds);
  double base = 0;
  for (const auto kind :
       {SchedulerKind::kHadoopNoSpec, SchedulerKind::kFlexMap}) {
    OnlineStats jct;
    OnlineStats eff;
    OnlineStats tasks;
    for (const auto seed : seeds) {
      auto cluster = cluster::presets::homogeneous6();
      workloads::RunConfig config;
      config.params.seed = seed;
      const auto result =
          workloads::run_job(cluster, workloads::benchmark("WC"),
                             workloads::InputScale::kSmall, kind, config);
      jct.add(result.jct());
      eff.add(result.efficiency());
      tasks.add(static_cast<double>(result.map_tasks_launched()));
    }
    if (base == 0) base = jct.mean();
    table.add_row({workloads::scheduler_label(kind),
                   TextTable::num(jct.mean(), 1),
                   TextTable::num((jct.mean() / base - 1.0) * 100, 1) + "%",
                   TextTable::num(eff.mean()),
                   TextTable::num(tasks.mean(), 0)});
    const std::string series = workloads::scheduler_label(kind);
    artifact.add_metric(series, "jct", jct);
    artifact.add_metric(series, "efficiency", eff);
    artifact.add_metric(series, "map_tasks", tasks);
    artifact.add_metric(series, "overhead_vs_base",
                        jct.mean() / base - 1.0);
  }
  std::printf("%s\n", table.str().c_str());
  artifact.write();
  return 0;
}
