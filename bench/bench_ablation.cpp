// Ablation study (beyond the paper — the paper motivates each FlexMap
// mechanism but never isolates them):
//   * vertical scaling only  (horizontal disabled),
//   * horizontal scaling only (vertical disabled: tasks stay at 1-BU unit
//     scaled by speed),
//   * no reduce-placement bias,
//   * BU granularity 4/8/16/32 MB.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "flexmap/oracle.hpp"

namespace flexmr::bench {
namespace {

void mechanism_ablation(const char* title,
                        const std::function<cluster::Cluster()>& make,
                        const char* code, BenchArtifact& artifact,
                        const std::string& prefix) {
  print_header(title, "each mechanism contributes; full FlexMap is best "
                      "or tied on map-heavy workloads");
  const std::vector<SweepPoint> points = {
      {workloads::SchedulerKind::kHadoopNoSpec, kDefaultBlockMiB, "Hadoop"},
      {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap"},
      {workloads::SchedulerKind::kFlexMapNoVertical, kDefaultBlockMiB,
       "no vertical"},
      {workloads::SchedulerKind::kFlexMapNoHorizontal, kDefaultBlockMiB,
       "no horizontal"},
      {workloads::SchedulerKind::kFlexMapNoReduceBias, kDefaultBlockMiB,
       "no reduce bias"},
  };
  const auto seeds = default_seeds(5);
  artifact.record_seeds(seeds);
  TextTable table({"Variant", "JCT (s)", "vs Hadoop", "Efficiency",
                   "Productivity"});
  const auto results = sweep(make, workloads::benchmark(code),
                             workloads::InputScale::kSmall, points, seeds);
  artifact.add_sweep(prefix, results);
  const double base = results[0].jct.mean();
  for (const auto& r : results) {
    table.add_row({r.label, TextTable::num(r.jct.mean(), 1),
                   TextTable::num((1.0 - r.jct.mean() / base) * 100, 1) +
                       "%",
                   TextTable::num(r.efficiency.mean()),
                   TextTable::num(r.productivity.mean())});
  }
  std::printf("%s\n", table.str().c_str());
}

void bu_granularity(BenchArtifact& artifact) {
  print_header("Ablation: block-unit granularity (paper fixes BU = 8 MB)",
               "too-small BUs inflate the ramp; too-large BUs coarsen "
               "load balancing");
  artifact.record_seeds(default_seeds(5));
  TextTable table({"BU size (MB)", "JCT (s)", "Efficiency"});
  for (const MiB bu : {4.0, 8.0, 16.0, 32.0}) {
    OnlineStats jct;
    OnlineStats eff;
    for (const auto seed : default_seeds(5)) {
      auto cluster = cluster::presets::physical12();
      auto bench = workloads::benchmark("WC");
      workloads::RunConfig config;
      config.params.seed = seed;
      const auto scheduler =
          workloads::make_scheduler(workloads::SchedulerKind::kFlexMap,
                                    seed);
      cluster.reset();
      Simulator sim;
      // Hand-build the layout so the BU size can differ from the default.
      Rng rng(seed);
      hdfs::NameNode nn(cluster.num_nodes(), hdfs::PlacementPolicy::kRandom,
                        rng.split());
      const auto layout = nn.create_file(bench.small_input,
                                         config.block_size,
                                         config.replication, bu);
      auto spec = workloads::to_job_spec(bench, workloads::InputScale::kSmall);
      mr::JobDriver driver(sim, cluster, layout, spec, config.params,
                           *scheduler);
      const auto result = driver.run();
      jct.add(result.jct());
      eff.add(result.efficiency());
    }
    table.add_row({TextTable::num(bu, 0), TextTable::num(jct.mean(), 1),
                   TextTable::num(eff.mean())});
    const std::string series =
        "bu/" + std::to_string(static_cast<int>(bu)) + "MB";
    artifact.add_metric(series, "jct", jct);
    artifact.add_metric(series, "efficiency", eff);
  }
  std::printf("%s\n", table.str().c_str());
}

void oracle_gap(BenchArtifact& artifact) {
  print_header("Ablation: FlexMap vs a perfect-knowledge oracle",
               "the Oracle-FlexMap gap is the cost of *estimating* speeds "
               "via Eq. 3; Oracle-Hadoop is the full value of elasticity");
  TextTable table({"System", "physical JCT (s)", "virtual JCT (s)"});
  std::vector<double> physical(3, 0), virt(3, 0);
  const auto seeds = default_seeds(5);
  artifact.record_seeds(seeds);
  for (int env = 0; env < 2; ++env) {
    auto& column = env == 0 ? physical : virt;
    OnlineStats hadoop, flexmap, oracle;
    for (const auto seed : seeds) {
      workloads::RunConfig config;
      config.params.seed = seed;
      auto make = [&]() {
        return env == 0 ? cluster::presets::physical12()
                        : cluster::presets::virtual20();
      };
      auto c1 = make();
      hadoop.add(workloads::run_job(c1, workloads::benchmark("WC"),
                                    workloads::InputScale::kSmall,
                                    workloads::SchedulerKind::kHadoop,
                                    config)
                     .jct());
      auto c2 = make();
      flexmap.add(workloads::run_job(c2, workloads::benchmark("WC"),
                                     workloads::InputScale::kSmall,
                                     workloads::SchedulerKind::kFlexMap,
                                     config)
                      .jct());
      auto c3 = make();
      flexmap::OracleScheduler oracle_sched(c3);
      oracle.add(workloads::run_job(c3, workloads::benchmark("WC"),
                                    workloads::InputScale::kSmall,
                                    oracle_sched, config)
                     .jct());
    }
    column[0] = hadoop.mean();
    column[1] = flexmap.mean();
    column[2] = oracle.mean();
  }
  const char* names[] = {"Hadoop", "FlexMap", "FlexMap-oracle"};
  for (int row = 0; row < 3; ++row) {
    table.add_row({names[row], TextTable::num(physical[static_cast<size_t>(row)], 1),
                   TextTable::num(virt[static_cast<size_t>(row)], 1)});
    const std::string series = std::string("oracle/") + names[row];
    artifact.add_metric(series, "physical_jct",
                        physical[static_cast<size_t>(row)]);
    artifact.add_metric(series, "virtual_jct",
                        virt[static_cast<size_t>(row)]);
  }
  std::printf("%s\n", table.str().c_str());
}

void warm_start_iterations(BenchArtifact& artifact) {
  print_header("Ablation: warm-started iterative jobs (k-means, 4 iters)",
               "warm start skips the sizing ramp from iteration 2 on");
  TextTable table({"Iteration", "cold JCT (s)", "cold maps",
                   "warm JCT (s)", "warm maps"});
  auto cluster = cluster::presets::heterogeneous6();
  auto bench = workloads::benchmark("KM");
  bench.small_input = gib_to_mib(4);

  flexmap::FlexMapScheduler cold;
  const auto cold_runs = workloads::run_iterations(
      cluster, bench, workloads::InputScale::kSmall, cold,
      workloads::RunConfig{}, 4);
  flexmap::FlexMapOptions warm_options;
  warm_options.warm_start = true;
  flexmap::FlexMapScheduler warm(warm_options);
  const auto warm_runs = workloads::run_iterations(
      cluster, bench, workloads::InputScale::kSmall, warm,
      workloads::RunConfig{}, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    table.add_row({std::to_string(i + 1),
                   TextTable::num(cold_runs[i].jct(), 1),
                   std::to_string(cold_runs[i].map_tasks_launched()),
                   TextTable::num(warm_runs[i].jct(), 1),
                   std::to_string(warm_runs[i].map_tasks_launched())});
    const std::string series = "warm-start/iter" + std::to_string(i + 1);
    artifact.add_metric(series, "cold_jct", cold_runs[i].jct());
    artifact.add_metric(series, "warm_jct", warm_runs[i].jct());
    artifact.add_metric(
        series, "cold_maps",
        static_cast<double>(cold_runs[i].map_tasks_launched()));
    artifact.add_metric(
        series, "warm_maps",
        static_cast<double>(warm_runs[i].map_tasks_launched()));
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "ablation", "Mechanism ablation, BU granularity, oracle gap, "
                  "warm start");
  bench::mechanism_ablation(
      "Ablation (physical cluster, wordcount): FlexMap mechanisms",
      []() { return cluster::presets::physical12(); }, "WC", artifact,
      "mechanism/physical-WC");
  bench::mechanism_ablation(
      "Ablation (virtual cluster, tera-sort): reduce bias matters most "
      "for reduce-heavy jobs",
      []() { return cluster::presets::virtual20(); }, "TS", artifact,
      "mechanism/virtual-TS");
  bench::bu_granularity(artifact);
  bench::oracle_gap(artifact);
  bench::warm_start_iterations(artifact);
  artifact.write();
  return 0;
}
