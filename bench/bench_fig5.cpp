// Reproduces Fig. 5 (plus Table II header): normalized job completion time
// of Hadoop-128m / Hadoop-64m / SkewTune-64m / FlexMap for the eight PUMA
// benchmarks on (a) the 12-node physical cluster and (b) the 20-node
// virtual cluster. JCT is normalized to Hadoop-64m (the paper normalizes
// against stock Hadoop; lower is better).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

void print_table_ii() {
  print_header("Table II: PUMA benchmark details",
               "eight benchmarks over Wikipedia/Netflix/TeraGen inputs");
  TextTable table({"Benchmark", "Code", "Small(GB)", "Large(GB)", "Input",
                   "map_cost", "shuffle", "reduce_cost"});
  for (const auto& bench : workloads::puma_suite()) {
    table.add_row({bench.name, bench.code,
                   TextTable::num(mib_to_gib(bench.small_input), 0),
                   TextTable::num(mib_to_gib(bench.large_input), 0),
                   bench.input_data, TextTable::num(bench.map_cost, 2),
                   TextTable::num(bench.shuffle_ratio, 2),
                   TextTable::num(bench.reduce_cost, 2)});
  }
  std::printf("%s\n", table.str().c_str());
}

void run_cluster(const char* title,
                 const std::function<cluster::Cluster()>& make_cluster,
                 BenchArtifact& artifact, const std::string& prefix) {
  print_header(title,
               "FlexMap beats stock Hadoop by up to ~40-50% on map-heavy "
               "jobs (WC/GR/HR/HM); SkewTune lands between; little or no "
               "gain on reduce-heavy II/TS; larger stock splits do worse");
  TextTable table({"Benchmark", "Hadoop-128m", "Hadoop-64m", "SkewTune-64m",
                   "FlexMap", "FlexMap vs H-64m"});
  const auto points = paper_comparison_points();
  const auto seeds = default_seeds();
  artifact.record_seeds(seeds);
  for (const auto& bench : workloads::puma_suite()) {
    const auto results = sweep(make_cluster, bench,
                               workloads::InputScale::kSmall, points, seeds);
    artifact.add_sweep(prefix + "/" + bench.code, results);
    const double base = results[1].jct.mean();  // Hadoop-64m
    table.add_row({bench.code, TextTable::num(results[0].jct.mean() / base),
                   TextTable::num(1.0),
                   TextTable::num(results[2].jct.mean() / base),
                   TextTable::num(results[3].jct.mean() / base),
                   TextTable::num(
                       (1.0 - results[3].jct.mean() / base) * 100.0, 1) +
                       "%"});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::BenchArtifact artifact(
      "fig5", "Normalized JCT, PUMA suite, physical + virtual clusters");
  bench::print_table_ii();
  bench::run_cluster("Fig. 5(a): normalized JCT, 12-node physical cluster",
                     []() { return cluster::presets::physical12(); },
                     artifact, "physical");
  bench::run_cluster("Fig. 5(b): normalized JCT, 20-node virtual cluster",
                     []() { return cluster::presets::virtual20(); },
                     artifact, "virtual");
  artifact.write();
  return 0;
}
