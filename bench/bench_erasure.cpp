// Erasure-coded storage sweep: rs(k,m) striping vs 3x replication under
// node and disk faults, for all four comparison systems. Striping trades
// raw capacity (1.5x for rs(6,3) vs 3x for replication) against locality
// (every holder has only 1/k of a block's bytes) and fault cost (a lost
// part forces degraded reads that pay a decode toll, and the repair
// pipeline reads k surviving parts per rebuilt part — k x read
// amplification over re-replication's single copy).
#include <cstdio>
#include <mutex>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

struct ErasureStats {
  OnlineStats jct;
  OnlineStats degraded_reads;
  OnlineStats decode_mib;
  OnlineStats parts_reconstructed;
  OnlineStats repair_read_mib;
  OnlineStats re_replicated;
  std::size_t aborted_runs = 0;
};

double mean_or_zero(const OnlineStats& stats) {
  return stats.count() > 0 ? stats.mean() : 0.0;
}

double count_events(const mr::JobResult& result,
                    faults::FaultEventType type) {
  double n = 0;
  for (const auto& e : result.fault_events) {
    if (e.type == type) ++n;
  }
  return n;
}

/// |kinds| x |points| x |seeds| runs on the 19-worker virtual cluster
/// (wide enough for rs(10,4)'s 14 distinct part holders); aborted runs
/// (data loss) are counted, not averaged.
std::vector<std::vector<ErasureStats>> erasure_sweep(
    const workloads::Benchmark& bench,
    const std::vector<workloads::SchedulerKind>& kinds,
    std::size_t num_points, const std::vector<std::uint64_t>& seeds,
    const std::function<void(workloads::RunConfig&, std::size_t)>& apply) {
  std::vector<std::vector<ErasureStats>> stats(
      kinds.size(), std::vector<ErasureStats>(num_points));
  std::mutex mutex;

  struct WorkItem {
    std::size_t kind;
    std::size_t point;
    std::uint64_t seed;
  };
  std::vector<WorkItem> items;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (std::size_t p = 0; p < num_points; ++p) {
      for (const auto seed : seeds) items.push_back({k, p, seed});
    }
  }

  static ThreadPool pool;
  pool.parallel_for_each(items.begin(), items.end(), [&](const WorkItem& w) {
    auto cluster = cluster::presets::virtual20();
    workloads::RunConfig config;
    config.params.seed = w.seed;
    apply(config, w.point);
    try {
      const auto result = workloads::run_job(
          cluster, bench, workloads::InputScale::kSmall, kinds[w.kind],
          config);
      std::lock_guard lock(mutex);
      auto& cell = stats[w.kind][w.point];
      cell.jct.add(result.jct());
      cell.degraded_reads.add(static_cast<double>(result.degraded_reads));
      cell.decode_mib.add(result.decode_mib);
      cell.parts_reconstructed.add(
          static_cast<double>(result.parts_reconstructed));
      cell.repair_read_mib.add(result.repair_read_mib);
      cell.re_replicated.add(
          count_events(result, faults::FaultEventType::kReReplicated));
    } catch (const mr::JobAbortedError&) {
      std::lock_guard lock(mutex);
      ++stats[w.kind][w.point].aborted_runs;
    }
  });
  return stats;
}

struct Policy {
  const char* label;
  hdfs::StoragePolicy storage;
};

/// Permanent node crash under each storage policy: replication reads the
/// surviving whole copies; striping loses one part per affected block and
/// every read until repair is degraded.
void run_policy_sweep(BenchArtifact& artifact,
                      const std::vector<workloads::SchedulerKind>& kinds,
                      const std::vector<std::uint64_t>& seeds) {
  print_header(
      "Storage policy under a permanent node crash",
      "rs(k,m) halves the raw-capacity overhead vs 3x replication but a "
      "crash leaves every affected stripe one part short: reads pay the "
      "decode toll until the repair pipeline (k x read amplification) "
      "catches up");

  const std::vector<Policy> policies = {
      {"rep3", {}},
      {"rs6.3", hdfs::StoragePolicy::rs(6, 3)},
      {"rs10.4", hdfs::StoragePolicy::rs(10, 4)},
  };
  auto bench = workloads::benchmark("WC");
  bench.small_input = 8192.0;
  const std::uint32_t replication = workloads::RunConfig{}.replication;
  const auto stats = erasure_sweep(
      bench, kinds, policies.size(), seeds,
      [&](workloads::RunConfig& config, std::size_t point) {
        config.storage = policies[point].storage;
        config.faults.crashes = {
            faults::NodeCrash{3, 25.0, std::nullopt, true}};
        // Mitigation churn under 1/k locality re-draws the per-attempt
        // coin more often; give faulted runs the same headroom the
        // erasure golden suite uses so SkewTune does not abort.
        config.faults.max_attempts = 8;
      });

  TextTable table({"System", "rep3", "rs(6,3)", "rs(10,4)", "rs6.3/rep3",
                   "degraded@6.3", "repairMiB@6.3"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& cell = stats[k][p];
      const double mean = mean_or_zero(cell.jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      const std::string series =
          std::string("policy/") + label + "/" + policies[p].label;
      if (cell.jct.count() > 0) {
        artifact.add_metric(series, "jct", cell.jct);
        artifact.add_metric(series, "degraded_reads", cell.degraded_reads);
        artifact.add_metric(series, "decode_mib", cell.decode_mib);
        artifact.add_metric(series, "parts_reconstructed",
                            cell.parts_reconstructed);
        artifact.add_metric(series, "repair_read_mib", cell.repair_read_mib);
        artifact.add_metric(series, "re_replicated", cell.re_replicated);
        artifact.add_metric(series, "jct_vs_rep3",
                            base > 0 ? mean / base : 0.0);
      }
      artifact.add_metric(series, "storage_overhead",
                          policies[p].storage.overhead(replication));
      artifact.add_metric(series, "aborted_runs",
                          static_cast<double>(cell.aborted_runs));
    }
    const double striped = mean_or_zero(stats[k][1].jct);
    row.push_back(base > 0 && striped > 0 ? TextTable::num(striped / base, 2)
                                          : "-");
    row.push_back(
        TextTable::num(mean_or_zero(stats[k][1].degraded_reads), 0));
    row.push_back(
        TextTable::num(mean_or_zero(stats[k][1].repair_read_mib), 0));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

/// Per-disk fault domains under rs(6,3): one dead disk loses only that
/// disk's parts (1/disks_per_node of the node's holdings), and a slow
/// disk merely taxes locality for a window — both far gentler than the
/// whole-node crash above.
void run_disk_sweep(BenchArtifact& artifact,
                    const std::vector<workloads::SchedulerKind>& kinds,
                    const std::vector<std::uint64_t>& seeds) {
  print_header(
      "Per-disk fault domains, rs(6,3)",
      "a disk fault destroys one disk's parts on a live node (repair "
      "rebuilds them; rejoin cannot), a degraded window only slows reads; "
      "blast radius is 1/disks_per_node of a node crash");

  struct Scenario {
    const char* label;
  };
  const std::vector<Scenario> scenarios = {
      {"healthy"}, {"disk-fault"}, {"slow-disk"}};
  auto bench = workloads::benchmark("WC");
  bench.small_input = 8192.0;
  const auto stats = erasure_sweep(
      bench, kinds, scenarios.size(), seeds,
      [&](workloads::RunConfig& config, std::size_t point) {
        config.storage = hdfs::StoragePolicy::rs(6, 3);
        if (point == 1) {
          config.faults.disk_faults = {faults::DiskFault{2, 1, 10.0}};
        } else if (point == 2) {
          config.faults.disk_degradations = {
              faults::DiskDegradedWindow{2, 1, 10.0, 120.0, 0.25}};
        }
      });

  TextTable table({"System", "healthy", "disk-fault", "slow-disk",
                   "fault/healthy", "rebuilt"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const std::string label = workloads::scheduler_label(kinds[k]);
    const double base = mean_or_zero(stats[k][0].jct);
    std::vector<std::string> row = {label};
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const auto& cell = stats[k][s];
      const double mean = mean_or_zero(cell.jct);
      row.push_back(mean > 0 ? TextTable::num(mean, 1) : "-");
      const std::string series =
          std::string("disk/") + label + "/" + scenarios[s].label;
      if (cell.jct.count() > 0) {
        artifact.add_metric(series, "jct", cell.jct);
        artifact.add_metric(series, "degraded_reads", cell.degraded_reads);
        artifact.add_metric(series, "decode_mib", cell.decode_mib);
        artifact.add_metric(series, "parts_reconstructed",
                            cell.parts_reconstructed);
        artifact.add_metric(series, "repair_read_mib", cell.repair_read_mib);
      }
      artifact.add_metric(series, "aborted_runs",
                          static_cast<double>(cell.aborted_runs));
    }
    const double faulted = mean_or_zero(stats[k][1].jct);
    row.push_back(base > 0 && faulted > 0 ? TextTable::num(faulted / base, 2)
                                          : "-");
    row.push_back(
        TextTable::num(mean_or_zero(stats[k][1].parts_reconstructed), 0));
    table.add_row(row);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  const std::vector<workloads::SchedulerKind> kinds = {
      workloads::SchedulerKind::kHadoop,
      workloads::SchedulerKind::kHadoopNoSpec,
      workloads::SchedulerKind::kSkewTune,
      workloads::SchedulerKind::kFlexMap,
  };
  bench::BenchArtifact artifact(
      "erasure",
      "rs(k,m) striping vs 3x replication under node and disk faults");
  const auto seeds = bench::default_seeds();
  artifact.record_seeds(seeds);
  bench::run_policy_sweep(artifact, kinds, seeds);
  bench::run_disk_sweep(artifact, kinds, seeds);
  artifact.write();
  return 0;
}
