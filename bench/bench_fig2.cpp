// Reproduces Fig. 2's argument quantitatively: on a tiny 3-node cluster
// with capacity ratio 1:1:3 and full replication, uniform map sizes with
// static input binding prevent the fast node from processing data in
// proportion to its capacity, while FlexMap's elastic tasks restore the
// proportion.
//
// The paper's illustration: with 4 fixed-size tasks the completed-task
// ratio is 1:1:2 even though the fast node could do 3x a slow node's work.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"

namespace flexmr::bench {
namespace {

void run(workloads::SchedulerKind kind, BenchArtifact& artifact) {
  auto cluster = cluster::presets::tiny3();
  auto bench = workloads::benchmark("WC");
  bench.small_input = 1024.0;  // 16 blocks of 64 MB
  bench.shuffle_ratio = 0.0;   // isolate the map phase
  workloads::RunConfig config;
  config.replication = 3;  // every node stores the entire input (paper)
  config.params.seed = 5;
  const auto result = workloads::run_job(
      cluster, bench, workloads::InputScale::kSmall, kind, config);

  std::vector<MiB> processed(cluster.num_nodes(), 0.0);
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      processed[task.node] += task.input_mib;
    }
  }
  TextTable table({"Node", "Capacity", "Data processed (MiB)",
                   "Share", "Capacity share"});
  double total_capacity = 0;
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    total_capacity += cluster.machine(n).spec().base_ips;
  }
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    const double cap = cluster.machine(n).spec().base_ips;
    table.add_row({cluster.machine(n).spec().model + " " +
                       std::to_string(n),
                   TextTable::num(cap, 0), TextTable::num(processed[n], 0),
                   TextTable::num(processed[n] / bench.small_input * 100, 1) +
                       "%",
                   TextTable::num(cap / total_capacity * 100, 1) + "%"});
  }
  std::printf("%s: map phase %.1fs, efficiency %.2f\n%s\n",
              workloads::scheduler_label(kind).c_str(),
              result.map_phase_runtime(), result.efficiency(),
              table.str().c_str());

  const std::string series = workloads::scheduler_label(kind);
  artifact.record_seeds({config.params.seed});
  artifact.add_metric(series, "jct", result.jct());
  artifact.add_metric(series, "map_phase_runtime",
                      result.map_phase_runtime());
  artifact.add_metric(series, "efficiency", result.efficiency());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    artifact.add_metric(series, "node" + std::to_string(n) + "_share",
                        processed[n] / bench.small_input);
  }
}

}  // namespace
}  // namespace flexmr::bench

int main() {
  using namespace flexmr;
  bench::print_header(
      "Fig. 2: uniform size + static binding vs. elastic tasks, "
      "3 nodes with capacity 1:1:3, replication 3",
      "stock Hadoop cannot give the fast node its 60% capacity share of "
      "the data; FlexMap matches processed data to capacity");
  bench::BenchArtifact artifact(
      "fig2", "Uniform-size static binding vs elastic tasks, tiny3 cluster");
  bench::run(workloads::SchedulerKind::kHadoopNoSpec, artifact);
  bench::run(workloads::SchedulerKind::kFlexMap, artifact);
  artifact.write();
  return 0;
}
