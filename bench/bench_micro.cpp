// Google-benchmark microbenchmarks for the simulator's hot paths: the
// event queue, the block-location index (LTB's inner loop), speed
// monitoring, and a whole end-to-end simulation as a macro number.
#include <benchmark/benchmark.h>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "flexmap/speed_monitor.hpp"
#include "hdfs/block_index.hpp"
#include "hdfs/namenode.hpp"
#include "simcore/simulator.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<SimTime>(i % 97), [&fired]() { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EventCancellation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(sim.schedule_at(1.0, []() {}));
    }
    for (std::size_t i = 0; i < n; i += 2) sim.cancel(ids[i]);
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EventCancellation)->Arg(1 << 14);

void BM_BlockIndexTakeLocal(benchmark::State& state) {
  // 256 GB at 8 MB BUs on 39 nodes: the fig8-scale index.
  Rng rng(7);
  hdfs::NameNode nn(39, hdfs::PlacementPolicy::kRandom, rng);
  const auto layout = nn.create_file(gib_to_mib(64), 64.0, 3);
  for (auto _ : state) {
    hdfs::BlockLocationIndex index(layout, 39);
    NodeId node = 0;
    while (index.unprocessed() > 0) {
      auto taken = index.take_local(node, 16);
      if (taken.empty()) taken = index.take_remote(node, 16);
      benchmark::DoNotOptimize(taken.size());
      node = (node + 1) % 39;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(layout.bus.size()) *
                          state.iterations());
}
BENCHMARK(BM_BlockIndexTakeLocal);

void BM_SpeedMonitorUpdateQuery(benchmark::State& state) {
  flexmap::SpeedMonitor monitor(40);
  Rng rng(3);
  for (auto _ : state) {
    for (NodeId n = 0; n < 40; ++n) {
      monitor.update(n, rng.uniform(1.0, 20.0));
    }
    benchmark::DoNotOptimize(monitor.slowest());
    benchmark::DoNotOptimize(monitor.fastest());
    for (NodeId n = 0; n < 40; ++n) {
      benchmark::DoNotOptimize(monitor.relative_speed(n));
    }
  }
}
BENCHMARK(BM_SpeedMonitorUpdateQuery);

void BM_FullSimulation(benchmark::State& state) {
  const auto kind = static_cast<workloads::SchedulerKind>(state.range(0));
  for (auto _ : state) {
    auto cluster = cluster::presets::physical12();
    workloads::RunConfig config;
    config.params.seed = 11;
    const auto result =
        workloads::run_job(cluster, workloads::benchmark("WC"),
                           workloads::InputScale::kSmall, kind, config);
    benchmark::DoNotOptimize(result.jct());
  }
}
BENCHMARK(BM_FullSimulation)
    ->Arg(static_cast<int>(workloads::SchedulerKind::kHadoop))
    ->Arg(static_cast<int>(workloads::SchedulerKind::kFlexMap))
    ->Unit(benchmark::kMillisecond);

// Console output as usual, plus every run captured into the shared
// BENCH_micro.json artifact (adjusted real/CPU time per benchmark name).
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  explicit ArtifactReporter(bench::BenchArtifact& artifact)
      : artifact_(artifact) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const auto& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      artifact_.add_metric(name, "real_time", run.GetAdjustedRealTime());
      artifact_.add_metric(name, "cpu_time", run.GetAdjustedCPUTime());
      artifact_.add_metric(name, "iterations",
                           static_cast<double>(run.iterations));
    }
  }

 private:
  bench::BenchArtifact& artifact_;
};

}  // namespace
}  // namespace flexmr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  flexmr::bench::BenchArtifact artifact(
      "micro", "google-benchmark microbenchmarks of simulator hot paths");
  flexmr::ArtifactReporter reporter(artifact);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  artifact.write();
  return 0;
}
