// The pinned golden cases shared by the classic-engine determinism suite
// (test_golden_determinism.cpp) and the sharded-engine byte-identity suite
// (test_sharded_golden.cpp): both must reproduce the same FNV-1a hashes of
// the JobResult JSON, for every scheduler, with and without the canonical
// fault plan — the goldens are the contract that sharding changed the
// execution strategy and not one observable byte.
//
// To regenerate after an *intentional* output change, run with
// FLEXMR_REGEN_GOLDEN=1 (see test_golden_determinism.cpp for the
// procedure) and update the constants here by hand.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/presets.hpp"
#include "faults/fault_plan.hpp"
#include "mr/result_json.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::golden {

inline std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

struct GoldenCase {
  workloads::SchedulerKind kind;
  MiB block_size;
  const char* label;
  std::uint64_t expected;
};

// All four comparison systems of the paper (Fig. 5/6 configuration).
inline constexpr GoldenCase kCases[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB, "Hadoop-128m",
     0x0a1990820730e5d7ull},
    {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, "Hadoop-64m",
     0x9f9a7d1d34b8a063ull},
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB, "SkewTune-64m",
     0x8975dc6c0ed84393ull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB, "FlexMap",
     0x9884f7fe650b6a4aull},
};

// Same four systems under a canonical non-empty fault plan: one silent
// crash with rejoin plus transient attempt and shuffle-fetch failures.
// Pins the whole fault path — injector RNG stream, replica bookkeeping,
// re-replication pipeline, fetch retries — to a byte-stable timeline.
inline constexpr GoldenCase kFaultCases[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB,
     "Faults-Hadoop-128m", 0x952a3362b487103full},
    {workloads::SchedulerKind::kHadoop, kDefaultBlockMiB,
     "Faults-Hadoop-64m", 0x7cf851d06f8ce2afull},
    // Regenerated when stock-derived schedulers learned to re-pend
    // partially-consumed blocks (relaunching only the free remainder):
    // SkewTune's post-crash timeline changed, with exactly-once intact.
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB,
     "Faults-SkewTune-64m", 0xc89a5686d50bcfbfull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB,
     "Faults-FlexMap", 0x4a019693852e41faull},
};

/// The mid-map AM-crash golden pinned by test_recovery.cpp (the ninth
/// hash): crash at t=40 under kHadoop on the same 20-node cluster.
inline constexpr std::uint64_t kMidMapAmCrashGolden = 0xc4fd10a581aa81e8ull;

inline faults::FaultPlan golden_fault_plan() {
  faults::FaultPlan plan;
  plan.crashes = {faults::NodeCrash{3, 25.0, 90.0, true}};
  plan.attempt_failure_prob = 0.05;
  plan.fetch_failure_prob = 0.05;
  return plan;
}

/// One golden run on the paper's 20-node virtual cluster, returning the
/// JobResult JSON. `lanes` > 0 selects the sharded engine (lane_threads
/// worker threads; 0 = auto).
inline std::string run_case(const GoldenCase& c, const faults::FaultPlan& plan,
                            obs::TraceSession* trace = nullptr,
                            std::uint32_t lanes = 0,
                            std::size_t lane_threads = 0) {
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.block_size = c.block_size;
  config.params.seed = 1234;
  config.faults = plan;
  config.trace = trace;
  config.lanes = lanes;
  config.lane_threads = lane_threads;
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         workloads::InputScale::kSmall, c.kind, config);
  return mr::job_result_json(result, cluster);
}

}  // namespace flexmr::golden
