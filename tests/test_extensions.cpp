// Extension features: warm-started iterative jobs (§IV-G direction) and
// delay scheduling for the stock baseline.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "sched/stock.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;

workloads::Benchmark kmeans_small() {
  auto bench = workloads::benchmark("KM");
  bench.small_input = 2048.0;
  return bench;
}

TEST(WarmStart, SecondIterationSkipsTheRamp) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::FlexMapOptions options;
  options.warm_start = true;
  flexmap::FlexMapScheduler scheduler(options);
  const auto results = workloads::run_iterations(
      cluster, kmeans_small(), InputScale::kSmall, scheduler, RunConfig{},
      3);
  ASSERT_EQ(results.size(), 3u);
  // Iteration 1 pays the ramp (many small tasks); later iterations start
  // at the learned sizes, so they launch noticeably fewer maps.
  EXPECT_LT(results[1].map_tasks_launched(),
            results[0].map_tasks_launched());
  EXPECT_LT(results[2].map_tasks_launched(),
            results[0].map_tasks_launched());
}

TEST(WarmStart, ImprovesIterationJct) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::FlexMapOptions warm;
  warm.warm_start = true;
  flexmap::FlexMapScheduler warm_scheduler(warm);
  const auto warm_results = workloads::run_iterations(
      cluster, kmeans_small(), InputScale::kSmall, warm_scheduler,
      RunConfig{}, 3);

  flexmap::FlexMapScheduler cold_scheduler;  // warm_start off
  const auto cold_results = workloads::run_iterations(
      cluster, kmeans_small(), InputScale::kSmall, cold_scheduler,
      RunConfig{}, 3);

  // Same first iteration; warm wins from the second on (small margin on
  // this small job, so compare the sum of later iterations).
  const double warm_later = warm_results[1].jct() + warm_results[2].jct();
  const double cold_later = cold_results[1].jct() + cold_results[2].jct();
  EXPECT_LT(warm_later, cold_later * 1.02);
}

TEST(WarmStart, ColdSchedulerRelearnsEachIteration) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::FlexMapScheduler scheduler;  // cold
  const auto results = workloads::run_iterations(
      cluster, kmeans_small(), InputScale::kSmall, scheduler, RunConfig{},
      2);
  // Without warm start both iterations ramp from 1 BU: similar task count.
  const double ratio =
      static_cast<double>(results[1].map_tasks_launched()) /
      static_cast<double>(results[0].map_tasks_launched());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.3);
}

double mean_locality(const mr::JobResult& result) {
  double sum = 0;
  std::size_t n = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      sum += task.local_fraction;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

TEST(DelayScheduling, ImprovesLocality) {
  // Replication 1 makes locality scarce, so remote steals are common
  // without the wait.
  auto run = [](SimDuration wait) {
    auto cluster = cluster::presets::heterogeneous6();
    sched::StockHadoopScheduler scheduler(
        sched::StockOptions{.speculation = false,
                            .locality_wait_s = wait,
                            .late = {}});
    auto bench = workloads::benchmark("WC");
    bench.small_input = 2048.0;
    RunConfig config;
    config.replication = 1;
    return workloads::run_job(cluster, bench, InputScale::kSmall,
                              scheduler, config);
  };
  const auto eager = run(0.0);
  const auto waiting = run(10.0);
  EXPECT_GT(mean_locality(waiting), mean_locality(eager));
  // And every BU still processed exactly once.
  std::size_t credited = 0;
  for (const auto& task : waiting.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, 256u);
}

TEST(DelayScheduling, ZeroWaitMatchesDefaultBehavior) {
  auto cluster = cluster::presets::homogeneous6();
  sched::StockHadoopScheduler with_zero(
      sched::StockOptions{.speculation = false, .locality_wait_s = 0.0,
                          .late = {}});
  auto bench = workloads::benchmark("WC");
  bench.small_input = 1024.0;
  const auto a = workloads::run_job(cluster, bench, InputScale::kSmall,
                                    with_zero, RunConfig{});
  auto cluster2 = cluster::presets::homogeneous6();
  const auto b = workloads::run_job(cluster2, bench, InputScale::kSmall,
                                    workloads::SchedulerKind::kHadoopNoSpec,
                                    RunConfig{});
  EXPECT_DOUBLE_EQ(a.jct(), b.jct());
}

}  // namespace
}  // namespace flexmr
