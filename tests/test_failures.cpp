// Failure injection: node loss, task re-execution, and the exactly-once
// invariant under failures, across all schedulers.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark bench_with(MiB input, double shuffle) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

void check_exactly_once(const mr::JobResult& result,
                        std::size_t total_bus) {
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, total_bus);
}

class FailureSweep : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(FailureSweep, MidMapPhaseFailureStillCompletes) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.node_failures = {{2, 20.0}};  // mid map phase
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  check_exactly_once(result, 256);
  // The dead node ran nothing after t=20.
  for (const auto& task : result.tasks) {
    if (task.node == 2) {
      EXPECT_LT(task.dispatch_time, 20.0 + 1e-9);
    }
  }
}

TEST_P(FailureSweep, LostOutputsAreReexecuted) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  // 4096 MiB → ~2.7 waves of 64 MB maps (~25 s map phase); at t=12 the
  // first wave on node 0 has completed but the phase is far from done.
  config.node_failures = {{0, 12.0}};
  const auto result = workloads::run_job(
      cluster, bench_with(4096.0, 0.5), InputScale::kSmall, GetParam(),
      config);
  check_exactly_once(result, 512);
  // Node 0 completed maps before dying; those must be marked lost.
  EXPECT_GT(result.count(mr::TaskKind::kMap, mr::TaskStatus::kLostOutput),
            0u)
      << workloads::scheduler_label(GetParam());
}

TEST_P(FailureSweep, MapOnlyJobKeepsDeadNodesOutputs) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.node_failures = {{1, 30.0}};
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.0), InputScale::kSmall, GetParam(),
      config);
  // Map-only output is committed to HDFS: nothing is "lost", only the
  // node's running tasks re-execute.
  EXPECT_EQ(result.count(mr::TaskKind::kMap, mr::TaskStatus::kLostOutput),
            0u);
  check_exactly_once(result, 256);
}

TEST_P(FailureSweep, FailureDuringReducePhaseRequeuesReducers) {
  auto cluster = cluster::presets::homogeneous6();
  // First find when the map phase ends, then fail just after it.
  RunConfig probe;
  const auto reference = workloads::run_job(
      cluster, bench_with(1024.0, 1.0), InputScale::kSmall, GetParam(),
      probe);
  const SimTime fail_at =
      reference.map_phase_end + reference.jct() * 0.02 + 1.0;
  RunConfig config;
  config.node_failures = {{3, fail_at}};
  auto cluster2 = cluster::presets::homogeneous6();
  const auto result = workloads::run_job(
      cluster2, bench_with(1024.0, 1.0), InputScale::kSmall, GetParam(),
      config);
  // All reducers still complete, none on the dead node after the failure.
  EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            reference.count(mr::TaskKind::kReduce,
                            mr::TaskStatus::kCompleted));
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kReduce) {
      EXPECT_TRUE(task.node != 3 || task.end_time <= fail_at + 1e-9);
    }
  }
}

TEST_P(FailureSweep, MultipleFailures) {
  auto cluster = cluster::presets::physical12();
  RunConfig config;
  config.node_failures = {{5, 15.0}, {9, 40.0}};
  const auto result = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  check_exactly_once(result, 256);
}

TEST_P(FailureSweep, FailureCostsTimeButBoundedly) {
  auto baseline_cluster = cluster::presets::homogeneous6();
  const auto baseline = workloads::run_job(
      baseline_cluster, bench_with(2048.0, 0.25), InputScale::kSmall,
      GetParam(), RunConfig{});
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.node_failures = {{2, 20.0}};
  const auto failed = workloads::run_job(
      cluster, bench_with(2048.0, 0.25), InputScale::kSmall, GetParam(),
      config);
  EXPECT_GT(failed.jct(), baseline.jct() * 0.95);
  EXPECT_LT(failed.jct(), baseline.jct() * 2.5);  // recovery, not collapse
}

std::string failure_param_name(
    const ::testing::TestParamInfo<SchedulerKind>& info) {
  std::string label = workloads::scheduler_label(info.param);
  std::erase_if(label, [](char c) {
    return !std::isalnum(static_cast<unsigned char>(c));
  });
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, FailureSweep,
    ::testing::Values(SchedulerKind::kHadoop, SchedulerKind::kHadoopNoSpec,
                      SchedulerKind::kSkewTune, SchedulerKind::kFlexMap),
    failure_param_name);

TEST(Failures, SchedulingAfterRunStartThrows) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto layout = workloads::make_layout(
      workloads::benchmark("WC"), InputScale::kSmall, cluster.num_nodes(),
      64.0, 3, 1);
  auto spec = workloads::to_job_spec(workloads::benchmark("WC"),
                                     InputScale::kSmall);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  mr::JobDriver driver(sim, cluster, layout, spec, mr::SimParams{},
                       *scheduler);
  driver.run();
  EXPECT_THROW(driver.schedule_node_failure(0, 1e9), InvariantError);
}

TEST(Failures, DeadNodeSlotsWithdrawnFromRm) {
  auto cluster = cluster::presets::homogeneous6();
  yarn::ResourceManager rm(cluster);
  const auto before = rm.total_slots();
  rm.mark_dead(2);
  EXPECT_TRUE(rm.is_dead(2));
  EXPECT_EQ(rm.total_slots(), before - cluster.machine(2).slots());
  EXPECT_EQ(rm.free_slots(2), 0u);
  rm.release(2);  // ignored
  EXPECT_EQ(rm.free_slots(2), 0u);
  rm.mark_dead(2);  // idempotent
  EXPECT_EQ(rm.total_slots(), before - cluster.machine(2).slots());
}

}  // namespace
}  // namespace flexmr
