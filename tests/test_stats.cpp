// Statistics accumulators: correctness of moments, quantiles, histograms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace flexmr {
namespace {

TEST(OnlineStats, EmptyAndSingle) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Sample variance of 1..100 = n(n+1)/12 = 841.66...
  EXPECT_NEAR(s.variance(), 841.6666666, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(OnlineStats, MergeEqualsConcatenation) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsNoop) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 2.0);  // interpolated
}

TEST(SampleSet, AddAfterQuantileResorts) {
  SampleSet s;
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSet, CvZeroMeanAndConstant) {
  SampleSet s;
  s.add(5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SampleSet, NormalizeByMax) {
  SampleSet s;
  s.add(2.0);
  s.add(4.0);
  s.add(8.0);
  s.normalize_by_max();
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.25);
  EXPECT_DOUBLE_EQ(s.sum(), 0.25 + 0.5 + 1.0);
}

TEST(SampleSet, NormalizeEmptyIsNoop) {
  SampleSet s;
  s.normalize_by_max();  // must not crash
  EXPECT_TRUE(s.empty());
}

TEST(Histogram, BinningAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_count(b), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(b), 0.1);
    EXPECT_DOUBLE_EQ(h.density(b), 0.1);  // 1/(10 * width 1)
  }
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(2.0, 6.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 5.5);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.5);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

}  // namespace
}  // namespace flexmr
