// Erasure-coded storage tier: rs(k,m) striped placement, degraded reads,
// the part-repair pipeline, per-disk fault domains, and the structured
// DataLossError when a stripe loses read quorum.
//
// The pinned rs(6,3) golden hashes follow the same FLEXMR_REGEN_GOLDEN
// procedure as tests/golden_cases.hpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "cluster/presets.hpp"
#include "common/error.hpp"
#include "faults/fault_plan.hpp"
#include "hdfs/block_index.hpp"
#include "hdfs/namenode.hpp"
#include "hdfs/replica_manager.hpp"
#include "mr/result_json.hpp"
#include "tests/golden_cases.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using golden::fnv1a;
using golden::golden_fault_plan;
using hdfs::StoragePolicy;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// The canonical fault plan with a wider attempt budget: rs(6,3) scales
/// locality credit by 1/k, so remote-heavy attempts run longer and
/// SkewTune's mitigation churn re-draws the 5% attempt-failure coin often
/// enough to exhaust the stock budget of 4 on one unlucky BU. The larger
/// budget keeps all four schedulers completing, so the goldens pin full
/// (not aborted) timelines.
faults::FaultPlan erasure_fault_plan() {
  auto plan = golden_fault_plan();
  plan.max_attempts = 8;
  return plan;
}

mr::JobResult run_erasure(workloads::SchedulerKind kind, MiB block_size,
                          const faults::FaultPlan& plan,
                          StoragePolicy storage = StoragePolicy::rs(6, 3)) {
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.block_size = block_size;
  config.params.seed = 1234;
  config.faults = plan;
  config.storage = storage;
  return workloads::run_job(cluster, workloads::benchmark("WC"),
                            workloads::InputScale::kSmall, kind, config);
}

std::string run_erasure_json(workloads::SchedulerKind kind, MiB block_size,
                             const faults::FaultPlan& plan) {
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.block_size = block_size;
  config.params.seed = 1234;
  config.faults = plan;
  config.storage = StoragePolicy::rs(6, 3);
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         workloads::InputScale::kSmall, kind, config);
  return mr::job_result_json(result, cluster);
}

std::size_t count_events(const mr::JobResult& result,
                         faults::FaultEventType type) {
  std::size_t n = 0;
  for (const auto& event : result.fault_events) {
    if (event.type == type) ++n;
  }
  return n;
}

struct ReadTotals {
  std::uint64_t bus = 0;
  MiB mib = 0;
};

/// Records and bytes credited to completed map work — what the job
/// actually consumed, healthy or degraded.
ReadTotals credited_totals(const mr::JobResult& result) {
  ReadTotals totals;
  for (const auto& task : result.tasks) {
    if (task.kind != mr::TaskKind::kMap || !task.credited()) continue;
    totals.bus += task.num_bus;
    totals.mib += task.input_mib;
  }
  return totals;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(ErasurePlacement, StripesOntoKPlusMDistinctNodes) {
  hdfs::NameNode nn(20, hdfs::PlacementPolicy::kRandom, Rng(1234));
  const auto layout =
      nn.create_file(64.0 * 30, 64.0, 3, 8.0, StoragePolicy::rs(6, 3));
  EXPECT_TRUE(layout.storage.erasure());
  EXPECT_EQ(layout.min_live(), 6u);
  EXPECT_EQ(layout.target_holders(), 9u);
  for (const auto& block : layout.blocks) {
    ASSERT_EQ(block.replicas.size(), 9u);
    std::set<NodeId> distinct(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(distinct.size(), 9u);
  }
}

TEST(ErasurePlacement, DefaultPolicyIsPlainReplication) {
  StoragePolicy storage;
  EXPECT_FALSE(storage.erasure());
  EXPECT_EQ(storage.min_live(), 1u);
  EXPECT_DOUBLE_EQ(storage.overhead(3), 3.0);
  EXPECT_DOUBLE_EQ(StoragePolicy::rs(6, 3).overhead(3), 1.5);
}

// ---------------------------------------------------------------------------
// Config validation (satellite: [storage] + disk-fault knobs)
// ---------------------------------------------------------------------------

TEST(ErasureValidation, RejectsDegenerateCodes) {
  {
    auto p = StoragePolicy::rs(0, 3);
    EXPECT_THROW(p.validate(20), ConfigError);
  }
  {
    auto p = StoragePolicy::rs(6, 0);
    EXPECT_THROW(p.validate(20), ConfigError);
  }
  {
    // k + m = 21 holders cannot be distinct on 20 nodes.
    auto p = StoragePolicy::rs(15, 6);
    EXPECT_THROW(p.validate(20), ConfigError);
  }
  {
    auto p = StoragePolicy::rs(6, 3);
    p.decode_mibps = -1.0;
    EXPECT_THROW(p.validate(20), ConfigError);
  }
  {
    auto p = StoragePolicy::rs(6, 3);
    p.repair_bandwidth_mibps = 0.0;
    EXPECT_THROW(p.validate(20), ConfigError);
  }
  EXPECT_NO_THROW(StoragePolicy::rs(6, 3).validate(20));
}

TEST(ErasureValidation, RunRejectsCodeWiderThanNodesAliveAtStart) {
  // rs(14,6) fits 20 nodes — but one node is already down when the file
  // is written, so only 19 distinct holders exist at t=0.
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.params.seed = 1234;
  config.storage = StoragePolicy::rs(14, 6);
  config.faults.crashes = {
      faults::NodeCrash{2, 0.0, std::nullopt, /*silent=*/false}};
  EXPECT_THROW(workloads::run_job(cluster, workloads::benchmark("WC"),
                                  workloads::InputScale::kSmall,
                                  workloads::SchedulerKind::kHadoop, config),
               ConfigError);
}

TEST(ErasureValidation, RejectsBadDiskFaultKnobs) {
  {
    faults::FaultPlan plan;
    plan.disks_per_node = 0;
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;
    plan.disk_faults = {faults::DiskFault{9, 0, 10.0}};  // node out of range
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;
    plan.disk_faults = {faults::DiskFault{1, 4, 10.0}};  // disk >= 4
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;
    plan.disk_faults = {faults::DiskFault{1, 2, -1.0}};  // negative time
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;  // the same disk cannot die twice
    plan.disk_faults = {faults::DiskFault{1, 2, 10.0},
                        faults::DiskFault{1, 2, 50.0}};
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;  // degenerate window
    plan.disk_degradations = {faults::DiskDegradedWindow{1, 2, 30.0, 30.0,
                                                         0.5}};
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;  // factor outside (0, 1]
    plan.disk_degradations = {faults::DiskDegradedWindow{1, 2, 10.0, 30.0,
                                                         1.5}};
    EXPECT_THROW(plan.validate(6), ConfigError);
  }
  {
    faults::FaultPlan plan;
    plan.disk_faults = {faults::DiskFault{1, 2, 10.0}};
    plan.disk_degradations = {faults::DiskDegradedWindow{2, 3, 10.0, 30.0,
                                                         0.5}};
    EXPECT_NO_THROW(plan.validate(6));
    EXPECT_FALSE(plan.empty());
  }
}

TEST(ErasureValidation, DiskDegradationFactorIsMinOfActiveWindows) {
  faults::FaultPlan plan;
  plan.disk_degradations = {
      faults::DiskDegradedWindow{1, 2, 10.0, 30.0, 0.5},
      faults::DiskDegradedWindow{1, 2, 20.0, 40.0, 0.25},
  };
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(1, 2, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(1, 2, 15.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(1, 2, 25.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(1, 2, 35.0), 0.25);
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(1, 3, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(plan.disk_degradation_factor(2, 2, 25.0), 1.0);
}

// ---------------------------------------------------------------------------
// NameNode live view: per-disk loss
// ---------------------------------------------------------------------------

class DiskLossTest : public ::testing::Test {
 protected:
  DiskLossTest()
      : nn_(hdfs::NameNode(6, hdfs::PlacementPolicy::kRandom, Rng(7))),
        layout_(nn_.create_file(64.0 * 12, 64.0, 3, 8.0,
                                StoragePolicy::rs(2, 1))),
        mgr_(layout_, 6) {}

  hdfs::NameNode nn_;
  hdfs::FileLayout layout_;
  hdfs::ReplicaManager mgr_;
};

TEST_F(DiskLossTest, DiskLossDropsOnlyThatDisksParts) {
  const auto& block = layout_.blocks[0];
  const NodeId holder = block.replicas[0];
  const std::uint32_t disk = hdfs::ReplicaManager::disk_of(0, holder, 4);
  const auto report = mgr_.on_disk_lost(holder, disk, 4);
  EXPECT_FALSE(report.lost.empty());
  for (const std::uint32_t b : report.lost) {
    EXPECT_EQ(hdfs::ReplicaManager::disk_of(b, holder, 4), disk);
    EXPECT_FALSE(mgr_.holds_live(b, holder));
  }
  EXPECT_EQ(mgr_.live_holder_count(0), 2u);
  EXPECT_TRUE(report.zero.empty()) << "k=2 survivors keep quorum";
  // The same disk dying again is a no-op: its data is already gone.
  const auto again = mgr_.on_disk_lost(holder, disk, 4);
  EXPECT_TRUE(again.lost.empty());
}

TEST_F(DiskLossTest, LosingQuorumMarksBlockUnreadable) {
  const auto& block = layout_.blocks[0];
  EXPECT_FALSE(mgr_.has_unreadable_blocks());
  // Destroy parts on two of the three holders: 1 live part < k=2.
  for (int i = 0; i < 2; ++i) {
    const NodeId holder = block.replicas[i];
    mgr_.on_disk_lost(holder, hdfs::ReplicaManager::disk_of(0, holder, 4),
                      4);
  }
  EXPECT_EQ(mgr_.live_holder_count(0), 1u);
  EXPECT_TRUE(mgr_.has_unreadable_blocks());
  // A disk loss survives the holder's crash/rejoin cycle: the block
  // report cannot resurrect destroyed media.
  const NodeId dead = block.replicas[0];
  mgr_.on_node_lost(dead);
  mgr_.on_node_restored(dead);
  EXPECT_FALSE(mgr_.holds_live(0, dead));
  EXPECT_EQ(mgr_.live_holder_count(0), 1u);
}

TEST_F(DiskLossTest, RepairReconstructsLostPartAtKTimesReadCost) {
  Simulator sim;
  mgr_.enable_re_replication(sim, 64.0);  // one 64-MiB part per second
  std::uint32_t done_block = faults::kInvalidBlock;
  NodeId done_target = kInvalidNode;
  mgr_.set_copy_complete_handler([&](std::uint32_t block, NodeId target) {
    done_block = block;
    done_target = target;
  });
  const NodeId holder = layout_.blocks[0].replicas[0];
  const std::uint32_t disk = hdfs::ReplicaManager::disk_of(0, holder, 4);
  const auto report = mgr_.on_disk_lost(holder, disk, 4);
  ASSERT_FALSE(report.lost.empty());
  EXPECT_GT(mgr_.under_replicated_count(), 0u);
  while (sim.step()) {
  }
  EXPECT_EQ(mgr_.under_replicated_count(), 0u);
  EXPECT_EQ(mgr_.parts_reconstructed(), report.lost.size());
  // Each reconstructed part reads k surviving parts = one full block.
  EXPECT_DOUBLE_EQ(mgr_.repair_read_mib(),
                   64.0 * static_cast<double>(report.lost.size()));
  EXPECT_NE(done_block, faults::kInvalidBlock);
  EXPECT_NE(done_target, kInvalidNode);
}

TEST(BlockIndexDiskLoss, DroppedReplicaLeavesLocalPoolAndStaysLost) {
  hdfs::NameNode nn(6, hdfs::PlacementPolicy::kRandom, Rng(7));
  const auto layout = nn.create_file(64.0 * 12, 64.0, 3, 8.0);
  hdfs::BlockLocationIndex index(layout, 6);
  const auto& block = layout.blocks[0];
  const NodeId holder = block.replicas[0];
  const std::size_t before = index.local_count(holder);
  index.drop_replica(block, holder);
  EXPECT_EQ(index.local_count(holder), before - block.bus.size());
  auto taken = index.take_local(holder, layout.bus.size());
  for (const BlockUnitId bu : taken) {
    EXPECT_NE(layout.bus[bu].block, block.id)
        << "dropped block must not bind locally";
  }
  index.put_back(taken);
  // Deactivate/restore (crash + rejoin block report) must not resurrect
  // the destroyed copy...
  index.deactivate_node(holder);
  index.restore_node(holder);
  EXPECT_EQ(index.local_count(holder), before - block.bus.size());
  // ...but a repair landing the data back on the node re-arms it.
  index.add_replica(block, holder);
  EXPECT_EQ(index.local_count(holder), before);
  index.drop_replica(block, holder);  // idempotent on a second loss
  index.drop_replica(block, holder);
  EXPECT_EQ(index.local_count(holder), before - block.bus.size());
}

// ---------------------------------------------------------------------------
// Pinned rs(6,3) goldens — one per scheduler, under the canonical fault
// plan, so the degraded-read + repair timeline is byte-stable.
// ---------------------------------------------------------------------------

struct ErasureGoldenCase {
  workloads::SchedulerKind kind;
  MiB block_size;
  const char* label;
  std::uint64_t expected;
};

constexpr ErasureGoldenCase kErasureGoldens[] = {
    {workloads::SchedulerKind::kHadoop, kLargeBlockMiB,
     "Erasure-Hadoop-128m", 0xb255e40d5c5ae8a7ull},
    {workloads::SchedulerKind::kHadoopNoSpec, kDefaultBlockMiB,
     "Erasure-HadoopNoSpec-64m", 0xc130a798c9a79397ull},
    {workloads::SchedulerKind::kSkewTune, kDefaultBlockMiB,
     "Erasure-SkewTune-64m", 0xc0b3179751aae531ull},
    {workloads::SchedulerKind::kFlexMap, kDefaultBlockMiB,
     "Erasure-FlexMap", 0x2258112b5d194b41ull},
};

TEST(ErasureGolden, Rs63FaultTimelineMatchesGolden) {
  const bool regen = std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr;
  const auto plan = erasure_fault_plan();
  bool all_match = true;
  for (const auto& c : kErasureGoldens) {
    const std::uint64_t hash =
        fnv1a(run_erasure_json(c.kind, c.block_size, plan));
    if (regen) {
      std::printf("    {workloads::SchedulerKind::k..., ..., \"%s\",\n"
                  "     0x%016llxull},\n",
                  c.label, static_cast<unsigned long long>(hash));
      all_match = false;
      continue;
    }
    EXPECT_EQ(hash, c.expected) << c.label;
    all_match = all_match && hash == c.expected;
  }
  if (regen) {
    FAIL() << "FLEXMR_REGEN_GOLDEN set: hashes printed above; update "
              "kErasureGoldens and re-run without the env var";
  }
  EXPECT_TRUE(all_match);
}

// ---------------------------------------------------------------------------
// Degraded reads + repair
// ---------------------------------------------------------------------------

TEST(ErasureDegradedReads, TotalsMatchHealthyRun) {
  // A permanent crash kills one part of every stripe the node held;
  // unread stripes decode from survivors. The job must still consume
  // exactly the same records and bytes as the healthy run.
  faults::FaultPlan crash;
  crash.crashes = {faults::NodeCrash{3, 25.0, std::nullopt,
                                     /*silent=*/false}};
  const auto healthy =
      run_erasure(workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, {});
  const auto degraded = run_erasure(workloads::SchedulerKind::kHadoop,
                                    kDefaultBlockMiB, crash);
  EXPECT_FALSE(healthy.aborted);
  EXPECT_FALSE(degraded.aborted);
  EXPECT_EQ(healthy.degraded_reads, 0u);
  EXPECT_GT(degraded.degraded_reads, 0u);
  EXPECT_GT(degraded.decode_mib, 0.0);
  const auto h = credited_totals(healthy);
  const auto d = credited_totals(degraded);
  EXPECT_EQ(h.bus, d.bus);
  EXPECT_NEAR(h.mib, d.mib, 1e-6);
  EXPECT_GT(count_events(degraded, faults::FaultEventType::kPartLost), 0u);
}

TEST(ErasureDegradedReads, RepairRestoresPartsAndPricesTraffic) {
  faults::FaultPlan crash;
  crash.crashes = {faults::NodeCrash{3, 25.0, std::nullopt,
                                     /*silent=*/false}};
  const auto result = run_erasure(workloads::SchedulerKind::kFlexMap,
                                  kDefaultBlockMiB, crash);
  EXPECT_FALSE(result.aborted);
  EXPECT_GT(result.parts_reconstructed, 0u);
  // k× amplification: every reconstructed part reads one full block.
  EXPECT_NEAR(result.repair_read_mib,
              kDefaultBlockMiB *
                  static_cast<double>(result.parts_reconstructed),
              1e-6);
  EXPECT_EQ(
      count_events(result, faults::FaultEventType::kPartReconstructed),
      static_cast<std::size_t>(result.parts_reconstructed));
  EXPECT_EQ(count_events(result, faults::FaultEventType::kReReplicated),
            0u);
}

TEST(ErasureDegradedReads, RepairRunsAreByteDeterministic) {
  const auto plan = erasure_fault_plan();
  EXPECT_EQ(run_erasure_json(workloads::SchedulerKind::kHadoop,
                             kDefaultBlockMiB, plan),
            run_erasure_json(workloads::SchedulerKind::kHadoop,
                             kDefaultBlockMiB, plan));
}

TEST(ErasureDiskFaults, SingleDiskLossDegradesAndRepairs) {
  faults::FaultPlan plan;
  plan.disk_faults = {faults::DiskFault{2, 1, 10.0}};
  const auto result = run_erasure(workloads::SchedulerKind::kHadoop,
                                  kDefaultBlockMiB, plan);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(count_events(result, faults::FaultEventType::kDiskFault), 1u);
  EXPECT_GT(count_events(result, faults::FaultEventType::kPartLost), 0u);
  EXPECT_GT(result.parts_reconstructed, 0u);
  // Sanity: the run consumed the whole input despite the dead disk.
  const auto healthy =
      run_erasure(workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, {});
  EXPECT_EQ(credited_totals(result).bus, credited_totals(healthy).bus);
}

TEST(ErasureDiskFaults, ReplicationDiskLossDropsReplicas) {
  // The disk fault domain also applies to plain replication: the disk's
  // replicas are gone (replica-lost, not part-lost) and re-replication
  // restores them.
  faults::FaultPlan plan;
  plan.disk_faults = {faults::DiskFault{2, 1, 10.0}};
  auto cluster = cluster::presets::virtual20();
  workloads::RunConfig config;
  config.params.seed = 1234;
  config.faults = plan;
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         workloads::InputScale::kSmall,
                         workloads::SchedulerKind::kHadoop, config);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(count_events(result, faults::FaultEventType::kDiskFault), 1u);
  EXPECT_GT(count_events(result, faults::FaultEventType::kReplicaLost), 0u);
  EXPECT_EQ(count_events(result, faults::FaultEventType::kPartLost), 0u);
  EXPECT_EQ(result.degraded_reads, 0u);
}

// ---------------------------------------------------------------------------
// Data loss: > m parts gone
// ---------------------------------------------------------------------------

TEST(ErasureDataLoss, MoreThanMPartsLostAbortsWithLostBlocks) {
  // rs(2,1): losing 2 of a stripe's 3 parts destroys it. Kill all nodes
  // but node 0 early — nearly every stripe loses quorum while unread.
  // (virtual20 = 19 worker VMs, §IV-A.)
  faults::FaultPlan plan;
  for (NodeId node = 1; node < 19; ++node) {
    plan.crashes.push_back(
        faults::NodeCrash{node, 5.0, std::nullopt, /*silent=*/false});
  }
  try {
    run_erasure(workloads::SchedulerKind::kHadoop, kDefaultBlockMiB, plan,
                StoragePolicy::rs(2, 1));
    FAIL() << "expected DataLossError";
  } catch (const mr::DataLossError& e) {
    EXPECT_FALSE(e.lost_blocks().empty());
    EXPECT_TRUE(e.result().aborted);
    const std::string what = e.what();
    EXPECT_NE(what.find("more than 1 parts"), std::string::npos) << what;
    EXPECT_GT(count_events(e.result(), faults::FaultEventType::kDataLoss),
              0u);
  }
}

// ---------------------------------------------------------------------------
// JSON surface (satellite: knobs exported only when non-default)
// ---------------------------------------------------------------------------

TEST(ErasureJson, StorageSectionOnlyForErasureRuns) {
  const auto plain = golden::run_case(golden::kCases[1], {});
  EXPECT_EQ(plain.find("\"storage\""), std::string::npos);

  const auto striped = run_erasure_json(workloads::SchedulerKind::kHadoop,
                                        kDefaultBlockMiB, {});
  EXPECT_NE(striped.find("\"storage\":{\"policy\":\"rs\",\"k\":6,\"m\":3"),
            std::string::npos);
  EXPECT_NE(striped.find("\"storage_overhead\":1.5"), std::string::npos);
}

TEST(ErasureJson, DiskFaultPlanIsExportedOnlyWhenPresent) {
  const auto plain = golden::run_case(golden::kCases[1], {});
  EXPECT_EQ(plain.find("\"disk_faults\""), std::string::npos);
  EXPECT_EQ(plain.find("\"disks_per_node\""), std::string::npos);

  faults::FaultPlan plan;
  plan.disks_per_node = 6;
  plan.disk_faults = {faults::DiskFault{2, 1, 10.0}};
  plan.disk_degradations = {faults::DiskDegradedWindow{3, 0, 5.0, 25.0,
                                                       0.5}};
  const auto result = run_erasure(workloads::SchedulerKind::kHadoop,
                                  kDefaultBlockMiB, plan);
  auto cluster = cluster::presets::virtual20();
  const auto json = mr::job_result_json(result);
  EXPECT_NE(json.find("\"disks_per_node\":6"), std::string::npos);
  EXPECT_NE(json.find("\"disk_faults\":[{\"node\":2,\"disk\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"disk_degradations\":[{\"node\":3"),
            std::string::npos);
  EXPECT_NE(json.find("\"degraded_reads\""), std::string::npos);
}

}  // namespace
}  // namespace flexmr
