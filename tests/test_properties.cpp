// Property-based sweeps (parameterized gtest): the invariants that make
// the simulator's experiment results trustworthy, checked across the cross
// product of scheduler × cluster × workload profile × seed.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "cluster/presets.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

enum class ClusterKind { kHomog6, kHetero6, kVirtual20, kTiny3 };

cluster::Cluster make_cluster(ClusterKind kind) {
  switch (kind) {
    case ClusterKind::kHomog6: return cluster::presets::homogeneous6();
    case ClusterKind::kHetero6: return cluster::presets::heterogeneous6();
    case ClusterKind::kVirtual20: return cluster::presets::virtual20();
    case ClusterKind::kTiny3: return cluster::presets::tiny3();
  }
  throw std::logic_error("bad cluster kind");
}

const char* cluster_name(ClusterKind kind) {
  switch (kind) {
    case ClusterKind::kHomog6: return "Homog6";
    case ClusterKind::kHetero6: return "Hetero6";
    case ClusterKind::kVirtual20: return "Virtual20";
    case ClusterKind::kTiny3: return "Tiny3";
  }
  return "?";
}

using Param = std::tuple<SchedulerKind, ClusterKind, const char*,
                         std::uint64_t>;

class InvariantSweep : public ::testing::TestWithParam<Param> {
 protected:
  mr::JobResult run() {
    const auto [sched, clu, bench_code, seed] = GetParam();
    auto cluster = make_cluster(clu);
    auto bench = workloads::benchmark(bench_code);
    bench.small_input = 768.0;  // 96 BUs: fast but multi-wave
    RunConfig config;
    config.params.seed = seed;
    total_bus_ = 96;
    total_slots_ = cluster.total_slots();
    return workloads::run_job(cluster, bench, InputScale::kSmall, sched,
                              config);
  }

  std::size_t total_bus_ = 0;
  std::uint32_t total_slots_ = 0;
};

TEST_P(InvariantSweep, EveryBuProcessedExactlyOnce) {
  const auto result = run();
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, total_bus_);
}

TEST_P(InvariantSweep, TaskTimelinesAreOrdered) {
  const auto result = run();
  for (const auto& task : result.tasks) {
    EXPECT_GE(task.end_time, task.dispatch_time);
    if (task.status == mr::TaskStatus::kCompleted &&
        task.kind == mr::TaskKind::kMap) {
      EXPECT_GT(task.compute_start, task.dispatch_time);
      EXPECT_GE(task.end_time, task.compute_start);
    }
  }
}

TEST_P(InvariantSweep, ConcurrencyNeverExceedsSlots) {
  const auto result = run();
  // Sweep task intervals per node and check the max overlap against the
  // node's slot count.
  std::map<NodeId, std::vector<std::pair<SimTime, int>>> events;
  for (const auto& task : result.tasks) {
    events[task.node].push_back({task.dispatch_time, +1});
    events[task.node].push_back({task.end_time, -1});
  }
  auto cluster = make_cluster(std::get<1>(GetParam()));
  for (auto& [node, list] : events) {
    std::sort(list.begin(), list.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;  // ends before starts at ties
              });
    int depth = 0;
    for (const auto& [time, delta] : list) {
      depth += delta;
      EXPECT_LE(depth, static_cast<int>(cluster.machine(node).slots()))
          << "node " << node << " at t=" << time;
    }
  }
}

TEST_P(InvariantSweep, EfficiencyWithinBounds) {
  const auto result = run();
  EXPECT_GT(result.efficiency(), 0.0);
  EXPECT_LE(result.efficiency(), 1.0 + 1e-9);
}

TEST_P(InvariantSweep, ProductivityWithinBounds) {
  const auto result = run();
  for (const auto& task : result.tasks) {
    EXPECT_GE(task.productivity(), 0.0);
    EXPECT_LE(task.productivity(), 1.0);
  }
}

TEST_P(InvariantSweep, PhaseBoundariesConsistent) {
  const auto result = run();
  EXPECT_LE(result.submit_time, result.map_phase_start);
  EXPECT_LE(result.map_phase_start, result.map_phase_end);
  EXPECT_LE(result.map_phase_end, result.finish_time + 1e-9);
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap) {
      EXPECT_LE(task.end_time, result.map_phase_end + 1e-9);
    } else {
      EXPECT_GE(task.dispatch_time, result.map_phase_end - 1e-9);
    }
  }
}

TEST_P(InvariantSweep, DeterministicRepeatability) {
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  EXPECT_DOUBLE_EQ(a.jct(), b.jct());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].node, b.tasks[i].node);
    EXPECT_DOUBLE_EQ(a.tasks[i].end_time, b.tasks[i].end_time);
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [sched, clu, bench, seed] = info.param;
  std::string label = workloads::scheduler_label(sched);
  std::erase_if(label, [](char c) {
    return !std::isalnum(static_cast<unsigned char>(c));
  });
  return label + "_" + cluster_name(clu) + "_" + bench + "_" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulersClusters, InvariantSweep,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::kHadoop,
                          SchedulerKind::kHadoopNoSpec,
                          SchedulerKind::kSkewTune, SchedulerKind::kFlexMap),
        ::testing::Values(ClusterKind::kHomog6, ClusterKind::kHetero6,
                          ClusterKind::kVirtual20, ClusterKind::kTiny3),
        ::testing::Values("WC", "TS"),
        ::testing::Values(1ull, 42ull)),
    param_name);

// A focused sweep over block sizes for the stock scheduler: the block size
// must never change *what* is processed, only how it is chunked.
class BlockSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(BlockSizeSweep, AllInputProcessedAtAnyBlockSize) {
  auto cluster = cluster::presets::heterogeneous6();
  auto bench = workloads::benchmark("WC");
  bench.small_input = 768.0;
  RunConfig config;
  config.block_size = GetParam();
  const auto result = workloads::run_job(
      cluster, bench, InputScale::kSmall, SchedulerKind::kHadoopNoSpec,
      config);
  MiB processed = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      processed += task.input_mib;
    }
  }
  EXPECT_NEAR(processed, 768.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockSizeSweep,
                         ::testing::Values(8.0, 16.0, 32.0, 64.0, 128.0,
                                           256.0));

}  // namespace
}  // namespace flexmr
