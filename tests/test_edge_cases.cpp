// Edge cases: degenerate inputs, degenerate clusters, odd geometry.
#include <gtest/gtest.h>

#include <string>

#include "cluster/presets.hpp"
#include "common/error.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark wc(MiB input, double shuffle = 0.25) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

const SchedulerKind kAll[] = {SchedulerKind::kHadoop,
                              SchedulerKind::kHadoopNoSpec,
                              SchedulerKind::kSkewTune,
                              SchedulerKind::kFlexMap};

TEST(EdgeCases, SingleBuJob) {
  for (const auto kind : kAll) {
    auto cluster = cluster::presets::homogeneous6();
    const auto result = workloads::run_job(cluster, wc(8.0),
                                           InputScale::kSmall, kind,
                                           RunConfig{});
    EXPECT_EQ(result.map_tasks_launched(), 1u)
        << workloads::scheduler_label(kind);
    EXPECT_GT(result.jct(), 0.0);
  }
}

TEST(EdgeCases, SubBuJob) {
  // 3 MiB: less than one block unit.
  for (const auto kind : kAll) {
    auto cluster = cluster::presets::homogeneous6();
    const auto result = workloads::run_job(cluster, wc(3.0),
                                           InputScale::kSmall, kind,
                                           RunConfig{});
    MiB processed = 0;
    for (const auto& task : result.tasks) {
      if (task.kind == mr::TaskKind::kMap && task.credited()) {
        processed += task.input_mib;
      }
    }
    EXPECT_NEAR(processed, 3.0, 1e-9) << workloads::scheduler_label(kind);
  }
}

TEST(EdgeCases, SingleNodeCluster) {
  for (const auto kind : kAll) {
    auto cluster =
        cluster::ClusterBuilder()
            .add(cluster::MachineSpec{.model = "solo", .base_ips = 10.0,
                                      .slots = 2, .nic_bandwidth = 1192.0,
                                      .memory_gb = 8.0},
                 1)
            .build();
    const auto result = workloads::run_job(cluster, wc(256.0),
                                           InputScale::kSmall, kind,
                                           RunConfig{});
    std::size_t credited = 0;
    for (const auto& task : result.tasks) {
      if (task.kind == mr::TaskKind::kMap && task.credited()) {
        credited += task.num_bus;
      }
      EXPECT_EQ(task.node, 0u);
    }
    EXPECT_EQ(credited, 32u) << workloads::scheduler_label(kind);
  }
}

TEST(EdgeCases, SingleSlotCluster) {
  auto cluster =
      cluster::ClusterBuilder()
          .add(cluster::MachineSpec{.model = "one-slot", .base_ips = 10.0,
                                    .slots = 1, .nic_bandwidth = 1192.0,
                                    .memory_gb = 8.0},
               1)
          .build();
  const auto result = workloads::run_job(cluster, wc(128.0, 0.5),
                                         InputScale::kSmall,
                                         SchedulerKind::kFlexMap,
                                         RunConfig{});
  // Strictly serial execution: efficiency must be ~1 by construction.
  EXPECT_GT(result.efficiency(), 0.98);
}

TEST(EdgeCases, BlockSizeNotMultipleOfBuRejected) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.block_size = 60.0;  // not a multiple of 8 MiB
  try {
    workloads::run_job(cluster, wc(600.0), InputScale::kSmall,
                       SchedulerKind::kHadoopNoSpec, config);
    FAIL() << "expected ConfigError for indivisible block size";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("does not divide"),
              std::string::npos)
        << e.what();
  }
}

TEST(EdgeCases, ReplicationOne) {
  for (const auto kind : kAll) {
    auto cluster = cluster::presets::heterogeneous6();
    RunConfig config;
    config.replication = 1;
    const auto result = workloads::run_job(cluster, wc(512.0),
                                           InputScale::kSmall, kind,
                                           config);
    std::size_t credited = 0;
    for (const auto& task : result.tasks) {
      if (task.kind == mr::TaskKind::kMap && task.credited()) {
        credited += task.num_bus;
      }
    }
    EXPECT_EQ(credited, 64u) << workloads::scheduler_label(kind);
  }
}

TEST(EdgeCases, FullReplicationEveryNodeHoldsEverything) {
  auto cluster = cluster::presets::tiny3();
  RunConfig config;
  config.replication = 3;
  const auto result = workloads::run_job(cluster, wc(256.0, 0.0),
                                         InputScale::kSmall,
                                         SchedulerKind::kFlexMap, config);
  // With full replication every map task is node-local.
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      EXPECT_DOUBLE_EQ(task.local_fraction, 1.0);
    }
  }
}

TEST(EdgeCases, ManyMoreReducersThanSlots) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  auto bench = wc(512.0, 1.0);
  const auto layout = workloads::make_layout(
      bench, InputScale::kSmall, cluster.num_nodes(), 64.0, 3, 1);
  auto spec = workloads::to_job_spec(bench, InputScale::kSmall, 100);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  mr::JobDriver driver(sim, cluster, layout, spec, mr::SimParams{},
                       *scheduler);
  const auto result = driver.run();
  // 100 reducers on 24 slots: multiple reduce waves, all complete.
  EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            100u);
}

TEST(EdgeCases, EmptyJobRejected) {
  auto cluster = cluster::presets::homogeneous6();
  hdfs::FileLayout empty;
  auto spec = workloads::to_job_spec(workloads::benchmark("WC"),
                                     InputScale::kSmall);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  Simulator sim;
  EXPECT_THROW(mr::JobDriver(sim, cluster, empty, spec, mr::SimParams{},
                             *scheduler),
               InvariantError);
}

}  // namespace
}  // namespace flexmr
