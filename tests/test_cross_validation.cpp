// Cross-validation between the two substrates: the discrete-event
// simulator and the real threaded runtime must agree on the paper's core
// qualitative claim — elastic tasks beat fixed tasks on a heterogeneous
// cluster, and cost (almost) nothing on a homogeneous one.
//
// The configurations are made analogous: N workers, one of them 4-5x
// slower, per-task startup overhead comparable to one chunk's work.
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "rt/engine.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

double simulate(bool heterogeneous, SchedulerKind kind,
                std::uint64_t seed) {
  cluster::ClusterBuilder builder;
  cluster::MachineSpec fast{.model = "fast", .base_ips = 10.0, .slots = 4,
                            .nic_bandwidth = 1192.0, .memory_gb = 8.0};
  cluster::MachineSpec slow = fast;
  slow.model = "slow";
  slow.base_ips = 2.0;
  builder.add(fast, 3);
  builder.add(heterogeneous ? slow : fast, 1);
  auto cluster = builder.build();

  // Big enough for FlexMap's multi-wave assumption (the paper's operating
  // regime): 8 GiB = 1024 BUs over 16 containers.
  auto bench = workloads::benchmark("WC");
  bench.small_input = gib_to_mib(8);
  bench.shuffle_ratio = 0.0;
  bench.record_skew = 0.0;
  RunConfig config;
  config.params.seed = seed;
  config.params.exec_noise_sigma = 0.05;
  return workloads::run_job(cluster, bench, InputScale::kSmall, kind,
                            config)
      .map_phase_runtime();
}

double run_rt(bool heterogeneous, bool elastic) {
  const auto dataset = rt::Dataset::generate_text(96, 8192, 5);
  std::vector<rt::WorkerSpec> workers{{1.0}, {1.0}, {1.0},
                                      {heterogeneous ? 0.25 : 1.0}};
  rt::EngineConfig config;
  config.task_startup = std::chrono::microseconds{800};
  rt::MapReduceEngine engine(workers, config);
  const auto result =
      elastic
          ? engine.run_elastic(dataset, rt::wordcount_map(),
                               rt::sum_reduce())
          : engine.run_fixed(dataset, rt::wordcount_map(), rt::sum_reduce(),
                             8);
  return result.map_wall_seconds;
}

TEST(CrossValidation, ElasticBeatsFixedUnderHeterogeneityInBothWorlds) {
  // Simulator: FlexMap vs stock on the 3-fast/1-slow cluster.
  OnlineStats stock;
  OnlineStats flexmap;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    stock.add(simulate(true, SchedulerKind::kHadoopNoSpec, seed));
    flexmap.add(simulate(true, SchedulerKind::kFlexMap, seed));
  }
  EXPECT_LT(flexmap.mean(), stock.mean());

  // Runtime: elastic vs fixed on the analogous worker set. Wall-clock
  // timing is noisy; take the best of three to de-flake.
  double fixed = 1e9;
  double elastic = 1e9;
  for (int i = 0; i < 3; ++i) {
    fixed = std::min(fixed, run_rt(true, false));
    elastic = std::min(elastic, run_rt(true, true));
  }
  EXPECT_LT(elastic, fixed);
}

TEST(CrossValidation, ElasticOverheadSmallOnHomogeneousInBothWorlds) {
  OnlineStats stock;
  OnlineStats flexmap;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    stock.add(simulate(false, SchedulerKind::kHadoopNoSpec, seed));
    flexmap.add(simulate(false, SchedulerKind::kFlexMap, seed));
  }
  EXPECT_LT(flexmap.mean(), stock.mean() * 1.15);  // small overhead only

  double fixed = 1e9;
  double elastic = 1e9;
  for (int i = 0; i < 3; ++i) {
    fixed = std::min(fixed, run_rt(false, false));
    elastic = std::min(elastic, run_rt(false, true));
  }
  EXPECT_LT(elastic, fixed * 1.5);  // generous: wall clock is noisy
}

}  // namespace
}  // namespace flexmr
