// Small common utilities: units, error helpers, logging plumbing.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/units.hpp"

namespace flexmr {
namespace {

TEST(Units, GibMibRoundTrip) {
  EXPECT_DOUBLE_EQ(gib_to_mib(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(mib_to_gib(2048.0), 2.0);
  EXPECT_DOUBLE_EQ(mib_to_gib(gib_to_mib(7.5)), 7.5);
}

TEST(Units, BlockConstants) {
  EXPECT_DOUBLE_EQ(kBlockUnitMiB, 8.0);
  EXPECT_DOUBLE_EQ(kDefaultBlockMiB, 64.0);
  EXPECT_DOUBLE_EQ(kLargeBlockMiB, 128.0);
  EXPECT_EQ(kDefaultBlockMiB / kBlockUnitMiB, 8.0);  // 8 BUs per block
}

TEST(Error, AssertMacroThrowsWithLocation) {
  try {
    FLEXMR_ASSERT_MSG(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvariantError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("test_common_misc"), std::string::npos);
  }
}

TEST(Error, AssertPassesSilently) {
  FLEXMR_ASSERT(2 + 2 == 4);
  FLEXMR_ASSERT_MSG(true, "never seen");
}

TEST(Logging, LevelsGateEmission) {
  auto& logger = Logger::instance();
  const LogLevel before = logger.level();
  logger.set_level(LogLevel::Warn);
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));
  logger.set_level(LogLevel::Off);
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
  logger.set_level(before);
}

TEST(Logging, MacroCompilesAndRespectsLevel) {
  auto& logger = Logger::instance();
  const LogLevel before = logger.level();
  logger.set_level(LogLevel::Off);
  // Must not crash or emit; the stream body must still typecheck.
  FLEXMR_LOG(Info, "test") << "value=" << 42 << " pi=" << 3.14;
  logger.set_level(before);
}

TEST(Logging, SubsystemFilterSelectsTags) {
  auto& logger = Logger::instance();
  // Empty filter (the default) passes every subsystem tag.
  logger.set_filter("");
  EXPECT_TRUE(logger.passes_filter("sim"));
  EXPECT_TRUE(logger.passes_filter("anything"));
  // CSV filter with stray spaces: only the named tags pass.
  logger.set_filter(" sim, hdfs ");
  EXPECT_TRUE(logger.passes_filter("sim"));
  EXPECT_TRUE(logger.passes_filter("hdfs"));
  EXPECT_FALSE(logger.passes_filter("sched"));
  EXPECT_FALSE(logger.passes_filter("svc"));
  EXPECT_FALSE(logger.passes_filter("simx"));  // exact match, not prefix
  logger.set_filter("");
}

}  // namespace
}  // namespace flexmr
