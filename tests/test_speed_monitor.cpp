// SpeedMonitor (Eq. 3 bookkeeping) and BiasedReducePlacer (c² acceptance).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "flexmap/reduce_placer.hpp"
#include "flexmap/speed_monitor.hpp"

namespace flexmr::flexmap {
namespace {

TEST(SpeedMonitor, UnknownUntilFirstReport) {
  SpeedMonitor monitor(3);
  EXPECT_FALSE(monitor.get_speed(0).has_value());
  EXPECT_FALSE(monitor.slowest().has_value());
  EXPECT_FALSE(monitor.fastest().has_value());
  EXPECT_EQ(monitor.known_nodes(), 0u);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(0), 1.0);
}

TEST(SpeedMonitor, TracksLatestPerNode) {
  SpeedMonitor monitor(3);
  monitor.update(0, 10.0);
  monitor.update(0, 12.0);
  EXPECT_DOUBLE_EQ(*monitor.get_speed(0), 12.0);
  EXPECT_EQ(monitor.known_nodes(), 1u);
}

TEST(SpeedMonitor, SlowestAndFastestOverKnownNodes) {
  SpeedMonitor monitor(4);
  monitor.update(1, 4.0);
  monitor.update(2, 16.0);
  EXPECT_DOUBLE_EQ(*monitor.slowest(), 4.0);
  EXPECT_DOUBLE_EQ(*monitor.fastest(), 16.0);
}

TEST(SpeedMonitor, RelativeSpeedVsSlowest) {
  SpeedMonitor monitor(3);
  monitor.update(0, 4.0);
  monitor.update(1, 12.0);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(1), 3.0);
  // Unknown node: neutral ratio.
  EXPECT_DOUBLE_EQ(monitor.relative_speed(2), 1.0);
}

TEST(SpeedMonitor, CapacityNormalizedToFastest) {
  SpeedMonitor monitor(2);
  monitor.update(0, 5.0);
  monitor.update(1, 20.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(1), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(0), 0.25);
}

TEST(SpeedMonitor, OutOfRangeNodeThrows) {
  SpeedMonitor monitor(2);
  EXPECT_THROW(monitor.update(5, 1.0), InvariantError);
  EXPECT_THROW(monitor.get_speed(5), InvariantError);
}

TEST(BiasedReducePlacer, FullCapacityAlwaysAccepts) {
  BiasedReducePlacer placer(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(placer.accept(1.0));
}

TEST(BiasedReducePlacer, ZeroCapacityNeverAccepts) {
  BiasedReducePlacer placer(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(placer.accept(0.0));
}

TEST(BiasedReducePlacer, AcceptanceRateIsCapacitySquared) {
  BiasedReducePlacer placer(3);
  const double c = 0.5;
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (placer.accept(c)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, c * c, 0.02);
}

TEST(BiasedReducePlacer, InvalidCapacityThrows) {
  BiasedReducePlacer placer(4);
  EXPECT_THROW(placer.accept(-0.1), InvariantError);
  EXPECT_THROW(placer.accept(1.1), InvariantError);
}

// Reference implementation of the monitor's pre-cache semantics: extrema by
// full scan on every query. The cached monitor must be observationally
// identical to this under any operation sequence.
class ScanReference {
 public:
  explicit ScanReference(std::uint32_t n) : speeds_(n) {}

  void update(NodeId node, MiBps ips) { speeds_[node] = ips; }
  void forget(NodeId node) { speeds_[node].reset(); }

  std::optional<MiBps> slowest() const {
    std::optional<MiBps> out;
    for (const auto& s : speeds_) {
      if (s && (!out || *s < *out)) out = s;
    }
    return out;
  }

  std::optional<MiBps> fastest() const {
    std::optional<MiBps> out;
    for (const auto& s : speeds_) {
      if (s && (!out || *s > *out)) out = s;
    }
    return out;
  }

  double relative_speed(NodeId node) const {
    const auto own = speeds_[node];
    const auto low = slowest();
    if (!own || !low || *low <= 0.0) return 1.0;
    return *own / *low;
  }

  double capacity(NodeId node) const {
    const auto own = speeds_[node];
    const auto high = fastest();
    if (!own || !high || *high <= 0.0) return 1.0;
    return std::clamp(*own / *high, 1e-6, 1.0);
  }

  std::size_t known_nodes() const {
    std::size_t n = 0;
    for (const auto& s : speeds_) n += s.has_value() ? 1 : 0;
    return n;
  }

 private:
  std::vector<std::optional<MiBps>> speeds_;
};

TEST(SpeedMonitor, CachedExtremaMatchScanReferenceUnderRandomOps) {
  constexpr std::uint32_t kNodes = 13;
  SpeedMonitor monitor(kNodes);
  ScanReference reference(kNodes);
  std::mt19937 rng(20260805u);
  std::uniform_int_distribution<std::uint32_t> pick_node(0, kNodes - 1);
  std::uniform_int_distribution<int> pick_op(0, 9);
  // A small discrete speed set forces ties, so extremum anchors are often
  // shared between nodes — the hardest case for incremental maintenance.
  std::uniform_int_distribution<int> pick_speed(0, 7);

  for (int round = 0; round < 5000; ++round) {
    const NodeId node = pick_node(rng);
    if (pick_op(rng) < 8) {
      const MiBps ips = 2.5 * pick_speed(rng);  // 0 is a legal reading
      monitor.update(node, ips);
      reference.update(node, ips);
    } else {
      monitor.forget(node);
      reference.forget(node);
    }
    ASSERT_EQ(monitor.slowest(), reference.slowest()) << "round " << round;
    ASSERT_EQ(monitor.fastest(), reference.fastest()) << "round " << round;
    ASSERT_EQ(monitor.known_nodes(), reference.known_nodes())
        << "round " << round;
    for (NodeId n = 0; n < kNodes; ++n) {
      ASSERT_EQ(monitor.relative_speed(n), reference.relative_speed(n))
          << "round " << round << " node " << n;
      ASSERT_EQ(monitor.capacity(n), reference.capacity(n))
          << "round " << round << " node " << n;
    }
  }
}

TEST(SpeedMonitor, AllForgottenReturnsToUnknown) {
  SpeedMonitor monitor(4);
  monitor.update(0, 3.0);
  monitor.update(1, 9.0);
  monitor.update(2, 6.0);
  monitor.forget(1);  // drops the fastest anchor
  monitor.forget(0);  // drops the slowest anchor
  monitor.forget(2);
  EXPECT_FALSE(monitor.slowest().has_value());
  EXPECT_FALSE(monitor.fastest().has_value());
  EXPECT_EQ(monitor.known_nodes(), 0u);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(0), 1.0);
}

TEST(SpeedMonitor, SingleNodeIsBothExtrema) {
  SpeedMonitor monitor(5);
  monitor.update(3, 7.5);
  EXPECT_DOUBLE_EQ(*monitor.slowest(), 7.5);
  EXPECT_DOUBLE_EQ(*monitor.fastest(), 7.5);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(3), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(3), 1.0);
}

TEST(SpeedMonitor, RejoinResetRecomputesExtrema) {
  SpeedMonitor monitor(3);
  monitor.update(0, 2.0);
  monitor.update(1, 10.0);
  monitor.update(2, 5.0);
  ASSERT_DOUBLE_EQ(*monitor.slowest(), 2.0);
  // Node 0 fails and rejoins: forget() must un-anchor the old slowest, and
  // its fresh post-rejoin reading lands wherever it now belongs.
  monitor.forget(0);
  EXPECT_DOUBLE_EQ(*monitor.slowest(), 5.0);
  monitor.update(0, 20.0);
  EXPECT_DOUBLE_EQ(*monitor.slowest(), 5.0);
  EXPECT_DOUBLE_EQ(*monitor.fastest(), 20.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(1), 0.5);
}

}  // namespace
}  // namespace flexmr::flexmap
