// SpeedMonitor (Eq. 3 bookkeeping) and BiasedReducePlacer (c² acceptance).
#include <gtest/gtest.h>

#include "flexmap/reduce_placer.hpp"
#include "flexmap/speed_monitor.hpp"

namespace flexmr::flexmap {
namespace {

TEST(SpeedMonitor, UnknownUntilFirstReport) {
  SpeedMonitor monitor(3);
  EXPECT_FALSE(monitor.get_speed(0).has_value());
  EXPECT_FALSE(monitor.slowest().has_value());
  EXPECT_FALSE(monitor.fastest().has_value());
  EXPECT_EQ(monitor.known_nodes(), 0u);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(0), 1.0);
}

TEST(SpeedMonitor, TracksLatestPerNode) {
  SpeedMonitor monitor(3);
  monitor.update(0, 10.0);
  monitor.update(0, 12.0);
  EXPECT_DOUBLE_EQ(*monitor.get_speed(0), 12.0);
  EXPECT_EQ(monitor.known_nodes(), 1u);
}

TEST(SpeedMonitor, SlowestAndFastestOverKnownNodes) {
  SpeedMonitor monitor(4);
  monitor.update(1, 4.0);
  monitor.update(2, 16.0);
  EXPECT_DOUBLE_EQ(*monitor.slowest(), 4.0);
  EXPECT_DOUBLE_EQ(*monitor.fastest(), 16.0);
}

TEST(SpeedMonitor, RelativeSpeedVsSlowest) {
  SpeedMonitor monitor(3);
  monitor.update(0, 4.0);
  monitor.update(1, 12.0);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.relative_speed(1), 3.0);
  // Unknown node: neutral ratio.
  EXPECT_DOUBLE_EQ(monitor.relative_speed(2), 1.0);
}

TEST(SpeedMonitor, CapacityNormalizedToFastest) {
  SpeedMonitor monitor(2);
  monitor.update(0, 5.0);
  monitor.update(1, 20.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(1), 1.0);
  EXPECT_DOUBLE_EQ(monitor.capacity(0), 0.25);
}

TEST(SpeedMonitor, OutOfRangeNodeThrows) {
  SpeedMonitor monitor(2);
  EXPECT_THROW(monitor.update(5, 1.0), InvariantError);
  EXPECT_THROW(monitor.get_speed(5), InvariantError);
}

TEST(BiasedReducePlacer, FullCapacityAlwaysAccepts) {
  BiasedReducePlacer placer(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(placer.accept(1.0));
}

TEST(BiasedReducePlacer, ZeroCapacityNeverAccepts) {
  BiasedReducePlacer placer(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(placer.accept(0.0));
}

TEST(BiasedReducePlacer, AcceptanceRateIsCapacitySquared) {
  BiasedReducePlacer placer(3);
  const double c = 0.5;
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (placer.accept(c)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, c * c, 0.02);
}

TEST(BiasedReducePlacer, InvalidCapacityThrows) {
  BiasedReducePlacer placer(4);
  EXPECT_THROW(placer.accept(-0.1), InvariantError);
  EXPECT_THROW(placer.accept(1.1), InvariantError);
}

}  // namespace
}  // namespace flexmr::flexmap
