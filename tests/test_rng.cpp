// Deterministic RNG: reproducibility, distribution sanity (moment checks
// with generous tolerances — these guard against wiring bugs, not
// statistical quality regressions).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace flexmr {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.split();
  // Child continues deterministically.
  Rng parent2(7);
  Rng child2 = parent2.split();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child(), child2());
  // And differs from the parent's stream.
  EXPECT_NE(child(), parent());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(6);
    ASSERT_LT(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die appear
}

TEST(Rng, UniformIntOne) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), InvariantError);
  EXPECT_THROW(rng.exponential(0.0), InvariantError);
  EXPECT_THROW(rng.pareto(0.0, 1.0), InvariantError);
}

}  // namespace
}  // namespace flexmr
