// Service layer: open arrival stream, admission queue, per-tenant SLO
// metrics, and the end-to-end determinism contract (identical config →
// byte-identical ServiceResult JSON, guarded by a pinned golden hash).
//
// To regenerate the golden after an *intentional* output change, run with
// FLEXMR_REGEN_GOLDEN=1: the test prints the current hash and fails, and
// the constant below must be updated by hand.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "cluster/presets.hpp"
#include "common/error.hpp"
#include "service/service.hpp"

namespace flexmr::service {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Three tenants with distinct weights, rates, benchmark mixes and per-job
/// schedulers (a FlexMap tenant beside a stock-Hadoop one).
ServiceConfig three_tenants(std::uint64_t seed, std::size_t jobs) {
  ServiceConfig config;
  config.tenants = {
      {"analytics", 2.0, 60.0, {"WC", "II"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"reporting", 1.0, 40.0, {"GR", "HR"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kFlexMap},
      {"batch", 1.0, 20.0, {"TS"}, workloads::InputScale::kSmall,
       workloads::SchedulerKind::kHadoop},
  };
  config.total_jobs = jobs;
  config.max_concurrent_jobs = 4;
  config.policy = mr::SharePolicy::kWeightedFair;
  config.preemption.enabled = true;
  config.params.seed = seed;
  return config;
}

ServiceResult run_service(const ServiceConfig& config) {
  auto cluster = cluster::presets::multitenant40(0.0);
  Simulator sim;
  ClusterService svc(sim, cluster, config);
  return svc.run();
}

TEST(Service, RejectsInvalidConfig) {
  auto cluster = cluster::presets::homogeneous6();
  {
    Simulator sim;
    ServiceConfig config;  // no tenants
    EXPECT_THROW(ClusterService(sim, cluster, config), ConfigError);
  }
  {
    Simulator sim;
    auto config = three_tenants(1, 4);
    config.tenants[1].weight = 0.0;
    EXPECT_THROW(ClusterService(sim, cluster, config), ConfigError);
  }
  {
    Simulator sim;
    auto config = three_tenants(1, 4);
    config.max_concurrent_jobs = 0;
    EXPECT_THROW(ClusterService(sim, cluster, config), ConfigError);
  }
}

TEST(Service, PerTenantSlosAndRecordsAreConsistent) {
  const auto result = run_service(three_tenants(7, 24));
  ASSERT_EQ(result.tenants.size(), 3u);
  ASSERT_EQ(result.jobs.size(), 24u);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_GT(result.fairness_index, 0.0);
  EXPECT_LE(result.fairness_index, 1.0 + 1e-12);

  std::size_t completed = 0;
  for (const auto& tenant : result.tenants) {
    completed += tenant.jobs_completed;
    EXPECT_EQ(tenant.jct.count(), tenant.jobs_completed);
    EXPECT_EQ(tenant.queue_delay.count(),
              tenant.jobs_completed + tenant.jobs_aborted);
    EXPECT_FALSE(tenant.slot_share.empty());
  }
  EXPECT_EQ(completed, 24u);

  for (const auto& job : result.jobs) {
    EXPECT_FALSE(job.aborted);
    EXPECT_GE(job.admitted, job.arrival);
    EXPECT_GT(job.finish, job.admitted);
    EXPECT_LT(job.tenant, result.tenants.size());
  }
}

TEST(Service, AdmissionCapIsNeverExceeded) {
  const auto config = three_tenants(3, 24);
  const auto result = run_service(config);
  // Reconstruct concurrency from the records: at every instant the number
  // of jobs with admitted <= t < finish must respect the cap. Departures
  // sort before admissions at the same timestamp (a freed cap slot is
  // reused immediately).
  std::vector<std::pair<double, int>> events;
  for (const auto& job : result.jobs) {
    events.emplace_back(job.admitted, +1);
    events.emplace_back(job.finish, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  int running = 0;
  for (const auto& [time, delta] : events) {
    running += delta;
    EXPECT_LE(running, static_cast<int>(config.max_concurrent_jobs))
        << "at t=" << time;
  }
  EXPECT_EQ(running, 0);
}

TEST(Service, DeterministicAcrossRuns) {
  // Seed 1068 historically tickled a stock-Hadoop orphaned-BU livelock
  // under preemption; keep it as the regression seed here.
  const auto config = three_tenants(1068, 20);
  const std::string first = run_service(config).json();
  const std::string second = run_service(config).json();
  EXPECT_EQ(first, second);
}

TEST(Service, GoldenOpenArrivalHash) {
  // Tentpole acceptance: a seeded open-arrival run of 100 jobs across the
  // three tenants completes, and its result JSON hashes to a pinned value.
  constexpr std::uint64_t kGolden = 0xda26d26fd86e7391ull;
  const auto config = three_tenants(42, 100);
  const ServiceResult result = run_service(config);
  EXPECT_EQ(result.jobs.size(), 100u);

  const std::uint64_t hash = fnv1a(result.json());
  if (std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr) {
    std::printf("service golden: 0x%016llxull\n",
                static_cast<unsigned long long>(hash));
    FAIL() << "FLEXMR_REGEN_GOLDEN set; update kGolden with the value above";
  }
  EXPECT_EQ(hash, kGolden) << "service result JSON drifted; if intentional, "
                              "regenerate with FLEXMR_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace flexmr::service
