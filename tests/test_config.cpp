// INI-style Config reader.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/error.hpp"

namespace flexmr {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto config = Config::parse(
      "top = 1\n"
      "[cluster]\n"
      "nodes = 12\n"
      "ips = 7.5\n"
      "# a comment\n"
      "; another comment\n"
      "[job]\n"
      "name = wordcount\n");
  EXPECT_EQ(config.get_int("top", 0), 1);
  EXPECT_EQ(config.get_int("cluster.nodes", 0), 12);
  EXPECT_DOUBLE_EQ(config.get_double("cluster.ips", 0), 7.5);
  EXPECT_EQ(config.get_string("job.name", ""), "wordcount");
  EXPECT_EQ(config.size(), 4u);
}

TEST(Config, TrimsWhitespace) {
  const auto config = Config::parse("  key   =   value with spaces  \n");
  EXPECT_EQ(config.get_string("key", ""), "value with spaces");
}

TEST(Config, FallbacksWhenMissing) {
  const auto config = Config::parse("");
  EXPECT_EQ(config.get_string("nope", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(config.get_double("nope", 2.5), 2.5);
  EXPECT_EQ(config.get_int("nope", -3), -3);
  EXPECT_TRUE(config.get_bool("nope", true));
  EXPECT_FALSE(config.has("nope"));
}

TEST(Config, BooleanForms) {
  const auto config = Config::parse(
      "a = true\nb = 1\nc = yes\nd = false\ne = 0\nf = no\n");
  for (const char* key : {"a", "b", "c"}) {
    EXPECT_TRUE(config.get_bool(key, false)) << key;
  }
  for (const char* key : {"d", "e", "f"}) {
    EXPECT_FALSE(config.get_bool(key, true)) << key;
  }
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(Config::parse("[unclosed\n"), ConfigError);
  EXPECT_THROW(Config::parse("no equals sign\n"), ConfigError);
  EXPECT_THROW(Config::parse("= value\n"), ConfigError);
}

TEST(Config, TypeErrorsThrow) {
  const auto config = Config::parse("x = hello\n");
  EXPECT_THROW(config.get_double("x", 0.0), ConfigError);
  EXPECT_THROW(config.get_int("x", 0), ConfigError);
  EXPECT_THROW(config.get_bool("x", false), ConfigError);
}

TEST(Config, RequiredAccessors) {
  const auto config = Config::parse("n = 5\n");
  EXPECT_EQ(config.require_int("n"), 5);
  EXPECT_THROW(config.require_int("missing"), ConfigError);
  EXPECT_THROW(config.require_string("missing"), ConfigError);
  EXPECT_THROW(config.require_double("missing"), ConfigError);
}

TEST(Config, SetOverrides) {
  auto config = Config::parse("a = 1\n");
  config.set("a", "2");
  config.set("b", "3");
  EXPECT_EQ(config.get_int("a", 0), 2);
  EXPECT_EQ(config.get_int("b", 0), 3);
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/path/file.ini"), ConfigError);
}

TEST(Config, LastDuplicateWins) {
  const auto config = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(config.get_int("k", 0), 2);
}

}  // namespace
}  // namespace flexmr
