// AM crash injection + journaled job recovery (replay-don't-redo).
//
// The tentpole invariant under test: killing the AppMaster at ANY point of
// the job — before the first map, mid-map, at shuffle start, mid-reduce,
// just before the last commit — and restarting it from the journal yields
// the same credited work totals as the crash-free run (exactly-once across
// the restart), while redoing strictly less work than starting from
// scratch. Plus: attempt-budget aborts, probabilistic (MTTF) AM death,
// snapshot-cadence invariance, journal artifact shape, multi-job and
// service survival of AM loss, and a pinned golden for a mid-map crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/presets.hpp"
#include "mr/multi_job.hpp"
#include "mr/result_json.hpp"
#include "recover/runner.hpp"
#include "service/service.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using faults::FaultPlan;
using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

workloads::Benchmark bench_with(MiB input, double shuffle) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

std::size_t credited_bus(const mr::JobResult& result) {
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  return credited;
}

MiB credited_mib(const mr::JobResult& result) {
  MiB total = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      total += task.input_mib;
    }
  }
  return total;
}

mr::JobResult run_case(SchedulerKind kind, const FaultPlan& plan) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.faults = plan;
  return workloads::run_job(cluster, bench_with(2048.0, 0.25),
                            InputScale::kSmall, kind, config);
}

std::string sweep_param_name(
    const ::testing::TestParamInfo<SchedulerKind>& info) {
  std::string label = workloads::scheduler_label(info.param);
  std::erase_if(label, [](char c) {
    return !std::isalnum(static_cast<unsigned char>(c));
  });
  return label;
}

class RecoverySweep : public ::testing::TestWithParam<SchedulerKind> {};

constexpr std::size_t kTotalBus = 256;  // 2048 MiB / 8 MiB block units.

// The tentpole sweep: five crash points spanning the whole job lifecycle.
// Every recovered run must credit the same totals as the crash-free run
// and redo strictly less work than a from-scratch re-execution would.
TEST_P(RecoverySweep, CrashAtEveryPhaseRecoversExactlyOnce) {
  const auto baseline = run_case(GetParam(), FaultPlan{});
  ASSERT_FALSE(baseline.aborted);
  ASSERT_EQ(credited_bus(baseline), kTotalBus);
  const std::size_t baseline_reduces =
      baseline.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted);

  struct CrashPoint {
    const char* label;
    SimTime at;
  };
  const SimTime map_mid =
      0.5 * (baseline.map_phase_start + baseline.map_phase_end);
  const SimTime reduce_mid =
      0.5 * (baseline.map_phase_end + baseline.finish_time);
  const CrashPoint points[] = {
      {"pre-map", 0.01},
      {"mid-map", map_mid},
      {"shuffle-start", baseline.map_phase_end + 0.5},
      {"mid-reduce", reduce_mid},
      {"pre-commit", baseline.finish_time - 1.0},
  };
  for (const CrashPoint& point : points) {
    FaultPlan plan;
    plan.am_crashes = {point.at};
    const auto result = run_case(GetParam(), plan);
    EXPECT_FALSE(result.aborted) << point.label;
    EXPECT_EQ(result.am_restarts, 1u) << point.label;
    ASSERT_EQ(result.am_attempts.size(), 1u) << point.label;
    // Crash-free totals are reproduced exactly: every BU credited once,
    // every reducer completed once.
    EXPECT_EQ(credited_bus(result), kTotalBus) << point.label;
    EXPECT_NEAR(credited_mib(result), 2048.0, 1e-6) << point.label;
    EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
              baseline_reduces)
        << point.label;
    // Replay-don't-redo: the restart re-runs strictly less than the whole
    // map phase, and once work has committed the journal replays it.
    EXPECT_LT(result.redone_work_units, kTotalBus) << point.label;
    if (point.at >= map_mid) {
      EXPECT_GT(result.am_attempts[0].replayed_units, 0u) << point.label;
    }
    if (point.at > baseline.map_phase_end) {
      // Map phase fully committed before the crash: all of it replays.
      EXPECT_EQ(result.am_attempts[0].replayed_units, kTotalBus)
          << point.label;
    }
    // AM downtime and redone work cost time; recovery is never free.
    EXPECT_GE(result.jct(), baseline.jct()) << point.label;
    EXPECT_GE(result.am_attempts[0].restart_time,
              result.am_attempts[0].crash_time)
        << point.label;
  }
}

// Recovered runs are bit-reproducible: the same crash plan twice gives
// byte-identical result JSON.
TEST_P(RecoverySweep, CrashedRunsAreByteDeterministic) {
  const auto baseline = run_case(GetParam(), FaultPlan{});
  FaultPlan plan;
  plan.am_crashes = {
      0.5 * (baseline.map_phase_start + baseline.map_phase_end)};
  const auto first = run_case(GetParam(), plan);
  const auto second = run_case(GetParam(), plan);
  EXPECT_EQ(mr::job_result_json(first), mr::job_result_json(second));
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, RecoverySweep,
    ::testing::Values(SchedulerKind::kHadoop, SchedulerKind::kHadoopNoSpec,
                      SchedulerKind::kSkewTune, SchedulerKind::kFlexMap),
    sweep_param_name);

// Snapshot cadence is an internal journal compaction: it must not change
// a single byte of the recovered run's result — only how much log tail
// replay has to walk.
TEST(Recovery, SnapshotIntervalDoesNotChangeTheResult) {
  const auto baseline = run_case(SchedulerKind::kFlexMap, FaultPlan{});
  FaultPlan plan;
  plan.am_crashes = {
      0.5 * (baseline.map_phase_start + baseline.map_phase_end)};
  // The result JSON echoes the fault plan verbatim, so the knob itself
  // differs between runs; blank it out before comparing — everything the
  // job actually DID must be byte-identical.
  // (The default interval is elided from the echo entirely, so the field
  // may be absent.)
  auto scrub = [](std::string json) {
    const std::string key = "\"am_snapshot_interval_s\":";
    const std::size_t at = json.find(key);
    if (at == std::string::npos) return json;
    const std::size_t end = json.find(',', at);
    return json.erase(at, end - at + 1);
  };
  std::string reference;
  for (const SimDuration interval : {0.0, 5.0, 60.0}) {
    FaultPlan p = plan;
    p.am_snapshot_interval_s = interval;
    const std::string json = scrub(mr::job_result_json(run_case(
        SchedulerKind::kFlexMap, p)));
    if (reference.empty()) {
      reference = json;
    } else {
      EXPECT_EQ(json, reference) << "snapshot interval " << interval;
    }
  }
}

// A crash on the final allowed attempt aborts with a structured error
// carrying the merged result.
TEST(Recovery, AttemptBudgetExhaustionAborts) {
  FaultPlan plan;
  plan.am_crashes = {5.0};
  plan.am_max_attempts = 1;
  try {
    run_case(SchedulerKind::kHadoop, plan);
    FAIL() << "expected JobAbortedError";
  } catch (const mr::JobAbortedError& e) {
    EXPECT_NE(std::string(e.what()).find("am_max_attempts"),
              std::string::npos);
    EXPECT_TRUE(e.result().aborted);
    ASSERT_EQ(e.result().am_attempts.size(), 1u);
    EXPECT_DOUBLE_EQ(e.result().am_attempts[0].crash_time, 5.0);
  }
}

// Probabilistic AM death: with a short MTTF and a generous attempt budget
// the job survives repeated crashes and still credits everything once.
TEST(Recovery, MttfCrashesRecoverUntilCompletion) {
  FaultPlan plan;
  plan.am_crash_mttf_s = 60.0;
  plan.am_max_attempts = 64;
  const auto result = run_case(SchedulerKind::kHadoop, plan);
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(credited_bus(result), kTotalBus);
  EXPECT_EQ(result.am_restarts,
            static_cast<std::uint32_t>(result.am_attempts.size()));
}

// The journal artifact itself: append-only log, snapshot fold, and the
// flexmr.journal.v1 JSON document CI shape-checks.
TEST(Recovery, JournalRecordsAndSnapshotsAreInspectable) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto bench = bench_with(2048.0, 0.25);
  const auto layout = workloads::make_layout(
      bench, InputScale::kSmall, cluster.num_nodes(), 64.0, 3, 1234);
  auto spec = workloads::to_job_spec(bench, InputScale::kSmall);
  const auto scheduler = workloads::make_scheduler(SchedulerKind::kHadoop);

  FaultPlan plan;
  plan.am_crashes = {10.0};
  plan.am_snapshot_interval_s = 5.0;
  recover::RecoveryRunner runner(sim, cluster, layout, spec, mr::SimParams{},
                                 *scheduler, plan);
  const auto result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(runner.attempts_started(), 2u);

  const recover::JobJournal& journal = runner.journal();
  EXPECT_GT(journal.total_appends(), 0u);
  EXPECT_GT(journal.snapshots_taken(), 0u);
  const std::string json = journal.to_json();
  EXPECT_NE(json.find("flexmr.journal.v1"), std::string::npos);
  EXPECT_NE(json.find("committed_maps"), std::string::npos);
  EXPECT_NE(json.find("snapshots_taken"), std::string::npos);

  // Replay of the final journal equals the job's committed truth: by job
  // end every BU has committed exactly once.
  const recover::RecoveredState replayed = journal.replay();
  EXPECT_EQ(replayed.replayed_units(), kTotalBus);
  EXPECT_TRUE(replayed.reduce_planned);
  EXPECT_EQ(replayed.committed_reduces.size(),
            static_cast<std::size_t>(replayed.num_reducers));
}

// Multi-job: one job's AM dies while a neighbour shares the cluster; the
// crashed job recovers from its journal, the neighbour is untouched, and
// both credit exactly-once.
TEST(Recovery, MultiJobSurvivesSingleAmCrash) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto bench = bench_with(1024.0, 0.25);
  const auto layout = workloads::make_layout(
      bench, InputScale::kSmall, cluster.num_nodes(), 64.0, 3, 7);
  auto spec = workloads::to_job_spec(bench, InputScale::kSmall);
  const auto sched_a = workloads::make_scheduler(SchedulerKind::kHadoop);
  const auto sched_b = workloads::make_scheduler(SchedulerKind::kFlexMap);

  mr::MultiJobCoordinator coord(sim, cluster, mr::SharePolicy::kFair);
  coord.submit(layout, spec, mr::SimParams{}, *sched_a, 0.0);
  coord.submit(layout, spec, mr::SimParams{}, *sched_b, 0.0);
  coord.set_am_recovery({2, 10.0});
  coord.schedule_am_crash(0, 8.0);
  const auto results = coord.run_all();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].aborted);
  EXPECT_FALSE(results[1].aborted);
  EXPECT_EQ(results[0].am_restarts, 1u);
  EXPECT_EQ(results[1].am_restarts, 0u);
  EXPECT_EQ(credited_bus(results[0]), 128u);
  EXPECT_EQ(credited_bus(results[1]), 128u);
  ASSERT_EQ(results[0].am_attempts.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].am_attempts[0].crash_time, 8.0);
  // The crashed job's JCT includes the 10 s restart downtime.
  EXPECT_GE(results[0].finish_time, 18.0);
}

// The multi-job attempt budget: a second crash on a 2-attempt budget kills
// the job for good while the neighbour still finishes.
TEST(Recovery, MultiJobAmBudgetExhaustionAbortsOnlyThatJob) {
  auto cluster = cluster::presets::homogeneous6();
  Simulator sim;
  const auto bench = bench_with(1024.0, 0.25);
  const auto layout = workloads::make_layout(
      bench, InputScale::kSmall, cluster.num_nodes(), 64.0, 3, 7);
  auto spec = workloads::to_job_spec(bench, InputScale::kSmall);
  const auto sched_a = workloads::make_scheduler(SchedulerKind::kHadoop);
  const auto sched_b = workloads::make_scheduler(SchedulerKind::kHadoop);

  mr::MultiJobCoordinator coord(sim, cluster, mr::SharePolicy::kFair);
  coord.submit(layout, spec, mr::SimParams{}, *sched_a, 0.0);
  coord.submit(layout, spec, mr::SimParams{}, *sched_b, 0.0);
  coord.set_am_recovery({2, 10.0});
  coord.schedule_am_crash(0, 8.0);
  coord.schedule_am_crash(0, 20.0);
  const auto results = coord.run_all();

  EXPECT_TRUE(coord.am_aborted(0));
  EXPECT_TRUE(results[0].aborted);
  EXPECT_NE(results[0].abort_reason.find("am_max_attempts"),
            std::string::npos);
  EXPECT_FALSE(results[1].aborted);
  EXPECT_EQ(credited_bus(results[1]), 128u);
}

// The service keeps an AM-crashed job in its admission slot through the
// downtime, the job's JCT absorbs the restart, and the whole stream stays
// byte-deterministic.
TEST(Recovery, ServiceSurvivesAmLossDeterministically) {
  service::ServiceConfig config;
  service::TenantSpec tenant;
  tenant.name = "analytics";
  tenant.arrivals_per_hour = 240.0;
  tenant.benchmarks = {"WC"};
  tenant.scheduler = SchedulerKind::kFlexMap;
  config.tenants = {tenant};
  config.total_jobs = 4;
  config.max_concurrent_jobs = 2;
  config.params.seed = 99;
  config.am_crashes = {{0, 20.0}};

  auto run_service = [&]() {
    auto cluster = cluster::presets::homogeneous6();
    Simulator sim;
    service::ClusterService svc(sim, cluster, config);
    return svc.run();
  };
  const auto result = run_service();
  EXPECT_EQ(result.total_jobs, 4u);
  EXPECT_EQ(result.am_restarts, 1u);
  ASSERT_EQ(result.jobs.size(), 4u);
  EXPECT_EQ(result.jobs[0].am_restarts, 1u);
  for (const auto& job : result.jobs) {
    EXPECT_FALSE(job.aborted) << "job " << job.job;
    EXPECT_GE(job.finish, job.admitted) << "job " << job.job;
  }
  const std::string json = result.json();
  EXPECT_NE(json.find("\"am_restarts\""), std::string::npos);
  EXPECT_EQ(json, run_service().json());
}

// Pinned golden: a mid-map AM crash on the paper's 20-node virtual
// cluster. Regenerate with FLEXMR_REGEN_GOLDEN=1 after intentional
// changes (same contract as test_golden_determinism.cpp).
TEST(Recovery, MidMapAmCrashGolden) {
  constexpr std::uint64_t kExpected = 0xc4fd10a581aa81e8ull;
  auto cluster = cluster::presets::virtual20();
  RunConfig config;
  config.params.seed = 1234;
  config.faults.am_crashes = {40.0};
  const auto result =
      workloads::run_job(cluster, workloads::benchmark("WC"),
                         InputScale::kSmall, SchedulerKind::kHadoop, config);
  ASSERT_FALSE(result.aborted);
  ASSERT_EQ(result.am_restarts, 1u);
  // Mid-map: some but not all of the map phase had committed at t=40.
  EXPECT_GT(result.am_attempts[0].replayed_units, 0u);
  EXPECT_LT(result.am_attempts[0].replayed_units, credited_bus(result));
  const std::uint64_t hash = fnv1a(mr::job_result_json(result, cluster));
  if (std::getenv("FLEXMR_REGEN_GOLDEN") != nullptr) {
    std::printf("    MidMapAmCrashGolden: 0x%016llxull\n",
                static_cast<unsigned long long>(hash));
    FAIL() << "FLEXMR_REGEN_GOLDEN set: update kExpected and re-run";
  }
  EXPECT_EQ(hash, kExpected);
}

}  // namespace
}  // namespace flexmr
