// ResourceManager: slot accounting and the offer protocol.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hpp"
#include "yarn/resource_manager.hpp"

namespace flexmr::yarn {
namespace {

cluster::Cluster two_nodes() {
  return cluster::ClusterBuilder()
      .add(cluster::MachineSpec{.model = "a", .base_ips = 10.0, .slots = 2,
                                .nic_bandwidth = 1192.0, .memory_gb = 8.0},
           1)
      .add(cluster::MachineSpec{.model = "b", .base_ips = 10.0, .slots = 3,
                                .nic_bandwidth = 1192.0, .memory_gb = 8.0},
           1)
      .build();
}

TEST(ResourceManager, InitialSlotsMatchCluster) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  EXPECT_EQ(rm.total_slots(), 5u);
  EXPECT_EQ(rm.total_free(), 5u);
  EXPECT_EQ(rm.free_slots(0), 2u);
  EXPECT_EQ(rm.free_slots(1), 3u);
}

TEST(ResourceManager, AcquireReleaseRoundTrip) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  rm.acquire(0);
  rm.acquire(0);
  EXPECT_EQ(rm.free_slots(0), 0u);
  EXPECT_THROW(rm.acquire(0), InvariantError);
  rm.release(0);
  EXPECT_EQ(rm.free_slots(0), 1u);
}

TEST(ResourceManager, OfferAllVisitsEveryFreeSlotWhenConsumed) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  std::vector<NodeId> offered;
  rm.set_offer_handler([&](NodeId node) {
    offered.push_back(node);
    return true;  // consume
  });
  rm.offer_all();
  EXPECT_EQ(offered.size(), 5u);
  EXPECT_EQ(rm.total_free(), 0u);
}

TEST(ResourceManager, DeclinedOffersLeaveSlotsFree) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  int offers = 0;
  rm.set_offer_handler([&](NodeId) {
    ++offers;
    return false;
  });
  rm.offer_all();
  EXPECT_EQ(offers, 2);  // one decline per node stops that node
  EXPECT_EQ(rm.total_free(), 5u);
}

TEST(ResourceManager, ReleaseTriggersOfferOnThatNode) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  rm.acquire(1);
  std::vector<NodeId> offered;
  rm.set_offer_handler([&](NodeId node) {
    offered.push_back(node);
    return true;
  });
  rm.release(1);
  // The released slot plus node 1's two other free slots are offered.
  EXPECT_EQ(offered.size(), 3u);
  for (const NodeId node : offered) EXPECT_EQ(node, 1u);
}

TEST(ResourceManager, ReentrantReleaseDoesNotRecurse) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  for (int i = 0; i < 2; ++i) rm.acquire(0);
  int depth = 0;
  int max_depth = 0;
  rm.set_offer_handler([&](NodeId) {
    ++depth;
    max_depth = std::max(max_depth, depth);
    rm.release(0);  // re-entrant: must not recurse into offers
    --depth;
    return false;
  });
  rm.offer_node(1);
  EXPECT_EQ(max_depth, 1);
  EXPECT_EQ(rm.free_slots(0), 1u);  // exactly one release happened
}

TEST(ResourceManager, NoHandlerIsSafe) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  rm.offer_all();  // no crash
  rm.acquire(0);
  rm.release(0);
  EXPECT_EQ(rm.total_free(), 5u);
}

TEST(ResourceManager, PartialConsumptionStopsAtDecline) {
  auto cluster = two_nodes();
  ResourceManager rm(cluster);
  int accepted = 0;
  rm.set_offer_handler([&](NodeId) { return ++accepted <= 3; });
  rm.offer_all();
  EXPECT_EQ(rm.total_free(), 5u - 3u);
}

}  // namespace
}  // namespace flexmr::yarn
