// Trace export and Gantt rendering.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/presets.hpp"
#include "mr/trace.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::mr {
namespace {

JobResult run_small(cluster::Cluster& cluster) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = 256.0;
  return workloads::run_job(cluster, bench,
                            workloads::InputScale::kSmall,
                            workloads::SchedulerKind::kHadoopNoSpec,
                            workloads::RunConfig{});
}

TEST(Trace, CsvHasHeaderAndOneRowPerTask) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string csv = trace_csv(result);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), result.tasks.size() + 1);
  EXPECT_EQ(csv.rfind("id,kind,status,node", 0), 0u);
  EXPECT_NE(csv.find(",map,"), std::string::npos);
  EXPECT_NE(csv.find(",reduce,"), std::string::npos);
}

TEST(Trace, GanttHasOneLanePerSlot) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string art = gantt(result, cluster, 60);
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), 1 + cluster.total_slots());
  EXPECT_NE(art.find('='), std::string::npos);  // map work is visible
  EXPECT_NE(art.find('#'), std::string::npos);  // reduce work is visible
}

TEST(Trace, GanttRowsHaveRequestedWidth) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string art = gantt(result, cluster, 40);
  std::size_t pos = art.find('|');
  ASSERT_NE(pos, std::string::npos);
  const std::size_t close = art.find('|', pos + 1);
  EXPECT_EQ(close - pos - 1, 40u);
}

TEST(Trace, TooNarrowWidthThrows) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  EXPECT_THROW(gantt(result, cluster, 5), InvariantError);
}

// A JobResult with one task per status, for the glyph and escaping tests.
JobResult synthetic_result() {
  JobResult result;
  result.benchmark = "synthetic";
  result.scheduler = "none";
  result.submit_time = 0;
  result.finish_time = 40;
  const TaskStatus statuses[] = {
      TaskStatus::kCompleted, TaskStatus::kPartialCompleted,
      TaskStatus::kKilled, TaskStatus::kLostOutput, TaskStatus::kFailed};
  TaskId id = 0;
  for (const TaskStatus status : statuses) {
    TaskRecord task;
    task.id = id;
    task.node = 0;
    task.kind = TaskKind::kMap;
    task.status = status;
    task.dispatch_time = static_cast<SimTime>(id) * 8;
    task.compute_start = task.dispatch_time + 1;
    task.end_time = task.dispatch_time + 6;
    task.input_mib = 64;
    task.num_bus = 8;
    result.tasks.push_back(task);
    ++id;
  }
  TaskRecord reduce;
  reduce.id = 1'000'000;
  reduce.node = 1;
  reduce.kind = TaskKind::kReduce;
  reduce.dispatch_time = 30;
  reduce.compute_start = 32;
  reduce.end_time = 39;
  result.tasks.push_back(reduce);
  return result;
}

TEST(Trace, EmptyJobResultCsvIsHeaderOnly) {
  const std::string csv = trace_csv(JobResult{});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
  EXPECT_EQ(csv.rfind("id,kind,status,node", 0), 0u);
}

TEST(Trace, EmptyJobResultGanttRendersIdleLanes) {
  auto cluster = cluster::presets::homogeneous6();
  const std::string art = gantt(JobResult{}, cluster, 40);
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), 1 + cluster.total_slots());
  // Lane rows (everything after the legend line) are pure idle.
  const std::string rows = art.substr(art.find('\n') + 1);
  EXPECT_EQ(rows.find('='), std::string::npos);
  EXPECT_EQ(rows.find('#'), std::string::npos);
}

TEST(Trace, GanttWidthBelowNodeCountStillRenders) {
  // 6 nodes but only 10 columns: every task collapses into a narrow band,
  // which must clamp instead of indexing past the row.
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string art = gantt(result, cluster, 10);
  std::size_t pos = art.find('|');
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(art.find('|', pos + 1) - pos - 1, 10u);
}

TEST(Trace, GanttGlyphsPerStatus) {
  auto cluster = cluster::presets::homogeneous6();
  const std::string art = gantt(synthetic_result(), cluster, 80);
  // Killed and lost-output render as 'x'; partial keeps the map glyph
  // (its consumed prefix is real work); the reduce renders '#'.
  EXPECT_NE(art.find('x'), std::string::npos);
  EXPECT_NE(art.find('='), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Trace, CsvFieldsNeedNoEscaping) {
  // The CSV has no quoting layer, so every field must stay free of the
  // characters that would require one. Walk all statuses and kinds.
  const std::string csv = trace_csv(synthetic_result());
  std::istringstream lines(csv);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find('"'), std::string::npos) << line;
    EXPECT_EQ(line.find('\r'), std::string::npos) << line;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 10) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 7u);  // header + 6 tasks
  for (const char* status :
       {"completed", "partial", "killed", "lost-output", "failed"}) {
    EXPECT_NE(csv.find(status), std::string::npos) << status;
  }
}

TEST(Trace, ReplayTraceJsonShape) {
  const std::string doc = job_result_trace_json(synthetic_result());
  EXPECT_NE(doc.find("\"schema\":\"flexmr.trace.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"map 0\""), std::string::npos);
  EXPECT_NE(doc.find("\"reduce 1000000\""), std::string::npos);
  EXPECT_NE(doc.find("lost-output"), std::string::npos);
}

TEST(Trace, ReplayTraceOfEmptyResultIsValid) {
  const std::string doc = job_result_trace_json(JobResult{});
  EXPECT_NE(doc.find("\"schema\":\"flexmr.trace.v1\""), std::string::npos);
  // Job span present even with no tasks; no node processes.
  EXPECT_NE(doc.find("\"job\""), std::string::npos);
}

TEST(Trace, ReplayPacksOverlappingTasksOntoDistinctLanes) {
  JobResult result;
  result.finish_time = 10;
  for (TaskId id = 0; id < 3; ++id) {
    TaskRecord task;
    task.id = id;
    task.node = 2;
    task.dispatch_time = 0;
    task.compute_start = 1;
    task.end_time = 10;
    result.tasks.push_back(task);
  }
  const std::string doc = job_result_trace_json(result);
  // Three fully-overlapping tasks on one node need lanes 1..3.
  EXPECT_NE(doc.find("\"lane 1\""), std::string::npos);
  EXPECT_NE(doc.find("\"lane 3\""), std::string::npos);
}

}  // namespace
}  // namespace flexmr::mr
