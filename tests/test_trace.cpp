// Trace export and Gantt rendering.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "mr/trace.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::mr {
namespace {

JobResult run_small(cluster::Cluster& cluster) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = 256.0;
  return workloads::run_job(cluster, bench,
                            workloads::InputScale::kSmall,
                            workloads::SchedulerKind::kHadoopNoSpec,
                            workloads::RunConfig{});
}

TEST(Trace, CsvHasHeaderAndOneRowPerTask) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string csv = trace_csv(result);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), result.tasks.size() + 1);
  EXPECT_EQ(csv.rfind("id,kind,status,node", 0), 0u);
  EXPECT_NE(csv.find(",map,"), std::string::npos);
  EXPECT_NE(csv.find(",reduce,"), std::string::npos);
}

TEST(Trace, GanttHasOneLanePerSlot) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string art = gantt(result, cluster, 60);
  const auto lines = std::count(art.begin(), art.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), 1 + cluster.total_slots());
  EXPECT_NE(art.find('='), std::string::npos);  // map work is visible
  EXPECT_NE(art.find('#'), std::string::npos);  // reduce work is visible
}

TEST(Trace, GanttRowsHaveRequestedWidth) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  const std::string art = gantt(result, cluster, 40);
  std::size_t pos = art.find('|');
  ASSERT_NE(pos, std::string::npos);
  const std::size_t close = art.find('|', pos + 1);
  EXPECT_EQ(close - pos - 1, 40u);
}

TEST(Trace, TooNarrowWidthThrows) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result = run_small(cluster);
  EXPECT_THROW(gantt(result, cluster, 5), InvariantError);
}

}  // namespace
}  // namespace flexmr::mr
