// Unit tests for the discrete-event core: ordering, cancellation,
// determinism, and the run/run_until protocol.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simcore/simulator.hpp"

namespace flexmr {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&]() { order.push_back(3); });
  sim.schedule_at(1.0, [&]() { order.push_back(1); });
  sim.schedule_at(2.0, [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i]() { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(10.0, [&]() {
    sim.schedule_after(5.0, [&]() { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1.0, [&]() { fired = true; });
  EXPECT_TRUE(sim.pending(id));
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, []() {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, []() {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    ++count;
    if (count < 5) sim.schedule_after(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (int i = 1; i <= 5; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [&, i]() {
      fired.push_back(static_cast<SimTime>(i));
    });
  }
  sim.run_until(3.5);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 3.5);
  sim.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(Simulator, RunUntilIncludesEventsAtExactBoundary) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(2.0, [&]() { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, []() {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, []() {}), InvariantError);
}

TEST(Simulator, RunawayGuardThrows) {
  Simulator sim;
  std::function<void()> forever = [&]() { sim.schedule_after(1.0, forever); };
  sim.schedule_at(0.0, forever);
  EXPECT_THROW(sim.run(1000), InvariantError);
}

TEST(Simulator, LiveEventsTracksCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, []() {});
  sim.schedule_at(2.0, []() {});
  EXPECT_EQ(sim.live_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.live_events(), 1u);
}

TEST(Simulator, RunBudgetAllowsExactlyMaxEvents) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [&]() { ++fired; });
  }
  sim.run(5);  // budget equals live events: all fire, no throw
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, RunBudgetRejectsEventMaxPlusOne) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [&]() { ++fired; });
  }
  EXPECT_THROW(sim.run(5), InvariantError);
  EXPECT_EQ(fired, 5);  // the bound is exact: event 6 never ran
}

TEST(Simulator, RunBudgetIgnoresCancelledQueueResidue) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(0.0, [&]() { ++fired; });
  const EventId dead = sim.schedule_at(1.0, [&]() { ++fired; });
  sim.cancel(dead);
  sim.run(1);  // the lazily-cancelled entry is not a live event
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelChurnCompactsQueueAndBoundsPeak) {
  Simulator sim;
  // A small live set under heavy schedule/cancel churn: the lazily-
  // cancelled residue must be swept out, not accumulate. Before the
  // compaction policy this left ~100k dead entries in the heap and
  // queue_peak grew with the churn count instead of the live count.
  for (int i = 0; i < 8; ++i) {
    sim.schedule_at(1e9 + i, []() {});
  }
  for (int i = 0; i < 100000; ++i) {
    const EventId id = sim.schedule_at(1e6 + i, []() {});
    EXPECT_TRUE(sim.cancel(id));
  }
  const auto counters = sim.counters();
  EXPECT_GT(counters.compactions, 0u);
  // Dead entries are allowed up to the compaction threshold, never the
  // full churn volume.
  EXPECT_LE(counters.queue_peak, 4096u);
  EXPECT_EQ(sim.live_events(), 8u);
  sim.run();
  EXPECT_EQ(sim.counters().fired, 8u);
  EXPECT_EQ(sim.counters().cancelled, 100000u);
}

TEST(Simulator, StaleIdDoesNotCancelSlotReusingEvent) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_at(1.0, [&]() { ++fired; });
  ASSERT_TRUE(sim.cancel(a));
  // b recycles a's slot; the stale id must not alias the new event.
  const EventId b = sim.schedule_at(2.0, [&]() { ++fired; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_FALSE(sim.pending(a));
  EXPECT_TRUE(sim.pending(b));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, OrderingSurvivesCompaction) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_at(1e7 + i, [&order, i]() { order.push_back(i); });
  }
  // Force several compaction sweeps while the live events sit in the heap.
  for (int i = 0; i < 20000; ++i) {
    sim.cancel(sim.schedule_at(1e6, []() {}));
  }
  EXPECT_GT(sim.counters().compactions, 0u);
  sim.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CountersTrackScheduleFireCancelAndPeak) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, []() {});
  sim.schedule_at(2.0, []() {});
  sim.schedule_at(3.0, []() {});
  sim.cancel(a);
  sim.run();
  const auto counters = sim.counters();
  EXPECT_EQ(counters.scheduled, 3u);
  EXPECT_EQ(counters.fired, 2u);
  EXPECT_EQ(counters.cancelled, 1u);
  EXPECT_EQ(counters.queue_peak, 3u);
}

// Pins the full run_until(t) boundary contract (the sharded mirror lives
// in test_sharded_golden.cpp): every event with time exactly t fires —
// including one scheduled *at t, during the call* by another boundary
// event — in schedule (seq) order, events past t stay queued, and the
// clock lands exactly on t even though the last fired event was at t.
TEST(Simulator, RunUntilBoundaryFiresAtTInSeqOrderIncludingNewlyScheduled) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(10.0, [&]() { fired.push_back(1); });
  sim.schedule_at(10.0, [&]() {
    fired.push_back(2);
    sim.schedule_at(10.0, [&]() { fired.push_back(4); });
  });
  sim.schedule_at(10.0, [&]() { fired.push_back(3); });
  sim.schedule_at(10.0 + 1e-9, [&]() { fired.push_back(99); });
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 10.0);  // exactly t, not the last event time
  sim.run();
  EXPECT_EQ(fired.back(), 99);
}

// run_until past an empty queue, or with only cancelled residue in front,
// still advances the clock to exactly t (the classic engine pops dead
// entries even beyond t; the sharded engine mirrors this).
TEST(Simulator, RunUntilAdvancesClockThroughCancelledResidue) {
  Simulator sim;
  const EventId dead = sim.schedule_at(5.0, []() {});
  sim.cancel(dead);
  sim.run_until(3.0);
  EXPECT_EQ(sim.now(), 3.0);
  sim.run_until(7.0);
  EXPECT_EQ(sim.now(), 7.0);
  EXPECT_EQ(sim.live_events(), 0u);
}

// Over-aligned captures must not take the inline path: kInlineSize would
// fit a 64-byte capture's *size* check on some configurations, but the
// inline buffer is only max_align_t-aligned, so fits_inline must reject
// on alignment and fall back to the heap. Regression for the alignment
// term in EventHandler::fits_inline.
TEST(Simulator, EventHandlerHeapAllocatesOverAlignedCaptures) {
  struct alignas(64) Wide {
    double values[4];
  };
  static_assert(alignof(Wide) > alignof(std::max_align_t));
  Simulator sim;
  Wide wide{{1.0, 2.0, 3.0, 4.0}};
  double seen = 0.0;
  const Wide* observed = nullptr;
  sim.schedule_at(1.0, [wide, &seen, &observed]() {
    observed = &wide;  // address of the capture as the handler sees it
    seen = wide.values[0] + wide.values[1] + wide.values[2] + wide.values[3];
  });
  sim.run();
  EXPECT_EQ(seen, 10.0);
  ASSERT_NE(observed, nullptr);
  // The live capture really was aligned to its extended requirement.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(observed) % alignof(Wide), 0u);
}

// Small, naturally-aligned captures do take the inline path (no heap);
// both storage strategies must survive the move used by event firing.
TEST(Simulator, EventHandlerInlineAndHeapPathsBothFire) {
  Simulator sim;
  int small_hits = 0;
  sim.schedule_at(1.0, [&small_hits]() { ++small_hits; });  // inline
  struct Big {
    char payload[128];  // > kInlineSize: heap path via size, not alignment
  };
  Big big{};
  big.payload[0] = 42;
  char got = 0;
  sim.schedule_at(2.0, [big, &got]() { got = big.payload[0]; });
  sim.run();
  EXPECT_EQ(small_hits, 1);
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace flexmr
