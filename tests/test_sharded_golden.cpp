// Byte-identity contract of the sharded engine (DESIGN.md §13): the
// per-node-lane, conservative-window simulator must reproduce every golden
// hash of the classic single-heap engine — all four schedulers, with and
// without the canonical fault plan, with and without tracing, through the
// AM-crash recovery path, at every lane count — because lanes change the
// execution strategy, never the (time, seq) fire order the results hang
// off. The "Parallel"-named tests force real worker threads so the TSan CI
// job exercises the concurrent drain and the LaneSet handshake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <iterator>
#include <numeric>
#include <string>
#include <vector>

#include "obs/session.hpp"
#include "simcore/lane_set.hpp"
#include "simcore/simulator.hpp"
#include "tests/golden_cases.hpp"

namespace flexmr {
namespace {

using golden::fnv1a;
using golden::golden_fault_plan;
using golden::kCases;
using golden::kFaultCases;
using golden::run_case;

constexpr std::uint32_t kLaneCounts[] = {1, 2, 4, 8};

TEST(ShardedGolden, CleanCasesByteIdenticalAtEveryLaneCount) {
  for (const std::uint32_t lanes : kLaneCounts) {
    for (const auto& c : kCases) {
      EXPECT_EQ(fnv1a(run_case(c, faults::FaultPlan{}, nullptr, lanes)),
                c.expected)
          << c.label << " at " << lanes << " lanes";
    }
  }
}

TEST(ShardedGolden, FaultCasesByteIdenticalAtEveryLaneCount) {
  const auto plan = golden_fault_plan();
  for (const std::uint32_t lanes : kLaneCounts) {
    for (const auto& c : kFaultCases) {
      EXPECT_EQ(fnv1a(run_case(c, plan, nullptr, lanes)), c.expected)
          << c.label << " at " << lanes << " lanes";
    }
  }
}

// Tracing on the sharded engine perturbs nothing, same as on the classic
// engine (the tracer draws no randomness and schedules no events).
TEST(ShardedGolden, TracingOnShardedEngineLeavesHashesUnchanged) {
  for (const auto& c : kCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, faults::FaultPlan{}, &trace, 4)), c.expected)
        << c.label << " sharded with tracing";
    EXPECT_FALSE(trace.tracer().empty()) << c.label;
  }
  const auto plan = golden_fault_plan();
  for (const auto& c : kFaultCases) {
    obs::TraceSession trace;
    EXPECT_EQ(fnv1a(run_case(c, plan, &trace, 4)), c.expected)
        << c.label << " sharded with tracing";
  }
}

// The ninth pinned golden: a mid-map AM crash flows through the
// RecoveryRunner's restart loop on the same Simulator&, so journaled
// replay and attempt hand-off must also be engine-independent.
TEST(ShardedGolden, MidMapAmCrashGoldenByteIdenticalAcrossLanes) {
  for (const std::uint32_t lanes : kLaneCounts) {
    auto cluster = cluster::presets::virtual20();
    workloads::RunConfig config;
    config.params.seed = 1234;
    config.faults.am_crashes = {40.0};
    config.lanes = lanes;
    const auto result = workloads::run_job(
        cluster, workloads::benchmark("WC"), workloads::InputScale::kSmall,
        workloads::SchedulerKind::kHadoop, config);
    ASSERT_FALSE(result.aborted);
    ASSERT_EQ(result.am_restarts, 1u);
    EXPECT_EQ(fnv1a(mr::job_result_json(result, cluster)),
              golden::kMidMapAmCrashGolden)
        << lanes << " lanes";
  }
}

// Full-JSON (not just hash) cross-check between the engines, including the
// simulator counters embedded in the result: queue_peak and the compaction
// count must evolve identically (the sharded engine's entry accounting is
// a byte-exact mirror of the classic queue size).
TEST(ShardedGolden, FullJsonMatchesClassicEngine) {
  const auto plan = golden_fault_plan();
  for (const auto& c : {kCases[2], kFaultCases[3]}) {
    const std::string classic = run_case(c, plan);
    for (const std::uint32_t lanes : kLaneCounts) {
      EXPECT_EQ(run_case(c, plan, nullptr, lanes), classic)
          << c.label << " at " << lanes << " lanes";
    }
  }
}

// ---------------------------------------------------------------------------
// Threaded variants (TSan coverage: named *Parallel* for the CI filter)
// ---------------------------------------------------------------------------

// Real worker threads drain the lanes concurrently; the result must still
// match the golden byte for byte, and TSan must see a clean handshake.
TEST(ShardedGoldenParallel, ThreadedDrainReproducesGoldens) {
  const auto plan = golden_fault_plan();
  for (const std::uint32_t lanes : {2u, 8u}) {
    for (const auto& c : kCases) {
      EXPECT_EQ(fnv1a(run_case(c, faults::FaultPlan{}, nullptr, lanes,
                               /*lane_threads=*/2)),
                c.expected)
          << c.label << " at " << lanes << " lanes, 2 threads";
    }
    for (const auto& c : kFaultCases) {
      EXPECT_EQ(fnv1a(run_case(c, plan, nullptr, lanes, /*lane_threads=*/2)),
                c.expected)
          << c.label << " at " << lanes << " lanes, 2 threads";
    }
  }
}

TEST(ShardedGoldenParallel, LaneSetRunsEveryIndexExactlyOnce) {
  LaneSet set(3);
  EXPECT_EQ(set.workers(), 3u);
  EXPECT_FALSE(LaneSet::on_worker());
  std::vector<std::atomic<int>> hits(10000);
  set.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
  // Repeated fan-outs reuse the parked workers.
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    set.run(64, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(ShardedGoldenParallel, RunChunkedCoversRangeInOrderDisjointly) {
  LaneSet set(2);
  std::vector<char> seen(100001, 0);
  std::atomic<std::size_t> chunks{0};
  set.run_chunked(seen.size(), 2048,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    chunks.fetch_add(1);
                    for (std::size_t i = begin; i < end; ++i) seen[i] = 1;
                  });
  EXPECT_GE(chunks.load(), 2u);
  EXPECT_LE(chunks.load(), 3u);  // workers() + 1 cap
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 0);
}

TEST(ShardedGoldenParallel, InlineModeNeedsNoThreads) {
  LaneSet set(0);
  EXPECT_EQ(set.workers(), 0u);
  std::size_t sum = 0;  // safe: inline mode runs on this thread
  set.run(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

// ---------------------------------------------------------------------------
// Window-barrier boundary contract (mirror of Simulator.run_until tests)
// ---------------------------------------------------------------------------

// Events scheduled exactly at t — including one scheduled *during* the
// call, from another lane — fire in seq order and the clock lands on
// exactly t, across the sharded engine's window barrier.
TEST(ShardedGolden, RunUntilBoundaryContractAcrossWindowBarrier) {
  ShardedSimulator sim(4, /*lookahead=*/5.0, /*threads=*/0);
  std::vector<int> fired;
  sim.schedule_on(1, 10.0, [&]() { fired.push_back(1); });
  sim.schedule_on(2, 10.0, [&]() {
    fired.push_back(2);
    // Scheduled during the run, at exactly the boundary, on a third lane:
    // must still fire inside this run_until call, after every earlier seq.
    sim.schedule_on(3, 10.0, [&]() { fired.push_back(4); });
  });
  sim.schedule_on(0, 10.0, [&]() { fired.push_back(3); });
  sim.schedule_on(1, 10.0 + 1e-9, [&]() { fired.push_back(99); });
  sim.run_until(10.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 10.0);
  sim.run(100);
  EXPECT_EQ(fired.back(), 99);
}

// run_until with no events at t still lands the clock exactly on t, and a
// window left half-consumed by run_until keeps firing correctly afterward.
TEST(ShardedGolden, RunUntilMidWindowThenStepResumes) {
  ShardedSimulator sim(2, /*lookahead=*/10.0);
  std::vector<double> times;
  for (int i = 0; i < 8; ++i) {
    const double t = 1.0 + i;
    sim.schedule_on(i % 2, t, [&times, t]() { times.push_back(t); });
  }
  sim.run_until(3.5);  // windows span [1, 11): batch holds all 8 events
  EXPECT_EQ(sim.now(), 3.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
  while (sim.step()) {
  }
  EXPECT_EQ(times.size(), 8u);
  EXPECT_EQ(times.back(), 8.0);
}

// Cancellation across the window barrier: cancelling an event that was
// already drained into the open window's batch must skip it (lazy
// generation check), with counters matching the classic engine.
TEST(ShardedGolden, CancelInsideOpenWindowSkipsDrainedEntry) {
  ShardedSimulator sharded(2, 5.0);
  Simulator classic;
  for (Simulator* sim : {static_cast<Simulator*>(&sharded), &classic}) {
    std::vector<int> fired;
    EventId victim = kInvalidEvent;
    sim->schedule_at(1.0, [&, sim]() {
      fired.push_back(1);
      sim->cancel(victim);  // already drained into this window's batch
    });
    victim = sim->schedule_at(2.0, [&]() { fired.push_back(2); });
    sim->schedule_at(3.0, [&]() { fired.push_back(3); });
    sim->run(100);
    EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  }
  EXPECT_EQ(sharded.counters().fired, classic.counters().fired);
  EXPECT_EQ(sharded.counters().cancelled, classic.counters().cancelled);
  EXPECT_EQ(sharded.counters().queue_peak, classic.counters().queue_peak);
}

// Lane affinity is a placement hint only: the same workload scheduled with
// every event on one lane, or spread across lanes, fires identically.
TEST(ShardedGolden, LaneAssignmentNeverChangesFireOrder) {
  std::vector<std::pair<double, int>> order_a;
  std::vector<std::pair<double, int>> order_b;
  for (int spread = 0; spread < 2; ++spread) {
    auto& order = spread ? order_b : order_a;
    ShardedSimulator sim(4, 2.5);
    for (int i = 0; i < 40; ++i) {
      const double t = (i * 7 % 13) * 1.5;
      const std::uint32_t lane = spread ? sim.lane_for_node(i) : 0;
      sim.schedule_on(lane, t, [&order, t, i]() { order.push_back({t, i}); });
    }
    sim.run(1000);
  }
  EXPECT_EQ(order_a, order_b);
}

TEST(ShardedGolden, LaneDrainedCountsCoverAllFiredEvents) {
  ShardedSimulator sim(3, 1.0);
  for (int i = 0; i < 30; ++i) {
    sim.schedule_on(sim.lane_for_node(i), 0.1 * i, []() {});
  }
  sim.run(100);
  const auto drained = sim.lane_drained();
  ASSERT_EQ(drained.size(), 4u);  // 3 node lanes + control
  EXPECT_EQ(std::accumulate(drained.begin(), drained.end(), 0ull), 30ull);
  EXPECT_EQ(sim.counters().fired, 30ull);
}

}  // namespace
}  // namespace flexmr
