// Machines, interference models, cluster builder, presets.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "simcore/simulator.hpp"

namespace flexmr::cluster {
namespace {

TEST(Machine, EffectiveIpsFollowsMultiplier) {
  Machine machine(0, MachineSpec{.model = "m", .base_ips = 10.0,
                                 .slots = 4, .nic_bandwidth = 1192.0,
                                 .memory_gb = 8.0});
  EXPECT_DOUBLE_EQ(machine.effective_ips(), 10.0);
  machine.set_multiplier(0.5);
  EXPECT_DOUBLE_EQ(machine.effective_ips(), 5.0);
}

TEST(Machine, SpeedListenerFiresOnChangeOnly) {
  Machine machine(3, MachineSpec{});
  int calls = 0;
  MiBps last = 0;
  machine.add_speed_listener([&](NodeId node, MiBps ips) {
    EXPECT_EQ(node, 3u);
    ++calls;
    last = ips;
  });
  machine.set_multiplier(0.5);
  machine.set_multiplier(0.5);  // no change, no callback
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(last, machine.spec().base_ips * 0.5);
}

TEST(Machine, InvalidMultiplierThrows) {
  Machine machine(0, MachineSpec{});
  EXPECT_THROW(machine.set_multiplier(0.0), InvariantError);
  EXPECT_THROW(machine.set_multiplier(1.5), InvariantError);
}

TEST(ClusterBuilder, BuildsRequestedGroups) {
  auto cluster = ClusterBuilder()
                     .add(MachineSpec{.model = "a", .base_ips = 5.0,
                                      .slots = 2, .nic_bandwidth = 1192.0,
                                      .memory_gb = 4.0},
                          3)
                     .add(MachineSpec{.model = "b", .base_ips = 10.0,
                                      .slots = 4, .nic_bandwidth = 1192.0,
                                      .memory_gb = 8.0},
                          2)
                     .build();
  EXPECT_EQ(cluster.num_nodes(), 5u);
  EXPECT_EQ(cluster.total_slots(), 3u * 2 + 2u * 4);
  EXPECT_EQ(cluster.machine(0).spec().model, "a");
  EXPECT_EQ(cluster.machine(4).spec().model, "b");
  EXPECT_DOUBLE_EQ(cluster.fastest_ips(), 10.0);
  EXPECT_DOUBLE_EQ(cluster.slowest_ips(), 5.0);
}

TEST(Interference, StaticSlowdownAppliesAtStart) {
  auto cluster = ClusterBuilder()
                     .add(MachineSpec{}, 1, static_slowdown(0.25))
                     .build();
  Simulator sim;
  Rng rng(1);
  cluster.start(sim, rng);
  EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 0.25);
}

TEST(Interference, OnOffAlternates) {
  OnOffInterference::Params params;
  params.mean_idle_s = 10.0;
  params.mean_busy_s = 10.0;
  params.busy_lo = 0.2;
  params.busy_hi = 0.4;
  auto cluster = ClusterBuilder()
                     .add(MachineSpec{}, 1, on_off_interference(params))
                     .build();
  Simulator sim;
  Rng rng(5);
  cluster.start(sim, rng);
  // Track distinct multiplier values over a long horizon.
  int busy_periods = 0;
  cluster.machine(0).add_speed_listener([&](NodeId, MiBps ips) {
    if (ips < cluster.machine(0).spec().base_ips) ++busy_periods;
  });
  sim.run_until(500.0);
  EXPECT_GT(busy_periods, 3);
}

TEST(Interference, OnOffBusyMultiplierWithinBounds) {
  OnOffInterference::Params params;
  params.mean_idle_s = 5.0;
  params.mean_busy_s = 5.0;
  params.busy_lo = 0.3;
  params.busy_hi = 0.6;
  params.start_busy = true;
  auto cluster = ClusterBuilder()
                     .add(MachineSpec{}, 1, on_off_interference(params))
                     .build();
  Simulator sim;
  Rng rng(9);
  cluster.start(sim, rng);
  const double m = cluster.machine(0).multiplier();
  EXPECT_GE(m, 0.3);
  EXPECT_LE(m, 0.6);
}

TEST(Interference, RandomWalkStaysWithinBounds) {
  RandomWalkInterference::Params params;
  params.step_period_s = 1.0;
  params.step_stddev = 0.3;
  params.floor = 0.4;
  auto cluster =
      ClusterBuilder()
          .add(MachineSpec{}, 1, random_walk_interference(params))
          .build();
  Simulator sim;
  Rng rng(2);
  cluster.start(sim, rng);
  for (int i = 0; i < 100; ++i) {
    sim.run_until(sim.now() + 1.0);
    const double m = cluster.machine(0).multiplier();
    EXPECT_GE(m, 0.4);
    EXPECT_LE(m, 1.0);
  }
}

TEST(Interference, TraceReplaysSchedule) {
  auto cluster =
      ClusterBuilder()
          .add(MachineSpec{}, 1,
               trace_interference({{0.0, 0.5}, {10.0, 0.25}, {20.0, 1.0}}))
          .build();
  Simulator sim;
  Rng rng(1);
  cluster.start(sim, rng);
  EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 0.5);
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 0.25);
  sim.run_until(25.0);
  EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 1.0);
}

TEST(Interference, TraceValidatesInput) {
  EXPECT_THROW(TraceInterference({{5.0, 0.5}, {1.0, 0.5}}), InvariantError);
  EXPECT_THROW(TraceInterference({{0.0, 0.0}}), InvariantError);
  EXPECT_THROW(TraceInterference({{0.0, 1.5}}), InvariantError);
}

TEST(Interference, TraceIsDeterministicAcrossRuns) {
  auto make = []() {
    return ClusterBuilder()
        .add(MachineSpec{}, 2,
             trace_interference({{0.0, 1.0}, {5.0, 0.3}, {15.0, 0.9}}))
        .build();
  };
  for (int run = 0; run < 2; ++run) {
    auto cluster = make();
    Simulator sim;
    Rng rng(static_cast<std::uint64_t>(run + 1));  // rng must not matter
    cluster.start(sim, rng);
    sim.run_until(6.0);
    EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 0.3);
    EXPECT_DOUBLE_EQ(cluster.machine(1).multiplier(), 0.3);
  }
}

TEST(Cluster, ResetClearsListenersAndMultipliers) {
  auto cluster = ClusterBuilder()
                     .add(MachineSpec{}, 2, static_slowdown(0.5))
                     .build();
  Simulator sim;
  Rng rng(1);
  int calls = 0;
  cluster.machine(0).add_speed_listener([&](NodeId, MiBps) { ++calls; });
  cluster.start(sim, rng);
  EXPECT_EQ(calls, 1);
  cluster.reset();
  EXPECT_DOUBLE_EQ(cluster.machine(0).multiplier(), 1.0);
  Simulator sim2;
  cluster.start(sim2, rng);  // old listener must be gone
  EXPECT_EQ(calls, 1);
}

TEST(Presets, SizesMatchPaperSetups) {
  EXPECT_EQ(presets::physical12().num_nodes(), 11u);   // 12 - master
  EXPECT_EQ(presets::virtual20().num_nodes(), 19u);    // 20 - master
  EXPECT_EQ(presets::multitenant40(0.2).num_nodes(), 39u);
  EXPECT_EQ(presets::homogeneous6().num_nodes(), 6u);
  EXPECT_EQ(presets::heterogeneous6().num_nodes(), 6u);
  EXPECT_EQ(presets::tiny3().num_nodes(), 3u);
}

TEST(Presets, Physical12SpeedSpreadMatchesFig1a) {
  auto cluster = presets::physical12();
  const double spread = cluster.fastest_ips() / cluster.slowest_ips();
  EXPECT_GE(spread, 2.0);  // slowest map >= 2x the fastest
  EXPECT_LE(spread, 6.0);
}

TEST(Presets, Multitenant40SlowFraction) {
  for (const double fraction : {0.05, 0.1, 0.2, 0.4}) {
    auto cluster = presets::multitenant40(fraction);
    Simulator sim;
    Rng rng(1);
    cluster.start(sim, rng);
    std::uint32_t slow = 0;
    for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
      if (cluster.machine(n).multiplier() < 1.0) ++slow;
    }
    EXPECT_EQ(slow, static_cast<std::uint32_t>(fraction * 39 + 0.5));
  }
}

TEST(Presets, Tiny3CapacityRatioOneOneThree) {
  auto cluster = presets::tiny3();
  EXPECT_DOUBLE_EQ(cluster.machine(2).spec().base_ips,
                   3.0 * cluster.machine(0).spec().base_ips);
}

}  // namespace
}  // namespace flexmr::cluster
