// Regression tests for the paper's qualitative claims: if a refactor
// breaks the *reproduction* (not just the code), these fail. Each test
// pins one claim from the evaluation narrative, with tolerances loose
// enough to survive seed changes but tight enough to catch inversions.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "common/stats.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

double mean_jct(const std::function<cluster::Cluster()>& make,
                const char* code, InputScale scale, SchedulerKind kind,
                MiB block = kDefaultBlockMiB, int seeds = 3) {
  OnlineStats jct;
  for (int s = 0; s < seeds; ++s) {
    auto cluster = make();
    RunConfig config;
    config.block_size = block;
    config.params.seed = 100 + static_cast<std::uint64_t>(s) * 13;
    jct.add(workloads::run_job(cluster, workloads::benchmark(code), scale,
                               kind, config)
                .jct());
  }
  return jct.mean();
}

double mean_efficiency(const std::function<cluster::Cluster()>& make,
                       const char* code, SchedulerKind kind,
                       int seeds = 3) {
  OnlineStats eff;
  for (int s = 0; s < seeds; ++s) {
    auto cluster = make();
    RunConfig config;
    config.params.seed = 100 + static_cast<std::uint64_t>(s) * 13;
    eff.add(workloads::run_job(cluster, workloads::benchmark(code),
                               InputScale::kSmall, kind, config)
                .efficiency());
  }
  return eff.mean();
}

auto physical = []() { return cluster::presets::physical12(); };
auto virtual_cluster = []() { return cluster::presets::virtual20(); };
auto homogeneous = []() { return cluster::presets::homogeneous6(); };

// §IV-B / Fig. 5: FlexMap reduces JCT vs the best stock setting on
// map-heavy benchmarks in both heterogeneous environments.
TEST(PaperClaims, FlexMapBeatsStockOnMapHeavyPhysical) {
  for (const char* code : {"GR", "HM", "KM"}) {
    const double stock =
        mean_jct(physical, code, InputScale::kSmall, SchedulerKind::kHadoop);
    const double flexmap = mean_jct(physical, code, InputScale::kSmall,
                                    SchedulerKind::kFlexMap);
    EXPECT_LT(flexmap, stock) << code;
  }
}

TEST(PaperClaims, FlexMapBeatsStockOnMapHeavyVirtual) {
  for (const char* code : {"WC", "TV", "KM"}) {
    const double stock = mean_jct(virtual_cluster, code, InputScale::kSmall,
                                  SchedulerKind::kHadoop);
    const double flexmap = mean_jct(virtual_cluster, code,
                                    InputScale::kSmall,
                                    SchedulerKind::kFlexMap);
    EXPECT_LT(flexmap, stock) << code;
  }
}

// Fig. 6: FlexMap's map-phase efficiency beats stock Hadoop's under
// heterogeneity.
TEST(PaperClaims, FlexMapImprovesEfficiency) {
  for (const char* code : {"WC", "GR", "HR"}) {
    const double stock =
        mean_efficiency(physical, code, SchedulerKind::kHadoop);
    const double flexmap =
        mean_efficiency(physical, code, SchedulerKind::kFlexMap);
    EXPECT_GT(flexmap, stock + 0.05) << code;
  }
}

// §IV-D: on a homogeneous cluster FlexMap is within a few percent of
// stock (the vertical-scaling ramp is cheap).
TEST(PaperClaims, FlexMapOverheadSmallOnHomogeneous) {
  const double stock = mean_jct(homogeneous, "WC", InputScale::kSmall,
                                SchedulerKind::kHadoopNoSpec);
  const double flexmap = mean_jct(homogeneous, "WC", InputScale::kSmall,
                                  SchedulerKind::kFlexMap);
  EXPECT_LT(flexmap, stock * 1.08);
}

// §II-C / Fig. 3(c): 8 MB tasks have productivity ≈ 0.28.
TEST(PaperClaims, SmallTaskProductivityMatchesPaper) {
  auto cluster = cluster::presets::homogeneous6();
  auto bench = workloads::benchmark("WC");
  bench.small_input = 2048.0;
  RunConfig config;
  config.block_size = 8.0;
  config.params.exec_noise_sigma = 0.0;
  const auto result = workloads::run_job(
      cluster, bench, InputScale::kSmall, SchedulerKind::kHadoopNoSpec,
      config);
  EXPECT_NEAR(result.mean_map_productivity(), 0.28, 0.04);
}

// Fig. 3(d): on a heterogeneous cluster the optimal fixed task size is
// interior — both 8 MB and 256 MB are worse than 64 MB.
TEST(PaperClaims, FixedTaskSizeIsUShapedUnderHeterogeneity) {
  auto hetero = []() { return cluster::presets::heterogeneous6(); };
  const double tiny =
      mean_jct(hetero, "WC", InputScale::kSmall,
               SchedulerKind::kHadoopNoSpec, 8.0);
  const double mid =
      mean_jct(hetero, "WC", InputScale::kSmall,
               SchedulerKind::kHadoopNoSpec, 64.0);
  const double huge =
      mean_jct(hetero, "WC", InputScale::kSmall,
               SchedulerKind::kHadoopNoSpec, 256.0);
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

// Fig. 3(a): small fixed tasks have lower normalized-runtime variance.
TEST(PaperClaims, SmallTasksAreMoreUniform) {
  auto run_cv = [](MiB block) {
    auto cluster = cluster::presets::virtual20();
    auto bench = workloads::benchmark("WC");
    bench.small_input = 4096.0;
    RunConfig config;
    config.block_size = block;
    const auto result = workloads::run_job(
        cluster, bench, InputScale::kSmall, SchedulerKind::kHadoopNoSpec,
        config);
    return result.map_runtimes().cv();
  };
  EXPECT_LT(run_cv(8.0), run_cv(64.0));
}

// §IV-F / Fig. 8: speculation's benefit over no-speculation shrinks as the
// slow-node fraction grows.
TEST(PaperClaims, SpeculationConvergesToNoSpecWithManySlowNodes) {
  auto jct_gap = [](double fraction) {
    auto make = [fraction]() {
      return cluster::presets::multitenant40(fraction);
    };
    auto bench = workloads::benchmark("WC");
    bench.large_input = gib_to_mib(16);
    OnlineStats spec;
    OnlineStats nospec;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      RunConfig config;
      config.params.seed = seed;
      auto c1 = make();
      spec.add(workloads::run_job(c1, bench, InputScale::kLarge,
                                  SchedulerKind::kHadoop, config)
                   .jct());
      auto c2 = make();
      nospec.add(workloads::run_job(c2, bench, InputScale::kLarge,
                                    SchedulerKind::kHadoopNoSpec, config)
                     .jct());
    }
    return nospec.mean() / spec.mean();  // >1 means speculation helps
  };
  const double at_5 = jct_gap(0.05);
  const double at_40 = jct_gap(0.40);
  EXPECT_LT(at_40, at_5 + 0.05);  // benefit does not grow; it shrinks
}

// Fig. 7: FlexMap's final task size on a fast node exceeds the slow
// node's by a large factor in the virtual cluster.
TEST(PaperClaims, ElasticSizesDivergeOnVirtualCluster) {
  auto cluster = cluster::presets::virtual20();
  flexmap::FlexMapScheduler scheduler;
  auto bench = workloads::benchmark("HR");
  RunConfig config;
  config.params.seed = 3;
  workloads::run_job(cluster, bench, InputScale::kSmall, scheduler, config);
  // Static-slow nodes are 0..4 in the preset; compare peak sizes.
  std::uint32_t slow_peak = 0;
  std::uint32_t fast_peak = 0;
  for (const auto& point : scheduler.sizing_trace()) {
    auto& peak = point.node < 5 ? slow_peak : fast_peak;
    peak = std::max(peak, point.size_bus);
  }
  EXPECT_GE(fast_peak, 3 * slow_peak);
}

}  // namespace
}  // namespace flexmr
