// HDFS substrate: file layout creation and the BlockLocationIndex
// exactly-once invariants that late task binding depends on.
#include <gtest/gtest.h>

#include <set>

#include "hdfs/block_index.hpp"
#include "hdfs/namenode.hpp"

namespace flexmr::hdfs {
namespace {

NameNode make_namenode(std::uint32_t nodes,
                       PlacementPolicy policy = PlacementPolicy::kRandom) {
  return NameNode(nodes, policy, Rng(1234));
}

TEST(NameNode, SplitsFileIntoBlocksAndBus) {
  auto nn = make_namenode(10);
  const auto layout = nn.create_file(640.0, 64.0, 3, 8.0);
  EXPECT_EQ(layout.blocks.size(), 10u);
  EXPECT_EQ(layout.bus.size(), 80u);
  for (const auto& block : layout.blocks) {
    EXPECT_EQ(block.bus.size(), 8u);
  }
}

TEST(NameNode, LastBuMayBePartial) {
  auto nn = make_namenode(5);
  const auto layout = nn.create_file(20.0, 64.0, 3, 8.0);
  ASSERT_EQ(layout.bus.size(), 3u);
  EXPECT_DOUBLE_EQ(layout.bus[0].size, 8.0);
  EXPECT_DOUBLE_EQ(layout.bus[1].size, 8.0);
  EXPECT_DOUBLE_EQ(layout.bus[2].size, 4.0);
  double total = 0;
  for (const auto& bu : layout.bus) total += bu.size;
  EXPECT_DOUBLE_EQ(total, 20.0);
}

TEST(NameNode, ReplicasAreDistinctNodes) {
  auto nn = make_namenode(10);
  const auto layout = nn.create_file(6400.0, 64.0, 3, 8.0);
  for (const auto& block : layout.blocks) {
    ASSERT_EQ(block.replicas.size(), 3u);
    std::set<NodeId> distinct(block.replicas.begin(), block.replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
    for (const NodeId node : block.replicas) EXPECT_LT(node, 10u);
  }
}

TEST(NameNode, ReplicationClampsToClusterSize) {
  auto nn = make_namenode(2);
  const auto layout = nn.create_file(64.0, 64.0, 3, 8.0);
  EXPECT_EQ(layout.replication, 2u);
  EXPECT_EQ(layout.blocks[0].replicas.size(), 2u);
}

TEST(NameNode, BusInheritParentBlockReplicas) {
  auto nn = make_namenode(8);
  const auto layout = nn.create_file(1280.0, 64.0, 3, 8.0);
  for (const auto& bu : layout.bus) {
    EXPECT_EQ(layout.replicas_of(bu.id), layout.blocks[bu.block].replicas);
  }
}

TEST(NameNode, RoundRobinPlacementIsEven) {
  auto nn = make_namenode(4, PlacementPolicy::kRoundRobin);
  const auto layout = nn.create_file(64.0 * 8, 64.0, 2, 8.0);
  std::vector<int> count(4, 0);
  for (const auto& block : layout.blocks) {
    for (const NodeId node : block.replicas) ++count[node];
  }
  for (const int c : count) EXPECT_EQ(c, 4);  // 8 blocks * 2 replicas / 4
}

TEST(NameNode, RandomPlacementCoversAllNodes) {
  auto nn = make_namenode(10);
  const auto layout = nn.create_file(64.0 * 100, 64.0, 3, 8.0);
  std::set<NodeId> seen;
  for (const auto& block : layout.blocks) {
    seen.insert(block.replicas.begin(), block.replicas.end());
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(NameNode, SameSeedSameLayout) {
  auto nn1 = NameNode(10, PlacementPolicy::kRandom, Rng(99));
  auto nn2 = NameNode(10, PlacementPolicy::kRandom, Rng(99));
  const auto a = nn1.create_file(640.0, 64.0, 3, 8.0);
  const auto b = nn2.create_file(640.0, 64.0, 3, 8.0);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].replicas, b.blocks[i].replicas);
  }
}

TEST(NameNode, TotalWorkMatchesCostWeightedSize) {
  auto nn = make_namenode(4);
  auto layout = nn.create_file(80.0, 64.0, 2, 8.0);
  for (auto& bu : layout.bus) bu.cost = 2.0;
  EXPECT_DOUBLE_EQ(layout.total_work(), 160.0);
}

class BlockIndexTest : public ::testing::Test {
 protected:
  BlockIndexTest()
      : nn_(NameNode(6, PlacementPolicy::kRandom, Rng(7))),
        layout_(nn_.create_file(64.0 * 12, 64.0, 3, 8.0)),
        index_(layout_, 6) {}

  NameNode nn_;
  FileLayout layout_;
  BlockLocationIndex index_;
};

TEST_F(BlockIndexTest, InitialCountsMatchLayout) {
  EXPECT_EQ(index_.unprocessed(), layout_.bus.size());
  std::size_t sum = 0;
  for (NodeId node = 0; node < 6; ++node) sum += index_.local_count(node);
  EXPECT_EQ(sum, layout_.bus.size() * 3);  // replication 3
}

TEST_F(BlockIndexTest, TakeLocalReturnsOnlyLocalBus) {
  const auto taken = index_.take_local(2, 5);
  EXPECT_LE(taken.size(), 5u);
  for (const BlockUnitId bu : taken) {
    const auto& replicas = layout_.replicas_of(bu);
    EXPECT_NE(std::find(replicas.begin(), replicas.end(), NodeId{2}),
              replicas.end());
    EXPECT_TRUE(index_.taken(bu));
  }
}

TEST_F(BlockIndexTest, TakingRemovesFromAllReplicaHolders) {
  const auto before0 = index_.local_count(0);
  const auto taken = index_.take_local(0, 1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(index_.local_count(0), before0 - 1);
  for (const NodeId node : layout_.replicas_of(taken[0])) {
    // Every holder's count dropped by exactly the units it held.
    EXPECT_LE(index_.local_count(node), layout_.bus.size() * 3);
  }
  EXPECT_EQ(index_.unprocessed(), layout_.bus.size() - 1);
}

TEST_F(BlockIndexTest, NoBuTakenTwiceAcrossExhaustiveDraining) {
  std::set<BlockUnitId> seen;
  NodeId node = 0;
  while (index_.unprocessed() > 0) {
    auto taken = index_.take_local(node, 3);
    if (taken.empty()) taken = index_.take_remote(node, 3);
    ASSERT_FALSE(taken.empty());
    for (const BlockUnitId bu : taken) {
      EXPECT_TRUE(seen.insert(bu).second) << "BU " << bu << " taken twice";
    }
    node = (node + 1) % 6;
  }
  EXPECT_EQ(seen.size(), layout_.bus.size());
}

TEST_F(BlockIndexTest, TakeRemotePrefersNodeWithMostUnprocessed) {
  // Drain node 0 completely, then a remote request avoiding node 0 must
  // still succeed and unprocessed counts must stay consistent.
  while (index_.local_count(0) > 0) index_.take_local(0, 8);
  const auto before = index_.unprocessed();
  const auto taken = index_.take_remote(0, 4);
  EXPECT_EQ(taken.size(), std::min<std::size_t>(4, before));
  EXPECT_EQ(index_.unprocessed(), before - taken.size());
}

TEST_F(BlockIndexTest, TakeBlockTakesExactlyItsBus) {
  const auto& block = layout_.blocks[3];
  index_.take_block(block);
  for (const BlockUnitId bu : block.bus) EXPECT_TRUE(index_.taken(bu));
  EXPECT_EQ(index_.unprocessed(), layout_.bus.size() - block.bus.size());
}

TEST_F(BlockIndexTest, DoubleTakeBlockThrows) {
  index_.take_block(layout_.blocks[0]);
  EXPECT_THROW(index_.take_block(layout_.blocks[0]), InvariantError);
}

TEST_F(BlockIndexTest, PutBackRestoresAvailability) {
  auto taken = index_.take_local(1, 4);
  ASSERT_FALSE(taken.empty());
  const auto before = index_.unprocessed();
  index_.put_back(taken);
  EXPECT_EQ(index_.unprocessed(), before + taken.size());
  for (const BlockUnitId bu : taken) EXPECT_FALSE(index_.taken(bu));
  // And they can be re-taken (by a different node holding replicas).
  index_.take_units(taken);
  for (const BlockUnitId bu : taken) EXPECT_TRUE(index_.taken(bu));
}

TEST_F(BlockIndexTest, PutBackUntakenThrows) {
  EXPECT_THROW(index_.put_back({0}), InvariantError);
}

TEST_F(BlockIndexTest, TakeUnitsOnTakenThrows) {
  auto taken = index_.take_local(0, 1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_THROW(index_.take_units(taken), InvariantError);
}

TEST_F(BlockIndexTest, ExhaustedIndexReturnsEmpty) {
  NodeId node = 0;
  while (index_.unprocessed() > 0) {
    if (index_.take_remote(node, 16).empty()) break;
  }
  EXPECT_EQ(index_.unprocessed(), 0u);
  EXPECT_TRUE(index_.take_local(0, 1).empty());
  EXPECT_TRUE(index_.take_remote(0, 1).empty());
}

}  // namespace
}  // namespace flexmr::hdfs
