// Behavioral tests of the scheduling policies, observed through full runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/presets.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "flexmap/reduce_placer.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark tiny_wc(MiB input = 512.0, double shuffle = 0.0) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

/// A cluster with one dramatic straggler node: 1/8 speed.
cluster::Cluster straggler_cluster() {
  return cluster::ClusterBuilder()
      .add(cluster::MachineSpec{.model = "fast", .base_ips = 12.0,
                                .slots = 4, .nic_bandwidth = 1192.0,
                                .memory_gb = 16.0},
           5)
      .add(cluster::MachineSpec{.model = "slow", .base_ips = 1.5,
                                .slots = 4, .nic_bandwidth = 1192.0,
                                .memory_gb = 16.0},
           1)
      .build();
}

TEST(StockScheduler, LaunchesOneMapPerBlock) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result =
      workloads::run_job(cluster, tiny_wc(), InputScale::kSmall,
                         SchedulerKind::kHadoopNoSpec, RunConfig{});
  EXPECT_EQ(result.map_tasks_launched(), 8u);  // 512 MiB / 64 MiB
  EXPECT_EQ(result.count(mr::TaskKind::kMap, mr::TaskStatus::kKilled), 0u);
}

TEST(StockScheduler, NoSpecNeverSpeculates) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kHadoopNoSpec, RunConfig{});
  for (const auto& task : result.tasks) EXPECT_FALSE(task.speculative);
}

TEST(StockScheduler, LateSpeculatesOnStragglerNode) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kHadoop, RunConfig{});
  std::size_t speculative = 0;
  for (const auto& task : result.tasks) {
    if (task.speculative) ++speculative;
  }
  EXPECT_GT(speculative, 0u);
  // Speculation must help vs. no speculation on this cluster.
  auto cluster2 = straggler_cluster();
  const auto nospec =
      workloads::run_job(cluster2, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kHadoopNoSpec, RunConfig{});
  EXPECT_LT(result.jct(), nospec.jct());
}

TEST(StockScheduler, SpeculativeTwinConsistency) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kHadoop, RunConfig{});
  // For every killed task there is exactly one surviving twin covering the
  // same work: BUs credited exactly once overall.
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, 2048u / 8u);
}

TEST(SkewTune, MitigatesStragglerViaPartialTasks) {
  // Two fast nodes and one very slow node, with two waves of big splits:
  // the slow node must take tasks, and each becomes a straggler worth
  // splitting (256 MB at 1.5 MiB/s ≈ 170 s).
  auto make = []() {
    return cluster::ClusterBuilder()
        .add(cluster::MachineSpec{.model = "fast", .base_ips = 12.0,
                                  .slots = 4, .nic_bandwidth = 1192.0,
                                  .memory_gb = 16.0},
             2)
        .add(cluster::MachineSpec{.model = "slow", .base_ips = 1.5,
                                  .slots = 4, .nic_bandwidth = 1192.0,
                                  .memory_gb = 16.0},
             1)
        .build();
  };
  RunConfig config;
  config.block_size = 256.0;
  auto cluster = make();
  const auto result =
      workloads::run_job(cluster, tiny_wc(4096.0), InputScale::kSmall,
                         SchedulerKind::kSkewTune, config);
  EXPECT_GT(
      result.count(mr::TaskKind::kMap, mr::TaskStatus::kPartialCompleted),
      0u);
  // And it should clearly beat plain no-spec Hadoop here.
  auto cluster2 = make();
  const auto nospec =
      workloads::run_job(cluster2, tiny_wc(4096.0), InputScale::kSmall,
                         SchedulerKind::kHadoopNoSpec, config);
  EXPECT_LT(result.jct(), 0.9 * nospec.jct());
}

TEST(SkewTune, NoMitigationOnHomogeneousCluster) {
  auto cluster = cluster::presets::homogeneous6();
  RunConfig config;
  config.params.exec_noise_sigma = 0.0;  // nothing to mitigate
  const auto result =
      workloads::run_job(cluster, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kSkewTune, config);
  EXPECT_EQ(
      result.count(mr::TaskKind::kMap, mr::TaskStatus::kPartialCompleted),
      0u);
  EXPECT_EQ(result.count(mr::TaskKind::kMap, mr::TaskStatus::kKilled), 0u);
}

TEST(FlexMap, TaskSizesGrowOverTheJob) {
  auto cluster = cluster::presets::homogeneous6();
  flexmap::FlexMapScheduler scheduler;
  const auto result =
      workloads::run_job(cluster, tiny_wc(4096.0), InputScale::kSmall,
                         scheduler, RunConfig{});
  const auto& trace = scheduler.sizing_trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().size_bus, 1u);  // all mappers start at one BU
  std::uint32_t max_size = 0;
  for (const auto& point : trace) max_size = std::max(max_size, point.size_bus);
  EXPECT_GT(max_size, 4u);  // vertical scaling kicked in
  (void)result;
}

TEST(FlexMap, FasterNodesGetBiggerTasks) {
  auto cluster = straggler_cluster();
  flexmap::FlexMapScheduler scheduler;
  const auto result =
      workloads::run_job(cluster, tiny_wc(8192.0), InputScale::kSmall,
                         scheduler, RunConfig{});
  (void)result;
  double fast_avg = 0;
  double slow_avg = 0;
  std::size_t fast_n = 0;
  std::size_t slow_n = 0;
  for (const auto& point : scheduler.sizing_trace()) {
    if (point.phase_progress < 0.5) continue;  // after warm-up
    if (point.phase_progress > 0.9) continue;  // before end-game shrink
    if (point.node < 5) {
      fast_avg += point.size_bus;
      ++fast_n;
    } else {
      slow_avg += point.size_bus;
      ++slow_n;
    }
  }
  ASSERT_GT(fast_n, 0u);
  ASSERT_GT(slow_n, 0u);
  EXPECT_GT(fast_avg / static_cast<double>(fast_n),
            2.0 * slow_avg / static_cast<double>(slow_n));
}

TEST(FlexMap, NeverSpeculatesOrKills) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(2048.0), InputScale::kSmall,
                         SchedulerKind::kFlexMap, RunConfig{});
  EXPECT_EQ(result.count(mr::TaskKind::kMap, mr::TaskStatus::kKilled), 0u);
  for (const auto& task : result.tasks) EXPECT_FALSE(task.speculative);
}

TEST(FlexMap, ReduceBiasSendsReducersToFastNodes) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(4096.0, /*shuffle=*/1.0),
                         InputScale::kSmall, SchedulerKind::kFlexMap,
                         RunConfig{});
  MiB slow_input = 0;
  MiB fast_input = 0;
  for (const auto& task : result.tasks) {
    if (task.kind != mr::TaskKind::kReduce) continue;
    (task.node >= 5 ? slow_input : fast_input) += task.input_mib;
  }
  // Slow node holds 1/6 of slots but must get far less than 1/6 of the
  // reduce input under the c^2 bias (c ≈ 1/8 → quota ≈ 0).
  EXPECT_LT(slow_input, 0.05 * (slow_input + fast_input));
}

TEST(FlexMap, UniformReducePlacementWhenBiasDisabled) {
  auto cluster = straggler_cluster();
  const auto result =
      workloads::run_job(cluster, tiny_wc(4096.0, /*shuffle=*/1.0),
                         InputScale::kSmall,
                         SchedulerKind::kFlexMapNoReduceBias, RunConfig{});
  MiB slow_input = 0;
  MiB total = 0;
  for (const auto& task : result.tasks) {
    if (task.kind != mr::TaskKind::kReduce) continue;
    total += task.input_mib;
    if (task.node >= 5) slow_input += task.input_mib;
  }
  // Without bias the slow node picks up a real share of the reduce work.
  EXPECT_GT(slow_input, 0.03 * total);
}

TEST(FlexMap, AblationVariantsStillSatisfyInvariants) {
  for (const auto kind :
       {SchedulerKind::kFlexMapNoVertical, SchedulerKind::kFlexMapNoHorizontal,
        SchedulerKind::kFlexMapNoReduceBias}) {
    auto cluster = straggler_cluster();
    const auto result = workloads::run_job(
        cluster, tiny_wc(1024.0, 0.3), InputScale::kSmall, kind, RunConfig{});
    std::size_t credited = 0;
    for (const auto& task : result.tasks) {
      if (task.kind == mr::TaskKind::kMap && task.credited()) {
        credited += task.num_bus;
      }
    }
    EXPECT_EQ(credited, 128u) << workloads::scheduler_label(kind);
  }
}

TEST(FlexMap, NoVerticalKeepsTasksAtSpeedScaledUnit) {
  auto cluster = cluster::presets::homogeneous6();
  flexmap::FlexMapOptions options;
  options.sizing.vertical = false;
  flexmap::FlexMapScheduler scheduler(options);
  const auto result =
      workloads::run_job(cluster, tiny_wc(1024.0), InputScale::kSmall,
                         scheduler, RunConfig{});
  (void)result;
  for (const auto& point : scheduler.sizing_trace()) {
    EXPECT_LE(point.size_bus, 2u);  // unit stays 1; speed ratio ≈ 1
  }
}

TEST(FlexMap, ReducePlacerZeroCapacityNeverAccepts) {
  // The c² rule uses the shared strict-< bernoulli convention: a node
  // whose normalized capacity is 0 must decline every offer (the old
  // `uniform() <= p` form accepted when the RNG drew exactly 0).
  flexmap::BiasedReducePlacer placer(123);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_FALSE(placer.accept(0.0));
  }
}

TEST(FlexMap, ReducePlacerFullCapacityAlwaysAccepts) {
  flexmap::BiasedReducePlacer placer(123);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(placer.accept(1.0));
  }
}

TEST(FlexMap, ReducePlacerAcceptanceTracksCapacitySquared) {
  flexmap::BiasedReducePlacer placer(7);
  const double capacity = 0.5;
  const int draws = 40000;
  int accepted = 0;
  for (int i = 0; i < draws; ++i) {
    if (placer.accept(capacity)) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / draws, capacity * capacity,
              0.01);
}

}  // namespace
}  // namespace flexmr
