// ThreadPool: the bench harness's parallel sweep substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace flexmr {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter]() { ++counter; }));
  }
  for (auto& fut : futures) fut.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForEachVisitsEveryElement) {
  ThreadPool pool(4);
  std::vector<int> items(200);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<long> sum{0};
  pool.parallel_for_each(items.begin(), items.end(),
                         [&sum](int x) { sum += x; });
  EXPECT_EQ(sum.load(), 199L * 200 / 2);
}

TEST(ThreadPool, ParallelForEachRethrowsFirstError) {
  ThreadPool pool(4);
  std::vector<int> items{1, 2, 3, 4, 5};
  std::atomic<int> visited{0};
  EXPECT_THROW(
      pool.parallel_for_each(items.begin(), items.end(),
                             [&visited](int x) {
                               ++visited;
                               if (x == 3) throw std::runtime_error("x=3");
                             }),
      std::runtime_error);
  EXPECT_EQ(visited.load(), 5);  // remaining items still ran
}

TEST(ThreadPool, ParallelForIndexCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for_index(64, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter]() { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, NestedSubmissionFromWorker) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool]() {
    auto inner = pool.submit([]() { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

TEST(ThreadPool, ParallelForEachEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  std::vector<int> empty;
  int calls = 0;
  pool.parallel_for_each(empty.begin(), empty.end(),
                         [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for_index(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, FirstExceptionInItemOrderRethrownAndPoolSurvives) {
  ThreadPool pool(4);
  std::vector<int> items(16);
  std::iota(items.begin(), items.end(), 0);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for_each(items.begin(), items.end(), [&ran](int i) {
      ++ran;
      if (i % 4 == 3) throw std::runtime_error("item-" + std::to_string(i));
    });
    FAIL() << "expected a rethrown exception";
  } catch (const std::runtime_error& e) {
    // "First" means item order (the order futures are drained), not
    // whichever worker happened to throw first on the wall clock.
    EXPECT_STREQ(e.what(), "item-3");
  }
  EXPECT_EQ(ran.load(), 16);  // the other items still ran to completion
  auto fut = pool.submit([]() { return 7; });
  EXPECT_EQ(fut.get(), 7);  // and the pool remains usable
}

namespace sweep {
// Deterministic FP-heavy work: the accumulation order inside one item is
// fixed, so results may depend only on the item, never on which worker ran
// it or how many workers exist.
double item(std::size_t i) {
  double acc = static_cast<double>(i) + 1.0;
  for (int k = 0; k < 1000; ++k) acc += std::sin(acc) * 1e-3;
  return acc;
}
}  // namespace sweep

TEST(ThreadPool, SweepResultsIdenticalAcrossPoolSizes) {
  constexpr std::size_t kItems = 64;
  const std::size_t pool_sizes[] = {1, 4, 0};  // 0 = hardware concurrency
  std::vector<std::vector<double>> results;
  for (const std::size_t threads : pool_sizes) {
    ThreadPool pool(threads);
    std::vector<double> out(kItems, 0.0);
    pool.parallel_for_index(
        kItems, [&out](std::size_t i) { out[i] = sweep::item(i); });
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

// The bench harnesses mutate the global log level from main while pool
// workers consult it through FLEXMR_LOG; Logger::level_ is atomic so that
// pattern is race-free. This test reproduces it under contention — it only
// proves its worth under TSan (the sanitize-threads CI job), where the
// pre-atomic Logger was a reported data race.
TEST(ThreadPool, LoggerLevelSafeAcrossWorkers) {
  const LogLevel before = Logger::instance().level();
  ThreadPool pool(4);
  std::atomic<int> emitted{0};
  pool.parallel_for_index(256, [&emitted](std::size_t i) {
    if (i % 3 == 0) {
      Logger::instance().set_level(i % 2 == 0 ? LogLevel::Off
                                              : LogLevel::Error);
    }
    if (Logger::instance().enabled(LogLevel::Trace)) {
      FLEXMR_LOG(Trace, "test") << "worker " << i;
      emitted.fetch_add(1);
    }
  });
  Logger::instance().set_level(before);
  EXPECT_EQ(emitted.load(), 0);  // Off/Error both gate Trace out
}

}  // namespace
}  // namespace flexmr
