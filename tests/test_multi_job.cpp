// MultiJobCoordinator: concurrent jobs sharing a cluster under FIFO and
// fair arbitration.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "mr/multi_job.hpp"
#include "workloads/experiment.hpp"

namespace flexmr::mr {
namespace {

struct Fixture {
  Fixture() : cluster(cluster::presets::homogeneous6()) {}

  hdfs::FileLayout make_layout(MiB size, std::uint64_t seed) {
    auto bench = workloads::benchmark("WC");
    bench.small_input = size;
    return workloads::make_layout(bench, workloads::InputScale::kSmall,
                                  cluster.num_nodes(), 64.0, 3, seed);
  }

  JobSpec wc_spec(MiB size, double shuffle = 0.0) {
    auto bench = workloads::benchmark("WC");
    bench.small_input = size;
    bench.shuffle_ratio = shuffle;
    return workloads::to_job_spec(bench, workloads::InputScale::kSmall);
  }

  Simulator sim;
  cluster::Cluster cluster;
};

void check_exactly_once(const JobResult& result, std::size_t total_bus) {
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, total_bus);
}

TEST(MultiJob, TwoJobsBothCompleteWithInvariants) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFair);
  const auto layout1 = f.make_layout(1024.0, 1);
  const auto layout2 = f.make_layout(1024.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(workloads::SchedulerKind::kFlexMap);
  coordinator.submit(layout1, f.wc_spec(1024.0), SimParams{}, *sched1, 0.0);
  coordinator.submit(layout2, f.wc_spec(1024.0), SimParams{}, *sched2, 0.0);
  const auto results = coordinator.run_all();
  ASSERT_EQ(results.size(), 2u);
  check_exactly_once(results[0], 128);
  check_exactly_once(results[1], 128);
}

TEST(MultiJob, FifoPrioritizesEarlierJob) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFifo);
  const auto layout1 = f.make_layout(2048.0, 1);
  const auto layout2 = f.make_layout(2048.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(2048.0), SimParams{}, *sched1, 0.0);
  coordinator.submit(layout2, f.wc_spec(2048.0), SimParams{}, *sched2, 0.0);
  const auto results = coordinator.run_all();
  // Job 1 finishes its map phase before job 2 does (it gets first pick of
  // every container until it has nothing left to launch).
  EXPECT_LT(results[0].map_phase_end, results[1].map_phase_end);
  EXPECT_LT(results[0].finish_time, results[1].finish_time);
}

TEST(MultiJob, FairSharesSlotsBetweenConcurrentJobs) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFair);
  const auto layout1 = f.make_layout(2048.0, 1);
  const auto layout2 = f.make_layout(2048.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(2048.0), SimParams{}, *sched1, 0.0);
  coordinator.submit(layout2, f.wc_spec(2048.0), SimParams{}, *sched2, 0.0);
  const auto results = coordinator.run_all();
  // Equal jobs under fair sharing finish at roughly the same time.
  const double ratio = results[0].finish_time / results[1].finish_time;
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.33);
}

TEST(MultiJob, StaggeredSubmissionStartsAtSubmitTime) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFifo);
  const auto layout1 = f.make_layout(1024.0, 1);
  const auto layout2 = f.make_layout(1024.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(1024.0), SimParams{}, *sched1, 0.0);
  coordinator.submit(layout2, f.wc_spec(1024.0), SimParams{}, *sched2,
                     30.0);
  const auto results = coordinator.run_all();
  EXPECT_DOUBLE_EQ(results[1].submit_time, 30.0);
  for (const auto& task : results[1].tasks) {
    EXPECT_GE(task.dispatch_time, 30.0);
  }
}

TEST(MultiJob, LateJobUsesSlotsFreedByEarlyJobsReducePhase) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFifo);
  // Job 1 is reduce-heavy: once its maps finish, few reducers occupy the
  // cluster and job 2's maps backfill the idle slots.
  const auto layout1 = f.make_layout(1024.0, 1);
  const auto layout2 = f.make_layout(1024.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(1024.0, 1.0), SimParams{}, *sched1,
                     0.0);
  coordinator.submit(layout2, f.wc_spec(1024.0, 0.0), SimParams{}, *sched2,
                     0.0);
  const auto results = coordinator.run_all();
  // Job 2's map phase overlaps job 1's reduce phase.
  EXPECT_LT(results[1].map_phase_start, results[0].finish_time);
  check_exactly_once(results[1], 128);
}

TEST(MultiJob, NodeFailureAffectsEveryJob) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFair);
  const auto layout1 = f.make_layout(2048.0, 1);
  const auto layout2 = f.make_layout(2048.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(workloads::SchedulerKind::kFlexMap);
  coordinator.submit(layout1, f.wc_spec(2048.0, 0.25), SimParams{}, *sched1,
                     0.0);
  coordinator.submit(layout2, f.wc_spec(2048.0, 0.25), SimParams{}, *sched2,
                     0.0);
  coordinator.schedule_node_failure(1, 25.0);
  const auto results = coordinator.run_all();
  for (const auto& result : results) {
    check_exactly_once(result, 256);
    // Neither job dispatches anything on the dead node afterwards — and
    // no task keeps computing on it either: every job's containers there
    // die at the failure instant (a regression here means one driver
    // skipped cleanup because another had already marked the RM).
    for (const auto& task : result.tasks) {
      if (task.node != 1) continue;
      EXPECT_LT(task.dispatch_time, 25.0 + 1e-9);
      EXPECT_LE(task.end_time, 25.0 + 1e-9);
      if (task.end_time >= 25.0 - 1e-9) {
        EXPECT_EQ(task.status, mr::TaskStatus::kKilled);
      }
    }
  }
}

TEST(MultiJob, FailureBeforeLateSubmission) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFifo);
  const auto layout1 = f.make_layout(1024.0, 1);
  const auto layout2 = f.make_layout(1024.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(1024.0), SimParams{}, *sched1, 0.0);
  // Job 2 enters after node 4 is already gone.
  coordinator.submit(layout2, f.wc_spec(1024.0), SimParams{}, *sched2,
                     20.0);
  coordinator.schedule_node_failure(4, 5.0);
  const auto results = coordinator.run_all();
  check_exactly_once(results[1], 128);
  for (const auto& task : results[1].tasks) {
    EXPECT_NE(task.node, 4u);
  }
}

TEST(MultiJob, ManyJobsFifoCompleteInOrder) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFifo);
  std::vector<hdfs::FileLayout> layouts;
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  layouts.reserve(4);
  for (std::uint64_t j = 0; j < 4; ++j) {
    layouts.push_back(f.make_layout(512.0, j + 1));
  }
  for (std::size_t j = 0; j < 4; ++j) {
    schedulers.push_back(workloads::make_scheduler(
        workloads::SchedulerKind::kHadoopNoSpec));
    coordinator.submit(layouts[j], f.wc_spec(512.0), SimParams{},
                       *schedulers[j], 0.0);
  }
  const auto results = coordinator.run_all();
  for (const auto& result : results) check_exactly_once(result, 64);
  // Adjacent jobs may swap by execution noise when everything fits in one
  // wave, but the first job strictly precedes the last: job 4 only gets
  // leftovers after three 8-map jobs claimed 24 slots.
  EXPECT_LT(results[0].map_phase_end, results[3].map_phase_end);
  EXPECT_LT(results[0].finish_time, results[3].finish_time);
}

TEST(MultiJob, FairConvergesUnderUnequalDemand) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFair);
  // Job 1 wants far more than its fair share (64 maps on 24 slots); job 2
  // only ever needs 8. Fair arbitration must give job 2 its full demand
  // while job 1 is still hungry — demand-limited max-min, not starvation.
  const auto layout1 = f.make_layout(4096.0, 1);
  const auto layout2 = f.make_layout(512.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(4096.0), SimParams{}, *sched1, 0.0);
  coordinator.submit(layout2, f.wc_spec(512.0), SimParams{}, *sched2, 0.0);
  coordinator.start();
  bool small_job_reached_demand = false;
  while (!coordinator.all_done() && f.sim.step()) {
    if (!coordinator.driver(0).done() && !coordinator.driver(1).done() &&
        coordinator.driver(1).slots_in_use() >= 8) {
      small_job_reached_demand = true;
    }
  }
  EXPECT_TRUE(small_job_reached_demand);
  check_exactly_once(coordinator.driver(0).result(), 512);
  check_exactly_once(coordinator.driver(1).result(), 64);
}

TEST(MultiJob, SubmitWhileRunningAndSaturated) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster, SharePolicy::kFair);
  const auto layout1 = f.make_layout(8192.0, 1);
  const auto layout2 = f.make_layout(512.0, 2);
  auto sched1 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  auto sched2 = workloads::make_scheduler(
      workloads::SchedulerKind::kHadoopNoSpec);
  coordinator.submit(layout1, f.wc_spec(8192.0), SimParams{}, *sched1, 0.0);
  coordinator.start();

  // Step until job 1 holds every container in the cluster.
  const std::uint32_t total_slots = 6 * 4;
  while (coordinator.driver(0).slots_in_use() < total_slots) {
    ASSERT_TRUE(f.sim.step());
  }
  const SimTime submit_time = f.sim.now();

  // Incremental submission against a saturated, already-running cluster.
  coordinator.submit(layout2, f.wc_spec(512.0), SimParams{}, *sched2,
                     submit_time);
  while (!coordinator.all_done()) {
    ASSERT_TRUE(f.sim.step());
  }
  ASSERT_TRUE(coordinator.driver(1).done());
  check_exactly_once(coordinator.driver(1).result(), 64);
  for (const auto& task : coordinator.driver(1).result().tasks) {
    EXPECT_GE(task.dispatch_time, submit_time);
  }
}

TEST(MultiJob, PreemptionReclaimsFromOverShareJob) {
  Fixture f;
  MultiJobCoordinator coordinator(f.sim, f.cluster,
                                  SharePolicy::kWeightedFair);
  PreemptionConfig preemption;
  preemption.enabled = true;
  preemption.period_s = 5.0;
  preemption.over_share_factor = 1.05;
  preemption.max_kills_per_round = 4;
  coordinator.set_preemption(preemption);

  // Job 1 (weight 1, stock Hadoop) has the cluster to itself; job 2
  // (weight 3) arrives once it is saturated, so preemption must claw
  // containers back. Stock Hadoop as the victim also regression-covers
  // the partial-block re-pend path: a preempted map credits its consumed
  // prefix and the remainder must be relaunched, not orphaned.
  const auto layout1 = f.make_layout(16384.0, 1);
  const auto layout2 = f.make_layout(2048.0, 2);
  auto sched1 = workloads::make_scheduler(workloads::SchedulerKind::kHadoop);
  auto sched2 = workloads::make_scheduler(workloads::SchedulerKind::kFlexMap);
  coordinator.submit(layout1, f.wc_spec(16384.0, 0.25), SimParams{}, *sched1,
                     0.0, 1.0);
  coordinator.submit(layout2, f.wc_spec(2048.0, 0.25), SimParams{}, *sched2,
                     12.0, 3.0);
  const auto results = coordinator.run_all();
  EXPECT_GT(coordinator.preemption_kills(), 0u);
  check_exactly_once(results[0], 2048);
  check_exactly_once(results[1], 256);
}

}  // namespace
}  // namespace flexmr::mr
