// The observability layer: JsonWriter mechanics, the JobResult / FlexMap
// trace exporters, and the shared bench artifact — every emitted document
// must be syntactically valid JSON and carry its schema's required keys.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <string>

#include "bench/bench_common.hpp"
#include "cluster/presets.hpp"
#include "common/json.hpp"
#include "flexmap/export.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "mr/result_json.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, so the tests can
// assert validity without a third-party parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& doc) : doc_(doc) {}

  bool valid() {
    pos_ = 0;
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == doc_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < doc_.size() &&
           std::isspace(static_cast<unsigned char>(doc_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (doc_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool parse_string() {
    if (doc_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < doc_.size() && doc_[pos_] != '"') {
      if (static_cast<unsigned char>(doc_[pos_]) < 0x20) return false;
      if (doc_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= doc_.size()) return false;
        const char esc = doc_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= doc_.size() ||
                !std::isxdigit(static_cast<unsigned char>(doc_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= doc_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (pos_ < doc_.size() && doc_[pos_] == '-') ++pos_;
    while (pos_ < doc_.size() &&
           (std::isdigit(static_cast<unsigned char>(doc_[pos_])) ||
            doc_[pos_] == '.' || doc_[pos_] == 'e' || doc_[pos_] == 'E' ||
            doc_[pos_] == '+' || doc_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < doc_.size() && doc_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= doc_.size() || !parse_string()) return false;
      skip_ws();
      if (pos_ >= doc_.size() || doc_[pos_] != ':') return false;
      ++pos_;
      if (!parse_value()) return false;
      skip_ws();
      if (pos_ >= doc_.size()) return false;
      if (doc_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (doc_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < doc_.size() && doc_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!parse_value()) return false;
      skip_ws();
      if (pos_ >= doc_.size()) return false;
      if (doc_[pos_] == ']') {
        ++pos_;
        return true;
      }
      if (doc_[pos_] != ',') return false;
      ++pos_;
    }
  }

  bool parse_value() {
    skip_ws();
    if (pos_ >= doc_.size()) return false;
    const char c = doc_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return parse_number();
  }

  const std::string& doc_;
  std::size_t pos_ = 0;
};

bool is_valid_json(const std::string& doc) {
  return JsonChecker(doc).valid();
}

bool has_key(const std::string& doc, const std::string& key) {
  return doc.find("\"" + key + "\":") != std::string::npos;
}

// --------------------------------------------------------------- writer

TEST(JsonWriter, EmptyObjectAndArray) {
  JsonWriter object;
  object.begin_object().end_object();
  EXPECT_EQ(object.str(), "{}");

  JsonWriter array;
  array.begin_array().end_array();
  EXPECT_EQ(array.str(), "[]");
}

TEST(JsonWriter, ObjectFieldsAreCommaSeparated) {
  JsonWriter writer;
  writer.begin_object();
  writer.field("a", 1);
  writer.field("b", "two");
  writer.field("c", true);
  writer.end_object();
  EXPECT_EQ(writer.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("rows").begin_array();
  writer.begin_object().field("x", 1).end_object();
  writer.begin_object().field("x", 2).end_object();
  writer.end_array();
  writer.key("empty").begin_array().end_array();
  writer.end_object();
  EXPECT_EQ(writer.str(), R"({"rows":[{"x":1},{"x":2}],"empty":[]})");
  EXPECT_TRUE(is_valid_json(writer.str()));
}

TEST(JsonWriter, StringEscaping) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"),
            "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::escape("héllo"), "héllo");  // UTF-8 passthrough

  JsonWriter writer;
  writer.begin_object().field("ke\"y", "va\nlue").end_object();
  EXPECT_EQ(writer.str(), "{\"ke\\\"y\":\"va\\nlue\"}");
  EXPECT_TRUE(is_valid_json(writer.str()));
}

TEST(JsonWriter, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::number(0.0), "0");
  EXPECT_EQ(JsonWriter::number(1.0), "1");
  EXPECT_EQ(JsonWriter::number(0.5), "0.5");
  EXPECT_EQ(JsonWriter::number(-2.25), "-2.25");
  // 0.1 has no exact binary representation; shortest round-trip is "0.1".
  EXPECT_EQ(JsonWriter::number(0.1), "0.1");
  EXPECT_EQ(JsonWriter::number(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::number(INFINITY), "null");
  EXPECT_EQ(JsonWriter::number(-INFINITY), "null");
}

TEST(JsonWriter, NonFiniteValuesBecomeNull) {
  JsonWriter writer;
  writer.begin_array();
  writer.value(std::nan(""));
  writer.value(1.5);
  writer.end_array();
  EXPECT_EQ(writer.str(), "[null,1.5]");
}

TEST(JsonWriter, IntegerTypesKeepFullPrecision) {
  JsonWriter writer;
  writer.begin_array();
  writer.value(std::uint64_t{18446744073709551615u});
  writer.value(std::int64_t{-9223372036854775807});
  writer.value(std::uint32_t{42});
  writer.value(-7);
  writer.end_array();
  EXPECT_EQ(writer.str(),
            "[18446744073709551615,-9223372036854775807,42,-7]");
}

TEST(JsonWriter, RawInsertsPreserializedDocument) {
  JsonWriter inner;
  inner.begin_object().field("nested", true).end_object();
  JsonWriter outer;
  outer.begin_object();
  outer.key("extra").raw(inner.str());
  outer.end_object();
  EXPECT_EQ(outer.str(), R"({"extra":{"nested":true}})");
}

TEST(JsonWriter, MisuseTripsAssertions) {
  {
    JsonWriter writer;
    writer.begin_object();
    EXPECT_THROW(writer.value(1), InvariantError);  // value without key
  }
  {
    JsonWriter writer;
    writer.begin_array();
    EXPECT_THROW(writer.end_object(), InvariantError);  // wrong closer
  }
  {
    JsonWriter writer;
    writer.begin_object().end_object();
    EXPECT_THROW(writer.value(2), InvariantError);  // second root
  }
  {
    JsonWriter writer;
    writer.begin_object();
    EXPECT_THROW(writer.str(), InvariantError);  // incomplete document
  }
}

// ------------------------------------------------------------ exporters

mr::JobResult small_run(cluster::Cluster& cluster,
                        workloads::SchedulerKind kind) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = 512.0;
  workloads::RunConfig config;
  config.params.seed = 21;
  return workloads::run_job(cluster, bench, workloads::InputScale::kSmall,
                            kind, config);
}

TEST(ResultJson, JobResultRoundTripsWithRequiredKeys) {
  auto cluster = cluster::presets::heterogeneous6();
  const auto result =
      small_run(cluster, workloads::SchedulerKind::kFlexMap);

  const std::string doc = mr::job_result_json(result, cluster);
  ASSERT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"schema\":\"flexmr.job_result.v1\""),
            std::string::npos);
  for (const char* key :
       {"benchmark", "scheduler", "total_slots", "times", "metrics", "sim",
        "nodes", "tasks", "jct", "efficiency", "mean_map_productivity",
        "wasted_slot_time", "events_fired", "queue_peak", "utilization",
        "productivity"}) {
    EXPECT_TRUE(has_key(doc, key)) << "missing key: " << key;
  }
  // The cluster-free overload drops slots/utilization but stays valid.
  const std::string bare = mr::job_result_json(result);
  ASSERT_TRUE(is_valid_json(bare));
  EXPECT_FALSE(has_key(bare, "utilization"));
}

TEST(ResultJson, SimCountersAreRecorded) {
  auto cluster = cluster::presets::homogeneous6();
  const auto result =
      small_run(cluster, workloads::SchedulerKind::kHadoopNoSpec);
  EXPECT_GT(result.sim_events_fired, 0u);
  EXPECT_GT(result.sim_queue_peak, 0u);
}

TEST(ResultJson, FlexMapTraceExports) {
  auto cluster = cluster::presets::heterogeneous6();
  auto bench = workloads::benchmark("WC");
  bench.small_input = 512.0;
  flexmap::FlexMapScheduler scheduler;
  workloads::RunConfig config;
  config.params.seed = 13;
  workloads::run_job(cluster, bench, workloads::InputScale::kSmall,
                     scheduler, config);

  const std::string doc = flexmap::flexmap_trace_json(scheduler);
  ASSERT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"schema\":\"flexmr.flexmap_trace.v1\""),
            std::string::npos);
  for (const char* key : {"sizing_trace", "speed_trace", "nodes",
                          "size_unit_bus", "frozen", "observed_ips"}) {
    EXPECT_TRUE(has_key(doc, key)) << "missing key: " << key;
  }
  EXPECT_FALSE(scheduler.sizing_trace().empty());
  EXPECT_FALSE(scheduler.speed_trace().empty());
}

// ------------------------------------------------------------- artifact

TEST(BenchArtifact, EmitsSchemaConsistentDocument) {
  bench::BenchArtifact artifact("test", "artifact schema check");
  artifact.record_seeds({1, 2, 3});
  artifact.record_seeds({2, 3, 4});  // duplicates collapse

  OnlineStats stats;
  stats.add(1.0);
  stats.add(3.0);
  artifact.add_metric("series-a", "jct", stats);
  artifact.add_metric("series-a", "single", 7.5);
  artifact.add_metric("series-b", "jct", stats);

  JsonWriter inner;
  inner.begin_object().field("detail", 1).end_object();
  artifact.attach("trace", inner.str());

  const std::string doc = artifact.json();
  ASSERT_TRUE(is_valid_json(doc));
  EXPECT_NE(doc.find("\"schema\":\"flexmr.bench.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"figure\":\"test\""), std::string::npos);
  EXPECT_NE(doc.find("\"seeds\":[1,2,3,4]"), std::string::npos);
  EXPECT_NE(doc.find("\"label\":\"series-a\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\":\"series-b\""), std::string::npos);
  for (const char* key : {"wall_clock_s", "series", "metrics", "mean",
                          "stddev", "min", "max", "count", "extra",
                          "trace", "detail"}) {
    EXPECT_TRUE(has_key(doc, key)) << "missing key: " << key;
  }
  EXPECT_NE(doc.find("\"mean\":2,"), std::string::npos);  // (1+3)/2
}

}  // namespace
}  // namespace flexmr
