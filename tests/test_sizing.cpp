// DynamicSizer — Algorithm 1 (vertical + horizontal scaling) semantics.
#include <gtest/gtest.h>

#include "flexmap/sizing.hpp"

namespace flexmr::flexmap {
namespace {

TEST(DynamicSizer, StartsAtOneBu) {
  DynamicSizer sizer(4);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(sizer.size_unit(n), 1u);
    EXPECT_EQ(sizer.task_size(n, 1.0), 1u);
    EXPECT_FALSE(sizer.frozen(n));
  }
}

TEST(DynamicSizer, FastScalingDoublesBelowFastLimit) {
  DynamicSizer sizer(1);
  EXPECT_TRUE(sizer.on_task_complete(0, 0, 0.3));  // < 0.8 → double
  EXPECT_EQ(sizer.size_unit(0), 2u);
  EXPECT_TRUE(sizer.on_task_complete(0, 1, 0.5));
  EXPECT_EQ(sizer.size_unit(0), 4u);
  EXPECT_TRUE(sizer.on_task_complete(0, 2, 0.79));
  EXPECT_EQ(sizer.size_unit(0), 8u);
}

TEST(DynamicSizer, LinearScalingAddsOneBuBetweenLimits) {
  DynamicSizer sizer(1);
  sizer.on_task_complete(0, 0, 0.85);  // in [0.8, 0.9) → +1
  EXPECT_EQ(sizer.size_unit(0), 2u);
  sizer.on_task_complete(0, 1, 0.89);
  EXPECT_EQ(sizer.size_unit(0), 3u);
}

TEST(DynamicSizer, FreezesAtLinearLimit) {
  DynamicSizer sizer(1);
  sizer.on_task_complete(0, 0, 0.3);
  EXPECT_FALSE(sizer.on_task_complete(0, 1, 0.95));
  EXPECT_TRUE(sizer.frozen(0));
  EXPECT_EQ(sizer.size_unit(0), 2u);
  // Further feedback is ignored once frozen.
  EXPECT_FALSE(sizer.on_task_complete(0, 2, 0.1));
  EXPECT_EQ(sizer.size_unit(0), 2u);
}

TEST(DynamicSizer, StaleEpochFeedbackIgnored) {
  DynamicSizer sizer(1);
  EXPECT_EQ(sizer.epoch(0), 0u);
  sizer.on_task_complete(0, 0, 0.3);  // epoch 0 consumed
  EXPECT_EQ(sizer.epoch(0), 1u);
  // Another wave-0 task finishing must not double again.
  EXPECT_FALSE(sizer.on_task_complete(0, 0, 0.3));
  EXPECT_EQ(sizer.size_unit(0), 2u);
  // Fresh-epoch feedback does.
  EXPECT_TRUE(sizer.on_task_complete(0, 1, 0.3));
  EXPECT_EQ(sizer.size_unit(0), 4u);
}

TEST(DynamicSizer, NodesGrowIndependently) {
  DynamicSizer sizer(2);
  sizer.on_task_complete(0, 0, 0.3);
  sizer.on_task_complete(0, 1, 0.3);
  sizer.on_task_complete(1, 0, 0.85);
  EXPECT_EQ(sizer.size_unit(0), 4u);
  EXPECT_EQ(sizer.size_unit(1), 2u);
}

TEST(DynamicSizer, HorizontalScalingMultipliesBySpeed) {
  DynamicSizer sizer(1);
  sizer.on_task_complete(0, 0, 0.3);  // unit = 2
  EXPECT_EQ(sizer.task_size(0, 3.0), 6u);
  EXPECT_EQ(sizer.task_size(0, 1.0), 2u);
  // Rounding to nearest; never below 1 BU.
  EXPECT_EQ(sizer.task_size(0, 1.3), 3u);  // 2.6 → 3
  EXPECT_EQ(sizer.task_size(0, 0.2), 1u);
}

TEST(DynamicSizer, VerticalDisabledKeepsUnitAtOne) {
  SizingOptions options;
  options.vertical = false;
  DynamicSizer sizer(1, options);
  EXPECT_FALSE(sizer.on_task_complete(0, 0, 0.1));
  EXPECT_EQ(sizer.size_unit(0), 1u);
  EXPECT_EQ(sizer.task_size(0, 4.0), 4u);  // horizontal still applies
}

TEST(DynamicSizer, HorizontalDisabledIgnoresSpeed) {
  SizingOptions options;
  options.horizontal = false;
  DynamicSizer sizer(1, options);
  sizer.on_task_complete(0, 0, 0.3);
  EXPECT_EQ(sizer.task_size(0, 10.0), 2u);
}

TEST(DynamicSizer, MaxUnitCapFreezes) {
  SizingOptions options;
  options.max_unit_bus = 4;
  DynamicSizer sizer(1, options);
  sizer.on_task_complete(0, 0, 0.1);  // 2
  sizer.on_task_complete(0, 1, 0.1);  // 4
  sizer.on_task_complete(0, 2, 0.1);  // would be 8 → capped
  EXPECT_EQ(sizer.size_unit(0), 4u);
  EXPECT_TRUE(sizer.frozen(0));
}

TEST(DynamicSizer, PaperTrajectoryReproduced) {
  // §III-E example: productivity below FAST_LIMIT keeps doubling — 1, 2,
  // 4, 8, 16, 32 (Fig. 7a ends at 32 BUs on the fast node).
  DynamicSizer sizer(1);
  const double prods[] = {0.2, 0.35, 0.5, 0.65, 0.78};
  std::uint32_t expected = 1;
  for (std::uint32_t wave = 0; wave < 5; ++wave) {
    sizer.on_task_complete(0, wave, prods[wave]);
    expected *= 2;
    EXPECT_EQ(sizer.size_unit(0), expected);
  }
  EXPECT_EQ(sizer.size_unit(0), 32u);
}

TEST(DynamicSizer, UnboundedGrowthSaturatesInsteadOfWrapping) {
  // Paper default max_unit_bus = 0 means "no bound". A node that never
  // becomes productive doubles every wave; after 32 waves a naive uint32
  // doubling wraps back to small sizes. The sizer must saturate at
  // kMaxSizeUnit, stay monotone, and freeze there.
  DynamicSizer sizer(1);
  std::uint32_t previous = sizer.size_unit(0);
  for (std::uint32_t wave = 0; wave < 64; ++wave) {
    sizer.on_task_complete(0, wave, 0.1);
    EXPECT_GE(sizer.size_unit(0), previous);  // never wraps
    previous = sizer.size_unit(0);
  }
  EXPECT_EQ(sizer.size_unit(0), kMaxSizeUnit);
  EXPECT_TRUE(sizer.frozen(0));
}

TEST(DynamicSizer, InvalidLimitsThrow) {
  SizingOptions options;
  options.fast_limit = 0.95;
  options.linear_limit = 0.9;
  EXPECT_THROW(DynamicSizer(1, options), InvariantError);
}

}  // namespace
}  // namespace flexmr::flexmap
