// SimParams knobs: each parameter must move the simulation in the
// direction it claims, and the observability (Eq. 3 estimates) must track
// ground truth.
#include <gtest/gtest.h>

#include "cluster/presets.hpp"
#include "flexmap/flexmap_scheduler.hpp"
#include "workloads/experiment.hpp"

namespace flexmr {
namespace {

using workloads::InputScale;
using workloads::RunConfig;
using workloads::SchedulerKind;

workloads::Benchmark wc(MiB input, double shuffle = 0.25) {
  auto bench = workloads::benchmark("WC");
  bench.small_input = input;
  bench.shuffle_ratio = shuffle;
  return bench;
}

mr::JobResult run(const RunConfig& config, MiB input = 1024.0,
                  double shuffle = 0.25,
                  SchedulerKind kind = SchedulerKind::kHadoopNoSpec) {
  auto cluster = cluster::presets::homogeneous6();
  return workloads::run_job(cluster, wc(input, shuffle), InputScale::kSmall,
                            kind, config);
}

TEST(SimParams, HigherStartupCostSlowsJob) {
  RunConfig cheap;
  cheap.params.jvm_startup_s = 0.5;
  RunConfig expensive;
  expensive.params.jvm_startup_s = 6.0;
  EXPECT_LT(run(cheap).jct(), run(expensive).jct());
}

TEST(SimParams, StartupCostLowersProductivity) {
  RunConfig cheap;
  cheap.params.jvm_startup_s = 0.1;
  cheap.params.container_alloc_s = 0.1;
  RunConfig expensive;
  expensive.params.jvm_startup_s = 6.0;
  EXPECT_GT(run(cheap).mean_map_productivity(),
            run(expensive).mean_map_productivity() + 0.2);
}

TEST(SimParams, ZeroExecNoiseIsPerfectlyRegular) {
  // Remove every variance source: exec noise, record skew, remote reads.
  auto cluster = cluster::presets::homogeneous6();
  auto bench = wc(1024.0, 0.0);
  bench.record_skew = 0.0;
  RunConfig config;
  config.params.exec_noise_sigma = 0.0;
  config.params.remote_read_penalty = 0.0;
  const auto result =
      workloads::run_job(cluster, bench, InputScale::kSmall,
                         SchedulerKind::kHadoopNoSpec, config);
  // All 64 MB map tasks on identical machines take identical time.
  SampleSet runtimes = result.map_runtimes();
  EXPECT_LT(runtimes.cv(), 1e-9);
}

TEST(SimParams, ExecNoiseWidensRuntimeSpread) {
  RunConfig noisy;
  noisy.params.exec_noise_sigma = 0.3;
  const auto result = run(noisy, 1024.0, 0.0);
  EXPECT_GT(result.map_runtimes().cv(), 0.1);
}

TEST(SimParams, ReducerInputTargetControlsReducerCount) {
  RunConfig coarse;
  coarse.params.reducer_input_target = 256.0;
  RunConfig fine;
  fine.params.reducer_input_target = 32.0;
  const auto few = run(coarse, 1024.0, 1.0);
  const auto many = run(fine, 1024.0, 1.0);
  EXPECT_LT(few.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            many.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted));
  // 1024 MiB intermediate / 256 → 4; / 32 → 32 (≤ 24 slots → clamped).
  EXPECT_EQ(few.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            4u);
  EXPECT_EQ(many.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            24u);
}

TEST(SimParams, ExplicitReducerCountWins) {
  auto cluster = cluster::presets::homogeneous6();
  auto bench = wc(1024.0, 1.0);
  Simulator sim;
  const auto layout = workloads::make_layout(
      bench, InputScale::kSmall, cluster.num_nodes(), 64.0, 3, 1);
  auto spec = workloads::to_job_spec(bench, InputScale::kSmall, 7);
  const auto scheduler =
      workloads::make_scheduler(SchedulerKind::kHadoopNoSpec);
  mr::JobDriver driver(sim, cluster, layout, spec, mr::SimParams{},
                       *scheduler);
  const auto result = driver.run();
  EXPECT_EQ(result.count(mr::TaskKind::kReduce, mr::TaskStatus::kCompleted),
            7u);
}

TEST(SimParams, ShuffleOverlapHidesFetchOnSlowNetworks) {
  // A 1 GbE-ish NIC makes the reduce fetch visible; full overlap hides it.
  auto make_cluster = []() {
    cluster::MachineSpec node{.model = "1GbE worker", .base_ips = 10.0,
                              .slots = 4, .nic_bandwidth = 110.0,
                              .memory_gb = 16.0};
    return cluster::ClusterBuilder().add(node, 6).build();
  };
  auto run_overlap = [&](double overlap) {
    auto cluster = make_cluster();
    RunConfig config;
    config.params.shuffle_overlap = overlap;
    config.params.exec_noise_sigma = 0.0;
    return workloads::run_job(cluster, wc(1024.0, 1.0), InputScale::kSmall,
                              SchedulerKind::kHadoopNoSpec, config);
  };
  const auto hidden = run_overlap(1.0);
  const auto exposed = run_overlap(0.0);
  EXPECT_LT(hidden.jct(), exposed.jct());
  // Map phases are identical; the whole gap is fetch time.
  EXPECT_NEAR(hidden.map_phase_runtime(), exposed.map_phase_runtime(),
              1e-9);
}

TEST(Observability, ObservedIpsTracksGroundTruthOnBigTasks) {
  auto cluster = cluster::presets::heterogeneous6();
  flexmap::FlexMapScheduler scheduler;
  RunConfig config;
  config.params.exec_noise_sigma = 0.0;  // no noise → exact estimates
  workloads::run_job(cluster, wc(4096.0, 0.0), InputScale::kSmall,
                     scheduler, config);
  const auto& monitor = scheduler.speed_monitor();
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    const auto observed = monitor.get_speed(n);
    ASSERT_TRUE(observed.has_value()) << n;
    // WC map_cost is 1.0 so IPS ≈ effective speed; late small tasks bias
    // estimates slightly, so allow a modest band.
    EXPECT_NEAR(*observed, cluster.machine(n).effective_ips(),
                0.35 * cluster.machine(n).effective_ips())
        << n;
  }
}

TEST(Observability, HeartbeatPeriodRespected) {
  // A much longer heartbeat postpones the first speed estimates, so
  // FlexMap's horizontal scaling starts later — the job still completes
  // and the invariants hold.
  RunConfig slow_hb;
  slow_hb.params.heartbeat_period_s = 30.0;
  const auto result =
      run(slow_hb, 1024.0, 0.25, SchedulerKind::kFlexMap);
  std::size_t credited = 0;
  for (const auto& task : result.tasks) {
    if (task.kind == mr::TaskKind::kMap && task.credited()) {
      credited += task.num_bus;
    }
  }
  EXPECT_EQ(credited, 128u);
}

}  // namespace
}  // namespace flexmr
